# Convenience targets for the es reproduction. `just` is not installed
# in the build image, so plain make it is.

.PHONY: all build test soak soak-limits lint bench clean

all: build test lint

build:
	cargo build --release

# Tier-1 verification (see ROADMAP.md).
test:
	cargo build --release && cargo test -q

# E10 — fault-injection soak: 256 seeded fault plans against a scripted
# session, asserting no panics, no descriptor leaks, and byte-identical
# replay per seed; then the zero-fault overhead bench.
soak:
	cargo test -p es-core -q soak_fault_plans -- --nocapture
	cargo bench -p es-bench --bench e10_fault_overhead

# E11 — governor soak: the same 256 seeds with a tight step budget and
# an active fault plan armed together (limit breaches, injected faults,
# and catch handlers interleaving), plus the zero-limits overhead bench.
soak-limits:
	cargo test -p es-core -q soak_limits -- --nocapture
	cargo bench -p es-bench --bench e11_governor

# The whole workspace must be clippy-clean.
lint:
	cargo clippy --workspace --all-targets -- -D warnings

bench:
	cargo bench -p es-bench

clean:
	cargo clean
