# Convenience targets for the es reproduction. `just` is not installed
# in the build image, so plain make it is.

.PHONY: all build test conform fuzz soak soak-limits lint bench clean

all: build test conform fuzz lint

build:
	cargo build --release

# Tier-1 verification (see ROADMAP.md).
test:
	cargo build --release && cargo test -q

# E12 — differential conformance: every scenario runs on both kernels
# (SimOs and RealOs); traces must agree on every oracle field or carry
# a divergence-ledger entry. Zero silent mismatches tolerated.
conform:
	cargo test -p es-conform --test conform -q

# E12 — grammar-aware script fuzz: seeded sessions against SimOs
# (panic/leak/replay invariants, fault weather on a third of seeds) and
# differentially against RealOs (fault-free subset, zero divergences).
FUZZ_SEEDS ?= 256
fuzz:
	FUZZ_SEEDS=$(FUZZ_SEEDS) cargo test -p es-conform --test fuzz -q

# E10 — fault-injection soak: 256 seeded fault plans against a scripted
# session, asserting no panics, no descriptor leaks, and byte-identical
# replay per seed; then the zero-fault overhead bench.
soak:
	cargo test -p es-core -q soak_fault_plans -- --nocapture
	cargo bench -p es-bench --bench e10_fault_overhead

# E11 — governor soak: the same 256 seeds with a tight step budget and
# an active fault plan armed together (limit breaches, injected faults,
# and catch handlers interleaving), plus the zero-limits overhead bench.
soak-limits:
	cargo test -p es-core -q soak_limits -- --nocapture
	cargo bench -p es-bench --bench e11_governor

# The whole workspace must be clippy-clean.
lint:
	cargo clippy --workspace --all-targets -- -D warnings

bench:
	cargo bench -p es-bench

clean:
	cargo clean
