# Convenience targets for the es reproduction. `just` is not installed
# in the build image, so plain make it is.

.PHONY: all build test soak lint bench clean

all: build test

build:
	cargo build --release

# Tier-1 verification (see ROADMAP.md).
test:
	cargo build --release && cargo test -q

# E10 — fault-injection soak: 256 seeded fault plans against a scripted
# session, asserting no panics, no descriptor leaks, and byte-identical
# replay per seed; then the zero-fault overhead bench.
soak:
	cargo test -p es-core -q soak_fault_plans -- --nocapture
	cargo bench -p es-bench --bench e10_fault_overhead

# The whole workspace must be clippy-clean.
lint:
	cargo clippy --workspace --all-targets -- -D warnings

bench:
	cargo bench -p es-bench

clean:
	cargo clean
