# Convenience targets for the es reproduction. `just` is not installed
# in the build image, so plain make it is.

.PHONY: all build test conform fuzz soak soak-limits serve-soak lint bench bench-eval bench-serve clean

all: build test conform fuzz serve-soak lint

build:
	cargo build --release

# Tier-1 verification (see ROADMAP.md).
test:
	cargo build --release && cargo test -q

# E12 — differential conformance: every scenario runs on both kernels
# (SimOs and RealOs); traces must agree on every oracle field or carry
# a divergence-ledger entry. Zero silent mismatches tolerated. Then
# E13's engine differential: every scenario and 256 fuzzed sessions
# run under both evaluation engines; traces must be identical.
conform:
	cargo test -p es-conform --test conform -q
	cargo test -p es-conform --test engines -q

# E12 — grammar-aware script fuzz: seeded sessions against SimOs
# (panic/leak/replay invariants, fault weather on a third of seeds) and
# differentially against RealOs (fault-free subset, zero divergences).
FUZZ_SEEDS ?= 256
fuzz:
	FUZZ_SEEDS=$(FUZZ_SEEDS) cargo test -p es-conform --test fuzz -q

# E10 — fault-injection soak: 256 seeded fault plans against a scripted
# session, asserting no panics, no descriptor leaks, and byte-identical
# replay per seed; then the zero-fault overhead bench.
soak:
	cargo test -p es-core -q soak_fault_plans -- --nocapture
	cargo bench -p es-bench --bench e10_fault_overhead

# E11 — governor soak: the same 256 seeds with a tight step budget and
# an active fault plan armed together (limit breaches, injected faults,
# and catch handlers interleaving), plus the zero-limits overhead bench.
soak-limits:
	cargo test -p es-core -q soak_limits -- --nocapture
	cargo bench -p es-bench --bench e11_governor

# E14 — serving soak: seeded 10k-session runs through the session
# server with fault weather, tight budgets, injected panics, and
# admission churn; asserts zero escaped panics, zero reset-oracle
# violations, shedding engaged, and byte-identical event-log replay
# per seed.
SERVE_SESSIONS ?= 10000
SERVE_SEEDS ?= 2
serve-soak:
	SERVE_SESSIONS=$(SERVE_SESSIONS) SERVE_SEEDS=$(SERVE_SEEDS) \
		cargo test -p es-serve --release --test soak -q -- --nocapture

# The whole workspace must be clippy-clean.
lint:
	cargo clippy --workspace --all-targets -- -D warnings

bench:
	cargo bench -p es-bench

# E7 + E13 — evaluator benches: hook-dispatch ablation, then the
# bytecode-vs-tree engine comparison, which writes BENCH_eval.json
# (ns/op for the Figure 1 pipeline, a hook-heavy loop, a closure-call
# loop, and the isolated unspoofed-hook overhead, per engine).
bench-eval:
	cargo bench -p es-bench --bench e7_hook_ablation
	cargo bench -p es-bench --bench e13_engine

# E14 — serving benches: cold-boot vs recycle slot turnover,
# sessions/sec, and p50/p99 per-command latency through the server at
# 1k and 10k sessions; writes BENCH_serve.json at the repo root.
bench-serve:
	cargo bench -p es-bench --bench e14_serve

clean:
	cargo clean
