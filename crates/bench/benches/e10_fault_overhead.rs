//! E10 — fault-injection soak: zero-fault overhead.
//!
//! The fault layer's hot-path cost when armed but quiet must be
//! negligible (<5%): every hooked syscall pays one `Option` check plus
//! a table lookup, and nothing else. This bench runs the Figure 1
//! pipeline with (a) no plan armed and (b) a zero-rate plan armed, so
//! the two medians are directly comparable. The soak itself — 256
//! seeded plans, leak/replay assertions — lives in
//! `es-core::tests_prop::soak_fault_plans_no_panic_no_leak_deterministic_replay`
//! (see `make soak`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_bench::{machine_with_paper, run, FIG1_PIPELINE};
use es_os::FaultPlan;

fn bench_zero_fault_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_fault_overhead");
    group.sample_size(20);
    for &words in &[200usize, 1000] {
        group.bench_with_input(BenchmarkId::new("no-plan", words), &words, |b, &words| {
            let mut m = machine_with_paper(words);
            b.iter(|| run(&mut m, FIG1_PIPELINE));
        });
        group.bench_with_input(
            BenchmarkId::new("zero-rate-plan", words),
            &words,
            |b, &words| {
                let mut m = machine_with_paper(words);
                m.os_mut().set_fault_plan(Some(FaultPlan::new(0)));
                b.iter(|| run(&mut m, FIG1_PIPELINE));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_zero_fault_overhead);
criterion_main!(benches);
