//! E11 — resource governor: zero-limits overhead.
//!
//! Every eval step runs through `governor::charge` (clock tick, signal
//! poll, step count); with no budgets armed that is the whole cost —
//! the per-kind checks sit behind a single `active` bool and a `#[cold]`
//! function. This bench runs the Figure 1 pipeline with (a) no limits
//! armed — the default — and (b) loose limits armed on every kind, so
//! both the fast path and the full check path are measured against the
//! same workload. The target is <5% for (a) relative to the pre-governor
//! baseline; (b) quantifies what a sandboxed run pays. The behavioural
//! suite — breaches, watchdog, interrupt delivery, 256-seed soak —
//! lives in `es-core` (see `make soak-limits`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_bench::{machine_with_paper, run, FIG1_PIPELINE};

fn bench_governor_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_governor");
    group.sample_size(20);
    for &words in &[200usize, 1000] {
        group.bench_with_input(BenchmarkId::new("no-limits", words), &words, |b, &words| {
            let mut m = machine_with_paper(words);
            b.iter(|| run(&mut m, FIG1_PIPELINE));
        });
        group.bench_with_input(
            BenchmarkId::new("loose-limits", words),
            &words,
            |b, &words| {
                let mut m = machine_with_paper(words);
                // Far above anything the pipeline uses: the checks run
                // every step but never trip.
                for kind in ["depth", "steps", "heap", "fds", "output", "time"] {
                    m.arm_limit(kind, 1_000_000_000).expect("valid limit kind");
                }
                b.iter(|| {
                    // Steps/output budgets are consumed monotonically;
                    // re-arm so long runs never breach mid-measurement.
                    m.arm_limit("steps", 1_000_000_000).expect("valid");
                    m.arm_limit("output", 1_000_000_000).expect("valid");
                    m.arm_limit("time", 1_000_000_000).expect("valid");
                    run(&mut m, FIG1_PIPELINE)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_governor_overhead);
criterion_main!(benches);
