//! E13 — bytecode engine vs tree walker (EXPERIMENTS.md §E13).
//!
//! Measures ns/op for three workloads under each evaluation engine:
//!
//! * the Figure 1 six-stage pipeline (hook dispatch dominated by
//!   `%pipe`, plus real simulated-coreutils work),
//! * a hook-heavy loop (a pipe and a redirection per iteration — pure
//!   dispatch pressure), and
//! * a closure-call loop (user function calls, exercising the
//!   compiled-body cache).
//!
//! It also isolates the *unspoofed hook overhead* per engine: the gap
//! between `{true; true; true}` (a `%seq` hook dispatch over trivial
//! thunks) and the equivalent direct `$&seq` primitive call. The
//! inline caches exist to shrink that gap — `%seq` is used rather
//! than `%pipe` because a pipeline's process machinery (~90µs) would
//! drown the ~100ns dispatch difference in scheduling noise.
//!
//! The criterion shim reports only to stderr, so this bench is a plain
//! `harness = false` main that hand-writes `BENCH_eval.json` at the
//! repo root.

use es_bench::{machine_with, run, synth_document, FIG1_PIPELINE};
use es_core::{Engine, Machine, Options};
use es_os::SimOs;
use std::path::PathBuf;
use std::time::Instant;

fn engine_machine(engine: Engine) -> Machine<SimOs> {
    machine_with(Options {
        engine,
        ..Options::default()
    })
}

fn engine_machine_with_paper(engine: Engine, words: usize) -> Machine<SimOs> {
    let mut os = SimOs::new();
    os.vfs_mut()
        .put_file("/home/user/paper9", synth_document(words).as_bytes())
        .expect("vfs accepts document");
    Machine::with_options(
        os,
        Options {
            engine,
            ..Options::default()
        },
    )
    .expect("machine boots")
}

/// Times `iters` runs of `src` after `warmup` unmeasured runs,
/// repeated over several samples; returns the minimum ns/op seen (the
/// run least disturbed by the host scheduler).
fn time_ns(m: &mut Machine<SimOs>, src: &str, warmup: u32, iters: u32) -> u64 {
    const SAMPLES: u32 = 5;
    for _ in 0..warmup {
        run(m, src);
    }
    let mut best = u64::MAX;
    for _ in 0..SAMPLES {
        let started = Instant::now();
        for _ in 0..iters {
            run(m, src);
        }
        best = best.min(started.elapsed().as_nanos() as u64 / u64::from(iters));
    }
    best
}

const HOOK_LOOP: &str = "for (i = `{seq 20}) { echo $i > /tmp/e13; cat /tmp/e13 | wc -l }";
const CLOSURE_LOOP: &str = "for (i = `{seq 50}) { add1 $i }";
const SEQ_HOOK: &str = "{true; true; true}";
const SEQ_DIRECT: &str = "$&seq {true} {true} {true}";

fn main() {
    let engines = [(Engine::Tree, "tree"), (Engine::Bytecode, "bytecode")];
    let mut fields: Vec<(String, u64)> = Vec::new();

    for (engine, name) in engines {
        // Figure 1 pipeline over a ~2000-word corpus.
        let mut m = engine_machine_with_paper(engine, 2000);
        let fig1 = time_ns(&mut m, FIG1_PIPELINE, 3, 20);
        fields.push((format!("fig1_pipeline_{name}_ns_op"), fig1));

        // Hook-heavy loop: 20 iterations, each a redirection (%create)
        // plus a two-stage pipeline (%pipe), under %seq blocks.
        let mut m = engine_machine(engine);
        let hooks = time_ns(&mut m, HOOK_LOOP, 3, 30);
        fields.push((format!("hook_loop_{name}_ns_op"), hooks));

        // Closure-call loop: 50 calls of a user function per run.
        let mut m = engine_machine(engine);
        run(&mut m, "fn add1 x { result 1 $x }");
        let closures = time_ns(&mut m, CLOSURE_LOOP, 5, 100);
        fields.push((format!("closure_loop_{name}_ns_op"), closures));

        // Unspoofed hook overhead: %seq hook dispatch minus the
        // direct primitive call for the same three thunks.
        let mut m = engine_machine(engine);
        let hook_ns = time_ns(&mut m, SEQ_HOOK, 100, 5000);
        let direct_ns = time_ns(&mut m, SEQ_DIRECT, 100, 5000);
        fields.push((format!("seq_hook_{name}_ns_op"), hook_ns));
        fields.push((format!("seq_direct_{name}_ns_op"), direct_ns));
        fields.push((
            format!("hook_overhead_{name}_ns_op"),
            hook_ns.saturating_sub(direct_ns),
        ));
    }

    let mut json = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        let comma = if i + 1 == fields.len() { "" } else { "," };
        json.push_str(&format!("  \"{key}\": {value}{comma}\n"));
        eprintln!("{key:40} {value:>12} ns/op");
    }
    json.push_str("}\n");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_eval.json");
    std::fs::write(&path, json).expect("BENCH_eval.json writes");
    eprintln!("wrote {}", path.display());
}
