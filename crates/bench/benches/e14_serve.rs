//! E14 — the session server (EXPERIMENTS.md §E14).
//!
//! Three questions, one number each:
//!
//! * **Slot turnover**: what does admitting a tenant cost — a cold
//!   `Machine` boot (parse + run initial.es, build the kernel) versus
//!   `recycle()` restoring the frozen boot image of a dirtied machine?
//!   The pool's economics rest on this ratio.
//! * **Throughput**: sessions/sec through a full `Server` — framed
//!   open/line/close, baton-scheduled slices, reset audit on every
//!   release — at 1k and 10k sequential sessions.
//! * **Tail latency**: p50/p99 of per-command completion (Line fed →
//!   Done emitted) under the same drive.
//!
//! The criterion shim reports only to stderr, so this is a plain
//! `harness = false` main writing `BENCH_serve.json` at the repo root.

use es_core::Machine;
use es_os::SimOs;
use es_serve::{Frame, ServeConfig, Server};
use std::path::PathBuf;
use std::time::Instant;

/// Commands each benchmark session runs (ordinary small work: a
/// variable, a pipe, a redirection).
const SESSION_CMDS: &[&str] = &[
    "x = a b c; echo $x(2)",
    "echo bench | wc -l",
    "echo kept > /tmp/b; cat /tmp/b",
];

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// ns per cold Machine boot.
fn bench_cold_boot(iters: u32) -> u64 {
    let started = Instant::now();
    for _ in 0..iters {
        let m = Machine::new(SimOs::new()).expect("machine boots");
        std::hint::black_box(&m);
    }
    started.elapsed().as_nanos() as u64 / u64::from(iters)
}

/// ns per dirty-then-recycle cycle (the dirtying commands are timed
/// too, so this *overstates* recycle cost — the ratio is conservative).
fn bench_recycle(iters: u32) -> u64 {
    let mut m = Machine::new(SimOs::new()).expect("machine boots");
    let started = Instant::now();
    for _ in 0..iters {
        m.run("x = dirty; echo leak > /tmp/leak").expect("dirtying runs");
        assert!(m.recycle());
    }
    started.elapsed().as_nanos() as u64 / u64::from(iters)
}

/// Drives `sessions` sequential sessions through one server; returns
/// (sessions/sec, sorted per-command latencies ns).
fn bench_serve(sessions: u64) -> (u64, Vec<u64>) {
    let mut server = Server::new(ServeConfig {
        capacity: 4,
        high_water: 4,
        ..ServeConfig::default()
    });
    let mut lat = Vec::with_capacity((sessions as usize) * SESSION_CMDS.len());
    let started = Instant::now();
    for _ in 0..sessions {
        let resp = server.feed(Frame::Open {
            limits: vec![],
            fault_seed: None,
        });
        let sid = match resp.first() {
            Some(Frame::Opened { sid }) => *sid,
            other => panic!("bench session not admitted: {other:?}"),
        };
        for cmd in SESSION_CMDS {
            let t0 = Instant::now();
            server.feed(Frame::Line {
                sid,
                cmd: (*cmd).to_string(),
            });
            'done: loop {
                for f in server.pump(1_000) {
                    if matches!(f, Frame::Done { .. }) {
                        break 'done;
                    }
                }
            }
            lat.push(t0.elapsed().as_nanos() as u64);
        }
        server.feed(Frame::Close { sid });
    }
    let secs = started.elapsed().as_secs_f64();
    let stats = server.stats();
    assert_eq!(stats.oracle_violations, 0, "bench sessions leaked state");
    lat.sort_unstable();
    ((sessions as f64 / secs) as u64, lat)
}

fn main() {
    let mut fields: Vec<(String, u64)> = Vec::new();

    let cold = bench_cold_boot(200);
    let recycle = bench_recycle(2000);
    fields.push(("cold_boot_ns".into(), cold));
    fields.push(("recycle_ns".into(), recycle));
    fields.push(("recycle_speedup_x".into(), cold / recycle.max(1)));

    for sessions in [1_000u64, 10_000] {
        let (per_sec, lat) = bench_serve(sessions);
        let k = sessions / 1_000;
        fields.push((format!("serve_sessions_per_sec_{k}k"), per_sec));
        fields.push((format!("serve_cmd_p50_ns_{k}k"), percentile(&lat, 0.50)));
        fields.push((format!("serve_cmd_p99_ns_{k}k"), percentile(&lat, 0.99)));
    }

    let mut json = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        let comma = if i + 1 == fields.len() { "" } else { "," };
        json.push_str(&format!("  \"{key}\": {value}{comma}\n"));
        eprintln!("{key:32} {value:>12}");
    }
    json.push_str("}\n");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, json).expect("BENCH_serve.json writes");
    eprintln!("wrote {}", path.display());
}
