//! E4 — "Garbage collection ... takes roughly 4% of the running time
//! of the shell."
//!
//! Runs the loop-heavy closure-churn workload at several semispace
//! sizes and reports (a) evaluation throughput per size (criterion)
//! and (b) the measured GC pause fraction (printed), which is the
//! paper's number. Smaller spaces collect more often; the fraction
//! should sit in the low single digits for the default size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_bench::{machine, run};
use es_core::Machine;
use es_os::SimOs;
use std::time::Instant;

const WORKLOAD: &str = "
for (i = 1 2 3 4 5 6 7 8 9 10) {
    acc =
    for (j = a b c d e f g h i j k l m n o p q r s t) {
        acc = $acc <>{mk $i^$j} $i^$j
    }
    keep = $acc(1 5 9)
}";

fn prepared() -> Machine<SimOs> {
    let mut m = machine();
    run(&mut m, "fn mk n { return @ { result $n $n $n } }");
    m
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_gc_overhead");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("workload", "default-heap"), |b| {
        let mut m = prepared();
        b.iter(|| run(&mut m, WORKLOAD));
    });
    group.bench_function(BenchmarkId::new("workload", "stress-gc"), |b| {
        let mut m = prepared();
        m.heap.set_stress(true);
        b.iter(|| run(&mut m, WORKLOAD));
    });
    group.finish();

    // The headline number: pause fraction over a sustained run.
    eprintln!("\n--- E4 artifact: GC pause fraction (paper: \"roughly 4%\") ---");
    let mut m = prepared();
    m.heap.reset_stats();
    let t0 = Instant::now();
    for _ in 0..20 {
        run(&mut m, WORKLOAD);
    }
    let elapsed = t0.elapsed();
    let s = m.heap.stats().clone();
    eprintln!(
        "collections={} allocated={} copied={} survival={:.2}% max_pause={:?}",
        s.collections,
        s.allocated,
        s.copied,
        100.0 * s.survival_rate(),
        s.pause_max
    );
    eprintln!(
        "gc fraction = {:.2}% of {:?} running time",
        100.0 * s.pause_fraction(elapsed),
        elapsed
    );
}

criterion_group!(benches, bench_gc);
criterion_main!(benches);
