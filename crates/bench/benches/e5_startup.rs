//! E5 — "Since nearly all shell state can now be encoded in the
//! environment, it becomes superfluous for a new instance of es ...
//! to run a configuration file. Hence shell startup becomes very
//! quick."
//!
//! Compares booting a child shell whose state arrives (a) through
//! environment strings (the es way) against (b) a bare shell that
//! must source an equivalent rc file, at F = 1..200 function
//! definitions. The paper's claim holds if (a) is at least
//! competitive and, crucially, (a) scales better because no file I/O
//! or full reparse of user dotfiles happens — both decode the same
//! text here, so the win shows up as the rc-file variant's extra
//! sourcing machinery and file traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_core::Machine;
use es_os::SimOs;

/// Builds a parent shell with `n` user-defined functions and returns
/// its exported environment plus the equivalent rc-file text.
fn parent_state(n: usize) -> (Vec<(String, String)>, String) {
    let mut m = Machine::new(SimOs::new()).expect("machine boots");
    let mut rc = String::new();
    for i in 0..n {
        let def = format!("fn user-fn-{i} a b {{ echo $a and $b and more-{i} }}\n");
        m.run(&def).expect("definition runs");
        rc.push_str(&def);
    }
    (m.export_environment(), rc)
}

fn bench_startup(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_startup");
    group.sample_size(20);
    for &n in &[1usize, 50, 200] {
        let (env, rc) = parent_state(n);
        group.bench_with_input(BenchmarkId::new("env-encoded", n), &env, |b, env| {
            b.iter(|| {
                let mut os = SimOs::new();
                os.set_initial_env(env.clone());
                let m = Machine::new(os).expect("child boots");
                assert!(m.get_var(&format!("fn-user-fn-{}", n - 1)).len() == 1);
            });
        });
        group.bench_with_input(BenchmarkId::new("rc-file", n), &rc, |b, rc| {
            b.iter(|| {
                let mut os = SimOs::new();
                os.vfs_mut()
                    .put_file("/home/user/.esrc", rc.as_bytes())
                    .expect("rc file written");
                let mut m = Machine::new(os).expect("child boots");
                m.run(". /home/user/.esrc").expect("rc sourced");
                assert!(m.get_var(&format!("fn-user-fn-{}", n - 1)).len() == 1);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_startup);
criterion_main!(benches);
