//! E6 — "The current implementation of es has the undesirable
//! property that all function calls cause the C stack to nest. In
//! particular, tail calls consume stack space, something they could
//! be optimized not to do."
//!
//! Measures a self-tail-recursive loop at several depths under the
//! proper-tail-call evaluator (this reproduction's default — the
//! paper's future work, implemented) and under `--naive-calls` (the
//! 1993 behaviour). Also prints the observed application-depth
//! high-water mark: constant for TCO, linear for naive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_bench::{machine_with, run};
use es_core::governor::Limits;
use es_core::Options;

const DEF: &str = "fn count n target { if {~ $n $target} {result done} {count $n^x $target} }";

fn target_of(depth: usize) -> String {
    "x".repeat(depth)
}

fn bench_tailcalls(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_tailcall");
    for &depth in &[10usize, 100, 400] {
        let target = target_of(depth);
        group.bench_with_input(
            BenchmarkId::new("proper-tail-calls", depth),
            &target,
            |b, target| {
                let mut m = machine_with(Options {
                    tail_calls: true,
                    ..Options::default()
                });
                run(&mut m, DEF);
                b.iter(|| run(&mut m, &format!("count '' {target}")));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive-1993", depth),
            &target,
            |b, target| {
                let mut m = machine_with(Options {
                    tail_calls: false,
                    limits: Limits {
                        depth: Some(1000),
                        ..Limits::default()
                    },
                    ..Options::default()
                });
                run(&mut m, DEF);
                b.iter(|| run(&mut m, &format!("count '' {target}")));
            },
        );
    }
    group.finish();

    // The structural result: depth high-water marks.
    eprintln!("\n--- E6 artifact: application-depth high-water mark ---");
    for &depth in &[10usize, 100, 400] {
        let target = target_of(depth);
        let mut tco = machine_with(Options { tail_calls: true, ..Options::default() });
        run(&mut tco, DEF);
        tco.max_depth_seen = 0;
        run(&mut tco, &format!("count '' {target}"));
        let mut naive = machine_with(Options {
            tail_calls: false,
            limits: Limits {
                depth: Some(1000),
                ..Limits::default()
            },
            ..Options::default()
        });
        run(&mut naive, DEF);
        naive.max_depth_seen = 0;
        run(&mut naive, &format!("count '' {target}"));
        eprintln!(
            "loop depth {depth:4}: TCO max nesting = {:2}, naive max nesting = {:4}",
            tco.max_depth_seen, naive.max_depth_seen
        );
    }
    eprintln!("(naive mode grows linearly — the 1993 'hidden cost'; TCO is flat)");
}

criterion_group!(benches, bench_tailcalls);
criterion_main!(benches);
