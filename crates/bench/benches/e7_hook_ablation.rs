//! E7 — the price of spoofability (ablation of the paper's central
//! design decision).
//!
//! Every redirection and pipe goes through a replaceable `%`-hook
//! (`ls > f` is really `%create 1 f {ls}` → `fn-%create` → `$&create`).
//! This bench isolates that indirection: the same operation written
//! (a) in surface syntax (hook dispatch), (b) calling the primitive
//! `$&create` directly (what a non-spoofable shell would hard-code),
//! and (c) with a user spoof layered on top (one more function call).

use criterion::{criterion_group, criterion_main, Criterion};
use es_bench::{machine, run};

const NOCLOBBER: &str = "
let (create = $fn-%create) {
    fn %create fd file cmd {
        if {test -f $file} {
            throw error $file exists
        } {
            $create $fd $file $cmd
        }
    }
}";

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_hook_ablation");

    group.bench_function("redirect/hook-dispatch", |b| {
        let mut m = machine();
        b.iter(|| run(&mut m, "echo data > /tmp/bench"));
    });
    group.bench_function("redirect/primitive-direct", |b| {
        let mut m = machine();
        b.iter(|| run(&mut m, "$&create 1 /tmp/bench {echo data}"));
    });
    group.bench_function("redirect/spoofed-noclobber", |b| {
        let mut m = machine();
        run(&mut m, NOCLOBBER);
        b.iter(|| run(&mut m, "rm -f /tmp/bench; echo data > /tmp/bench"));
    });

    group.bench_function("pipe/hook-dispatch", |b| {
        let mut m = machine();
        b.iter(|| run(&mut m, "echo a b c | wc -w"));
    });
    group.bench_function("pipe/primitive-direct", |b| {
        let mut m = machine();
        b.iter(|| run(&mut m, "$&pipe {echo a b c} 1 0 {wc -w}"));
    });

    // Control flow also routes through hooks (%seq): measure a
    // three-command block against three top-level commands.
    group.bench_function("seq/hook-dispatch", |b| {
        let mut m = machine();
        b.iter(|| run(&mut m, "{true; true; true}"));
    });
    group.bench_function("seq/native-toplevel", |b| {
        let mut m = machine();
        b.iter(|| run(&mut m, "true; true; true"));
    });
    group.finish();
}

criterion_group!(benches, bench_hooks);
criterion_main!(benches);
