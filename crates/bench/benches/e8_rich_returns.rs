//! E8 — rich return values as data structures.
//!
//! The paper's cons/car/cdr demo turns closures into pairs. This
//! bench builds and walks closure-encoded lists of growing length,
//! and contrasts them with native flat lists — quantifying what the
//! "lists are flat" restriction buys and what the closure encoding
//! costs (each cell is a heap closure + bindings; traversal is
//! function application).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_bench::{machine, run};
use es_core::Machine;
use es_os::SimOs;

// NB: `nil` is the empty list, and `walk` tests emptiness with `$#p`
// rather than comparing text — stringifying a deep closure chain is
// expensive by construction (its `%closure` encoding embeds the whole
// substructure), which is itself part of what this experiment shows.
const CONS: &str = "
fn cons a d { return @ f { $f $a $d } }
fn car p { $p @ a d { return $a } }
fn cdr p { $p @ a d { return $d } }
fn build n {
    if {~ $#n 0} { return } { return <>{cons $n(1) <>{build $n(2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32)}} }
}
fn walk p {
    if {~ $#p 0} { result } { walk <>{cdr $p} }
}";

fn items(n: usize) -> String {
    (0..n).map(|i| format!("w{i}")).collect::<Vec<_>>().join(" ")
}

fn prepared() -> Machine<SimOs> {
    let mut m = machine();
    run(&mut m, CONS);
    m
}

fn bench_rich(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_rich_returns");
    group.sample_size(20);
    for &n in &[4usize, 16, 32] {
        let list = items(n);
        group.bench_with_input(BenchmarkId::new("build-church", n), &list, |b, list| {
            let mut m = prepared();
            b.iter(|| run(&mut m, &format!("lst = <>{{build {list}}}")));
        });
        group.bench_with_input(BenchmarkId::new("walk-church", n), &list, |b, list| {
            let mut m = prepared();
            run(&mut m, &format!("lst = <>{{build {list}}}"));
            b.iter(|| run(&mut m, "walk $lst"));
        });
        group.bench_with_input(BenchmarkId::new("native-flat-list", n), &list, |b, list| {
            let mut m = prepared();
            b.iter(|| run(&mut m, &format!("lst = {list}; for (i = $lst) {{}}")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rich);
criterion_main!(benches);
