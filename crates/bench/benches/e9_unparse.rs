//! E9 — the unparsing machinery behind the environment.
//!
//! "A fair amount of es must be devoted to 'unparsing' function
//! definitions so that they may be passed as environment strings ...
//! complicated a bit more because the lexical environment of a
//! function definition must be preserved."
//!
//! Measures the closure → `%closure(a=b)@ * {...}` encode, the decode
//! (parse back into a live closure), and the full environment
//! round-trip (boot a child shell from a parent's exported state), at
//! 0..32 captured bindings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_bench::{machine, run};
use es_core::Machine;
use es_os::SimOs;

/// A machine with a function capturing `n` lexical bindings.
fn with_captures(n: usize) -> Machine<SimOs> {
    let mut m = machine();
    let bindings: Vec<String> = (0..n).map(|i| format!("v{i} = value-{i}")).collect();
    let body: Vec<String> = (0..n).map(|i| format!("$v{i}")).collect();
    let src = format!(
        "let ({}) fn subject {{ echo {} }}",
        bindings.join("; "),
        body.join(" ")
    );
    run(&mut m, &src);
    m
}

fn bench_unparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_unparse");
    for &n in &[0usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, &n| {
            let m = with_captures(n);
            b.iter(|| {
                let env = m.export_environment();
                assert!(env.iter().any(|(k, _)| k == "fn-subject"));
                env
            });
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &n, |b, &n| {
            let m = with_captures(n);
            let env = m.export_environment();
            let encoded = env
                .iter()
                .find(|(k, _)| k == "fn-subject")
                .map(|(_, v)| v.clone())
                .expect("subject exported");
            b.iter(|| {
                let mut child = machine();
                crate_decode(&mut child, &encoded);
            });
        });
        group.bench_with_input(BenchmarkId::new("full-roundtrip", n), &n, |b, &n| {
            let m = with_captures(n);
            let env = m.export_environment();
            b.iter(|| {
                let mut os = SimOs::new();
                os.set_initial_env(env.clone());
                let mut child = Machine::new(os).expect("child boots");
                run(&mut child, "subject");
            });
        });
    }
    group.finish();
}

/// Decodes one closure string by assignment (exercises the parser and
/// the closure-literal evaluator).
fn crate_decode(m: &mut Machine<SimOs>, encoded: &str) {
    run(m, &format!("fn-decoded = {encoded}"));
    assert_eq!(m.get_var("fn-decoded").len(), 1);
}

criterion_group!(benches, bench_unparse);
criterion_main!(benches);
