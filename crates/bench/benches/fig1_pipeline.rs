//! F1 — Figure 1: the `%pipe` timing spoof.
//!
//! Measures the paper's six-stage word-frequency pipeline with and
//! without the profiling spoof, over growing documents. The paper's
//! qualitative result: spoofing `%pipe` gives per-stage timing for the
//! cost of a little interpretation overhead; the pipeline still runs
//! and produces identical output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_bench::{machine_with_paper, run, FIG1_PIPELINE, FIG1_SPOOF};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_pipeline");
    group.sample_size(20);
    for &words in &[200usize, 1000, 5000] {
        group.bench_with_input(BenchmarkId::new("plain", words), &words, |b, &words| {
            let mut m = machine_with_paper(words);
            b.iter(|| run(&mut m, FIG1_PIPELINE));
        });
        group.bench_with_input(BenchmarkId::new("spoofed", words), &words, |b, &words| {
            let mut m = machine_with_paper(words);
            run(&mut m, FIG1_SPOOF);
            b.iter(|| run(&mut m, FIG1_PIPELINE));
        });
    }
    group.finish();

    // The figure itself: print the per-stage profile once, like the
    // paper does, so the harness regenerates the artifact verbatim.
    let mut m = machine_with_paper(2500);
    run(&mut m, FIG1_SPOOF);
    m.run(FIG1_PIPELINE).expect("pipeline runs");
    let out = m.os_mut().take_output();
    let err = m.os_mut().take_error();
    eprintln!("\n--- Figure 1 artifact (word frequencies + per-stage times) ---");
    eprint!("{out}");
    eprint!("{err}");
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
