//! F2 — Figure 2: the `%pathsearch` cache.
//!
//! Sweeps the `$path` length and compares command lookup with the
//! cache installed (first hit memoises `fn-$prog`) against the stock
//! linear search. The expected shape: uncached cost grows with the
//! number of path entries; cached cost is flat, so the cache wins by a
//! factor that grows with P.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_bench::{machine_with_long_path, run, FIG2_CACHE};

fn bench_pathsearch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_pathcache");
    for &dirs in &[5usize, 20, 80] {
        group.bench_with_input(BenchmarkId::new("uncached", dirs), &dirs, |b, &dirs| {
            let mut m = machine_with_long_path(dirs);
            b.iter(|| run(&mut m, "ls /tmp"));
        });
        group.bench_with_input(BenchmarkId::new("cached", dirs), &dirs, |b, &dirs| {
            let mut m = machine_with_long_path(dirs);
            run(&mut m, FIG2_CACHE);
            run(&mut m, "ls /tmp"); // warm the cache
            b.iter(|| run(&mut m, "ls /tmp"));
        });
        // Ablation: cache installed but flushed before every lookup —
        // the hook indirection cost without the benefit.
        group.bench_with_input(
            BenchmarkId::new("cache-miss", dirs),
            &dirs,
            |b, &dirs| {
                let mut m = machine_with_long_path(dirs);
                run(&mut m, FIG2_CACHE);
                b.iter(|| run(&mut m, "recache; ls /tmp"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pathsearch);
criterion_main!(benches);
