//! F3 — Figure 3: the default interactive loop is written in es.
//!
//! The paper's design keeps the REPL in user space (parse → eval in a
//! `while {}` under `catch`), which costs interpretation on every
//! prompt. This bench measures REPL throughput (commands/second
//! through `%interactive-loop` + `%parse`) against the floor of
//! running the same commands straight through the evaluator — i.e.
//! what a built-in C loop would cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use es_bench::machine;

fn bench_repl(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_repl");
    group.sample_size(20);
    for &cmds in &[10usize, 100] {
        let session: String = (0..cmds).map(|i| format!("echo line{i}\n")).collect();
        group.bench_with_input(
            BenchmarkId::new("es-coded-loop", cmds),
            &session,
            |b, session| {
                b.iter(|| {
                    let mut m = machine();
                    m.os_mut().push_input(session);
                    let status = m.repl();
                    assert_eq!(status, 0);
                    m.os_mut().take_output();
                    m.os_mut().take_error();
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("native-dispatch", cmds),
            &session,
            |b, session| {
                b.iter(|| {
                    let mut m = machine();
                    for line in session.lines() {
                        m.run(line).expect("line runs");
                    }
                    m.os_mut().take_output();
                });
            },
        );
        // The loop is a function: a user-supplied minimal loop (no
        // catch machinery, no prompts) sits between the two.
        group.bench_with_input(
            BenchmarkId::new("custom-minimal-loop", cmds),
            &session,
            |b, session| {
                b.iter(|| {
                    let mut m = machine();
                    m.run(
                        "fn %interactive-loop {
                            catch @ e rest { if {~ $e eof} {return 0} {throw $e $rest} } {
                                forever { let (cmd = <>{%parse}) $cmd }
                            }
                        }",
                    )
                    .expect("custom loop installs");
                    m.os_mut().push_input(session);
                    let status = m.repl();
                    assert_eq!(status, 0);
                    m.os_mut().take_output();
                    m.os_mut().take_error();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_repl);
criterion_main!(benches);
