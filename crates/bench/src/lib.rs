//! Shared workload builders for the benchmark harness.
//!
//! One Criterion bench target exists per experiment in DESIGN.md §5:
//!
//! | target            | reproduces                                      |
//! |-------------------|--------------------------------------------------|
//! | `fig1_pipeline`   | Figure 1 — `%pipe` spoof timing pipeline stages  |
//! | `fig2_pathcache`  | Figure 2 — `%pathsearch` lookup cache            |
//! | `fig3_repl`       | Figure 3 — es-coded interactive loop             |
//! | `e4_gc_overhead`  | "GC takes roughly 4% of the running time"        |
//! | `e5_startup`      | "shell startup becomes very quick" via the env   |
//! | `e6_tailcall`     | tail calls consume stack (future work: fixed)    |
//! | `e7_hook_ablation`| cost of routing redirections through hooks       |
//! | `e8_rich_returns` | closure-encoded data structures (cons/car/cdr)   |
//! | `e9_unparse`      | closure unparse → reparse round trip             |

use es_core::{Machine, Options};
use es_os::SimOs;

/// A booted machine on a fresh simulated kernel.
pub fn machine() -> Machine<SimOs> {
    Machine::new(SimOs::new()).expect("machine boots")
}

/// A machine with explicit evaluator options.
pub fn machine_with(opts: Options) -> Machine<SimOs> {
    Machine::with_options(SimOs::new(), opts).expect("machine boots")
}

/// Runs a command, asserting success, and drops its console output.
pub fn run(m: &mut Machine<SimOs>, src: &str) {
    m.run_quiet(src)
        .unwrap_or_else(|e| panic!("`{src}` failed: {e}"));
    m.os_mut().take_output();
    m.os_mut().take_error();
}

/// Generates a deterministic ~`words`-word document with a skewed
/// word-frequency distribution (the Figure 1 corpus).
pub fn synth_document(words: usize) -> String {
    let common = ["the", "a", "to", "of", "is", "and"];
    let rare = [
        "shell", "function", "closure", "exception", "lambda", "pipe", "spoof", "garbage",
        "collector", "environment", "binding", "syntax",
    ];
    let mut out = String::with_capacity(words * 5);
    let mut n: u64 = 42;
    for i in 0..words {
        n = n.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let pick = (n >> 33) as usize;
        if !pick.is_multiple_of(5) {
            out.push_str(common[pick % common.len()]);
        } else {
            out.push_str(rare[(pick / 7) % rare.len()]);
        }
        out.push(if i % 10 == 9 { '\n' } else { ' ' });
    }
    out
}

/// Installs the Figure 1 `%pipe` timing spoof.
pub const FIG1_SPOOF: &str = "
let (pipe = $fn-%pipe) {
    fn %pipe first out in rest {
        if {~ $#out 0} {
            time $first
        } {
            $pipe {time $first} $out $in {%pipe $rest}
        }
    }
}";

/// The Figure 1 pipeline itself.
pub const FIG1_PIPELINE: &str =
    "cat paper9 | tr -cs a-zA-Z0-9 '\\012' | sort | uniq -c | sort -nr | sed 6q";

/// Installs the Figure 2 `%pathsearch` cache + `recache`.
pub const FIG2_CACHE: &str = "
let (search = $fn-%pathsearch) {
    fn %pathsearch prog {
        let (file = <>{$search $prog}) {
            if {~ $#file 1 && ~ $file /*} {
                path-cache = $path-cache $prog
                fn-$prog = $file
            }
            return $file
        }
    }
}
fn recache {
    for (i = $path-cache)
        fn-$i =
    path-cache =
}";

/// A machine whose `$path` has `extra_dirs` empty directories before
/// `/bin` — makes uncached path search proportionally expensive.
pub fn machine_with_long_path(extra_dirs: usize) -> Machine<SimOs> {
    let mut os = SimOs::new();
    let mut dirs = Vec::new();
    for i in 0..extra_dirs {
        let d = format!("/opt/pkg{i:03}/bin");
        os.vfs_mut().mkdir_all(&d).expect("mkdir");
        dirs.push(d);
    }
    dirs.push("/bin".to_string());
    os.set_initial_env(vec![
        ("HOME".into(), "/home/user".into()),
        ("PATH".into(), dirs.join(":")),
    ]);
    Machine::new(os).expect("machine boots")
}

/// A machine with `paper9` of about `words` words in the home
/// directory (the Figure 1 corpus).
pub fn machine_with_paper(words: usize) -> Machine<SimOs> {
    let mut os = SimOs::new();
    os.vfs_mut()
        .put_file("/home/user/paper9", synth_document(words).as_bytes())
        .expect("vfs accepts document");
    Machine::new(os).expect("machine boots")
}
