//! The bytecode compiler: core AST → compact op sequences.
//!
//! The tree walker in [`crate::eval`] re-dispatches on the syntax tree
//! every time a closure body runs. This module compiles a [`Node`]
//! once into a flat [`Code`] vector that the dispatch loop in
//! [`crate::vm`] executes, baking in three static facts:
//!
//! * **Slot references.** Where the lexical binding structure is
//!   static (closure parameters, `let`/`for` bindings with literal
//!   names), a `$name` reference compiles to [`ArgC::Slot`] — a hop
//!   count into the runtime binding chain — instead of a name search.
//!   Anything the compiler cannot prove (computed names, positional
//!   parameters, names beyond the compiled frame) falls back to the
//!   general evaluator.
//! * **Inline-cached hook sites.** A call whose head is a literal
//!   `%hook` word known to be bound to a primitive at boot gets a
//!   [`HookSite`]: a one-entry inline cache keyed on the machine's
//!   global hook generation (see [`crate::Machine::hook_gen`]). While
//!   no `fn-%*` binding has changed, the site dispatches straight to
//!   the primitive without the `fn-%hook` lookup-and-splice dance.
//! * **Cached bodies.** Compiled code is pure (it holds no heap refs),
//!   so [`crate::Machine::code_for`] caches it per lambda; a closure
//!   called a thousand times compiles once.
//!
//! Statements the compiler does not specialise (`Assign`, `Match`,
//! and the surface forms that should have been lowered) are carried
//! as [`Op::Node`] and delegated to the tree walker — the two engines
//! share one semantics for everything cold.

use std::cell::Cell;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use es_syntax::ast::{Expr, Lambda, Node, Word};

/// Hooks bound to bare primitives by `initial.es` at boot. A call
/// site named here may shortcut to the primitive while the hook
/// generation says no `fn-%*` binding has changed. `%prompt` is
/// deliberately absent: boot binds it to an (empty) closure, not a
/// primitive.
pub const HOOK_PRIMS: &[(&str, &str)] = &[
    ("%seq", "seq"),
    ("%and", "and"),
    ("%or", "or"),
    ("%not", "not"),
    ("%background", "background"),
    ("%create", "create"),
    ("%open", "open"),
    ("%append", "append"),
    ("%dup", "dup"),
    ("%close", "close"),
    ("%here", "here"),
    ("%pipe", "pipe"),
    ("%backquote", "backquote"),
    ("%pathsearch", "pathsearch"),
    ("%flatten", "flatten"),
    ("%fsplit", "fsplit"),
    ("%split", "split"),
    ("%parse", "parse"),
    ("%cd", "cd"),
    ("%limit", "limit"),
];

/// Cache key for compiled lambdas: pointer identity fast path (the
/// same parse tree shared by `Rc` hits without a deep compare),
/// structural equality slow path (re-parsed identical source reuses
/// the same code).
#[derive(Debug, Clone)]
pub struct LambdaKey(pub Rc<Lambda>);

impl PartialEq for LambdaKey {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for LambdaKey {}

impl Hash for LambdaKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

/// A compiled argument expression.
#[derive(Debug)]
pub enum ArgC {
    /// A literal word: pre-flattened to its text.
    Word(String),
    /// A word with live glob metacharacters: expanded at runtime
    /// (through the `%glob` hook when one is defined).
    Glob(Word),
    /// `$name` resolved to a lexical slot: the value sits `hops`
    /// binding frames into the environment chain. The name rides
    /// along so the VM can verify the frame (and fall back to a
    /// lookup if the chain ever disagrees).
    Slot { hops: usize, name: String },
    /// A lambda literal: closes over the current environment.
    Lambda(Rc<Lambda>),
    /// Anything else: evaluated by the shared tree evaluator.
    Expr { expr: Expr, glob: bool },
}

/// A binding name in `let`/`local`/`for`: literal or computed.
#[derive(Debug)]
pub enum BindName {
    Static(String),
    Dyn(Expr),
}

/// One inline-cached hook call site. `ic` holds the hook generation
/// this site last dispatched directly under (`u64::MAX` = never).
/// The cell is shared by forked machines, which is sound: it only
/// ever holds generations at which the hooks were pristine, and the
/// generation counter never decreases.
#[derive(Debug)]
pub struct HookSite {
    /// The hook's surface name (`%pipe`), for the slow path.
    pub name: String,
    /// The primitive boot binds it to (`pipe`).
    pub prim: &'static str,
    /// Last generation this site dispatched directly under.
    pub ic: Cell<u64>,
}

/// One compiled statement.
#[derive(Debug)]
pub enum Op {
    /// A command call: charge the governor, evaluate the arguments,
    /// apply. With `hook: Some`, the head word is *not* in `args`;
    /// the site dispatches through the inline cache.
    Call {
        args: Vec<ArgC>,
        hook: Option<HookSite>,
    },
    /// `let (n = v; ...) body` — lexical bindings, tail propagates
    /// into the body.
    Let {
        bindings: Vec<(BindName, Vec<ArgC>)>,
        body: Rc<Code>,
    },
    /// `local (n = v; ...) body` — dynamic bindings via the machine's
    /// dynamics stack; settors fire.
    Local {
        bindings: Vec<(BindName, Vec<ArgC>)>,
        body: Rc<Code>,
    },
    /// `for (n = list; ...) body` — parallel iteration, `break`able,
    /// one governor charge per trip.
    For {
        bindings: Vec<(BindName, Vec<ArgC>)>,
        body: Rc<Code>,
    },
    /// Delegated to the tree walker (`Assign`, `Match`, surface
    /// nodes): one implementation, shared cold path.
    Node(Node),
}

/// A compiled statement sequence. Executing an empty `Code` yields
/// an empty list, like an empty `Seq`.
#[derive(Debug, Default)]
pub struct Code {
    pub ops: Vec<Op>,
}

/// The compile-time model of the runtime binding chain, innermost
/// first. `Some(name)` is a binding whose name is known statically;
/// `None` poisons the frame from that depth outward (a computed name
/// could shadow anything, so slot resolution must stop there).
type Frame = Vec<Option<String>>;

/// Compiles a whole lambda body against the frame its invocation
/// will build (see `apply_closure_inner`: parameters, then `*`
/// unless it is a parameter, then `0`).
pub fn compile_lambda(lambda: &Rc<Lambda>) -> Code {
    let frame = match &lambda.params {
        Some(params) => {
            let mut f: Frame = vec![Some("0".to_string())];
            if !params.iter().any(|p| p == "*") {
                f.push(Some("*".to_string()));
            }
            f.extend(params.iter().rev().map(|p| Some(p.clone())));
            f
        }
        // A bare block binds `*` only when called with arguments, so
        // the chain shape is unknowable here.
        None => vec![None],
    };
    Code {
        ops: compile_node_frame(&lambda.body, &frame),
    }
}

/// Compiles a free-standing node (top-level input, `eval`, `.`):
/// nothing is known about the environment.
pub fn compile_node(node: &Node) -> Code {
    Code {
        ops: compile_node_frame(node, &[None]),
    }
}

fn compile_node_frame(node: &Node, frame: &[Option<String>]) -> Vec<Op> {
    match node {
        Node::Call(exprs) => {
            // A literal boot-primitive hook name in head position
            // becomes an inline-cached site; the head word is then
            // implied by the site rather than compiled as an arg.
            if let Some(Expr::Word(w)) = exprs.first() {
                if !w.has_live_glob() {
                    let text = w.text();
                    if let Some((name, prim)) =
                        HOOK_PRIMS.iter().find(|(h, _)| *h == text)
                    {
                        return vec![Op::Call {
                            args: exprs[1..]
                                .iter()
                                .map(|e| compile_expr(e, true, frame))
                                .collect(),
                            hook: Some(HookSite {
                                name: (*name).to_string(),
                                prim,
                                ic: Cell::new(u64::MAX),
                            }),
                        }];
                    }
                }
            }
            vec![Op::Call {
                args: exprs
                    .iter()
                    .map(|e| compile_expr(e, true, frame))
                    .collect(),
                hook: None,
            }]
        }
        Node::Let(bindings, body) => {
            // Binding i's value is evaluated under bindings 0..i, so
            // thread the frame through as each name lands.
            let mut inner: Frame = frame.to_vec();
            let mut compiled = Vec::with_capacity(bindings.len());
            for (name_expr, value_exprs) in bindings {
                let name = compile_bind_name(name_expr);
                let values = value_exprs
                    .iter()
                    .map(|e| compile_expr(e, false, &inner))
                    .collect();
                inner.insert(
                    0,
                    match &name {
                        BindName::Static(s) => Some(s.clone()),
                        BindName::Dyn(_) => None,
                    },
                );
                compiled.push((name, values));
            }
            vec![Op::Let {
                bindings: compiled,
                body: Rc::new(Code {
                    ops: compile_node_frame(body, &inner),
                }),
            }]
        }
        Node::Local(bindings, body) => {
            // Dynamic bindings never enter the lexical chain: values
            // compile against the outer frame and so does the body.
            let compiled = bindings
                .iter()
                .map(|(name_expr, value_exprs)| {
                    (
                        compile_bind_name(name_expr),
                        value_exprs
                            .iter()
                            .map(|e| compile_expr(e, false, frame))
                            .collect(),
                    )
                })
                .collect();
            vec![Op::Local {
                bindings: compiled,
                body: Rc::new(Code {
                    ops: compile_node_frame(body, frame),
                }),
            }]
        }
        Node::For(bindings, body) => {
            // Lists are evaluated once, up front, in the outer scope;
            // each iteration then pushes the bindings in order, so the
            // body sees them innermost-last-first.
            let compiled: Vec<(BindName, Vec<ArgC>)> = bindings
                .iter()
                .map(|(name_expr, value_exprs)| {
                    (
                        compile_bind_name(name_expr),
                        value_exprs
                            .iter()
                            .map(|e| compile_expr(e, false, frame))
                            .collect(),
                    )
                })
                .collect();
            let mut inner: Frame = compiled
                .iter()
                .rev()
                .map(|(name, _)| match name {
                    BindName::Static(s) => Some(s.clone()),
                    BindName::Dyn(_) => None,
                })
                .collect();
            inner.extend_from_slice(frame);
            vec![Op::For {
                bindings: compiled,
                body: Rc::new(Code {
                    ops: compile_node_frame(body, &inner),
                }),
            }]
        }
        Node::Seq(nodes) => nodes
            .iter()
            .flat_map(|n| compile_node_frame(n, frame))
            .collect(),
        // Assign, Match, and any surface node that escaped lowering:
        // share the tree walker's implementation verbatim.
        other => vec![Op::Node(other.clone())],
    }
}

fn compile_bind_name(expr: &Expr) -> BindName {
    match expr {
        Expr::Word(w) if !w.has_live_glob() => BindName::Static(w.text()),
        other => BindName::Dyn(other.clone()),
    }
}

fn compile_expr(expr: &Expr, glob: bool, frame: &[Option<String>]) -> ArgC {
    match expr {
        Expr::Word(w) => {
            if glob && w.has_live_glob() {
                ArgC::Glob(w.clone())
            } else {
                ArgC::Word(w.text())
            }
        }
        Expr::Var(target) => {
            if let Expr::Word(w) = &**target {
                if !w.has_live_glob() {
                    let name = w.text();
                    // All-digit names index `$*` when unbound — that
                    // fallback lives in the general evaluator.
                    if !name.chars().all(|c| c.is_ascii_digit()) {
                        for (hops, entry) in frame.iter().enumerate() {
                            match entry {
                                Some(n) if *n == name => {
                                    return ArgC::Slot { hops, name };
                                }
                                Some(_) => continue,
                                // A computed name may shadow anything
                                // beneath it: stop resolving.
                                None => break,
                            }
                        }
                    }
                }
            }
            ArgC::Expr {
                expr: expr.clone(),
                glob,
            }
        }
        Expr::Lambda(code) => ArgC::Lambda(Rc::clone(code)),
        Expr::Prim(name) => ArgC::Word(format!("$&{name}")),
        other => ArgC::Expr {
            expr: other.clone(),
            glob,
        },
    }
}
