//! The environment codec: shell state ⇄ environment strings.
//!
//! "The duality of functions and variables in es has made it possible
//! to pass down function definitions to subshells. ... Since nearly
//! all shell state can now be encoded in the environment, it becomes
//! superfluous for a new instance of es ... to run a configuration
//! file. Hence shell startup becomes very quick." (Experiment E5
//! measures exactly that claim.)
//!
//! Encoding: list elements are joined with `\x01` (the original also
//! used control-character separators); string terms travel raw,
//! closure terms travel as their unparsed
//! `%closure(a=b)@ * {echo $a}` form. Decoding parses any piece that
//! looks like (and successfully parses as) a lambda back into a
//! closure; everything else is a literal string.

use crate::eval;
use crate::exception::EsResult;
use crate::machine::Machine;
use crate::value::{self, ListBuilder, Term};
use es_gc::Ref;
use es_os::Os;
use es_syntax::ast::{Expr, Node};

/// List-element separator in environment strings.
pub const SEP: char = '\u{1}';

/// Variables never exported, beyond the user-controlled `$noexport`.
const BUILTIN_NOEXPORT: &[&str] = &[
    "*", "0", "apid", "bqstatus", "ifs", "noexport", "path", "home", "pid",
];

/// Encodes every exportable global as `NAME=value` pairs.
pub fn build_environment<O: Os + Clone>(m: &Machine<O>) -> Vec<(String, String)> {
    let mut skip: Vec<String> = BUILTIN_NOEXPORT.iter().map(|s| s.to_string()).collect();
    skip.extend(m.get_var("noexport"));
    let mut out = Vec::new();
    for name in m.global_names() {
        if skip.iter().any(|s| s == &name) || name.contains('=') {
            continue;
        }
        let value = match m.lookup(Ref::NIL, &name) {
            Some(v) => v,
            None => continue,
        };
        out.push((name.clone(), encode_value(m, value)));
    }
    out
}

/// Encodes one value list as an environment string.
pub fn encode_value<O: Os + Clone>(m: &Machine<O>, list: Ref) -> String {
    let pieces: Vec<String> = value::read_terms(&m.heap, list)
        .into_iter()
        .map(|t| match t {
            Term::Str(s) => s,
            Term::Closure(code, bindings) => value::unparse_closure(&m.heap, &code, bindings),
        })
        .collect();
    pieces.join(&SEP.to_string())
}

/// Imports the kernel's initial environment: every `NAME=value` pair
/// becomes a global assignment *through the settor machinery*, so
/// importing `PATH` populates `$path` via the `set-PATH` settor that
/// `initial.es` installed.
pub fn import_environment<O: Os + Clone>(m: &mut Machine<O>) -> EsResult<()> {
    let pairs = m.os().initial_env();
    for (name, encoded) in pairs {
        if name.is_empty() || name.contains('=') {
            continue;
        }
        set_from_encoded(m, &name, &encoded)?;
    }
    Ok(())
}

/// Assigns `name` from an encoded environment value, firing settors.
pub fn set_from_encoded<O: Os + Clone>(
    m: &mut Machine<O>,
    name: &str,
    encoded: &str,
) -> EsResult<()> {
    let base = m.heap.roots_len();
    let env = m.heap.push_root(Ref::NIL);
    let mut b = ListBuilder::new(&mut m.heap);
    for piece in encoded.split(SEP) {
        match decode_piece(m, piece)? {
            Some(term_list) => {
                let slot = m.heap.push_root(term_list);
                b.append_slot(&mut m.heap, slot);
                m.heap.truncate_roots(slot.index());
            }
            None => b.push_str(&mut m.heap, piece),
        }
    }
    let value_slot = b.head_slot();
    let transformed = eval::run_settor(m, env, name, value_slot)?;
    m.assign_raw(Ref::NIL, name, transformed);
    m.heap.truncate_roots(base);
    Ok(())
}

/// Tries to decode one piece as a closure; `Ok(None)` means "treat as
/// a literal string".
fn decode_piece<O: Os + Clone>(m: &mut Machine<O>, piece: &str) -> EsResult<Option<Ref>> {
    let looks_like_code = piece.starts_with("%closure(")
        || piece.starts_with("@ ")
        || (piece.starts_with('{') && piece.ends_with('}'));
    if !looks_like_code {
        return Ok(None);
    }
    let parsed = match es_syntax::parse_program(piece) {
        Ok(p) => es_syntax::lower(p),
        Err(_) => return Ok(None),
    };
    // Expect exactly one expression that is a lambda/closure literal.
    let expr = match &parsed {
        Node::Call(exprs) if exprs.len() == 1 => match &exprs[0] {
            e @ (Expr::Lambda(_) | Expr::ClosureLit { .. }) => e.clone(),
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let base = m.heap.roots_len();
    let env = m.heap.push_root(Ref::NIL);
    let list = eval::eval_expr(m, &expr, env, false)?;
    m.heap.truncate_roots(base);
    Ok(Some(list))
}
