//! The evaluator: core AST → values.
//!
//! Everything here is written against the copying collector's
//! discipline: any `Ref` held across an allocation must sit in a root
//! slot. Functions that return a `Ref` return it *unrooted*; the
//! caller roots it before allocating again. Root scopes are explicit:
//! save `heap.roots_len()`, truncate on exit.
//!
//! Tail calls: `eval_node` takes an optional pair of root slots owned
//! by the nearest [`apply_closure`] loop. When a call in tail position
//! resolves to a closure and `opts.tail_calls` is on, the evaluator
//! stores the closure and argument list into those slots and returns
//! [`Flow::Tail`]; the apply loop rebinds and iterates instead of
//! recursing. With `opts.tail_calls` off the evaluator recurses, which
//! is the 1993 behaviour whose "hidden costs" the paper laments (and
//! experiment E6 measures via [`crate::Machine::max_depth_seen`]).

use crate::exception::{EsError, EsResult};
use crate::machine::{Engine, Machine};
use crate::prims;
use crate::value::{self, ListBuilder};
use es_gc::{Obj, Ref, RootSlot};
use es_match::Pattern;
use es_os::Os;
use es_syntax::ast::{Expr, Node, Word};

/// Evaluation outcome: a value, or a pending tail call (stored in the
/// apply loop's slots).
#[derive(Debug, Clone, Copy)]
pub enum Flow {
    /// A finished value (unrooted).
    Val(Ref),
    /// Tail slots were filled; the apply loop iterates.
    Tail,
}

/// Tail-call plumbing: `(closure_slot, args_slot, name_slot)` owned by
/// the innermost apply loop.
pub type TailSlots = (RootSlot, RootSlot);

/// Unwraps a value from a context where tails are impossible.
pub fn must_value(f: Flow) -> Ref {
    match f {
        Flow::Val(r) => r,
        Flow::Tail => unreachable!("tail flow escaped its apply loop"),
    }
}

/// Evaluates a core node.
pub fn eval_node<O: Os + Clone>(
    m: &mut Machine<O>,
    node: &Node,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    match node {
        Node::Call(exprs) => {
            crate::governor::charge(m)?;
            let base = m.heap.roots_len();
            let list = eval_exprs(m, exprs, env, true)?;
            let flow = apply_slot(m, list, env, tail)?;
            Ok(pop_scope(m, base, flow))
        }
        Node::Assign(lhs, values) => {
            let base = m.heap.roots_len();
            let names_list = eval_expr_rooted(m, lhs, env, false)?;
            let names = m.strings_at(names_list);
            let values_slot = eval_exprs(m, values, env, false)?;
            if names.is_empty() {
                m.heap.truncate_roots(base);
                return Err(m.error("assignment to empty name list"));
            }
            assign_distribute(m, env, &names, values_slot)?;
            let out = m.heap.root(values_slot);
            Ok(pop_scope(m, base, Flow::Val(out)))
        }
        Node::Let(bindings, body) => {
            let base = m.heap.roots_len();
            let chain = m.heap.push_root(m.heap.root(env));
            for (name_expr, value_exprs) in bindings {
                let name = single_name(m, name_expr, chain)?;
                let inner = m.heap.roots_len();
                let value_slot = eval_exprs(m, value_exprs, chain, false)?;
                let value = m.heap.root(value_slot);
                m.note_binding(&name);
                let binding = m.heap.alloc_binding(&name, value, m.heap.root(chain));
                m.heap.set_root(chain, binding);
                m.heap.truncate_roots(inner);
            }
            // Tail propagates through let: the bindings live in the
            // heap, nothing needs unwinding here.
            let flow = eval_node(m, body, chain, tail)?;
            Ok(pop_scope(m, base, flow))
        }
        Node::Local(bindings, body) => {
            let base = m.heap.roots_len();
            let dyn_base = m.dynamics_len();
            // Evaluate all values in the outer scope first.
            let mut staged: Vec<(String, RootSlot)> = Vec::new();
            for (name_expr, value_exprs) in bindings {
                let name = single_name(m, name_expr, env)?;
                let value_slot = eval_exprs(m, value_exprs, env, false)?;
                staged.push((name, value_slot));
            }
            // Settors fire on dynamic binding too (harmlessly skipped
            // when the settor itself is dynamically nulled — that is
            // exactly the paper's set-path/set-PATH suppression trick).
            for (name, slot) in &staged {
                let transformed = run_settor(m, env, name, *slot)?;
                m.push_dynamic(name, transformed);
            }
            let result = eval_node(m, body, env, None);
            m.pop_dynamics(dyn_base);
            let flow = result?;
            let out = must_value(flow);
            Ok(pop_scope(m, base, Flow::Val(out)))
        }
        Node::For(bindings, body) => {
            let base = m.heap.roots_len();
            // Evaluate every list once, up front.
            let mut lists: Vec<(String, RootSlot)> = Vec::new();
            for (name_expr, value_exprs) in bindings {
                let name = single_name(m, name_expr, env)?;
                let slot = eval_exprs(m, value_exprs, env, false)?;
                lists.push((name, slot));
            }
            let n = lists
                .iter()
                .map(|(_, s)| value::list_len(&m.heap, m.heap.root(*s)))
                .max()
                .unwrap_or(0);
            let result_slot = m.heap.push_root(Ref::NIL);
            for i in 1..=n {
                crate::governor::charge(m)?;
                let iter_base = m.heap.roots_len();
                let chain = m.heap.push_root(m.heap.root(env));
                for (name, slot) in &lists {
                    let value = match value::list_nth(&m.heap, m.heap.root(*slot), i) {
                        Some(term) => {
                            let t = m.heap.push_root(term);
                            m.heap.alloc_pair(m.heap.root(t), Ref::NIL)
                        }
                        None => Ref::NIL,
                    };
                    let v = m.heap.push_root(value);
                    m.note_binding(name);
                    let binding = m.heap.alloc_binding(name, m.heap.root(v), m.heap.root(chain));
                    m.heap.set_root(chain, binding);
                }
                match eval_node(m, body, chain, None) {
                    Ok(flow) => {
                        let v = must_value(flow);
                        m.heap.truncate_roots(iter_base);
                        m.heap.set_root(result_slot, v);
                    }
                    Err(EsError::Throw(e)) if throw_is(m, e, "break") => {
                        let v = m.heap.pair_tail(e);
                        m.heap.truncate_roots(iter_base);
                        m.heap.set_root(result_slot, v);
                        break;
                    }
                    Err(other) => {
                        m.heap.truncate_roots(iter_base);
                        return Err(other);
                    }
                }
            }
            let out = m.heap.root(result_slot);
            Ok(pop_scope(m, base, Flow::Val(out)))
        }
        Node::Match(subject, patterns) => {
            let base = m.heap.roots_len();
            let subj_slot = eval_expr_rooted(m, subject, env, false)?;
            let subjects = m.strings_at(subj_slot);
            let mut pats: Vec<Pattern> = Vec::new();
            for p in patterns {
                match p {
                    // Literal pattern words keep their quoting (so a
                    // quoted `'*'` matches a literal star).
                    Expr::Word(w) => pats.push(Pattern::from_segments(&w.seg_refs())),
                    other => {
                        let slot = eval_expr_rooted(m, other, env, false)?;
                        for s in m.strings_at(slot) {
                            pats.push(Pattern::parse(&s));
                        }
                    }
                }
            }
            m.heap.truncate_roots(base);
            let matched = if subjects.is_empty() {
                pats.is_empty()
            } else {
                subjects.iter().any(|s| es_match::match_any(&pats, s))
            };
            let out = if matched {
                value::true_value(&mut m.heap)
            } else {
                value::false_value(&mut m.heap)
            };
            Ok(Flow::Val(out))
        }
        Node::Seq(nodes) => {
            let mut last = Flow::Val(Ref::NIL);
            for (i, n) in nodes.iter().enumerate() {
                let is_last = i + 1 == nodes.len();
                let node_tail = if is_last { tail } else { None };
                let flow = eval_node(m, n, env, node_tail)?;
                if is_last {
                    last = flow;
                } else {
                    let _ = must_value(flow);
                }
            }
            Ok(last)
        }
        Node::Pipe(..)
        | Node::Redir(..)
        | Node::AndAnd(..)
        | Node::OrOr(..)
        | Node::Bang(..)
        | Node::Background(..)
        | Node::FnDef(..)
        | Node::SurfaceSeq(..) => {
            Err(m.error("internal error: surface node reached the evaluator (missing lower())"))
        }
    }
}

/// Truncates the scope, keeping a value flow's ref alive by re-rooting
/// is unnecessary: truncation never collects, and the caller roots the
/// returned ref before the next allocation.
pub(crate) fn pop_scope<O: Os + Clone>(m: &mut Machine<O>, base: usize, flow: Flow) -> Flow {
    m.heap.truncate_roots(base);
    flow
}

/// True if the exception list's first term is the string `name`.
pub fn throw_is<O: Os + Clone>(m: &Machine<O>, e: Ref, name: &str) -> bool {
    if e.is_nil() {
        return false;
    }
    matches!(m.heap.get(m.heap.pair_head(e)), Obj::Str(s) if &**s == name)
}

/// Evaluates a name expression that must denote exactly one name.
pub(crate) fn single_name<O: Os + Clone>(
    m: &mut Machine<O>,
    expr: &Expr,
    env: RootSlot,
) -> EsResult<String> {
    let base = m.heap.roots_len();
    let slot = eval_expr_rooted(m, expr, env, false)?;
    let names = m.strings_at(slot);
    m.heap.truncate_roots(base);
    match names.as_slice() {
        [one] => Ok(one.clone()),
        _ => Err(m.error("binding name must be a single word")),
    }
}

// ---------------------------------------------------------------------------
// Assignment.
// ---------------------------------------------------------------------------

/// Distributes `values` over `names` like parameter binding (leftover
/// values go to the last name) and assigns each, firing settors.
fn assign_distribute<O: Os + Clone>(
    m: &mut Machine<O>,
    env: RootSlot,
    names: &[String],
    values_slot: RootSlot,
) -> EsResult<()> {
    let n = names.len();
    for (i, name) in names.iter().enumerate() {
        let base = m.heap.roots_len();
        let value = if n == 1 {
            m.heap.root(values_slot)
        } else if i + 1 == n {
            nth_tail(m, m.heap.root(values_slot), i)
        } else {
            match value::list_nth(&m.heap, m.heap.root(values_slot), i + 1) {
                Some(term) => {
                    let t = m.heap.push_root(term);
                    m.heap.alloc_pair(m.heap.root(t), Ref::NIL)
                }
                None => Ref::NIL,
            }
        };
        let v_slot = m.heap.push_root(value);
        let transformed = run_settor(m, env, name, v_slot)?;
        let env_ref = m.heap.root(env);
        m.assign_raw(env_ref, name, transformed);
        m.heap.truncate_roots(base);
    }
    Ok(())
}

/// The i-th tail (0-based) of a list, shared (no copying).
fn nth_tail<O: Os + Clone>(m: &Machine<O>, mut list: Ref, mut i: usize) -> Ref {
    while i > 0 && !list.is_nil() {
        list = m.heap.pair_tail(list);
        i -= 1;
    }
    list
}

/// Runs the `set-name` settor, if any: applies it as a command with
/// the new value as arguments and returns its result as the value to
/// actually assign (paper, section "Settor Variables"). Returns the
/// original value when no settor is set (or it is null).
pub fn run_settor<O: Os + Clone>(
    m: &mut Machine<O>,
    env: RootSlot,
    name: &str,
    value_slot: RootSlot,
) -> EsResult<Ref> {
    let settor_name = format!("set-{name}");
    let settor = m.lookup(m.heap.root(env), &settor_name);
    let settor = match settor {
        Some(s) if !s.is_nil() => s,
        _ => return Ok(m.heap.root(value_slot)),
    };
    let base = m.heap.roots_len();
    let s_slot = m.heap.push_root(settor);
    let mut b = ListBuilder::new(&mut m.heap);
    b.append_slot(&mut m.heap, s_slot);
    b.append_slot(&mut m.heap, value_slot);
    let call_slot = b.head_slot();
    let flow = apply_slot(m, call_slot, env, None)?;
    let out = must_value(flow);
    m.heap.truncate_roots(base);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

/// Evaluates an expression list, splicing results into one rooted
/// list; returns the slot holding it (inside the caller's scope).
pub fn eval_exprs<O: Os + Clone>(
    m: &mut Machine<O>,
    exprs: &[Expr],
    env: RootSlot,
    glob: bool,
) -> EsResult<RootSlot> {
    let mut b = ListBuilder::new(&mut m.heap);
    for e in exprs {
        let inner = m.heap.roots_len();
        let list = eval_expr(m, e, env, glob)?;
        let slot = m.heap.push_root(list);
        b.append_slot(&mut m.heap, slot);
        m.heap.truncate_roots(inner);
    }
    Ok(b.head_slot())
}

/// Evaluates one expression and roots the result; returns the slot.
pub fn eval_expr_rooted<O: Os + Clone>(
    m: &mut Machine<O>,
    expr: &Expr,
    env: RootSlot,
    glob: bool,
) -> EsResult<RootSlot> {
    let list = eval_expr(m, expr, env, glob)?;
    Ok(m.heap.push_root(list))
}

/// Evaluates one expression to an (unrooted) list.
pub fn eval_expr<O: Os + Clone>(
    m: &mut Machine<O>,
    expr: &Expr,
    env: RootSlot,
    glob: bool,
) -> EsResult<Ref> {
    match expr {
        Expr::Word(w) => {
            if glob && w.has_live_glob() {
                glob_word(m, w, env)
            } else {
                Ok(value::list_from_strs(&mut m.heap, &[&w.text()]))
            }
        }
        Expr::Var(target) => {
            let base = m.heap.roots_len();
            let names_slot = eval_expr_rooted(m, target, env, false)?;
            let names = m.strings_at(names_slot);
            let mut b = ListBuilder::new(&mut m.heap);
            for name in &names {
                let value = m.lookup(m.heap.root(env), name);
                match value {
                    Some(v) => {
                        let v_slot = m.heap.push_root(v);
                        b.append_slot(&mut m.heap, v_slot);
                        m.heap.truncate_roots(v_slot.index());
                    }
                    None => {
                        // Positional parameters: an unbound all-digit
                        // name indexes `$*` (`$1` is `$*(1)`).
                        if let Ok(i) = name.parse::<usize>() {
                            let star = m.lookup(m.heap.root(env), "*");
                            if let Some(star) = star {
                                if let Some(term) = value::list_nth(&m.heap, star, i) {
                                    let t = m.heap.push_root(term);
                                    let term = m.heap.root(t);
                                    b.push(&mut m.heap, term);
                                    m.heap.truncate_roots(t.index());
                                }
                            }
                        }
                    }
                }
            }
            let out = b.finish(&m.heap);
            m.heap.truncate_roots(base);
            Ok(out)
        }
        Expr::VarCount(target) => {
            let base = m.heap.roots_len();
            let names_slot = eval_expr_rooted(m, target, env, false)?;
            let names = m.strings_at(names_slot);
            let mut count = 0usize;
            for name in &names {
                if let Some(v) = m.lookup(m.heap.root(env), name) {
                    count += value::list_len(&m.heap, v);
                }
            }
            m.heap.truncate_roots(base);
            Ok(value::list_from_strs(&mut m.heap, &[&count.to_string()]))
        }
        Expr::VarFlat(target) => {
            let base = m.heap.roots_len();
            let var = Expr::Var(Box::new((**target).clone()));
            let slot = eval_expr_rooted(m, &var, env, false)?;
            let joined = m.strings_at(slot).join(" ");
            m.heap.truncate_roots(base);
            Ok(value::list_from_strs(&mut m.heap, &[&joined]))
        }
        Expr::VarSub(var, subs) => {
            let base = m.heap.roots_len();
            let value_slot = eval_expr_rooted(m, var, env, false)?;
            let mut indices = Vec::new();
            for s in subs {
                let slot = eval_expr_rooted(m, s, env, false)?;
                for text in m.strings_at(slot) {
                    match text.parse::<usize>() {
                        Ok(i) => indices.push(i),
                        Err(_) => {
                            m.heap.truncate_roots(base);
                            return Err(m.error(&format!("bad subscript: {text}")));
                        }
                    }
                }
            }
            let mut b = ListBuilder::new(&mut m.heap);
            for i in indices {
                if let Some(term) = value::list_nth(&m.heap, m.heap.root(value_slot), i) {
                    let t = m.heap.push_root(term);
                    let term = m.heap.root(t);
                    b.push(&mut m.heap, term);
                    m.heap.truncate_roots(t.index());
                }
            }
            let out = b.finish(&m.heap);
            m.heap.truncate_roots(base);
            Ok(out)
        }
        Expr::Concat(a, b) => {
            let base = m.heap.roots_len();
            let la_slot = eval_expr_rooted(m, a, env, false)?;
            let la = m.strings_at(la_slot);
            let lb_slot = eval_expr_rooted(m, b, env, false)?;
            let lb = m.strings_at(lb_slot);
            m.heap.truncate_roots(base);
            let combined: Vec<String> = match (la.len(), lb.len()) {
                (0, _) | (_, 0) => Vec::new(),
                (1, _) => lb.iter().map(|y| format!("{}{}", la[0], y)).collect(),
                (_, 1) => la.iter().map(|x| format!("{}{}", x, lb[0])).collect(),
                (n, m2) if n == m2 => la
                    .iter()
                    .zip(lb.iter())
                    .map(|(x, y)| format!("{x}{y}"))
                    .collect(),
                (n, m2) => {
                    return Err(m.error(&format!("bad concatenation: {n} words and {m2} words")))
                }
            };
            let refs: Vec<&str> = combined.iter().map(String::as_str).collect();
            Ok(value::list_from_strs(&mut m.heap, &refs))
        }
        Expr::List(items) => {
            let base = m.heap.roots_len();
            let slot = eval_exprs(m, items, env, glob)?;
            let out = m.heap.root(slot);
            m.heap.truncate_roots(base);
            Ok(out)
        }
        Expr::Lambda(code) => {
            let env_ref = m.heap.root(env);
            let clo = m.heap.alloc_closure(code.clone(), env_ref);
            let c = m.heap.push_root(clo);
            let out = m.heap.alloc_pair(m.heap.root(c), Ref::NIL);
            m.heap.truncate_roots(c.index());
            Ok(out)
        }
        Expr::Prim(name) => {
            Ok(value::list_from_strs(&mut m.heap, &[&format!("$&{name}")]))
        }
        Expr::CmdSub(node) => {
            let flow = crate::vm::run_node(m, node, env, None)?;
            Ok(must_value(flow))
        }
        Expr::ClosureLit { bindings, lambda } => {
            let base = m.heap.roots_len();
            let chain = m.heap.push_root(Ref::NIL);
            // Binding values are literals; evaluate them in an empty
            // environment (they came from unparsing, where everything
            // was quoted or is itself a closure literal).
            let empty_env = m.heap.push_root(Ref::NIL);
            for (name, value_exprs) in bindings {
                let slot = eval_exprs(m, value_exprs, empty_env, false)?;
                let value = m.heap.root(slot);
                m.note_binding(name);
                let binding = m.heap.alloc_binding(name, value, m.heap.root(chain));
                m.heap.set_root(chain, binding);
            }
            let clo = m.heap.alloc_closure(lambda.clone(), m.heap.root(chain));
            let c = m.heap.push_root(clo);
            let out = m.heap.alloc_pair(m.heap.root(c), Ref::NIL);
            m.heap.truncate_roots(base);
            Ok(out)
        }
        Expr::Backquote(_) => {
            Err(m.error("internal error: backquote reached the evaluator (missing lower())"))
        }
    }
}

// ---------------------------------------------------------------------------
// Application.
// ---------------------------------------------------------------------------

/// Applies the (rooted) list as a command.
pub fn apply_slot<O: Os + Clone>(
    m: &mut Machine<O>,
    list_slot: RootSlot,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    let list = m.heap.root(list_slot);
    if list.is_nil() {
        return Ok(Flow::Val(Ref::NIL));
    }
    let head = m.heap.pair_head(list);
    match m.heap.get(head) {
        Obj::Closure(..) => {
            let base = m.heap.roots_len();
            let clo = m.heap.push_root(head);
            let args = m.heap.push_root(m.heap.pair_tail(list));
            if let (Some((tc, ta)), true) = (tail, m.opts.tail_calls) {
                let c = m.heap.root(clo);
                m.heap.set_root(tc, c);
                let a = m.heap.root(args);
                m.heap.set_root(ta, a);
                m.heap.truncate_roots(base);
                return Ok(Flow::Tail);
            }
            let flow = apply_closure(m, clo, args, true, "<closure>")?;
            Ok(pop_scope(m, base, flow))
        }
        Obj::Str(s) => {
            let name = s.to_string();
            let base = m.heap.roots_len();
            let args = m.heap.push_root(m.heap.pair_tail(list));
            let flow = apply_named(m, &name, args, env, tail, 0)?;
            Ok(pop_scope(m, base, flow))
        }
        other => {
            let shape = format!("{other:?}");
            Err(m.error(&format!("cannot apply {shape}")))
        }
    }
}

/// Resolves and applies a command named by a string: primitives,
/// slash-paths, `fn-` variables, then `%pathsearch`.
fn apply_named<O: Os + Clone>(
    m: &mut Machine<O>,
    name: &str,
    args: RootSlot,
    env: RootSlot,
    tail: Option<TailSlots>,
    hops: usize,
) -> EsResult<Flow> {
    if hops > 64 {
        return Err(m.error(&format!("function definition loop resolving {name}")));
    }
    if let Some(prim) = name.strip_prefix("$&") {
        let prim = prim.to_string();
        return prims::call(m, &prim, args, env, tail);
    }
    if name.contains('/') {
        return run_external(m, name, args);
    }
    let fn_name = format!("fn-{name}");
    let resolved = m.lookup(m.heap.root(env), &fn_name);
    match resolved {
        Some(value) if !value.is_nil() => {
            let base = m.heap.roots_len();
            let v_slot = m.heap.push_root(value);
            // Single-closure definitions (the common case) apply
            // directly, binding $0 to the invocation name.
            let value = m.heap.root(v_slot);
            let head = m.heap.pair_head(value);
            let rest = m.heap.pair_tail(value);
            if matches!(m.heap.get(head), Obj::Closure(..)) && rest.is_nil() {
                let clo = m.heap.push_root(head);
                if let (Some((tc, ta)), true) = (tail, m.opts.tail_calls) {
                    let c = m.heap.root(clo);
                    m.heap.set_root(tc, c);
                    let a = m.heap.root(args);
                    m.heap.set_root(ta, a);
                    m.heap.truncate_roots(base);
                    return Ok(Flow::Tail);
                }
                let flow = apply_closure(m, clo, args, true, name)?;
                return Ok(pop_scope(m, base, flow));
            }
            // General case: splice `value ++ args` and re-apply.
            let mut b = ListBuilder::new(&mut m.heap);
            b.append_slot(&mut m.heap, v_slot);
            b.append_slot(&mut m.heap, args);
            let new_list = b.head_slot();
            let new_head = m.heap.pair_head(m.heap.root(new_list));
            let flow = match m.heap.get(new_head) {
                Obj::Str(s) => {
                    let next_name = s.to_string();
                    let new_args = m.heap.push_root(m.heap.pair_tail(m.heap.root(new_list)));
                    apply_named(m, &next_name, new_args, env, tail, hops + 1)?
                }
                _ => apply_slot(m, new_list, env, tail)?,
            };
            Ok(pop_scope(m, base, flow))
        }
        _ => {
            // Path search through the (spoofable) %pathsearch hook.
            // While the hook generation says no `fn-%*` binding has
            // changed since boot, `fn-%pathsearch` provably still
            // means the bare primitive: dispatch straight to it.
            let base = m.heap.roots_len();
            let flow = if m.hooks_pristine() {
                let mut b = ListBuilder::new(&mut m.heap);
                b.push_str(&mut m.heap, name);
                prims::call(m, "pathsearch", b.head_slot(), env, None)?
            } else {
                let hook = m.lookup(m.heap.root(env), "fn-%pathsearch");
                let hook = match hook {
                    Some(h) if !h.is_nil() => h,
                    _ => {
                        m.heap.truncate_roots(base);
                        return Err(m.error(&format!("{name}: command not found")));
                    }
                };
                let h_slot = m.heap.push_root(hook);
                let mut b = ListBuilder::new(&mut m.heap);
                b.append_slot(&mut m.heap, h_slot);
                b.push_str(&mut m.heap, name);
                apply_slot(m, b.head_slot(), env, None)?
            };
            let path_list = must_value(flow);
            let p_slot = m.heap.push_root(path_list);
            let terms = m.terms_at(p_slot);
            let only_str = match terms.as_slice() {
                [crate::value::Term::Str(s)] => Some(s.clone()),
                _ => None,
            };
            let flow = match (only_str, terms.len()) {
                (Some(path), _) => run_external(m, &path, args)?,
                (None, 0) => return Err(m.error(&format!("{name}: command not found"))),
                _ => {
                    // A multi-word result is treated as a command
                    // prefix (lets %pathsearch rewrite invocations).
                    let mut b = ListBuilder::new(&mut m.heap);
                    b.append_slot(&mut m.heap, p_slot);
                    b.append_slot(&mut m.heap, args);
                    apply_slot(m, b.head_slot(), env, tail)?
                }
            };
            Ok(pop_scope(m, base, flow))
        }
    }
}

/// Applies a closure: binds parameters lexically (one-to-one,
/// leftovers to the last parameter, missing → null; `$*` is always the
/// full argument list and `$0` the invocation name), then evaluates the
/// body. The loop here *is* the proper-tail-call trampoline.
pub fn apply_closure<O: Os + Clone>(
    m: &mut Machine<O>,
    clo_slot: RootSlot,
    args_slot: RootSlot,
    catch_return: bool,
    name: &str,
) -> EsResult<Flow> {
    m.depth += 1;
    m.max_depth_seen = m.max_depth_seen.max(m.depth);
    if let Some(max) = m.governor().limits().depth {
        let used = m.depth as u64;
        if used > max {
            // Unwinding pops frames, so depth falls back under the
            // limit by itself; the guard stays armed for next time.
            m.depth -= 1;
            return Err(crate::governor::breach(m, crate::governor::Kind::Depth, used, max));
        }
        crate::governor::soft_warn(m, crate::governor::Kind::Depth, used, max);
    }
    let result = apply_closure_inner(m, clo_slot, args_slot, catch_return, name);
    m.depth -= 1;
    result
}

fn apply_closure_inner<O: Os + Clone>(
    m: &mut Machine<O>,
    clo_slot: RootSlot,
    args_slot: RootSlot,
    catch_return: bool,
    name: &str,
) -> EsResult<Flow> {
    // Only function-form closures (named params or `@ *`) are
    // `return` boundaries; a bare `{...}` block is transparent, so
    // `return` inside it exits the enclosing *function*, as users
    // expect from `if {...} {return}`-style code. The boundary is
    // sticky across the tail-call trampoline: once any frame in the
    // (merged) tail chain is a function form, the chain catches.
    let _ = catch_return;
    let mut catching = m
        .heap
        .closure_code(m.heap.root(clo_slot))
        .params
        .is_some();
    let base = m.heap.roots_len();
    // The trampoline's slots: current closure/args, plus the pair the
    // evaluator fills when it spots a tail call.
    let cur_clo = m.heap.push_root(m.heap.root(clo_slot));
    let cur_args = m.heap.push_root(m.heap.root(args_slot));
    let tail_clo = m.heap.push_root(Ref::NIL);
    let tail_args = m.heap.push_root(Ref::NIL);
    let mut invocation = name.to_string();
    loop {
        let code = m.heap.closure_code(m.heap.root(cur_clo)).clone();
        let captured = m.heap.closure_bindings(m.heap.root(cur_clo));
        let iter_base = m.heap.roots_len();
        let chain = m.heap.push_root(captured);
        match &code.params {
            Some(params) => {
                // A function-form closure: bind named parameters
                // one-to-one (leftovers to the last), plus `$*` (the
                // full argument list) and `$0` (the invocation name).
                let n = params.len();
                for (i, p) in params.iter().enumerate() {
                    let value = if i + 1 == n {
                        nth_tail(m, m.heap.root(cur_args), i)
                    } else {
                        match value::list_nth(&m.heap, m.heap.root(cur_args), i + 1) {
                            Some(term) => {
                                let t = m.heap.push_root(term);
                                m.heap.alloc_pair(m.heap.root(t), Ref::NIL)
                            }
                            None => Ref::NIL,
                        }
                    };
                    let v = m.heap.push_root(value);
                    m.note_binding(p);
                    let b = m.heap.alloc_binding(p, m.heap.root(v), m.heap.root(chain));
                    m.heap.set_root(chain, b);
                }
                if !params.iter().any(|p| p == "*") {
                    let b = m
                        .heap
                        .alloc_binding("*", m.heap.root(cur_args), m.heap.root(chain));
                    m.heap.set_root(chain, b);
                }
                let zero = m.heap.alloc_str(&invocation);
                let z = m.heap.push_root(zero);
                let zl = m.heap.alloc_pair(m.heap.root(z), Ref::NIL);
                let zs = m.heap.push_root(zl);
                let b = m.heap.alloc_binding("0", m.heap.root(zs), m.heap.root(chain));
                m.heap.set_root(chain, b);
            }
            None => {
                // A bare `{...}` thunk is transparent: `$*` (and
                // everything else) stays visible from the enclosing
                // scope. Explicit arguments, if any, do rebind `$*`.
                if !m.heap.root(cur_args).is_nil() {
                    let b = m
                        .heap
                        .alloc_binding("*", m.heap.root(cur_args), m.heap.root(chain));
                    m.heap.set_root(chain, b);
                }
            }
        }

        let result = match m.opts.engine {
            Engine::Bytecode => {
                let compiled = m.code_for(&code);
                crate::vm::exec(m, &compiled, chain, Some((tail_clo, tail_args)))
            }
            Engine::Tree => eval_node(m, &code.body, chain, Some((tail_clo, tail_args))),
        };
        match result {
            Ok(Flow::Tail) => {
                // Rebind and iterate: this is the proper-tail-call.
                let c = m.heap.root(tail_clo);
                catching = catching || m.heap.closure_code(c).params.is_some();
                m.heap.set_root(cur_clo, c);
                let a = m.heap.root(tail_args);
                m.heap.set_root(cur_args, a);
                m.heap.set_root(tail_clo, Ref::NIL);
                m.heap.set_root(tail_args, Ref::NIL);
                invocation = "<tail>".to_string();
                m.heap.truncate_roots(iter_base);
                continue;
            }
            Ok(Flow::Val(v)) => {
                m.heap.truncate_roots(base);
                return Ok(Flow::Val(v));
            }
            Err(EsError::Throw(e)) if catching && throw_is(m, e, "return") => {
                let v = m.heap.pair_tail(e);
                m.heap.truncate_roots(base);
                return Ok(Flow::Val(v));
            }
            Err(other) => {
                m.heap.truncate_roots(base);
                return Err(other);
            }
        }
    }
}

/// Runs an external program: argv = path + flattened args, the current
/// environment encoding, and the shell's fd layout.
pub fn run_external<O: Os + Clone>(
    m: &mut Machine<O>,
    path: &str,
    args: RootSlot,
) -> EsResult<Flow> {
    let mut argv = vec![path.to_string()];
    argv.extend(m.strings_at(args));
    let envs = crate::env::build_environment(m);
    let fds = m.fd_layout();
    // Bounded EINTR retry: the fault layer injects interrupts before
    // the child runs, so re-issuing the whole exec is safe.
    match es_os::retry_intr(|| m.os_mut().run(&argv, &envs, &fds)) {
        Ok(status) => {
            let v = value::status_value(&mut m.heap, status);
            Ok(Flow::Val(v))
        }
        Err(e) => Err(m.error(&format!("{path}: {}", e.strerror()))),
    }
}

// ---------------------------------------------------------------------------
// Glob expansion.
// ---------------------------------------------------------------------------

/// Expands one word with live glob metacharacters to a value list.
///
/// The paper's Future Work: "The most notable of [the missing hooks]
/// is the wildcard expansion". This reproduction exposes it: if
/// `fn-%glob` is defined, expansion is delegated to it (pattern text
/// as the argument); otherwise the built-in expansion runs, which
/// "behaves identically to that in traditional shells". Boot leaves
/// `fn-%glob` unbound, so while the hook generation says no `fn-%*`
/// binding has ever changed, the per-word lookup is skipped entirely.
pub(crate) fn glob_word<O: Os + Clone>(
    m: &mut Machine<O>,
    w: &Word,
    env: RootSlot,
) -> EsResult<Ref> {
    if !m.hooks_pristine() {
        let hook = m.lookup(m.heap.root(env), "fn-%glob");
        if let Some(h) = hook {
            if !h.is_nil() {
                let base = m.heap.roots_len();
                let h_slot = m.heap.push_root(h);
                let mut b = ListBuilder::new(&mut m.heap);
                b.append_slot(&mut m.heap, h_slot);
                b.push_str(&mut m.heap, &w.text());
                let flow = apply_slot(m, b.head_slot(), env, None)?;
                let out = must_value(flow);
                m.heap.truncate_roots(base);
                return Ok(out);
            }
        }
    }
    let matches = glob_expand(m, w);
    if matches.is_empty() {
        // No match: the pattern stands for itself, as in the Bourne
        // shell.
        Ok(value::list_from_strs(&mut m.heap, &[&w.text()]))
    } else {
        let refs: Vec<&str> = matches.iter().map(String::as_str).collect();
        Ok(value::list_from_strs(&mut m.heap, &refs))
    }
}

/// Expands a word with live metacharacters against the filesystem.
/// `*`/`?` do not match a leading dot unless the pattern component
/// spells it, and matches come back sorted (directory order is
/// already sorted by the kernel).
pub fn glob_expand<O: Os + Clone>(m: &mut Machine<O>, word: &Word) -> Vec<String> {
    // Split into path components on unquoted `/`.
    let mut components: Vec<Vec<(String, bool)>> = vec![Vec::new()];
    for seg in &word.segs {
        let mut rest = seg.text.as_str();
        if seg.quoted {
            components
                .last_mut()
                .expect("components never empty")
                .push((rest.to_string(), true));
            continue;
        }
        while let Some(i) = rest.find('/') {
            let (before, after) = rest.split_at(i);
            if !before.is_empty() {
                components
                    .last_mut()
                    .expect("components never empty")
                    .push((before.to_string(), false));
            }
            components.push(Vec::new());
            rest = &after[1..];
        }
        if !rest.is_empty() {
            components
                .last_mut()
                .expect("components never empty")
                .push((rest.to_string(), false));
        }
    }
    let absolute = word.text().starts_with('/');
    if absolute {
        components.remove(0);
    }
    let mut candidates: Vec<String> = vec![if absolute {
        "/".to_string()
    } else {
        String::new()
    }];
    for comp in &components {
        if comp.is_empty() {
            continue;
        }
        let seg_refs: Vec<(&str, bool)> = comp
            .iter()
            .map(|(t, q)| (t.as_str(), *q))
            .collect();
        let pattern = Pattern::from_segments(&seg_refs);
        let literal_dot = comp
            .first()
            .map(|(t, _)| t.starts_with('.'))
            .unwrap_or(false);
        let mut next = Vec::new();
        if let Some(lit) = pattern.as_literal() {
            for c in &candidates {
                next.push(join_path(c, &lit));
            }
        } else {
            for c in &candidates {
                let dir = if c.is_empty() { "." } else { c.as_str() };
                let entries = match m.os().read_dir(dir) {
                    Ok(e) => e,
                    Err(_) => continue,
                };
                for name in entries {
                    if name.starts_with('.') && !literal_dot {
                        continue;
                    }
                    if pattern.matches(&name) {
                        next.push(join_path(c, &name));
                    }
                }
            }
        }
        candidates = next;
    }
    candidates.retain(|c| {
        !c.is_empty() && (m.os().is_file(c) || m.os().is_dir(c))
    });
    candidates.sort();
    candidates.dedup();
    candidates
}

fn join_path(base: &str, name: &str) -> String {
    if base.is_empty() {
        name.to_string()
    } else if base == "/" {
        format!("/{name}")
    } else {
        format!("{base}/{name}")
    }
}
