//! The exception mechanism.
//!
//! Es replaces both error reporting and non-local control flow with
//! exceptions: `throw` raises a list whose first element names the
//! exception, `catch` intercepts anything. `break`, `return`, and
//! signals are all spelled as exceptions (paper, section
//! "Exceptions"), so this type is the interpreter's only non-value
//! control path. `Exit` is separate because nothing may catch it.
//!
//! The resource governor (see [`crate::governor`]) adds one more
//! interpreter-raised family: `limit <kind> <used> <max>`, thrown when
//! an armed resource limit is breached. It is ordinary and catchable —
//! `catch @ e kind used max {...} {%limit steps 1000 {cmd}}` sandboxes
//! a computation. The virtual-time deadline is the exception: it
//! arrives as `signal sigalrm`, riding the same path as real signals.

use es_gc::Ref;

/// The interpreter's error/unwind channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EsError {
    /// A thrown exception: the GC list `(name arg...)`.
    ///
    /// The carried [`Ref`] is *not* rooted while propagating; nothing
    /// on the unwind path allocates, and every catch site must root it
    /// before evaluating anything.
    Throw(Ref),
    /// Shell exit with a status (uncatchable).
    Exit(i32),
}

/// Interpreter result alias.
pub type EsResult<T> = Result<T, EsError>;
