//! The resource governor: catchable limits and a deterministic
//! watchdog.
//!
//! The paper treats exceptions as the shell's only non-value control
//! path; this module extends that discipline to resource exhaustion.
//! A [`Machine`] carries a [`Governor`] holding optional [`Limits`] on
//! six resources (recursion depth, eval steps, live heap objects, open
//! descriptors, output bytes, and a virtual-time deadline). The
//! interpreter calls [`charge`] at its choke points — command
//! dispatch, loop-iteration tops — and a breached limit raises a
//! *catchable* `limit <kind> <used> <max>` exception that unwinds
//! through the ordinary `catch` machinery, so shell code can sandbox a
//! subcomputation with `%limit steps 1000 {cmd}` and recover.
//!
//! The time limit is different: it models SIGALRM. When the virtual
//! clock passes the deadline, [`charge`] delivers a `signal sigalrm`
//! exception instead of a `limit` one — a deterministic watchdog that
//! follows the paper's signals-as-exceptions path exactly.
//!
//! At 90% of any armed limit a one-shot warning is written to fd 2, so
//! long-running scripts get advance notice before the exception fires.

use crate::exception::{EsError, EsResult};
use crate::machine::{Machine, YieldAction};
use es_os::{Os, Signal};

/// Virtual nanoseconds charged to the clock per eval step, so the
/// time watchdog fires even in loops that never touch the kernel.
/// Real kernels advance their own clock ([`Os::advance_ns`] is a
/// no-op there); the simulator's is driven entirely by charges.
pub const EVAL_STEP_NS: u64 = 100;

/// The exit status a cancelled machine unwinds with when its
/// [`crate::Yield`] hook returns [`YieldAction::Cancel`]. Deliberately
/// the timeout convention (124); schedulers must not classify by this
/// number alone — tenant code can `exit 124` too — but by whether they
/// themselves requested the cancel.
pub const CANCEL_EXIT: i32 = 124;

/// The six governed resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Closure-application nesting (`Machine::depth`).
    Depth,
    /// Eval steps (one per [`charge`] call).
    Steps,
    /// Live heap objects, measured after a forced collection.
    Heap,
    /// Open descriptors in the kernel table.
    Fds,
    /// Bytes written through `Machine::write_fd` (all descriptors).
    Output,
    /// Virtual-time deadline; breaching delivers `signal sigalrm`.
    Time,
}

impl Kind {
    /// All kinds, in the order `limits` reports them.
    pub const ALL: [Kind; 6] = [
        Kind::Depth,
        Kind::Steps,
        Kind::Heap,
        Kind::Fds,
        Kind::Output,
        Kind::Time,
    ];

    /// The name used in exceptions and the `%limit` interface.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Depth => "depth",
            Kind::Steps => "steps",
            Kind::Heap => "heap",
            Kind::Fds => "fds",
            Kind::Output => "output",
            Kind::Time => "time",
        }
    }

    /// Parses a kind name (as used by `%limit` and `--limit`).
    pub fn parse(s: &str) -> Option<Kind> {
        match s {
            "depth" => Some(Kind::Depth),
            "steps" => Some(Kind::Steps),
            "heap" => Some(Kind::Heap),
            "fds" => Some(Kind::Fds),
            "output" => Some(Kind::Output),
            "time" => Some(Kind::Time),
            _ => None,
        }
    }

    fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// The armed limits. `None` means unlimited. All values are absolute:
/// the prim layer converts relative budgets ("1000 more steps") via
/// [`resolve`] before arming.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Maximum closure-application nesting.
    pub depth: Option<u64>,
    /// Absolute eval-step count at which to trip.
    pub steps: Option<u64>,
    /// Maximum live heap objects.
    pub heap: Option<u64>,
    /// Maximum open kernel descriptors.
    pub fds: Option<u64>,
    /// Absolute output-byte count at which to trip.
    pub output: Option<u64>,
    /// Virtual-clock deadline in nanoseconds.
    pub deadline_ns: Option<u64>,
}

impl Limits {
    /// The interpreter's boot defaults: only the recursion-depth guard
    /// is armed (the same 150 the pre-governor `max_depth` used — deep
    /// enough for real scripts, shallow enough that naive recursion
    /// cannot blow the 2 MiB stacks debug test threads get).
    pub fn default_interpreter() -> Limits {
        Limits {
            depth: Some(150),
            ..Limits::default()
        }
    }

    /// The armed value for `kind`, if any.
    pub fn get(&self, kind: Kind) -> Option<u64> {
        match kind {
            Kind::Depth => self.depth,
            Kind::Steps => self.steps,
            Kind::Heap => self.heap,
            Kind::Fds => self.fds,
            Kind::Output => self.output,
            Kind::Time => self.deadline_ns,
        }
    }

    /// Arms (or with `None`, disarms) `kind` at an absolute value.
    pub fn set(&mut self, kind: Kind, value: Option<u64>) {
        let slot = match kind {
            Kind::Depth => &mut self.depth,
            Kind::Steps => &mut self.steps,
            Kind::Heap => &mut self.heap,
            Kind::Fds => &mut self.fds,
            Kind::Output => &mut self.output,
            Kind::Time => &mut self.deadline_ns,
        };
        *slot = value;
    }
}

/// Per-machine governor state: the armed [`Limits`] plus the counters
/// they are checked against.
#[derive(Debug, Clone)]
pub struct Governor {
    limits: Limits,
    /// Eval steps taken so far (monotone).
    steps: u64,
    /// Bytes written through the machine so far (monotone).
    out_bytes: u64,
    /// Bitmask of kinds whose 90% warning already fired.
    warned: u8,
    /// True iff any limit other than depth is armed — the fast path
    /// in [`charge`] checks this single bool.
    active: bool,
}

impl Governor {
    /// Creates a governor with the given limits armed.
    pub fn new(limits: Limits) -> Governor {
        let mut g = Governor {
            limits,
            steps: 0,
            out_bytes: 0,
            warned: 0,
            active: false,
        };
        g.recompute_active();
        g
    }

    /// The currently armed limits.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Eval steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Bytes written through `Machine::write_fd` so far.
    pub fn out_bytes(&self) -> u64 {
        self.out_bytes
    }

    /// Arms `kind` at `value` unconditionally — used by the CLI and
    /// the permanent two-argument `%limit` form, which may *raise* a
    /// limit (e.g. `--limit depth=500` over the default 150).
    pub fn set(&mut self, kind: Kind, value: Option<u64>) {
        self.limits.set(kind, value);
        self.warned &= !kind.bit();
        self.recompute_active();
    }

    /// Arms `kind` at `value` or the already-armed value, whichever is
    /// tighter — the scoped `%limit kind n {cmd}` form uses this so an
    /// inner sandbox can never loosen an outer one.
    pub fn tighten(&mut self, kind: Kind, value: u64) {
        let new = match self.limits.get(kind) {
            Some(old) => old.min(value),
            None => value,
        };
        self.limits.set(kind, Some(new));
        self.recompute_active();
    }

    /// Disarms `kind` (breach does this for monotone counters so the
    /// catch handler does not immediately re-trip).
    pub fn disarm(&mut self, kind: Kind) {
        self.limits.set(kind, None);
        self.recompute_active();
    }

    /// Captures the state the scoped `%limit` form must restore.
    pub fn snapshot(&self) -> (Limits, u8) {
        (self.limits, self.warned)
    }

    /// Restores a [`Governor::snapshot`] after a scoped `%limit` body
    /// finishes (normally or by unwinding).
    pub fn restore(&mut self, snap: (Limits, u8)) {
        self.limits = snap.0;
        self.warned = snap.1;
        self.recompute_active();
    }

    /// Records `n` bytes written through the machine. Only counts —
    /// the quota is checked at the next [`charge`], never here, so the
    /// warning path can itself write to fd 2 without recursing.
    pub fn note_output(&mut self, n: usize) {
        self.out_bytes += n as u64;
    }

    fn recompute_active(&mut self) {
        self.active = self.limits.steps.is_some()
            || self.limits.heap.is_some()
            || self.limits.fds.is_some()
            || self.limits.output.is_some()
            || self.limits.deadline_ns.is_some();
    }
}

/// Converts a pending signal into the error that unwinds the
/// interpreter: `sigkill` exits the shell, anything else becomes the
/// catchable `signal <name>` exception from the paper.
pub fn signal_error<O: Os + Clone>(m: &mut Machine<O>, sig: Signal) -> EsError {
    if sig == Signal::Kill {
        return EsError::Exit(1);
    }
    m.exception(&["signal", sig.name()])
}

/// Raises the catchable `limit <kind> <used> <max>` exception and
/// disarms the tripped limit so the handler can run without
/// immediately re-tripping. Depth is the exception to the exception:
/// unwinding shrinks `Machine::depth` back below the limit naturally,
/// and disarming it would permanently remove the recursion guard.
pub fn breach<O: Os + Clone>(m: &mut Machine<O>, kind: Kind, used: u64, max: u64) -> EsError {
    if kind != Kind::Depth {
        m.governor_mut().disarm(kind);
    }
    m.exception(&["limit", kind.name(), &used.to_string(), &max.to_string()])
}

/// Writes the one-shot 90% warning for `kind` to the *owning
/// session's* standard-error stream if it is due.
///
/// The warning goes straight to the kernel console descriptor
/// ([`es_os::STDERR`]), not through shell fd 2: a tenant that
/// redirected fd 2 into a file — or a serving slot whose fd table is
/// mid-recycle — still gets the warning on its own stderr stream, and
/// it can never interleave into another session's output because each
/// pooled session owns its kernel. Bypassing [`Machine::write_fd`]
/// also keeps shell-generated warnings from counting against the
/// tenant's own output quota.
pub fn soft_warn<O: Os + Clone>(m: &mut Machine<O>, kind: Kind, used: u64, max: u64) {
    if m.governor().warned & kind.bit() != 0 {
        return;
    }
    // u128 so huge limits can't overflow the comparison.
    if (used as u128) * 10 < (max as u128) * 9 {
        return;
    }
    m.governor_mut().warned |= kind.bit();
    let msg = format!("es: warning: {} limit at {}/{} (90%)\n", kind.name(), used, max);
    let _ = es_os::write_fully(m.os_mut(), es_os::STDERR, msg.as_bytes());
}

/// The interpreter's per-step accounting choke point: advances the
/// virtual clock, polls for signals, counts the step, and (only when
/// some limit is armed) checks every governed resource. Called at
/// command dispatch and at the top of each loop iteration — points
/// where all live refs are rooted, so the heap check may collect.
pub fn charge<O: Os + Clone>(m: &mut Machine<O>) -> EsResult<()> {
    // Cooperative yield first: when a scheduler owns this machine the
    // tick may park the thread until the next timeslice is granted.
    // Ticking before the clock advance keeps slice accounting in
    // steps, so a yielded machine's virtual time is unaffected by how
    // long it sat parked.
    if let Some(y) = m.yielder() {
        if y.tick() == YieldAction::Cancel {
            return Err(EsError::Exit(CANCEL_EXIT));
        }
    }
    m.os_mut().advance_ns(EVAL_STEP_NS);
    if let Some(sig) = m.os_mut().take_signal() {
        return Err(signal_error(m, sig));
    }
    m.governor_mut().steps += 1;
    if !m.governor().active {
        return Ok(());
    }
    check_limits(m)
}

/// The slow path of [`charge`]: every armed limit is compared against
/// its counter, warning at 90% and unwinding on breach.
#[cold]
fn check_limits<O: Os + Clone>(m: &mut Machine<O>) -> EsResult<()> {
    if let Some(max) = m.governor().limits.steps {
        let used = m.governor().steps;
        if used >= max {
            return Err(breach(m, Kind::Steps, used, max));
        }
        soft_warn(m, Kind::Steps, used, max);
    }
    if let Some(deadline) = m.governor().limits.deadline_ns {
        let now = m.os().now_ns();
        if now >= deadline {
            // The watchdog: an expired deadline is SIGALRM, not a
            // `limit` exception — it rides the signal path so spoofed
            // signal handling sees it too.
            m.governor_mut().disarm(Kind::Time);
            return Err(signal_error(m, Signal::Alrm));
        }
    }
    if let Some(max) = m.governor().limits.output {
        let used = m.governor().out_bytes;
        if used >= max {
            return Err(breach(m, Kind::Output, used, max));
        }
        soft_warn(m, Kind::Output, used, max);
    }
    if let Some(max) = m.governor().limits.fds {
        let used = m.os().open_desc_count() as u64;
        if used > max {
            return Err(breach(m, Kind::Fds, used, max));
        }
        soft_warn(m, Kind::Fds, used, max);
    }
    if let Some(max) = m.governor().limits.heap {
        if m.heap.len() as u64 > max {
            if let Some(live) = m.heap.enforce_budget(max) {
                return Err(breach(m, Kind::Heap, live, max));
            }
        }
        soft_warn(m, Kind::Heap, m.heap.len() as u64, max);
    }
    Ok(())
}

/// Converts a user-supplied limit value into the absolute form
/// [`Limits`] stores. Steps and output are budgets *from here* ("1000
/// more steps"); time is a deadline `value` milliseconds from now;
/// depth, heap and fds are already absolute.
pub fn resolve<O: Os + Clone>(m: &Machine<O>, kind: Kind, value: u64) -> u64 {
    match kind {
        Kind::Steps => m.governor().steps.saturating_add(value),
        Kind::Output => m.governor().out_bytes.saturating_add(value),
        Kind::Time => m.os().now_ns().saturating_add(value.saturating_mul(1_000_000)),
        Kind::Depth | Kind::Heap | Kind::Fds => value,
    }
}
