//! Differential-testing entry points: drive a scripted session on any
//! kernel backend and collect everything observable as one value.
//!
//! The conformance harness (`crates/es-conform`) boots one machine on
//! [`es_os::SimOs`] and one on [`es_os::RealOs`], runs the same
//! session through [`run_session`], and compares the two
//! [`SessionTrace`]s field by field — the Smoosh-style oracle from
//! ROADMAP item 5. The in-crate fault/limit soaks use the same entry
//! point so "what a session did" is defined in exactly one place.

use crate::machine::Machine;
use es_os::Os;

/// Everything observable from driving one scripted session: per-command
/// outcomes (results or errors — errors are data here, not failures),
/// console bytes, and the kernel descriptor count before and after.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTrace {
    /// One entry per command: `"ok: <values>"` or `"err: <message>"`.
    pub outcomes: Vec<String>,
    /// Everything the session wrote to standard output.
    pub stdout: String,
    /// Everything the session wrote to standard error.
    pub stderr: String,
    /// Open kernel descriptors when the session started.
    pub baseline_fds: usize,
    /// Open kernel descriptors when the session finished.
    pub open_fds: usize,
}

impl SessionTrace {
    /// Descriptors gained (leaked) or lost relative to the baseline; a
    /// clean session reports 0.
    pub fn fd_delta(&self) -> isize {
        self.open_fds as isize - self.baseline_fds as isize
    }
}

/// Runs each command of `session` in order on an already-booted
/// machine and returns the trace. Commands that fail keep going —
/// an error outcome is part of the observable behaviour being traced.
pub fn run_session<O: Os + Clone>(
    m: &mut Machine<O>,
    session: &[impl AsRef<str>],
) -> SessionTrace {
    run_session_with(m, session, |_| {})
}

/// [`run_session`] with a hook called before each command — the limit
/// soaks use it to re-arm a fresh step budget per command.
pub fn run_session_with<O, F>(
    m: &mut Machine<O>,
    session: &[impl AsRef<str>],
    mut before_each: F,
) -> SessionTrace
where
    O: Os + Clone,
    F: FnMut(&mut Machine<O>),
{
    let baseline_fds = m.os().open_desc_count();
    let mut outcomes = Vec::with_capacity(session.len());
    for cmd in session {
        before_each(m);
        match m.run(cmd.as_ref()) {
            Ok(v) => outcomes.push(format!("ok: {}", v.join(" "))),
            Err(e) => outcomes.push(format!("err: {e}")),
        }
    }
    let (stdout, stderr) = m.os_mut().take_console();
    let open_fds = m.os().open_desc_count();
    SessionTrace {
        outcomes,
        stdout,
        stderr,
        baseline_fds,
        open_fds,
    }
}
