# initial.es — the es bootstrap, written in es.
#
# Like the original (which converted this file to a C string at compile
# time), this script wires the shell up from the inside: every hook the
# parser's rewriting targets is bound to its unoverridable $& primitive,
# the traditional command names are bound, the path/PATH and home/HOME
# settor aliases are installed, and the default interactive loop is
# defined -- verbatim from Figure 3 of the paper.

# --- hooks for the syntax rewriting ------------------------------------
fn-%seq = $&seq
fn-%and = $&and
fn-%or = $&or
fn-%not = $&not
fn-%background = $&background
fn-%create = $&create
fn-%open = $&open
fn-%append = $&append
fn-%dup = $&dup
fn-%close = $&close
fn-%here = $&here
fn-%pipe = $&pipe
fn-%backquote = $&backquote
fn-%pathsearch = $&pathsearch
fn-%flatten = $&flatten
fn-%fsplit = $&fsplit
fn-%split = $&split
fn-%parse = $&parse
fn-%cd = $&cd

# --- built-in shell functions -------------------------------------------
fn-. = $&dot
fn-break = $&break
fn-return = $&return
fn-catch = $&catch
fn-throw = $&throw
fn-if = $&if
fn-while = $&while
fn-forever = $&forever
fn-result = $&result
fn-eval = $&eval
fn-true = $&true
fn-false = $&false
fn-echo = $&echo
fn-fork = $&fork
fn-exit = $&exit
fn-time = $&time
fn-wait = $&wait
fn-whatis = $&whatis
fn-vars = $&vars
fn-version = $&version
fn-primitives = $&primitives
fn-collect = $&collect
fn-gcstats = $&gcstats

# --- resource governor -----------------------------------------------------
# %limit kind n       arms a limit permanently;
# %limit kind n {cmd} sandboxes cmd under the tightened limit.
# A breach raises the catchable exception `limit kind used max`
# (the time limit delivers `signal sigalrm` instead — a watchdog).
fn-%limit = $&limit
fn-limits = $&limits
fn limit { %limit $* }

fn cd { %cd $* }

# --- prompts --------------------------------------------------------------
# The default prompt is `; ' so whole lines (prompt included) can be cut
# and pasted back to the shell for re-execution.
prompt = ('; ' '')
fn-%prompt = {}

# --- path/PATH aliasing (section "Initialization" of the paper) -----------
# Each settor temporarily nulls its opposite-case cousin to avoid
# infinite recursion between the two.
set-path = @ {
	local (set-PATH = ) {
		PATH = <>{%flatten : $*}
	}
	return $*
}
set-PATH = @ {
	local (set-path = ) {
		path = <>{%fsplit : $*}
	}
	return $*
}

# --- home/HOME aliasing, same trick ----------------------------------------
set-home = @ {
	local (set-HOME = ) {
		HOME = $^*
	}
	return $*
}
set-HOME = @ {
	local (set-home = ) {
		home = $*
	}
	return $*
}

# --- variables not worth exporting ------------------------------------------
noexport = noexport prompt TERM

# --- the default interactive loop (Figure 3, verbatim) -----------------------
fn %interactive-loop {
	let (result = 0) {
		catch @ e msg {
			if {~ $e eof} {
				return $result
			} {~ $e error} {
				echo >[1=2] $msg
			} {
				echo >[1=2] uncaught exception: $e $msg
			}
			throw retry
		} {
			while {} {
				%prompt
				let (cmd = <>{%parse $prompt}) {
					result = <>{$cmd}
				}
			}
		}
	}
}

# --- a small higher-order library -------------------------------------------
# Not in the original initial.es, but exactly the programming style the
# paper advertises: functions over functions, built from the same
# primitives users have.
fn apply cmd args {
	for (i = $args) $cmd $i
}
fn map cmd args {
	let (out = ) {
		for (i = $args) {
			out = $out <>{$cmd $i}
		}
		result $out
	}
}
fn filter pred args {
	let (out = ) {
		for (i = $args) {
			if {$pred $i} {
				out = $out $i
			}
		}
		result $out
	}
}
fn fold cmd acc args {
	for (i = $args) {
		acc = <>{$cmd $acc $i}
	}
	result $acc
}
