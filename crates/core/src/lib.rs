//! The es shell interpreter — the paper's primary contribution.
//!
//! This crate implements the semantics described in *Es: A shell with
//! higher-order functions* (Haahr & Rakitzis, Winter USENIX 1993):
//!
//! * **First-class closures** with lexical scoping (`let`, lambda
//!   parameters) plus dynamic binding (`local`), stored in a copying
//!   garbage-collected heap (`es-gc`) because closures capturing
//!   bindings form true cyclic structures.
//! * **Everything is a function call**: the parser (`es-syntax`)
//!   rewrites all shell syntax into calls on `%`-hooks; `initial.es`
//!   (itself written in es, embedded at compile time like the
//!   original's `initial.es`) binds each hook to an unoverridable
//!   `$&` primitive. Spoofing a hook is ordinary assignment.
//! * **Exceptions** (`throw` / `catch`) with the six
//!   interpreter-known exceptions: `error`, `eof`, `retry`, `break`,
//!   `return`, `signal`.
//! * **Rich return values**: any command returns a list of strings
//!   and/or closures, accessed with `<>{cmd}`.
//! * **Settor variables**: assigning `x` runs `set-x` first; the
//!   `path`/`PATH` aliasing from the paper is implemented exactly that
//!   way in `initial.es`.
//! * **Functions in the environment**: closures are unparsed to
//!   `%closure(a=b)@ * {...}` strings and exported, so a child shell
//!   reconstructs all shell state without reading any rc file.
//! * **Proper tail calls** (the paper's stated future work) with a
//!   switchable naive mode so experiment E6 can measure the 1993
//!   stack-growth behaviour.
//!
//! # Examples
//!
//! ```
//! use es_core::Machine;
//! use es_os::SimOs;
//!
//! let mut m = Machine::new(SimOs::new()).unwrap();
//! // The paper's apply function, defined and used with a lambda.
//! m.run("fn apply cmd args { for (i = $args) $cmd $i }").unwrap();
//! m.run("apply @ i {echo ($i)} 1.. 2.. 3..").unwrap();
//! assert_eq!(m.os_mut().take_output(), "1..\n2..\n3..\n");
//! ```

pub mod compile;
mod env;
mod eval;
mod exception;
pub mod governor;
pub mod harness;
mod machine;
mod prims;
mod value;
mod vm;

#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_prop;

pub use exception::{EsError, EsResult};
pub use machine::{Engine, Machine, Options, Yield, YieldAction};
pub use value::Term;

/// The bootstrap script, written in es itself (like the original's
/// `initial.es`, converted to a C string at compile time). It binds
/// every `%`-hook to its `$&` primitive, defines the `path`/`PATH` and
/// `home`/`HOME` settor aliases, and defines `%interactive-loop`
/// verbatim from Figure 3 of the paper.
pub const INITIAL_ES: &str = include_str!("initial.es");
