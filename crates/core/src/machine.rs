//! The shell machine: heap, variables, descriptors, input sources.

use crate::env;
use crate::eval;
use crate::exception::{EsError, EsResult};
use crate::governor::{Governor, Kind, Limits};
use crate::value::{self, Term};
use es_gc::{PermSlot, Ref, RootSlot};
use es_os::{Desc, Os};
use es_syntax::ast::Lambda;
use es_syntax::{lower, parse_program};
use std::collections::BTreeMap;
use std::rc::Rc;

/// The interpreter heap: closure payloads are shared lambda ASTs.
pub type Heap = es_gc::Heap<Rc<Lambda>>;

/// Which evaluator executes closure bodies and top-level code.
///
/// Both engines share one semantics (and one test suite — the
/// conformance scenarios and fuzz corpus run differentially across
/// them): the tree walker in [`crate::eval`] is the correctness
/// oracle, the bytecode compiler in [`crate::compile`] +
/// [`crate::vm`] is the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Walk the AST directly (the `--engine tree` oracle).
    Tree,
    /// Compile to bytecode with inline-cached hook dispatch.
    #[default]
    Bytecode,
}

/// Tunable interpreter behaviour.
#[derive(Debug, Clone)]
pub struct Options {
    /// Proper tail calls (the paper's future work). With `false` the
    /// evaluator recurses on tail calls like the 1993 implementation,
    /// which experiment E6 measures.
    pub tail_calls: bool,
    /// Resource limits the machine boots with. The default arms only
    /// the recursion-depth guard at 150 — deep enough for real shell
    /// programs, shallow enough that the guard fires before the Rust
    /// stack runs out even on a 2 MiB test thread in debug builds.
    /// Raise it (with a bigger thread stack) for deliberately deep
    /// non-tail recursion.
    pub limits: Limits,
    /// Reported by `$&isinteractive`.
    pub interactive: bool,
    /// The evaluation engine (bytecode by default; `Tree` is the
    /// oracle behind the shell's `--engine tree` flag).
    pub engine: Engine,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            tail_calls: true,
            limits: Limits::default_interpreter(),
            interactive: false,
            engine: Engine::default(),
        }
    }
}

/// What a [`Yield`] hook tells the interpreter to do at a charge
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldAction {
    /// Keep running (possibly after having blocked for a while — the
    /// hook is allowed to park the calling thread until a scheduler
    /// grants another timeslice).
    Run,
    /// Stop this machine now. The interpreter unwinds with the
    /// *uncatchable* `EsError::Exit` so tenant code cannot intercept
    /// a cancellation the way it can catch a `limit` breach.
    Cancel,
}

/// A cooperative-yield hook, consulted once per
/// [`crate::governor::charge`] — the interpreter's clock-tick /
/// signal-poll / step-count seam. An external scheduler (es-serve's
/// run loop) installs one per machine to timeslice many sessions
/// fairly: `tick` blocks when the current slice is spent and returns
/// when the next one is granted. `tick` must not touch the machine —
/// it only observes/updates scheduler state — so yielding is invisible
/// to the virtual clock and the replay oracle.
pub trait Yield {
    /// Called once per eval step; may block. See [`YieldAction`].
    fn tick(&self) -> YieldAction;
}

/// An input source for `$&parse` / `$&dot`.
#[derive(Debug, Clone)]
pub enum Input {
    /// In-memory text (scripts, `eval`).
    Text { src: String, pos: usize },
    /// The shell's standard input, with a lookahead buffer.
    Console { pending: String },
}

/// The es shell machine, generic over the kernel backend.
///
/// `O: Clone` because `fork` clones the whole machine — heap, globals,
/// descriptors, and kernel — exactly the image a real `fork(2)` would
/// produce.
pub struct Machine<O: Os + Clone> {
    /// The garbage-collected value heap (public for stats/benches).
    pub heap: Heap,
    /// Evaluator options.
    pub opts: Options,
    os: O,
    globals: BTreeMap<String, PermSlot>,
    /// Dynamic-binding stack: `(name, value slot)`, innermost last.
    dynamics: Vec<(String, RootSlot)>,
    /// The shell's fd table: shell fd → kernel descriptor.
    fds: BTreeMap<u32, Desc>,
    inputs: Vec<Input>,
    /// Current non-tail application depth and high-water mark (E6).
    pub depth: usize,
    /// Deepest application nesting seen (E6 measures this).
    pub max_depth_seen: usize,
    bg_pid: i32,
    /// Resource accounting and armed limits (see [`crate::governor`]).
    governor: Governor,
    /// Hook-generation counter: bumped whenever any `fn-%*` binding is
    /// created, mutated, or removed (globals, dynamics, lexicals, and
    /// closure parameters alike). Inline caches key on it.
    hook_gen: u64,
    /// The counter's value right after `initial.es` bound the stock
    /// hooks — while `hook_gen` still equals it, every hook provably
    /// carries its boot binding (`fn-%pipe = $&pipe`, …).
    hook_boot_gen: u64,
    /// Compiled-body cache: lambda tree identity → bytecode.
    codes: std::collections::HashMap<crate::compile::LambdaKey, Rc<crate::compile::Code>>,
    /// Cooperative-yield hook (see [`Yield`]); `None` outside a
    /// scheduler. Forked children share the parent's hook, so a
    /// session's forks charge against the same timeslice.
    yielder: Option<Rc<dyn Yield>>,
    /// The machine as it was the moment boot finished (hooks bound,
    /// environment imported, default limits armed). [`Machine::recycle`]
    /// restores this image in place; pooled session slots use it to
    /// hand every tenant a provably cold-equivalent machine. Shared by
    /// `Rc` so forks and clones don't duplicate it.
    boot_image: Option<Rc<Machine<O>>>,
}

impl<O: Os + Clone> Clone for Machine<O> {
    fn clone(&self) -> Self {
        Machine {
            heap: self.heap.clone(),
            opts: self.opts.clone(),
            os: self.os.clone(),
            globals: self.globals.clone(),
            dynamics: self.dynamics.clone(),
            fds: self.fds.clone(),
            inputs: self.inputs.clone(),
            depth: self.depth,
            max_depth_seen: self.max_depth_seen,
            bg_pid: self.bg_pid,
            governor: self.governor.clone(),
            hook_gen: self.hook_gen,
            hook_boot_gen: self.hook_boot_gen,
            codes: self.codes.clone(),
            yielder: self.yielder.clone(),
            boot_image: self.boot_image.clone(),
        }
    }
}

impl<O: Os + Clone> Machine<O> {
    /// Boots a machine: imports the kernel environment, runs the
    /// embedded `initial.es`, and re-applies imported variables so the
    /// `path`/`PATH` settors fire (which is how `$path` appears).
    pub fn new(os: O) -> EsResult<Machine<O>> {
        Machine::with_options(os, Options::default())
    }

    /// Boots with explicit [`Options`].
    pub fn with_options(os: O, opts: Options) -> EsResult<Machine<O>> {
        let governor = Governor::new(opts.limits);
        let mut m = Machine {
            heap: Heap::new(),
            opts,
            os,
            globals: BTreeMap::new(),
            dynamics: Vec::new(),
            fds: BTreeMap::new(),
            inputs: Vec::new(),
            depth: 0,
            max_depth_seen: 0,
            bg_pid: 9000,
            governor,
            hook_gen: 0,
            hook_boot_gen: 0,
            codes: std::collections::HashMap::new(),
            yielder: None,
            boot_image: None,
        };
        m.fds.insert(0, es_os::STDIN);
        m.fds.insert(1, es_os::STDOUT);
        m.fds.insert(2, es_os::STDERR);
        // Variables the interpreter itself relies on.
        m.set_global_strs("ifs", &[" \t\n"]);
        let pid = 5000.to_string();
        m.set_global_strs("pid", &[&pid]);
        m.run_text(crate::INITIAL_ES)
            .map_err(|e| m.render_boot_error(e))?;
        // Hooks are now exactly their boot bindings; anything later —
        // including a `fn-%*` closure inherited through the
        // environment import below — dirties the generation.
        m.hook_boot_gen = m.hook_gen;
        env::import_environment(&mut m)?;
        // Freeze the finished boot state so pooled slots can restore
        // it. The image's own `boot_image` is `None` (no recursion);
        // `recycle` puts the `Rc` back after restoring from it.
        m.boot_image = Some(Rc::new(m.clone()));
        Ok(m)
    }

    /// Restores this machine to its boot image: boot hook bindings,
    /// default limits re-armed, globals, heap, fd table, inputs, and
    /// the kernel itself all return to the exact post-boot state —
    /// a recycled pooled slot is indistinguishable from a cold-started
    /// machine (the serve suite proves this bit-for-bit on a probe
    /// script). Returns `false` (and does nothing) on a machine with
    /// no boot image, i.e. one that is itself a boot image.
    pub fn recycle(&mut self) -> bool {
        let Some(image) = self.boot_image.take() else {
            return false;
        };
        let yielder = self.yielder.take();
        *self = (*image).clone();
        self.boot_image = Some(image);
        self.yielder = yielder;
        true
    }

    /// Installs (or with `None`, removes) the cooperative-yield hook.
    pub fn set_yielder(&mut self, y: Option<Rc<dyn Yield>>) {
        self.yielder = y;
    }

    /// The installed cooperative-yield hook, if any.
    #[inline]
    pub fn yielder(&self) -> Option<&Rc<dyn Yield>> {
        self.yielder.as_ref()
    }

    fn render_boot_error(&mut self, e: EsError) -> EsError {
        if let EsError::Throw(list) = e {
            let msg = value::read_strings(&self.heap, list).join(" ");
            let _ = self.write_fd(2, format!("es: initial.es failed: {msg}\n").as_bytes());
        }
        e
    }

    /// Allocates a fake pid for a background job (`$apid`).
    pub fn next_bg_pid(&mut self) -> i32 {
        self.bg_pid += 1;
        self.bg_pid
    }

    /// Adopts a forked child's kernel-level effects (terminal output,
    /// filesystem writes, clock) back into this machine's kernel.
    pub fn absorb_fork_output(&mut self, child: &mut Machine<O>) {
        let child_os = child.os.clone();
        self.os.absorb_fork(child_os);
    }

    /// Encodes all exportable shell state as environment strings —
    /// what every external command (and child es) receives. Closures
    /// travel as `%closure(...)` strings (paper, "The Environment").
    pub fn export_environment(&self) -> Vec<(String, String)> {
        env::build_environment(self)
    }

    /// The kernel backend (mutable).
    pub fn os_mut(&mut self) -> &mut O {
        &mut self.os
    }

    /// The kernel backend.
    pub fn os(&self) -> &O {
        &self.os
    }

    /// The resource governor.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// The resource governor (mutable).
    pub fn governor_mut(&mut self) -> &mut Governor {
        &mut self.governor
    }

    /// Arms a limit from a `kind=value` style pair (the CLI's
    /// `--limit` flag). This is a raw set — it may raise an existing
    /// limit, unlike the scoped `%limit` form which only tightens.
    pub fn arm_limit(&mut self, kind: &str, value: u64) -> Result<(), String> {
        let k = Kind::parse(kind).ok_or_else(|| {
            format!(
                "unknown limit kind '{kind}' (expected one of depth, steps, heap, fds, output, time)"
            )
        })?;
        let abs = crate::governor::resolve(self, k, value);
        self.governor.set(k, Some(abs));
        Ok(())
    }

    // ----- hook generation -----------------------------------------------------

    /// Records that a binding named `name` was created, mutated, or
    /// removed. Every binding site funnels through this (or calls it
    /// alongside) so `fn-%*` changes can never escape the counter.
    #[inline]
    pub fn note_binding(&mut self, name: &str) {
        if name.starts_with("fn-%") {
            self.hook_gen += 1;
        }
    }

    /// The current hook generation (inline-cache key).
    #[inline]
    pub fn hook_gen(&self) -> u64 {
        self.hook_gen
    }

    /// True while no `fn-%*` binding has changed since boot — the
    /// state in which every hook provably still means its primitive
    /// and dispatch may skip the environment lookup entirely.
    #[inline]
    pub fn hooks_pristine(&self) -> bool {
        self.hook_gen == self.hook_boot_gen
    }

    /// The compiled bytecode for a closure body, compiling and caching
    /// on first call (keyed by tree identity, so closures reparsed
    /// from the environment share code with their originals).
    pub fn code_for(&mut self, lambda: &Rc<Lambda>) -> Rc<crate::compile::Code> {
        let key = crate::compile::LambdaKey(Rc::clone(lambda));
        if let Some(code) = self.codes.get(&key) {
            return Rc::clone(code);
        }
        // Bound: fuzzed sessions can mint unbounded distinct lambdas.
        if self.codes.len() >= 4096 {
            self.codes.clear();
        }
        let code = Rc::new(crate::compile::compile_lambda(lambda));
        self.codes.insert(key, Rc::clone(&code));
        code
    }

    // ----- running code --------------------------------------------------------

    /// Parses, lowers, and evaluates `src` in the global scope,
    /// returning the (unrooted) value list.
    pub fn run_text(&mut self, src: &str) -> EsResult<Ref> {
        // The paper disables collection while the yacc parser runs;
        // our parser allocates nothing in the GC heap, but we keep the
        // discipline so the stats show the same phase structure.
        self.heap.gc_disable();
        let parsed = parse_program(src);
        self.heap.gc_enable();
        let node = match parsed {
            Ok(p) => lower(p),
            Err(e) => return Err(self.error(&format!("parse error: {}", e.msg))),
        };
        let base = self.heap.roots_len();
        let env = self.heap.push_root(Ref::NIL);
        let result = crate::vm::run_node(self, &node, env, None);
        let out = match result {
            Ok(flow) => Ok(eval::must_value(flow)),
            Err(e) => Err(e),
        };
        self.heap.truncate_roots(base);
        out
    }

    /// Like [`Machine::run_text`] but returns the value as strings
    /// (closures unparsed) — the convenient form for tests and
    /// examples.
    pub fn run(&mut self, src: &str) -> Result<Vec<String>, String> {
        match self.run_text(src) {
            Ok(v) => Ok(value::read_strings(&self.heap, v)),
            Err(EsError::Throw(list)) => {
                Err(value::read_strings(&self.heap, list).join(" "))
            }
            Err(EsError::Exit(code)) => Err(format!("exit {code}")),
        }
    }

    /// Like [`Machine::run`] but discards the value without
    /// stringifying it — the right call in benchmarks and loops where
    /// values can be large closure graphs.
    pub fn run_quiet(&mut self, src: &str) -> Result<(), String> {
        match self.run_text(src) {
            Ok(_) => Ok(()),
            Err(EsError::Throw(list)) => {
                Err(value::read_strings(&self.heap, list).join(" "))
            }
            Err(EsError::Exit(code)) => Err(format!("exit {code}")),
        }
    }

    /// Runs the interactive loop (`%interactive-loop`, Figure 3) until
    /// EOF or exit; returns the shell's exit status.
    pub fn repl(&mut self) -> i32 {
        self.opts.interactive = true;
        self.inputs.push(Input::Console {
            pending: String::new(),
        });
        let result = self.run_text("%interactive-loop");
        self.inputs.pop();
        match result {
            Ok(v) => {
                if value::truth(&self.heap, v) {
                    0
                } else {
                    1
                }
            }
            Err(EsError::Exit(code)) => code,
            Err(EsError::Throw(list)) => {
                let msg = value::read_strings(&self.heap, list).join(" ");
                let _ = self.write_fd(2, format!("es: uncaught exception: {msg}\n").as_bytes());
                1
            }
        }
    }

    // ----- exceptions -----------------------------------------------------------

    /// Builds an `error` exception.
    pub fn error(&mut self, msg: &str) -> EsError {
        let list = value::list_from_strs(&mut self.heap, &["error", msg]);
        EsError::Throw(list)
    }

    /// Builds an arbitrary exception from string parts.
    pub fn exception(&mut self, parts: &[&str]) -> EsError {
        let list = value::list_from_strs(&mut self.heap, parts);
        EsError::Throw(list)
    }

    // ----- variables -------------------------------------------------------------

    /// Resolves a variable: lexical chain, then dynamic bindings, then
    /// globals. The returned ref is valid until the next allocation.
    pub fn lookup(&self, env: Ref, name: &str) -> Option<Ref> {
        let mut cur = env;
        while !cur.is_nil() {
            let (bname, value, next) = self.heap.binding_parts(cur);
            if bname == name {
                return Some(value);
            }
            cur = next;
        }
        for (dname, slot) in self.dynamics.iter().rev() {
            if dname == name {
                return Some(self.heap.root(*slot));
            }
        }
        self.globals.get(name).map(|slot| self.heap.perm(*slot))
    }

    /// Assigns `value` to `name`: mutates the innermost lexical
    /// binding, else the innermost dynamic binding, else the global
    /// (creating or, when the value is empty, deleting it).
    ///
    /// Settor dispatch (`set-name`) is the *evaluator's* job, because
    /// it must run es code; this method is the raw store.
    pub fn assign_raw(&mut self, env: Ref, name: &str, value: Ref) {
        self.note_binding(name);
        let mut cur = env;
        while !cur.is_nil() {
            let (bname, _, next) = self.heap.binding_parts(cur);
            if bname == name {
                self.heap.set_binding_value(cur, value);
                return;
            }
            cur = next;
        }
        for (dname, slot) in self.dynamics.iter().rev() {
            if dname == name {
                let slot = *slot;
                self.heap.set_root(slot, value);
                return;
            }
        }
        if value.is_nil() {
            // Assigning the empty list removes a global (this is how
            // `fn-x =` undefines a function and how `recache` flushes
            // the Figure 2 path cache).
            if let Some(slot) = self.globals.remove(name) {
                self.heap.free_perm(slot);
            }
            return;
        }
        match self.globals.get(name) {
            Some(slot) => self.heap.set_perm(*slot, value),
            None => {
                let slot = self.heap.alloc_perm(value);
                self.globals.insert(name.to_string(), slot);
            }
        }
    }

    /// Sets a global to a list of strings (bootstrap convenience).
    pub fn set_global_strs(&mut self, name: &str, items: &[&str]) {
        let list = value::list_from_strs(&mut self.heap, items);
        self.assign_raw(Ref::NIL, name, list);
    }

    /// Reads a variable as strings (tests/examples convenience).
    pub fn get_var(&self, name: &str) -> Vec<String> {
        match self.lookup(Ref::NIL, name) {
            Some(v) => value::read_strings(&self.heap, v),
            None => Vec::new(),
        }
    }

    /// Sorted global variable names (`$&vars`).
    pub fn global_names(&self) -> Vec<String> {
        self.globals.keys().cloned().collect()
    }

    /// Pushes a dynamic binding (used by `local`); pop with
    /// [`Machine::pop_dynamics`].
    pub fn push_dynamic(&mut self, name: &str, value: Ref) {
        self.note_binding(name);
        let slot = self.heap.push_root(value);
        self.dynamics.push((name.to_string(), slot));
    }

    /// Current dynamic stack depth (for scoped restore).
    pub fn dynamics_len(&self) -> usize {
        self.dynamics.len()
    }

    /// Pops dynamic bindings down to `len`. The caller must truncate
    /// the matching root scope itself (bindings own root slots).
    pub fn pop_dynamics(&mut self, len: usize) {
        self.dynamics.truncate(len);
    }

    // ----- descriptors ------------------------------------------------------------

    /// The kernel descriptor for shell fd `fd`.
    pub fn fd(&self, fd: u32) -> Option<Desc> {
        self.fds.get(&fd).copied()
    }

    /// Replaces shell fd `fd`, returning the previous descriptor (the
    /// caller restores it after the redirected body runs).
    pub fn set_fd(&mut self, fd: u32, d: Desc) -> Option<Desc> {
        self.fds.insert(fd, d)
    }

    /// Removes shell fd `fd`, returning the previous descriptor.
    pub fn remove_fd(&mut self, fd: u32) -> Option<Desc> {
        self.fds.remove(&fd)
    }

    /// The current fd layout, for passing to [`Os::run`].
    pub fn fd_layout(&self) -> Vec<(u32, Desc)> {
        self.fds.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Writes all of `data` to shell fd `fd`, looping on partial
    /// writes and retrying interrupted ones (bounded). On failure the
    /// error reports how many bytes made it out first.
    pub fn write_fd(&mut self, fd: u32, data: &[u8]) -> Result<usize, es_os::WriteError> {
        let result = match self.fd(fd) {
            Some(d) => es_os::write_fully(&mut self.os, d, data),
            None => Err(es_os::WriteError {
                written: 0,
                cause: es_os::OsError::BadF,
            }),
        };
        // Bytes that made it out count against the output quota even
        // when the write ultimately failed partway.
        match &result {
            Ok(n) => self.governor.note_output(*n),
            Err(e) => self.governor.note_output(e.written),
        }
        result
    }

    /// Closes a kernel descriptor, retrying interrupted closes so an
    /// injected `EINTR` cannot leak the slot. Other errors (already
    /// closed, bad descriptor) are ignored — on cleanup paths there is
    /// nothing further to do with them.
    pub fn close_desc(&mut self, d: Desc) {
        let _ = es_os::retry_intr(|| self.os.close(d));
    }

    /// Runs `body` with shell fd `fd` pointing at `d`, then — on every
    /// exit path, value or exception — closes `d` and restores the
    /// previous table entry. This is the scope guard all redirection
    /// primitives hang off: exception safety here is what makes
    /// `catch` and redirections compose.
    pub fn with_fd<R>(
        &mut self,
        fd: u32,
        d: Desc,
        body: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let saved = self.set_fd(fd, d);
        let result = body(self);
        self.close_desc(d);
        match saved {
            Some(old) => {
                self.set_fd(fd, old);
            }
            None => {
                self.remove_fd(fd);
            }
        }
        result
    }

    // ----- input sources -------------------------------------------------------------

    /// Pushes an input source (scripts, eval) for `$&parse`.
    pub fn push_input(&mut self, input: Input) {
        self.inputs.push(input);
    }

    /// Pops the current input source.
    pub fn pop_input(&mut self) {
        self.inputs.pop();
    }

    /// Reads one line (without the newline) from the current input
    /// source; `None` at end of input (→ the `eof` exception).
    pub fn read_line(&mut self) -> Option<String> {
        if let Input::Text { src, pos } = self.inputs.last_mut()? {
            if *pos >= src.len() {
                return None;
            }
            let rest = &src[*pos..];
            return Some(match rest.find('\n') {
                Some(i) => {
                    let line = rest[..i].to_string();
                    *pos += i + 1;
                    line
                }
                None => {
                    let line = rest.to_string();
                    *pos = src.len();
                    line
                }
            });
        }
        loop {
            // Serve a buffered line if we have one.
            if let Some(Input::Console { pending }) = self.inputs.last_mut() {
                if let Some(i) = pending.find('\n') {
                    let line = pending[..i].to_string();
                    pending.drain(..=i);
                    return Some(line);
                }
            }
            let desc = self.fds.get(&0).copied()?;
            let mut buf = [0u8; 1024];
            // Bounded EINTR retry: an interrupted console read must
            // not end the REPL. Any other error reads as EOF.
            match es_os::retry_intr(|| self.os.read(desc, &mut buf)) {
                Ok(0) | Err(_) => {
                    // EOF: flush any unterminated final line.
                    if let Some(Input::Console { pending }) = self.inputs.last_mut() {
                        if !pending.is_empty() {
                            return Some(std::mem::take(pending));
                        }
                    }
                    return None;
                }
                Ok(n) => {
                    let text = String::from_utf8_lossy(&buf[..n]).into_owned();
                    if let Some(Input::Console { pending }) = self.inputs.last_mut() {
                        pending.push_str(&text);
                    }
                }
            }
        }
    }

    // ----- convenience for prims --------------------------------------------------

    /// Reads the terms of the list in a root slot.
    pub fn terms_at(&self, slot: RootSlot) -> Vec<Term> {
        value::read_terms(&self.heap, self.heap.root(slot))
    }

    /// Reads the strings of the list in a root slot.
    pub fn strings_at(&self, slot: RootSlot) -> Vec<String> {
        value::read_strings(&self.heap, self.heap.root(slot))
    }
}
