//! Control-flow primitives: seq, if, while, forever, and/or/not,
//! throw/catch, return/break, eval.

use super::{apply_thunk, arg_slot};
use crate::eval::{must_value, throw_is, Flow, TailSlots};
use crate::exception::{EsError, EsResult};
use crate::machine::{Input, Machine};
use crate::value::{self, ListBuilder};
use es_gc::{Ref, RootSlot};
use es_os::Os;

/// `$&seq {a} {b} ...` — run each; value of the last (tail position).
pub fn seq<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    let n = value::list_len(&m.heap, m.heap.root(args));
    let mut last = Flow::Val(Ref::NIL);
    for i in 1..=n {
        let base = m.heap.roots_len();
        let t = arg_slot(m, args, i).expect("index in range");
        let this_tail = if i == n { tail } else { None };
        let flow = apply_thunk(m, t, env, this_tail)?;
        m.heap.truncate_roots(base);
        if i == n {
            last = flow;
        } else {
            let _ = must_value(flow);
        }
    }
    Ok(last)
}

/// `$&if {c1} {t1} [{c2} {t2} ...] [{else}]` — the paper's multi-way
/// conditional (see Figure 3's three-armed `if`).
pub fn if_prim<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    let n = value::list_len(&m.heap, m.heap.root(args));
    let mut i = 1;
    while i <= n {
        if i == n {
            // Trailing else branch.
            let base = m.heap.roots_len();
            let t = arg_slot(m, args, i).expect("index in range");
            let flow = apply_thunk(m, t, env, tail)?;
            m.heap.truncate_roots(base);
            return Ok(flow);
        }
        let base = m.heap.roots_len();
        let cond = arg_slot(m, args, i).expect("index in range");
        let flow = apply_thunk(m, cond, env, None)?;
        let v = must_value(flow);
        let truth = value::truth(&m.heap, v);
        m.heap.truncate_roots(base);
        if truth {
            let base = m.heap.roots_len();
            let t = arg_slot(m, args, i + 1).expect("index in range");
            let flow = apply_thunk(m, t, env, tail)?;
            m.heap.truncate_roots(base);
            return Ok(flow);
        }
        i += 2;
    }
    Ok(Flow::Val(Ref::NIL))
}

/// `$&while {cond} {body}` — loop while cond is true; `break` exits.
pub fn while_prim<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
) -> EsResult<Flow> {
    let result = m.heap.push_root(Ref::NIL);
    loop {
        // Loops whose condition and body never dispatch a command
        // (e.g. `while {} {}`) would otherwise starve the signal poll
        // and the governor.
        crate::governor::charge(m)?;
        let base = m.heap.roots_len();
        let cond = match arg_slot(m, args, 1) {
            Some(c) => c,
            None => return Err(m.error("while: missing condition")),
        };
        let flow = apply_thunk(m, cond, env, None)?;
        let v = must_value(flow);
        let truth = value::truth(&m.heap, v);
        m.heap.truncate_roots(base);
        if !truth {
            break;
        }
        let base = m.heap.roots_len();
        let body = match arg_slot(m, args, 2) {
            Some(b) => b,
            None => break,
        };
        match apply_thunk(m, body, env, None) {
            Ok(flow) => {
                let v = must_value(flow);
                m.heap.truncate_roots(base);
                m.heap.set_root(result, v);
            }
            Err(EsError::Throw(e)) if throw_is(m, e, "break") => {
                let v = m.heap.pair_tail(e);
                m.heap.truncate_roots(base);
                m.heap.set_root(result, v);
                break;
            }
            Err(other) => {
                m.heap.truncate_roots(base);
                return Err(other);
            }
        }
    }
    Ok(Flow::Val(m.heap.root(result)))
}

/// `$&forever {body}`.
pub fn forever<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
) -> EsResult<Flow> {
    loop {
        crate::governor::charge(m)?;
        let base = m.heap.roots_len();
        let body = match arg_slot(m, args, 1) {
            Some(b) => b,
            None => return Err(m.error("forever: missing body")),
        };
        match apply_thunk(m, body, env, None) {
            Ok(_) => m.heap.truncate_roots(base),
            Err(EsError::Throw(e)) if throw_is(m, e, "break") => {
                let v = m.heap.pair_tail(e);
                m.heap.truncate_roots(base);
                return Ok(Flow::Val(v));
            }
            Err(other) => {
                m.heap.truncate_roots(base);
                return Err(other);
            }
        }
    }
}

/// `$&and` / `$&or` over thunks; short-circuiting; the last applied
/// thunk is in tail position.
pub fn and_or<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
    tail: Option<TailSlots>,
    is_and: bool,
) -> EsResult<Flow> {
    let n = value::list_len(&m.heap, m.heap.root(args));
    if n == 0 {
        let v = if is_and {
            value::true_value(&mut m.heap)
        } else {
            value::false_value(&mut m.heap)
        };
        return Ok(Flow::Val(v));
    }
    for i in 1..=n {
        let base = m.heap.roots_len();
        let t = arg_slot(m, args, i).expect("index in range");
        if i == n {
            let flow = apply_thunk(m, t, env, tail)?;
            m.heap.truncate_roots(base);
            return Ok(flow);
        }
        let flow = apply_thunk(m, t, env, None)?;
        let v = must_value(flow);
        let truth = value::truth(&m.heap, v);
        m.heap.truncate_roots(base);
        if truth != is_and {
            // Short circuit: the deciding value is the result.
            return Ok(Flow::Val(v));
        }
    }
    unreachable!("the last thunk returns from inside the loop")
}

/// `$&not {cmd}`.
pub fn not<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let base = m.heap.roots_len();
    let t = match arg_slot(m, args, 1) {
        Some(t) => t,
        None => {
            let v = value::false_value(&mut m.heap);
            return Ok(Flow::Val(v));
        }
    };
    let flow = apply_thunk(m, t, env, None)?;
    let v = must_value(flow);
    let truth = value::truth(&m.heap, v);
    m.heap.truncate_roots(base);
    let v = if truth {
        value::false_value(&mut m.heap)
    } else {
        value::true_value(&mut m.heap)
    };
    Ok(Flow::Val(v))
}

/// `$&throw name args...`.
pub fn throw<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot) -> EsResult<Flow> {
    let list = m.heap.root(args);
    if list.is_nil() {
        return Err(m.error("throw: missing exception name"));
    }
    Err(EsError::Throw(list))
}

/// `$&return args...` / `$&break args...` — unwind to the matching
/// boundary carrying a value.
pub fn unwind<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    kind: &str,
) -> EsResult<Flow> {
    let mut b = ListBuilder::new(&mut m.heap);
    b.push_str(&mut m.heap, kind);
    b.append_slot(&mut m.heap, args);
    Err(EsError::Throw(b.finish(&m.heap)))
}

/// `$&catch handler body` — run body; on any exception run handler
/// with the exception as arguments; a `retry` from the handler re-runs
/// the body (exactly Figure 3's semantics).
pub fn catch<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
) -> EsResult<Flow> {
    loop {
        let base = m.heap.roots_len();
        let body = match arg_slot(m, args, 2) {
            Some(b) => b,
            None => return Err(m.error("catch: usage: catch handler body")),
        };
        match apply_thunk(m, body, env, None) {
            Ok(flow) => {
                let v = must_value(flow);
                m.heap.truncate_roots(base);
                return Ok(Flow::Val(v));
            }
            Err(EsError::Throw(e)) => {
                let e_slot = m.heap.push_root(e);
                let handler = match arg_slot(m, args, 1) {
                    Some(h) => h,
                    None => return Err(m.error("catch: missing handler")),
                };
                let exc = m.heap.root(e_slot);
                match super::apply_thunk_with_args(m, handler, exc, env, None) {
                    Ok(flow) => {
                        let v = must_value(flow);
                        m.heap.truncate_roots(base);
                        return Ok(Flow::Val(v));
                    }
                    Err(EsError::Throw(r)) if throw_is(m, r, "retry") => {
                        m.heap.truncate_roots(base);
                        continue;
                    }
                    Err(other) => {
                        m.heap.truncate_roots(base);
                        return Err(other);
                    }
                }
            }
            Err(other) => {
                m.heap.truncate_roots(base);
                return Err(other);
            }
        }
    }
}

/// `$&eval args...` — flatten, parse, and run in the current scope.
pub fn eval_prim<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
) -> EsResult<Flow> {
    let src = m.strings_at(args).join(" ");
    let node = match es_syntax::parse_program(&src) {
        Ok(p) => es_syntax::lower(p),
        Err(e) => return Err(m.error(&format!("eval: parse error: {}", e.msg))),
    };
    m.push_input(Input::Text {
        src: src.clone(),
        pos: src.len(),
    });
    let result = crate::vm::run_node(m, &node, env, None);
    m.pop_input();
    result
}
