//! `$&limit` and `$&limits` — the shell-space face of the resource
//! governor (bound as `%limit`/`limits` in `initial.es`).

use super::{apply_thunk, arg_slot};
use crate::eval::{must_value, Flow};
use crate::exception::EsResult;
use crate::governor::{self, Kind};
use crate::machine::Machine;
use crate::value::{self, ListBuilder};
use es_gc::RootSlot;
use es_os::Os;

/// `$&limit kind n` arms `kind` at `n` permanently (a raw set, like
/// the CLI flag). `$&limit kind n {cmd}` runs the thunk under the
/// limit tightened to `n` — never loosened, so nested sandboxes
/// compose — and restores the previous limits on every exit path,
/// value or exception.
pub fn limit_prim<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
) -> EsResult<Flow> {
    let strs = m.strings_at(args);
    if strs.len() < 2 {
        return Err(m.error("limit: usage: %limit kind value [cmd]"));
    }
    let kind = match Kind::parse(&strs[0]) {
        Some(k) => k,
        None => {
            return Err(m.error(&format!(
                "limit: unknown kind '{}' (expected depth, steps, heap, fds, output, or time)",
                strs[0]
            )))
        }
    };
    let value: u64 = match strs[1].parse() {
        Ok(v) => v,
        Err(_) => return Err(m.error(&format!("limit: bad value '{}'", strs[1]))),
    };
    let abs = governor::resolve(m, kind, value);
    let n = value::list_len(&m.heap, m.heap.root(args));
    if n == 2 {
        m.governor_mut().set(kind, Some(abs));
        return Ok(Flow::Val(value::true_value(&mut m.heap)));
    }
    // Scoped form: tighten, run the body, restore.
    let snap = m.governor().snapshot();
    m.governor_mut().tighten(kind, abs);
    let base = m.heap.roots_len();
    let body = arg_slot(m, args, 3).expect("list_len said there is a third argument");
    let result = apply_thunk(m, body, env, None);
    m.heap.truncate_roots(base);
    m.governor_mut().restore(snap);
    let flow = result?;
    Ok(Flow::Val(must_value(flow)))
}

/// `$&limits` — introspection: a flat list of `kind used max` triples
/// for all six kinds, `unlimited` where nothing is armed. For `time`,
/// "used" is the current virtual clock in ns and "max" the deadline.
pub fn limits_prim<O: Os + Clone>(m: &mut Machine<O>) -> EsResult<Flow> {
    let mut rows: Vec<(Kind, u64, Option<u64>)> = Vec::new();
    for kind in Kind::ALL {
        let max = m.governor().limits().get(kind);
        let used = match kind {
            Kind::Depth => m.depth as u64,
            Kind::Steps => m.governor().steps(),
            Kind::Heap => m.heap.len() as u64,
            Kind::Fds => m.os().open_desc_count() as u64,
            Kind::Output => m.governor().out_bytes(),
            Kind::Time => m.os().now_ns(),
        };
        rows.push((kind, used, max));
    }
    let mut b = ListBuilder::new(&mut m.heap);
    for (kind, used, max) in rows {
        b.push_str(&mut m.heap, kind.name());
        b.push_str(&mut m.heap, &used.to_string());
        match max {
            Some(v) => b.push_str(&mut m.heap, &v.to_string()),
            None => b.push_str(&mut m.heap, "unlimited"),
        }
    }
    Ok(Flow::Val(b.finish(&m.heap)))
}
