//! Redirection and I/O primitives: create/open/append/dup/close/here,
//! pipe, backquote, echo.
//!
//! Every redirection primitive follows the same shape: rearrange the
//! shell's fd table, apply the command thunk, restore the table (even
//! on exceptions — exception safety here is what makes `catch` +
//! redirections compose).

use super::{apply_thunk, arg_slot};
use crate::eval::{must_value, Flow};
use crate::exception::{EsError, EsResult};
use crate::machine::Machine;
use crate::value::{self, Term};
use es_gc::{Ref, RootSlot};
use es_os::{Desc, OpenMode, Os};

/// Parses a required numeric fd argument.
fn fd_arg<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, i: usize) -> EsResult<u32> {
    let strings = m.strings_at(args);
    match strings.get(i - 1).map(|s| s.parse::<u32>()) {
        Some(Ok(fd)) => Ok(fd),
        _ => Err(m.error("bad file descriptor number")),
    }
}

/// Runs the thunk at argument `idx` with shell fd `fd` temporarily
/// pointing at `desc`. `Machine::with_fd` is the scope guard: the
/// descriptor is closed (with bounded EINTR retry) and the table entry
/// restored on every exit path, value or exception.
fn run_with_fd<O: Os + Clone>(
    m: &mut Machine<O>,
    fd: u32,
    desc: Desc,
    args: RootSlot,
    idx: usize,
    env: RootSlot,
) -> EsResult<Flow> {
    m.with_fd(fd, desc, |m| {
        let base = m.heap.roots_len();
        let result = match arg_slot(m, args, idx) {
            Some(cmd) => apply_thunk(m, cmd, env, None),
            None => Ok(Flow::Val(Ref::NIL)),
        };
        m.heap.truncate_roots(base);
        result
    })
}

/// `$&create fd file {cmd}` (and open/append): the rewritten form of
/// `cmd > file`, `< file`, `>> file`.
pub fn redir_file<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
    mode: OpenMode,
) -> EsResult<Flow> {
    let fd = fd_arg(m, args, 1)?;
    let strings = m.strings_at(args);
    let file = match strings.get(1) {
        Some(f) => f.clone(),
        None => return Err(m.error("redirection: missing file name")),
    };
    let desc = match es_os::retry_intr(|| m.os_mut().open(&file, mode)) {
        Ok(d) => d,
        Err(e) => return Err(m.error(&e.to_string())),
    };
    run_with_fd(m, fd, desc, args, 3, env)
}

/// `$&dup a b {cmd}` — `cmd >[a=b]`: fd `a` becomes a copy of fd `b`.
pub fn dup<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let a = fd_arg(m, args, 1)?;
    let b = fd_arg(m, args, 2)?;
    let source = match m.fd(b) {
        Some(d) => d,
        None => return Err(m.error(&format!("fd {b} is not open"))),
    };
    let desc = match es_os::retry_intr(|| m.os_mut().dup(source)) {
        Ok(d) => d,
        Err(e) => return Err(m.error(&e.to_string())),
    };
    run_with_fd(m, a, desc, args, 3, env)
}

/// `$&close fd {cmd}` — `cmd >[fd=]`: run with fd closed.
pub fn close<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let fd = fd_arg(m, args, 1)?;
    let saved = m.remove_fd(fd);
    let base = m.heap.roots_len();
    let result = match arg_slot(m, args, 2) {
        Some(cmd) => apply_thunk(m, cmd, env, None),
        None => Ok(Flow::Val(Ref::NIL)),
    };
    m.heap.truncate_roots(base);
    if let Some(old) = saved {
        m.set_fd(fd, old);
    }
    result
}

/// `$&here fd text {cmd}` — here document: text becomes fd's input.
pub fn here<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let fd = fd_arg(m, args, 1)?;
    let strings = m.strings_at(args);
    let text = strings.get(1).cloned().unwrap_or_default();
    let (r, w) = match es_os::retry_intr(|| m.os_mut().pipe()) {
        Ok(p) => p,
        Err(e) => return Err(m.error(&e.to_string())),
    };
    let write_result = es_os::write_fully(m.os_mut(), w, text.as_bytes());
    m.close_desc(w);
    if let Err(e) = write_result {
        m.close_desc(r);
        return Err(m.error(&e.to_string()));
    }
    run_with_fd(m, fd, r, args, 3, env)
}

/// `$&pipe {c1} out1 in1 {c2} [out2 in2 {c3} ...]` — the variadic
/// pipeline primitive Figure 1 spoofs. Stages run left to right; each
/// writes into an unbounded buffer the next stage reads (the
/// simulator's run-to-completion model). The value is the last
/// stage's value.
/// Restores a saved fd-table entry, closing the temporary descriptor
/// (with bounded EINTR retry, so injected interrupts can't leak it).
fn restore_entry<O: Os + Clone>(m: &mut Machine<O>, fd: u32, saved: Option<Desc>, temp: Desc) {
    m.close_desc(temp);
    match saved {
        Some(old) => {
            m.set_fd(fd, old);
        }
        None => {
            m.remove_fd(fd);
        }
    }
}

pub fn pipe<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let n = value::list_len(&m.heap, m.heap.root(args));
    if n == 0 {
        return Ok(Flow::Val(Ref::NIL));
    }
    // Arguments come in the shape cmd (out in cmd)*.
    let mut stage = 1usize;
    let mut carry_in: Option<Desc> = None; // read end feeding the next stage
    let mut last;
    loop {
        let is_last = stage + 2 > n;
        let strings = m.strings_at(args);
        let (out_fd, in_fd) = if is_last {
            (1, 0)
        } else {
            let out = strings.get(stage).and_then(|s| s.parse::<u32>().ok());
            let inp = strings.get(stage + 1).and_then(|s| s.parse::<u32>().ok());
            match (out, inp) {
                (Some(out), Some(inp)) => (out, inp),
                _ => {
                    // The previous stage's read end must not outlive
                    // this failure.
                    if let Some(r) = carry_in.take() {
                        m.close_desc(r);
                    }
                    return Err(m.error("pipe: bad fd"));
                }
            }
        };
        // Build this stage's fd plumbing.
        let mut saved_in = None;
        let mut in_desc = None;
        if let Some(r) = carry_in.take() {
            saved_in = Some((in_fd, m.set_fd(in_fd, r)));
            in_desc = Some(r);
        }
        let mut saved_out = None;
        let mut out_desc = None;
        let mut next_read = None;
        if !is_last {
            let (r, w) = match es_os::retry_intr(|| m.os_mut().pipe()) {
                Ok(p) => p,
                Err(e) => {
                    // Unwind the input plumbing installed just above.
                    if let Some((fd, saved)) = saved_in {
                        restore_entry(m, fd, saved, in_desc.expect("in desc set with saved_in"));
                    }
                    return Err(m.error(&e.to_string()));
                }
            };
            saved_out = Some((out_fd, m.set_fd(out_fd, w)));
            out_desc = Some(w);
            next_read = Some(r);
        }
        let base = m.heap.roots_len();
        let cmd = arg_slot(m, args, stage);
        let result = match cmd {
            Some(c) => apply_thunk(m, c, env, None),
            None => Ok(Flow::Val(Ref::NIL)),
        };
        m.heap.truncate_roots(base);
        // Restore plumbing before propagating any error.
        if let Some((fd, saved)) = saved_out {
            restore_entry(m, fd, saved, out_desc.expect("out desc set with saved_out"));
        }
        if let Some((fd, saved)) = saved_in {
            restore_entry(m, fd, saved, in_desc.expect("in desc set with saved_in"));
        }
        match result {
            Ok(flow) => last = Flow::Val(must_value(flow)),
            Err(e) => {
                if let Some(r) = next_read {
                    m.close_desc(r);
                }
                return Err(e);
            }
        }
        if is_last {
            return Ok(last);
        }
        carry_in = next_read;
        stage += 3;
    }
}

/// `$&backquote {cmd}` — run cmd with stdout captured; split the
/// output on the characters of `$ifs`; also records `$bqstatus`.
pub fn backquote<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
) -> EsResult<Flow> {
    let (r, w) = match es_os::retry_intr(|| m.os_mut().pipe()) {
        Ok(p) => p,
        Err(e) => return Err(m.error(&e.to_string())),
    };
    let result = run_with_fd(m, 1, w, args, 1, env);
    let status = match result {
        Ok(flow) => must_value(flow),
        Err(e) => {
            m.close_desc(r);
            return Err(e);
        }
    };
    let s_slot = m.heap.push_root(status);
    // Chunked, interruptible drain of the pipe: a ^C that arrives
    // mid-read must deliver its `signal` exception promptly instead of
    // waiting for end-of-file — and must not leak the read end.
    let output = (|| -> Result<Vec<u8>, EsError> {
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(sig) = m.os_mut().take_signal() {
                return Err(crate::governor::signal_error(m, sig));
            }
            match es_os::retry_intr(|| m.os_mut().read(r, &mut buf)) {
                Ok(0) => return Ok(out),
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) => {
                    let msg = format!("backquote: {e}");
                    return Err(m.error(&msg));
                }
            }
        }
    })();
    m.close_desc(r);
    let output = match output {
        Ok(bytes) => bytes,
        Err(e) => {
            m.heap.truncate_roots(s_slot.index());
            return Err(e);
        }
    };
    let text = String::from_utf8_lossy(&output).into_owned();
    let ifs: String = m.get_var("ifs").concat();
    let ifs = if ifs.is_empty() { " \t\n".to_string() } else { ifs };
    let words: Vec<&str> = text
        .split(|c: char| ifs.contains(c))
        .filter(|w| !w.is_empty())
        .collect();
    // $bqstatus records the command's value.
    let status = m.heap.root(s_slot);
    m.assign_raw(Ref::NIL, "bqstatus", status);
    m.heap.truncate_roots(s_slot.index());
    Ok(Flow::Val(value::list_from_strs(&mut m.heap, &words)))
}

/// `$&echo [-n] args...` — the built-in echo (es builds echo in; the
/// external `/bin/echo` also exists in the simulator).
pub fn echo<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot) -> EsResult<Flow> {
    let terms = m.terms_at(args);
    let mut strings: Vec<String> = Vec::with_capacity(terms.len());
    for t in terms {
        match t {
            Term::Str(s) => strings.push(s),
            Term::Closure(code, bindings) => {
                strings.push(value::unparse_closure(&m.heap, &code, bindings))
            }
        }
    }
    let newline = if strings.first().map(String::as_str) == Some("-n") {
        strings.remove(0);
        false
    } else {
        true
    };
    let mut out = strings.join(" ");
    if newline {
        out.push('\n');
    }
    if let Err(e) = m.write_fd(1, out.as_bytes()) {
        return Err(m.error(&format!("echo: {e}")));
    }
    Ok(Flow::Val(value::true_value(&mut m.heap)))
}
