//! Process, path, string, and introspection primitives.

use super::{apply_thunk_with_args, arg_slot};
use crate::eval::{must_value, Flow};
use crate::exception::{EsError, EsResult};
use crate::machine::{Input, Machine};
use crate::value::{self, Term};
use es_gc::{Ref, RootSlot};
use es_os::Os;

/// `$&fork cmd args...` — run the command in a subshell: a clone of
/// the whole machine (heap, globals, descriptors, kernel), which is
/// the copy-on-fork image a real fork(2) gives. Exceptions in the
/// subshell print a message and yield a false status, exactly the
/// paper's description of exception propagation out of subshells.
pub fn fork<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let list = m.heap.root(args);
    if list.is_nil() {
        // Bare `fork`: nothing to run in the child.
        return Ok(Flow::Val(value::true_value(&mut m.heap)));
    }
    let mut child = m.clone();
    // The child sees the same rooted structures: slots transfer
    // because the heap clone preserves indices.
    let status = match crate::eval::apply_slot(&mut child, args, env, None) {
        Ok(flow) => {
            if value::truth(&child.heap, must_value(flow)) {
                0
            } else {
                1
            }
        }
        Err(EsError::Exit(code)) => code,
        Err(EsError::Throw(e)) => {
            let msg = value::read_strings(&child.heap, e).join(" ");
            let _ = child.write_fd(2, format!("es: uncaught exception in subshell: {msg}\n").as_bytes());
            1
        }
    };
    // Merge the child's console output back so `fork {echo hi}` is
    // visible: in a real kernel both processes share the terminal.
    m.absorb_fork_output(&mut child);
    Ok(Flow::Val(value::status_value(&mut m.heap, status)))
}

/// `$&background {cmd}` — the simulator runs the job synchronously
/// (run-to-completion process model) but gives it a pid in `$apid`,
/// preserving the shell-visible protocol.
pub fn background<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    env: RootSlot,
) -> EsResult<Flow> {
    let flow = fork(m, args, env)?;
    let _ = must_value(flow);
    let pid = m.next_bg_pid();
    let pid_str = pid.to_string();
    let pid_list = value::list_from_strs(&mut m.heap, &[&pid_str]);
    m.assign_raw(Ref::NIL, "apid", pid_list);
    Ok(Flow::Val(value::true_value(&mut m.heap)))
}

/// `$&exit [status]`.
pub fn exit<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot) -> EsResult<Flow> {
    let strings = m.strings_at(args);
    let code = strings
        .first()
        .and_then(|s| s.parse::<i32>().ok())
        .unwrap_or(0);
    Err(EsError::Exit(code))
}

/// `$&time cmd args...` — run the command, report real/user/sys of the
/// children it ran, in the paper's `2r 0.3u 0.2s cat paper9` format,
/// on stderr. Figure 1's `%pipe` spoof wraps each stage in this.
pub fn time<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let list = m.heap.root(args);
    if list.is_nil() {
        return Err(m.error("time: missing command"));
    }
    let label = describe_command(m, args);
    let t0 = m.os().now_ns();
    let r0 = m.os().children_rusage();
    let base = m.heap.roots_len();
    let head = arg_slot(m, args, 1).expect("nonempty checked");
    let rest = m.heap.pair_tail(m.heap.root(args));
    let flow = apply_thunk_with_args(m, head, rest, env, None)?;
    let v = must_value(flow);
    let v_slot = m.heap.push_root(v);
    let real = (m.os().now_ns() - t0) as f64 / 1e9;
    let used = m.os().children_rusage() - r0;
    let line = format!(
        "{:4}r {:4.1}u {:4.1}s\t{}\n",
        real.round() as u64,
        used.user_secs(),
        used.sys_secs(),
        label
    );
    let _ = m.write_fd(2, line.as_bytes());
    let out = m.heap.root(v_slot);
    m.heap.truncate_roots(base);
    Ok(Flow::Val(out))
}

/// Human-readable command text for `time` output: closures print as
/// their body source, strings as themselves.
fn describe_command<O: Os + Clone>(m: &Machine<O>, args: RootSlot) -> String {
    m.terms_at(args)
        .into_iter()
        .map(|t| match t {
            Term::Str(s) => s,
            Term::Closure(code, _) => es_syntax::print::unparse_node(&code.body),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// `$&cd [dir]` — chdir; errors carry the classic `chdir dir:
/// strerror` message the paper's `in /temp` example shows.
pub fn cd<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let _ = env;
    let strings = m.strings_at(args);
    let dir = match strings.first() {
        Some(d) => d.clone(),
        None => {
            let home = m.get_var("home");
            match home.first() {
                Some(h) => h.clone(),
                None => return Err(m.error("cd: no home directory")),
            }
        }
    };
    match es_os::retry_intr(|| m.os_mut().chdir(&dir)) {
        Ok(()) => Ok(Flow::Val(value::true_value(&mut m.heap))),
        Err(e) => Err(m.error(&format!("chdir {dir}: {}", e.strerror()))),
    }
}

/// `$&flatten sep args...` — join into one word (`%flatten : $*` is
/// how `set-path` builds `$PATH`).
pub fn flatten<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot) -> EsResult<Flow> {
    let strings = m.strings_at(args);
    let (sep, rest) = match strings.split_first() {
        Some(x) => x,
        None => return Err(m.error("flatten: missing separator")),
    };
    let joined = rest.join(sep);
    Ok(Flow::Val(value::list_from_strs(&mut m.heap, &[&joined])))
}

/// `$&fsplit sep args...` (fields: empty fields kept) and
/// `$&split sep args...` (words: runs of separators collapse).
pub fn split<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    keep_empty: bool,
) -> EsResult<Flow> {
    let strings = m.strings_at(args);
    let (sep, rest) = match strings.split_first() {
        Some(x) => x,
        None => return Err(m.error("split: missing separator")),
    };
    let seps: Vec<char> = sep.chars().collect();
    let mut out: Vec<String> = Vec::new();
    for s in rest {
        for piece in s.split(|c: char| seps.contains(&c)) {
            if keep_empty || !piece.is_empty() {
                out.push(piece.to_string());
            }
        }
    }
    let refs: Vec<&str> = out.iter().map(String::as_str).collect();
    Ok(Flow::Val(value::list_from_strs(&mut m.heap, &refs)))
}

/// `$&vars` — sorted global variable names.
pub fn vars<O: Os + Clone>(m: &mut Machine<O>) -> EsResult<Flow> {
    let names = m.global_names();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Ok(Flow::Val(value::list_from_strs(&mut m.heap, &refs)))
}

/// `$&whatis name...` — print each name's definition: the value of
/// `fn-name` with closures unparsed (`%closure(a=b)@ * {echo $a}`), or
/// the resolved path for externals.
pub fn whatis<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let names = m.strings_at(args);
    let mut lines = String::new();
    for name in &names {
        let fn_name = format!("fn-{name}");
        let resolved = m.lookup(m.heap.root(env), &fn_name);
        match resolved {
            Some(v) if !v.is_nil() => {
                let parts = value::read_strings(&m.heap, v);
                lines.push_str(&parts.join(" "));
                lines.push('\n');
            }
            _ => {
                // Fall back to a path search, without caching.
                match search_path(m, name) {
                    Some(path) => {
                        lines.push_str(&path);
                        lines.push('\n');
                    }
                    None => return Err(m.error(&format!("{name}: command not found"))),
                }
            }
        }
    }
    if let Err(e) = m.write_fd(1, lines.as_bytes()) {
        return Err(m.error(&format!("whatis: {e}")));
    }
    Ok(Flow::Val(value::true_value(&mut m.heap)))
}

fn search_path<O: Os + Clone>(m: &Machine<O>, name: &str) -> Option<String> {
    if name.contains('/') {
        return Some(name.to_string());
    }
    for dir in m.get_var("path") {
        let cand = if dir.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", dir.trim_end_matches('/'), name)
        };
        if m.os().is_executable(&cand) {
            return Some(cand);
        }
    }
    None
}

/// `$&pathsearch name` — the default behaviour of the `%pathsearch`
/// hook: scan `$path` for an executable; throw `error` if absent.
/// Figure 2's cache spoofs the hook and calls down to this.
pub fn pathsearch<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot) -> EsResult<Flow> {
    let names = m.strings_at(args);
    let name = match names.first() {
        Some(n) => n.clone(),
        None => return Err(m.error("pathsearch: missing name")),
    };
    match search_path(m, &name) {
        Some(path) => Ok(Flow::Val(value::list_from_strs(&mut m.heap, &[&path]))),
        None => Err(m.error(&format!("{name}: command not found"))),
    }
}

/// `$&dot file args...` — source an es script (the Bourne-compatible
/// `.` command). `$*`/`$0` are bound to the arguments/file lexically.
pub fn dot<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot, env: RootSlot) -> EsResult<Flow> {
    let strings = m.strings_at(args);
    let file = match strings.first() {
        Some(f) => f.clone(),
        None => return Err(m.error(". : missing file name")),
    };
    let desc = match es_os::retry_intr(|| m.os_mut().open(&file, es_os::OpenMode::Read)) {
        Ok(d) => d,
        Err(e) => return Err(m.error(&format!(". {file}: {}", e.strerror()))),
    };
    let bytes = es_os::read_all(m.os_mut(), desc);
    m.close_desc(desc);
    let bytes = match bytes {
        // A script half-read is a script half-run; fail loudly.
        Err(e) => return Err(m.error(&format!(". {file}: {e}"))),
        Ok(b) => b,
    };
    let src = String::from_utf8_lossy(&bytes).into_owned();
    let node = match es_syntax::parse_program(&src) {
        Ok(p) => es_syntax::lower(p),
        Err(e) => return Err(m.error(&format!(". {file}: parse error: {}", e.msg))),
    };
    // Bind $* and $0 lexically for the script.
    let base = m.heap.roots_len();
    let script_args = m.heap.pair_tail(m.heap.root(args));
    let a_slot = m.heap.push_root(script_args);
    let chain = m.heap.push_root(m.heap.root(env));
    let b = m
        .heap
        .alloc_binding("*", m.heap.root(a_slot), m.heap.root(chain));
    m.heap.set_root(chain, b);
    let f = m.heap.alloc_str(&file);
    let f_slot = m.heap.push_root(f);
    let fl = m.heap.alloc_pair(m.heap.root(f_slot), Ref::NIL);
    let fl_slot = m.heap.push_root(fl);
    let b = m
        .heap
        .alloc_binding("0", m.heap.root(fl_slot), m.heap.root(chain));
    m.heap.set_root(chain, b);
    m.push_input(Input::Text { src, pos: 0 });
    let result = crate::vm::run_node(m, &node, chain, None);
    m.pop_input();
    let out = match result {
        Ok(flow) => Ok(Flow::Val(must_value(flow))),
        Err(e) => Err(e),
    };
    m.heap.truncate_roots(base);
    out
}

/// `$&parse [prompt1 [prompt2]]` — print `prompt1` on stderr, read one
/// (possibly continued, prompting with `prompt2`) command from the
/// current input source, and return it as a thunk. Throws `eof` when
/// the source is exhausted — this is the engine under Figure 3's
/// `%parse $prompt`.
pub fn parse<O: Os + Clone>(m: &mut Machine<O>, args: RootSlot) -> EsResult<Flow> {
    let prompts = m.strings_at(args);
    let p1 = prompts.first().cloned().unwrap_or_default();
    let p2 = prompts.get(1).cloned().unwrap_or_default();
    if !p1.is_empty() {
        let _ = m.write_fd(2, p1.as_bytes());
    }
    let mut acc = match m.read_line() {
        Some(line) => line,
        None => return Err(m.exception(&["eof"])),
    };
    loop {
        match es_syntax::parse_program(&acc) {
            Ok(parsed) => {
                let node = es_syntax::lower(parsed);
                let lambda = std::rc::Rc::new(es_syntax::ast::Lambda {
                    params: None,
                    body: node,
                });
                let base = m.heap.roots_len();
                let clo = m.heap.alloc_closure(lambda, Ref::NIL);
                let c = m.heap.push_root(clo);
                let out = m.heap.alloc_pair(m.heap.root(c), Ref::NIL);
                m.heap.truncate_roots(base);
                return Ok(Flow::Val(out));
            }
            Err(e) if e.incomplete => {
                if !p2.is_empty() {
                    let _ = m.write_fd(2, p2.as_bytes());
                }
                match m.read_line() {
                    Some(line) => {
                        acc.push('\n');
                        acc.push_str(&line);
                    }
                    None => return Err(m.exception(&["eof"])),
                }
            }
            Err(e) => return Err(m.error(&format!("parse error: {}", e.msg))),
        }
    }
}

/// `$&gcstats` — collection statistics as a flat key/value list
/// (reproduction extra backing experiment E4).
pub fn gcstats<O: Os + Clone>(m: &mut Machine<O>) -> EsResult<Flow> {
    let s = m.heap.stats().clone();
    let pairs = [
        ("collections", s.collections.to_string()),
        ("allocated", s.allocated.to_string()),
        ("copied", s.copied.to_string()),
        ("live", s.live_after_last.to_string()),
        ("budget-collections", s.budget_collections.to_string()),
        ("pause-ns", s.pause_total.as_nanos().to_string()),
        ("pause-max-ns", s.pause_max.as_nanos().to_string()),
    ];
    let mut flat: Vec<String> = Vec::new();
    for (k, v) in pairs {
        flat.push(k.to_string());
        flat.push(v);
    }
    let refs: Vec<&str> = flat.iter().map(String::as_str).collect();
    Ok(Flow::Val(value::list_from_strs(&mut m.heap, &refs)))
}
