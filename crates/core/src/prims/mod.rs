//! The `$&` primitives — the unoverridable floor under the hooks.
//!
//! "%create is not really the built-in file redirection service. It is
//! a hook to the primitive $&create, which itself cannot be
//! overridden. That means that it is always possible to access the
//! underlying shell service, even when its hook has been reassigned."
//!
//! Control-flow primitives apply their argument thunks *transparently*
//! (no `return` boundary), so `return` inside `if`/`while`/`%seq`
//! bodies exits the enclosing function, as users expect.

mod control;
mod governor;
mod io;
mod misc;

use crate::eval::{Flow, TailSlots};
use crate::exception::EsResult;
use crate::machine::Machine;
use crate::value::{self, ListBuilder};
use es_gc::{Obj, Ref, RootSlot};
use es_os::Os;

/// Every primitive name, for `$&primitives`.
pub const NAMES: &[&str] = &[
    "and", "append", "background", "backquote", "break", "catch", "cd", "close", "collect",
    "create", "dot", "dup", "echo", "eval", "exit", "false", "flatten", "forever", "fork",
    "fsplit", "gcstats", "here", "if", "isinteractive", "limit", "limits", "not", "open", "or",
    "parse", "pathsearch", "pipe", "primitives", "result", "return", "seq", "split", "throw",
    "time", "true", "vars", "version", "wait", "whatis", "while",
];

/// Dispatches a primitive by name. `args` is the rooted argument list
/// (without the `$&name` head); `env` the caller's lexical scope;
/// `tail` the apply loop's tail slots (forwarded to thunk application
/// by control primitives whose last action is that application).
pub fn call<O: Os + Clone>(
    m: &mut Machine<O>,
    name: &str,
    args: RootSlot,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    match name {
        // Control flow.
        "seq" => control::seq(m, args, env, tail),
        "if" => control::if_prim(m, args, env, tail),
        "while" => control::while_prim(m, args, env),
        "forever" => control::forever(m, args, env),
        "and" => control::and_or(m, args, env, tail, true),
        "or" => control::and_or(m, args, env, tail, false),
        "not" => control::not(m, args, env),
        "result" => Ok(Flow::Val(m.heap.root(args))),
        "true" => Ok(Flow::Val(value::true_value(&mut m.heap))),
        "false" => Ok(Flow::Val(value::false_value(&mut m.heap))),
        "throw" => control::throw(m, args),
        "catch" => control::catch(m, args, env),
        "return" => control::unwind(m, args, "return"),
        "break" => control::unwind(m, args, "break"),
        "eval" => control::eval_prim(m, args, env),
        // Redirections and I/O.
        "create" => io::redir_file(m, args, env, es_os::OpenMode::Write),
        "open" => io::redir_file(m, args, env, es_os::OpenMode::Read),
        "append" => io::redir_file(m, args, env, es_os::OpenMode::Append),
        "dup" => io::dup(m, args, env),
        "close" => io::close(m, args, env),
        "here" => io::here(m, args, env),
        "pipe" => io::pipe(m, args, env),
        "backquote" => io::backquote(m, args, env),
        "echo" => io::echo(m, args),
        // Processes and the kernel.
        "fork" => misc::fork(m, args, env),
        "background" => misc::background(m, args, env),
        "exit" => misc::exit(m, args),
        "time" => misc::time(m, args, env),
        "wait" => Ok(Flow::Val(value::true_value(&mut m.heap))),
        "cd" => misc::cd(m, args, env),
        // Strings and variables.
        "flatten" => misc::flatten(m, args),
        "fsplit" => misc::split(m, args, true),
        "split" => misc::split(m, args, false),
        "vars" => misc::vars(m),
        "whatis" => misc::whatis(m, args, env),
        "pathsearch" => misc::pathsearch(m, args),
        "dot" => misc::dot(m, args, env),
        "parse" => misc::parse(m, args),
        "version" => {
            let v = value::list_from_strs(
                &mut m.heap,
                &["es-rs 0.1 — reproduction of Haahr & Rakitzis, Winter USENIX 1993"],
            );
            Ok(Flow::Val(v))
        }
        "primitives" => {
            let v = value::list_from_strs(&mut m.heap, NAMES);
            Ok(Flow::Val(v))
        }
        "isinteractive" => {
            let v = if m.opts.interactive {
                value::true_value(&mut m.heap)
            } else {
                value::false_value(&mut m.heap)
            };
            Ok(Flow::Val(v))
        }
        // Resource governor.
        "limit" => governor::limit_prim(m, args, env),
        "limits" => governor::limits_prim(m),
        // GC services (reproduction extras for experiment E4).
        "collect" => {
            m.heap.collect();
            Ok(Flow::Val(value::true_value(&mut m.heap)))
        }
        "gcstats" => misc::gcstats(m),
        other => Err(m.error(&format!("unknown primitive $&{other}"))),
    }
}

/// Roots the `i`-th (1-based) argument term; `None` when absent.
pub(crate) fn arg_slot<O: Os + Clone>(
    m: &mut Machine<O>,
    args: RootSlot,
    i: usize,
) -> Option<RootSlot> {
    let t = value::list_nth(&m.heap, m.heap.root(args), i)?;
    Some(m.heap.push_root(t))
}

/// Applies one rooted term as a command with no arguments. Closures
/// are applied *without* a `return` boundary (transparent thunks);
/// strings resolve as commands in `env`.
pub(crate) fn apply_thunk<O: Os + Clone>(
    m: &mut Machine<O>,
    term: RootSlot,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    apply_thunk_with_args(m, term, Ref::NIL, env, tail)
}

/// Like [`apply_thunk`] but passing an argument list (shared spine).
pub(crate) fn apply_thunk_with_args<O: Os + Clone>(
    m: &mut Machine<O>,
    term: RootSlot,
    extra: Ref,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    let base = m.heap.roots_len();
    let extra_slot = m.heap.push_root(extra);
    let t = m.heap.root(term);
    let flow = match m.heap.get(t) {
        Obj::Closure(..) => {
            if let (Some((tc, ta)), true) = (tail, m.opts.tail_calls) {
                let t = m.heap.root(term);
                m.heap.set_root(tc, t);
                let e = m.heap.root(extra_slot);
                m.heap.set_root(ta, e);
                m.heap.truncate_roots(base);
                return Ok(Flow::Tail);
            }
            crate::eval::apply_closure(m, term, extra_slot, false, "<thunk>")?
        }
        Obj::Str(_) => {
            let mut b = ListBuilder::new(&mut m.heap);
            let t = m.heap.root(term);
            b.push(&mut m.heap, t);
            b.append_slot(&mut m.heap, extra_slot);
            crate::eval::apply_slot(m, b.head_slot(), env, tail)?
        }
        other => {
            let shape = format!("{other:?}");
            m.heap.truncate_roots(base);
            return Err(m.error(&format!("cannot apply {shape}")));
        }
    };
    if matches!(flow, Flow::Tail) {
        // Keep the tail slots' contents; they are above `base`? No:
        // tail slots belong to an *outer* loop, so truncating is safe.
        m.heap.truncate_roots(base);
        return Ok(Flow::Tail);
    }
    m.heap.truncate_roots(base);
    Ok(flow)
}
