//! Interpreter tests: every example in the paper, plus semantics
//! corners.

use crate::governor::Limits;
use crate::machine::{Engine, Machine, Options};
use es_os::{Os, SimOs};

fn machine() -> Machine<SimOs> {
    Machine::new(SimOs::new()).expect("machine boots")
}

/// Runs `src` and returns captured stdout.
fn output(m: &mut Machine<SimOs>, src: &str) -> String {
    m.run(src).unwrap_or_else(|e| panic!("`{src}` failed: {e}"));
    m.os_mut().take_output()
}

/// Runs `src` and returns the command's value as strings.
fn val(m: &mut Machine<SimOs>, src: &str) -> Vec<String> {
    m.run(src).unwrap_or_else(|e| panic!("`{src}` failed: {e}"))
}

#[test]
fn boot_runs_initial_es() {
    let m = machine();
    // The hooks are bound...
    assert_eq!(m.get_var("fn-%create"), vec!["$&create"]);
    assert_eq!(m.get_var("fn-%pipe"), vec!["$&pipe"]);
    // ...and the PATH import fired the settor, populating $path.
    assert_eq!(m.get_var("path"), vec!["/bin", "/usr/bin"]);
    assert_eq!(m.get_var("PATH"), vec!["/bin:/usr/bin"]);
    assert_eq!(m.get_var("home"), vec!["/home/user"]);
}

#[test]
fn echo_builtin() {
    let mut m = machine();
    assert_eq!(output(&mut m, "echo hello, world"), "hello, world\n");
    assert_eq!(output(&mut m, "echo -n x"), "x");
}

#[test]
fn external_commands_run() {
    let mut m = machine();
    assert_eq!(output(&mut m, "/bin/echo direct"), "direct\n");
    // Via %pathsearch.
    assert_eq!(output(&mut m, "pwd"), "/home/user\n");
    let err = m.run("no-such-cmd").unwrap_err();
    assert!(err.contains("no-such-cmd: command not found"), "{err}");
}

#[test]
fn simple_pipeline_and_redirection() {
    let mut m = machine();
    assert_eq!(output(&mut m, "echo hi | wc -l"), "1\n");
    m.run("echo stored > /tmp/f").unwrap();
    assert_eq!(output(&mut m, "cat /tmp/f"), "stored\n");
    m.run("echo more >> /tmp/f").unwrap();
    assert_eq!(output(&mut m, "cat < /tmp/f"), "stored\nmore\n");
}

#[test]
fn intro_example_kill_pipeline() {
    // ps aux | grep '^byron' | awk '{print $2}' | xargs kill -9
    let mut m = machine();
    m.run("ps aux | grep '^byron' | awk '{print $2}' | xargs kill -9")
        .unwrap();
    let out = output(&mut m, "ps aux");
    assert!(!out.contains("byron"), "byron processes killed:\n{out}");
}

// --------------------------------------------------------------------------
// Functions, lambdas, scoping (paper sections "Functions", "Binding").
// --------------------------------------------------------------------------

#[test]
fn fn_d_prints_date() {
    let mut m = machine();
    m.run("fn d { date +%y-%m-%d }").unwrap();
    assert_eq!(output(&mut m, "d"), "93-01-25\n");
}

#[test]
fn apply_with_leftover_args() {
    let mut m = machine();
    m.run("fn apply cmd args { for (i = $args) $cmd $i }").unwrap();
    assert_eq!(
        output(&mut m, "apply echo testing 1.. 2.. 3.."),
        "testing\n1..\n2..\n3..\n"
    );
}

#[test]
fn rev3_parameter_binding() {
    let mut m = machine();
    m.run("fn rev3 a b c { echo $c $b $a }").unwrap();
    // Leftovers to the last parameter.
    assert_eq!(output(&mut m, "rev3 1 2 3 4 5"), "3 4 5 2 1\n");
    // Missing parameters are null.
    assert_eq!(output(&mut m, "rev3 1"), "1\n");
}

#[test]
fn lambda_applied_inline() {
    let mut m = machine();
    m.os_mut().vfs_mut().put_file("/tmp/x1", b"").unwrap();
    m.os_mut().vfs_mut().put_file("/usr/tmp/x2", b"").unwrap();
    m.run("fn apply cmd args { for (i = $args) $cmd $i }").unwrap();
    m.run("apply @ i {cd $i; rm -f *} /tmp /usr/tmp").unwrap();
    assert!(!m.os().is_file("/tmp/x1"), "files in /tmp removed");
    assert!(!m.os().is_file("/usr/tmp/x2"), "files in /usr/tmp removed");
    // Lexical scoping: the lambda's `i` did not leak.
    assert_eq!(m.get_var("i"), Vec::<String>::new());
    // And the shell did not actually change directory (cd in the
    // lambda... actually it did — es has no implicit subshell).
    assert_eq!(m.os().cwd(), "/usr/tmp");
}

#[test]
fn fn_is_sugar_for_fn_variable() {
    let mut m = machine();
    m.run("fn echon args {echo -n $args}").unwrap();
    let v1 = m.get_var("fn-echon");
    let mut m2 = machine();
    m2.run("fn-echon = @ args {echo -n $args}").unwrap();
    assert_eq!(v1, m2.get_var("fn-echon"));
    assert_eq!(output(&mut m, "echon a b"), "a b");
}

#[test]
fn dollar_deref_runs_fragment() {
    let mut m = machine();
    m.run("silly-command = {echo hi}").unwrap();
    assert_eq!(output(&mut m, "$silly-command"), "hi\n");
}

#[test]
fn mixed_list_of_fragments_and_strings() {
    let mut m = machine();
    m.run("mixed = {ls} hello, {wc} world").unwrap();
    assert_eq!(output(&mut m, "echo $mixed(2) $mixed(4)"), "hello, world\n");
    // $mixed(1) | $mixed(3) — a pipeline of closures from a variable.
    let out = output(&mut m, "cd /; $mixed(1) | $mixed(3)");
    let nums: Vec<&str> = out.split_whitespace().collect();
    assert_eq!(nums.len(), 3, "wc prints lines words bytes: {out}");
}

#[test]
fn let_lexical_binding() {
    let mut m = machine();
    m.run("x = foo").unwrap();
    assert_eq!(output(&mut m, "let (x = bar) { echo $x }"), "bar\n");
    assert_eq!(m.get_var("x"), vec!["foo"]);
}

#[test]
fn closures_capture_lexical_scope() {
    // The paper's hi = { echo $h, $w } example.
    let mut m = machine();
    m.run("let (h=hello; w=world) { hi = { echo $h, $w } }").unwrap();
    assert_eq!(output(&mut m, "$hi"), "hello, world\n");
}

#[test]
fn lexical_vs_dynamic_binding() {
    // The paper's `lexical` vs `dynamic` example, verbatim.
    let mut m = machine();
    m.run("x = foo").unwrap();
    let out = output(&mut m, "let (x = bar) { echo $x; fn lexical { echo $x } }");
    assert_eq!(out, "bar\n");
    assert_eq!(output(&mut m, "lexical"), "bar\n");
    let out = output(&mut m, "local (x = baz) { echo $x; fn dynamic { echo $x } }");
    assert_eq!(out, "baz\n");
    assert_eq!(output(&mut m, "dynamic"), "foo\n");
}

#[test]
fn lexical_assignment_mutates_shared_binding() {
    // Two closures sharing a frame see each other's assignments.
    let mut m = machine();
    m.run("let (n = 0) { fn bump { n = 1 }; fn show { echo $n } }")
        .unwrap();
    assert_eq!(output(&mut m, "show"), "0\n");
    m.run("bump").unwrap();
    assert_eq!(output(&mut m, "show"), "1\n");
}

#[test]
fn trace_redefines_functions() {
    // The paper's trace + echo-nl example.
    let mut m = machine();
    m.run(
        "fn trace functions {
            for (func = $functions)
                let (old = $(fn-$func))
                    fn $func args {
                        echo calling $func $args
                        $old $args
                    }
        }",
    )
    .unwrap();
    m.run(
        "fn echo-nl head tail {
            if {!~ $#head 0} {
                echo $head
                echo-nl $tail
            }
        }",
    )
    .unwrap();
    assert_eq!(output(&mut m, "echo-nl a b c"), "a\nb\nc\n");
    m.run("trace echo-nl").unwrap();
    assert_eq!(
        output(&mut m, "echo-nl a b c"),
        "calling echo-nl a b c\na\ncalling echo-nl b c\nb\ncalling echo-nl c\nc\ncalling echo-nl\n"
    );
}

// --------------------------------------------------------------------------
// Settor variables.
// --------------------------------------------------------------------------

#[test]
fn watch_settor_example() {
    let mut m = machine();
    m.run(
        "fn watch vars {
            for (var = $vars) {
                set-$var = @ {
                    echo old $var '=' $$var
                    echo new $var '=' $*
                    return $*
                }
            }
        }",
    )
    .unwrap();
    m.run("watch x").unwrap();
    assert_eq!(
        output(&mut m, "x=foo bar"),
        "old x =\nnew x = foo bar\n"
    );
    assert_eq!(output(&mut m, "x=fubar"), "old x = foo bar\nnew x = fubar\n");
    assert_eq!(m.get_var("x"), vec!["fubar"]);
}

#[test]
fn path_settors_stay_in_sync() {
    let mut m = machine();
    m.run("path = /bin /tmp").unwrap();
    assert_eq!(m.get_var("PATH"), vec!["/bin:/tmp"]);
    m.run("PATH = /usr/bin:/bin").unwrap();
    assert_eq!(m.get_var("path"), vec!["/usr/bin", "/bin"]);
}

// --------------------------------------------------------------------------
// Rich return values (paper section "Return Values").
// --------------------------------------------------------------------------

#[test]
fn hello_world_return() {
    let mut m = machine();
    m.run("fn hello-world { return 'hello, world' }").unwrap();
    assert_eq!(output(&mut m, "echo <>{hello-world}"), "hello, world\n");
}

#[test]
fn cons_car_cdr() {
    // Closures as data: the paper's hierarchical-list example.
    let mut m = machine();
    m.run("fn cons a d { return @ f { $f $a $d } }").unwrap();
    m.run("fn car p { $p @ a d { return $a } }").unwrap();
    m.run("fn cdr p { $p @ a d { return $d } }").unwrap();
    assert_eq!(
        output(
            &mut m,
            "echo <>{car <>{cdr <>{cons 1 <>{cons 2 <>{cons 3 nil}}}}}"
        ),
        "2\n"
    );
}

#[test]
fn external_status_as_value() {
    let mut m = machine();
    assert_eq!(val(&mut m, "true"), vec!["0"]);
    assert_eq!(val(&mut m, "false"), vec!["1"]);
    assert_eq!(val(&mut m, "result a b c"), vec!["a", "b", "c"]);
}

// --------------------------------------------------------------------------
// Exceptions (paper section "Exceptions").
// --------------------------------------------------------------------------

#[test]
fn throw_and_catch_error() {
    let mut m = machine();
    m.run(
        "fn in dir cmd {
            if {~ $#dir 0} {
                throw error 'usage: in dir cmd'
            }
            catch @ e msg {
                if {~ $e error} {
                    echo >[1=2] in $dir: $msg
                } {
                    throw $e $msg
                }
            } {
                cd $dir
                $cmd
            }
        }",
    )
    .unwrap();
    // Usage error propagates.
    let err = m.run("in").unwrap_err();
    assert_eq!(err, "error usage: in dir cmd");
    // Successful use.
    m.os_mut().vfs_mut().put_file("/tmp/webster.socket", b"").unwrap();
    assert_eq!(output(&mut m, "in /tmp ls"), "webster.socket\n");
    // Failure: the handler reformats the message, like the paper's
    // `in /temp: chdir /temp: No such file or directory`.
    m.run("in /temp ls").unwrap();
    let err_out = m.os_mut().take_error();
    assert_eq!(err_out, "in /temp: chdir /temp: No such file or directory\n");
}

#[test]
fn catch_passes_body_value_through() {
    let mut m = machine();
    assert_eq!(val(&mut m, "catch @ e {echo handler} {result ok}"), vec!["ok"]);
}

#[test]
fn retry_reruns_body() {
    let mut m = machine();
    m.run("tries = 0").unwrap();
    let out = val(
        &mut m,
        "catch @ e {
            throw retry
        } {
            tries = <>{%flatten '' $tries x}
            if {!~ $tries 0xxx} {throw again}
            result $tries
        }",
    );
    assert_eq!(out, vec!["0xxx"], "the body was retried until it succeeded");
}

#[test]
fn break_exits_loops() {
    let mut m = machine();
    assert_eq!(
        output(
            &mut m,
            "for (i = 1 2 3 4 5) { if {~ $i 3} {break}; echo $i }"
        ),
        "1\n2\n"
    );
    assert_eq!(
        output(
            &mut m,
            "n = a; while {!~ $n aaaa} { n = $n^a; if {~ $n aaa} {break}; echo $n }"
        ),
        "aa\n"
    );
}

#[test]
fn return_exits_function_not_if() {
    let mut m = machine();
    m.run("fn f { if {true} { return early }; echo not-reached }")
        .unwrap();
    assert_eq!(val(&mut m, "result <>{f}"), vec!["early"]);
    assert_eq!(m.os_mut().take_output(), "");
}

#[test]
fn uncaught_exception_reported() {
    let mut m = machine();
    let err = m.run("throw custom a b").unwrap_err();
    assert_eq!(err, "custom a b");
}

#[test]
fn signal_becomes_exception() {
    let mut m = machine();
    m.os_mut().raise_signal(es_os::Signal::Int);
    let err = m.run("echo never").unwrap_err();
    assert_eq!(err, "signal sigint");
    // Catchable like any exception: the body interrupts itself (kill
    // targets the shell's own pid) and the next command's signal poll
    // turns it into a throw inside the catch body.
    assert_eq!(
        val(&mut m, "catch @ e {result caught $e} {kill -2 5000; echo hi}"),
        vec!["caught", "signal", "sigint"]
    );
}

// --------------------------------------------------------------------------
// Spoofing (paper section "Spoofing").
// --------------------------------------------------------------------------

#[test]
fn noclobber_create_spoof() {
    let mut m = machine();
    m.run(
        "let (create = $fn-%create)
            fn %create fd file cmd {
                if {test -f $file} {
                    throw error $file exists
                } {
                    $create $fd $file $cmd
                }
            }",
    )
    .unwrap();
    m.run("echo first > /tmp/noclob").unwrap();
    assert_eq!(output(&mut m, "cat /tmp/noclob"), "first\n");
    let err = m.run("echo second > /tmp/noclob").unwrap_err();
    assert_eq!(err, "error /tmp/noclob exists");
    assert_eq!(output(&mut m, "cat /tmp/noclob"), "first\n", "unclobbered");
    // The underlying primitive is still reachable.
    m.run("$&create 1 /tmp/noclob {echo forced}").unwrap();
    assert_eq!(output(&mut m, "cat /tmp/noclob"), "forced\n");
}

#[test]
fn cd_title_spoof() {
    let mut m = machine();
    // `title` is hypothetical in the paper; fake it with a variable.
    m.run("fn title { last-title = $* }").unwrap();
    m.run(
        "let (cd = $fn-cd)
            fn cd {
                $cd $*
                title `{pwd}
            }",
    )
    .unwrap();
    m.run("cd /tmp").unwrap();
    assert_eq!(m.os().cwd(), "/tmp");
    assert_eq!(m.get_var("last-title"), vec!["/tmp"]);
}

#[test]
fn figure1_pipe_timing_spoof() {
    let mut m = machine();
    let text = "the a the b the a to of is and the a to to a of\n".repeat(16);
    m.os_mut()
        .vfs_mut()
        .put_file("/home/user/paper9", text.as_bytes())
        .unwrap();
    m.run(
        "let (pipe = $fn-%pipe) {
            fn %pipe first out in rest {
                if {~ $#out 0} {
                    time $first
                } {
                    $pipe {time $first} $out $in {%pipe $rest}
                }
            }
        }",
    )
    .unwrap();
    m.run("cat paper9 | tr -cs a-zA-Z0-9 '\\012' | sort | uniq -c | sort -nr | sed 6q")
        .unwrap();
    let out = m.os_mut().take_output();
    let err = m.os_mut().take_error();
    // Output: six word-frequency lines, most frequent first.
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 6, "out: {out}");
    assert!(lines[0].trim().starts_with("64"), "the: {}", lines[0]);
    assert!(lines[0].ends_with("the"));
    // Stderr: one timing line per pipeline stage, like Figure 1.
    let timings: Vec<&str> = err.lines().collect();
    assert_eq!(timings.len(), 6, "err: {err}");
    assert!(timings.iter().any(|l| l.contains("cat paper9")), "{err}");
    assert!(timings.iter().any(|l| l.contains("sed 6q")), "{err}");
    for l in &timings {
        assert!(l.contains('r') && l.contains('u') && l.contains('s'), "{l}");
    }
}

#[test]
fn figure2_pathsearch_cache() {
    let mut m = machine();
    m.run(
        "let (search = $fn-%pathsearch) {
            fn %pathsearch prog {
                let (file = <>{$search $prog}) {
                    if {~ $#file 1 && ~ $file /*} {
                        path-cache = $path-cache $prog
                        fn-$prog = $file
                    }
                    return $file
                }
            }
        }
        fn recache {
            for (i = $path-cache)
                fn-$i =
            path-cache =
        }",
    )
    .unwrap();
    assert_eq!(m.get_var("fn-ls"), Vec::<String>::new());
    assert_eq!(output(&mut m, "ls /tmp"), "");
    // The lookup was cached.
    assert_eq!(m.get_var("fn-ls"), vec!["/bin/ls"]);
    assert_eq!(m.get_var("path-cache"), vec!["ls"]);
    // Cached invocation still works.
    m.os_mut().vfs_mut().put_file("/tmp/seen", b"").unwrap();
    assert_eq!(output(&mut m, "ls /tmp"), "seen\n");
    // recache flushes.
    m.run("recache").unwrap();
    assert_eq!(m.get_var("fn-ls"), Vec::<String>::new());
    assert_eq!(m.get_var("path-cache"), Vec::<String>::new());
}

// --------------------------------------------------------------------------
// Figure 3: the interactive loop, driven through the REPL.
// --------------------------------------------------------------------------

#[test]
fn repl_runs_commands_and_reports_errors() {
    let mut m = machine();
    m.os_mut().push_input("echo one\nbogus-cmd\necho two\n");
    let status = m.repl();
    assert_eq!(status, 0, "last command succeeded");
    assert_eq!(m.os_mut().take_output(), "one\ntwo\n");
    let err = m.os_mut().take_error();
    assert!(
        err.contains("bogus-cmd: command not found"),
        "error printed, loop retried: {err}"
    );
    assert!(err.contains("; "), "prompts printed on stderr: {err}");
}

#[test]
fn repl_multiline_commands_use_prompt2() {
    let mut m = machine();
    m.run("prompt = ('; ' '.. ')").unwrap();
    m.os_mut().push_input("echo {\nnested\n}\n");
    // `echo {` is incomplete; %parse keeps reading with prompt2.
    let status = m.repl();
    assert_eq!(status, 0);
    let out = m.os_mut().take_output();
    assert!(out.contains("{nested}"), "closure printed: {out}");
    let err = m.os_mut().take_error();
    assert!(err.contains(".. "), "continuation prompt shown: {err}");
}

#[test]
fn repl_loop_is_spoofable() {
    // The whole interactive loop is just a function; replace it.
    let mut m = machine();
    m.run("fn %interactive-loop { echo custom loop; result 7 }").unwrap();
    m.os_mut().push_input("ignored\n");
    let status = m.repl();
    assert_eq!(m.os_mut().take_output(), "custom loop\n");
    assert_eq!(status, 1, "value 7 is false in es terms");
}

#[test]
fn repl_exit_status_propagates() {
    let mut m = machine();
    m.os_mut().push_input("exit 3\necho never\n");
    assert_eq!(m.repl(), 3);
    assert_eq!(m.os_mut().take_output(), "");
}

// --------------------------------------------------------------------------
// The environment (paper section "The Environment").
// --------------------------------------------------------------------------

#[test]
fn whatis_shows_closure_encoding() {
    let mut m = machine();
    m.run("let (a = b) fn foo { echo $a }").unwrap();
    assert_eq!(
        output(&mut m, "whatis foo"),
        "%closure(a=b)@ * {echo $a}\n"
    );
}

#[test]
fn functions_travel_through_environment() {
    let mut m = machine();
    m.run("fn greet who { echo hello, $who }").unwrap();
    m.run("let (a = captured) fn closed { echo $a }").unwrap();
    m.run("plain = some value").unwrap();
    let env = crate::env::build_environment(&m);
    // Boot a child shell from that environment: no rc files, full state.
    let mut child_os = SimOs::new();
    child_os.set_initial_env(env.clone());
    let mut child = Machine::new(child_os).expect("child boots");
    assert_eq!(child.get_var("plain"), vec!["some", "value"]);
    child.run("greet world").unwrap();
    child.run("closed").unwrap();
    assert_eq!(child.os_mut().take_output(), "hello, world\ncaptured\n");
}

#[test]
fn lexical_sharing_lost_across_environment() {
    // The paper: two functions defined in the same scope share the
    // binding in the parent, but the connection is lost when they are
    // exported in separate environment strings.
    let mut m = machine();
    m.run("let (n = 0) { fn bump { n = bumped }; fn show { echo $n } }")
        .unwrap();
    m.run("bump").unwrap();
    assert_eq!(output(&mut m, "show"), "bumped\n");
    let env = crate::env::build_environment(&m);
    let mut child_os = SimOs::new();
    child_os.set_initial_env(env);
    let mut child = Machine::new(child_os).expect("child boots");
    child.run("bump").unwrap();
    assert_eq!(
        output(&mut child, "show"),
        "bumped\n",
        "child imported the already-bumped value"
    );
    // But now the scopes are separate: re-import shows the values are
    // snapshots, not shared bindings... demonstrate by bumping to a
    // new value in the child's `bump` and observing `show` UNchanged.
    child.run("let (x = 1) { fn bump2 { x = 2 }; fn show2 { echo $x } }").unwrap();
    let env2 = crate::env::build_environment(&child);
    let mut gchild_os = SimOs::new();
    gchild_os.set_initial_env(env2);
    let mut gchild = Machine::new(gchild_os).expect("grandchild boots");
    gchild.run("bump2").unwrap();
    assert_eq!(
        output(&mut gchild, "show2"),
        "1\n",
        "bump2 and show2 no longer share a frame after env transit"
    );
}

#[test]
fn fork_isolates_shell_state() {
    let mut m = machine();
    m.run("x = parent").unwrap();
    m.run("fork {x = child; echo in child $x}").unwrap();
    assert_eq!(m.os_mut().take_output(), "in child child\n");
    assert_eq!(m.get_var("x"), vec!["parent"], "fork isolated the assignment");
    // cd in the child does not move the parent...
    m.run("fork {cd /tmp}").unwrap();
    assert_eq!(m.os().cwd(), "/home/user");
    // ...but file writes are shared (one filesystem).
    m.run("fork {echo shared > /tmp/from-child}").unwrap();
    assert_eq!(output(&mut m, "cat /tmp/from-child"), "shared\n");
}

#[test]
fn subshell_exception_prints_and_returns_false() {
    let mut m = machine();
    let v = val(&mut m, "fork {throw error oops}");
    assert_eq!(v, vec!["1"], "false status from subshell exception");
    let err = m.os_mut().take_error();
    assert!(err.contains("oops"), "{err}");
}

// --------------------------------------------------------------------------
// Word/list semantics.
// --------------------------------------------------------------------------

#[test]
fn list_flattening_and_concat() {
    let mut m = machine();
    m.run("l = a b c").unwrap();
    assert_eq!(val(&mut m, "result $l^x"), vec!["ax", "bx", "cx"]);
    assert_eq!(val(&mut m, "result x^$l"), vec!["xa", "xb", "xc"]);
    m.run("r = 1 2 3").unwrap();
    assert_eq!(val(&mut m, "result $l^$r"), vec!["a1", "b2", "c3"]);
    let err = m.run("result $l^(1 2)").unwrap_err();
    assert!(err.contains("bad concatenation"), "{err}");
    assert_eq!(val(&mut m, "result $^l"), vec!["a b c"]);
    assert_eq!(val(&mut m, "result $#l"), vec!["3"]);
}

#[test]
fn subscripts() {
    let mut m = machine();
    m.run("l = a b c d").unwrap();
    assert_eq!(val(&mut m, "result $l(2)"), vec!["b"]);
    assert_eq!(val(&mut m, "result $l(4 1)"), vec!["d", "a"]);
    assert_eq!(val(&mut m, "result $l(9)"), Vec::<String>::new());
}

#[test]
fn double_deref() {
    let mut m = machine();
    m.run("name = target; target = hit").unwrap();
    assert_eq!(val(&mut m, "result $$name"), vec!["hit"]);
}

#[test]
fn computed_deref_with_parens() {
    let mut m = machine();
    m.run("fn-thing = {result found}").unwrap();
    m.run("which = thing").unwrap();
    assert_eq!(val(&mut m, "result $(fn-$which)"), vec!["{result found}"]);
}

#[test]
fn glob_expansion() {
    let mut m = machine();
    for f in ["/tmp/Ex1", "/tmp/Ex2", "/tmp/other", "/tmp/.hidden"] {
        m.os_mut().vfs_mut().put_file(f, b"").unwrap();
    }
    m.run("cd /tmp").unwrap();
    assert_eq!(val(&mut m, "result Ex*"), vec!["Ex1", "Ex2"]);
    assert_eq!(val(&mut m, "result *"), vec!["Ex1", "Ex2", "other"]);
    assert_eq!(val(&mut m, "result .h*"), vec![".hidden"]);
    assert_eq!(val(&mut m, "result '*'"), vec!["*"], "quoted star is literal");
    assert_eq!(val(&mut m, "result /tmp/E?1"), vec!["/tmp/Ex1"]);
    assert_eq!(val(&mut m, "result nomatch*"), vec!["nomatch*"]);
    m.run("rm Ex*").unwrap();
    assert_eq!(val(&mut m, "result *"), vec!["other"]);
}

#[test]
fn match_command() {
    let mut m = machine();
    assert_eq!(val(&mut m, "~ foo foo"), vec!["0"]);
    assert_eq!(val(&mut m, "~ foo bar"), vec!["1"]);
    assert_eq!(val(&mut m, "~ /bin/ls /*"), vec!["0"]);
    assert_eq!(val(&mut m, "~ (a b c) b"), vec!["0"]);
    assert_eq!(val(&mut m, "~ () ()"), vec!["0"]);
    assert_eq!(val(&mut m, "~ x a b x"), vec!["0"]);
    assert_eq!(val(&mut m, "!~ foo f*"), vec!["1"]);
}

#[test]
fn backquote_splits_on_ifs() {
    let mut m = machine();
    assert_eq!(val(&mut m, "result `{echo a b; echo c}"), vec!["a", "b", "c"]);
    m.run("ifs = ':'").unwrap();
    assert_eq!(val(&mut m, "result `{echo -n a:b:c}"), vec!["a", "b", "c"]);
}

#[test]
fn multi_assignment() {
    let mut m = machine();
    m.run("(a b) = 1 2 3").unwrap();
    assert_eq!(m.get_var("a"), vec!["1"]);
    assert_eq!(m.get_var("b"), vec!["2", "3"]);
}

#[test]
fn heredoc() {
    let mut m = machine();
    assert_eq!(output(&mut m, "cat << 'l1\nl2\n'"), "l1\nl2\n");
}

#[test]
fn dup_redirect_to_stderr() {
    let mut m = machine();
    m.run("echo oops >[1=2]").unwrap();
    assert_eq!(m.os_mut().take_output(), "");
    assert_eq!(m.os_mut().take_error(), "oops\n");
}

#[test]
fn dot_sources_scripts() {
    let mut m = machine();
    m.os_mut()
        .vfs_mut()
        .put_file("/home/user/script.es", b"echo script ran with $*\nscript-var = set\n")
        .unwrap();
    m.run(". script.es one two").unwrap();
    assert_eq!(m.os_mut().take_output(), "script ran with one two\n");
    assert_eq!(m.get_var("script-var"), vec!["set"]);
}

#[test]
fn eval_command() {
    let mut m = machine();
    m.run("cmd = echo; arg = built").unwrap();
    assert_eq!(output(&mut m, "eval $cmd $arg up"), "built up\n");
}

// --------------------------------------------------------------------------
// Tail calls (paper "Future Work"; experiment E6).
// --------------------------------------------------------------------------

#[test]
fn tail_calls_do_not_grow_depth() {
    let mut m = machine();
    m.run("fn loop n { if {~ $n xxxxx} {result done} {loop $n^x} }")
        .unwrap();
    m.max_depth_seen = 0;
    assert_eq!(val(&mut m, "result <>{loop ''}"), vec!["done"]);
    assert!(
        m.max_depth_seen <= 3,
        "tail-recursive loop ran in constant depth, saw {}",
        m.max_depth_seen
    );
}

#[test]
fn naive_mode_grows_depth() {
    let mut os = SimOs::new();
    os.set_initial_env(vec![("PATH".into(), "/bin".into())]);
    let mut m = Machine::with_options(
        os,
        Options {
            tail_calls: false,
            limits: Limits {
                depth: Some(64),
                ..Limits::default()
            },
            interactive: false,
            ..Options::default()
        },
    )
    .expect("machine boots");
    m.run("fn loop n { if {~ $n xxxxxxxxxx} {result done} {loop $n^x} }")
        .unwrap();
    m.max_depth_seen = 0;
    m.run("loop ''").unwrap();
    assert!(
        m.max_depth_seen >= 10,
        "naive mode consumed stack per call: {}",
        m.max_depth_seen
    );
    // And deep recursion exhausts the stack, as the paper laments.
    m.run("fn deep n { if {~ $#n 400} {result done} {deep $n $n(1)} }")
        .unwrap();
    // (the governor's depth limit converts the would-be crash into a
    // catchable `limit depth` exception well before the real stack
    // runs out)
    let err = m.run("deep seed").unwrap_err();
    assert!(err.contains("limit depth"), "{err}");
}

// --------------------------------------------------------------------------
// Garbage collection behaviours visible from the shell.
// --------------------------------------------------------------------------

#[test]
fn gc_survives_shell_workload() {
    let mut m = machine();
    m.heap.set_stress(true);
    m.run("fn mk n { return @ { result $n } }").unwrap();
    m.run("fns = <>{mk 1} <>{mk 2} <>{mk 3}").unwrap();
    assert_eq!(val(&mut m, "$fns(2)"), vec!["2"]);
    m.heap.set_stress(false);
    // The bytecode engine allocates less than the tree walker did
    // (no head-word list per call, no spine copy per literal), so the
    // floor is what matters, not the old walker's exact count.
    assert!(
        m.heap.stats().collections > 50,
        "stress mode collected (saw {})",
        m.heap.stats().collections
    );
}

#[test]
fn gc_collect_primitive_and_stats() {
    let mut m = machine();
    m.run("collect").unwrap();
    let stats = val(&mut m, "result <>{gcstats}");
    assert!(stats.contains(&"collections".to_string()));
    let n_before = m.heap.stats().collections;
    m.run("for (i = 1 2 3 4 5) { x = $i; collect }").unwrap();
    assert!(m.heap.stats().collections >= n_before + 5);
}

#[test]
fn cyclic_closures_are_collected() {
    let mut m = machine();
    // A closure that references itself through a lexical binding.
    m.run("let (self = ) { self = @ { result $self }; cyc = $self }")
        .unwrap();
    let live_with = {
        m.heap.collect();
        m.heap.stats().live_after_last
    };
    m.run("cyc =").unwrap();
    m.heap.collect();
    let live_without = m.heap.stats().live_after_last;
    assert!(
        live_without < live_with,
        "cycle reclaimed: {live_with} -> {live_without}"
    );
}

// --------------------------------------------------------------------------
// Background jobs and time.
// --------------------------------------------------------------------------

#[test]
fn background_sets_apid() {
    let mut m = machine();
    m.run("echo bg &").unwrap();
    assert_eq!(m.os_mut().take_output(), "bg\n");
    assert_eq!(m.get_var("apid"), vec!["9001"]);
}

#[test]
fn time_reports_child_usage() {
    let mut m = machine();
    m.run("time cat /etc/motd").unwrap();
    let err = m.os_mut().take_error();
    assert!(err.contains("cat /etc/motd"), "{err}");
    assert!(err.contains('u') && err.contains('s'), "{err}");
}

#[test]
fn whatis_falls_back_to_path() {
    let mut m = machine();
    assert_eq!(output(&mut m, "whatis ls"), "/bin/ls\n");
}

// --------------------------------------------------------------------------
// The %glob hook — the paper's "future work" on exposing wildcard
// expansion, implemented as an extension.
// --------------------------------------------------------------------------

#[test]
fn glob_hook_spoofs_wildcard_expansion() {
    let mut m = machine();
    for f in ["/tmp/a.c", "/tmp/b.c"] {
        m.os_mut().vfs_mut().put_file(f, b"").unwrap();
    }
    m.run("cd /tmp").unwrap();
    // Native behaviour first.
    assert_eq!(val(&mut m, "result *.c"), vec!["a.c", "b.c"]);
    // Replace expansion wholesale: uppercase every match.
    m.run("fn %glob pat { result SPOOFED $pat }").unwrap();
    assert_eq!(val(&mut m, "result *.c"), vec!["SPOOFED", "*.c"]);
    // Remove the spoof: native expansion returns.
    m.run("fn-%glob =").unwrap();
    assert_eq!(val(&mut m, "result *.c"), vec!["a.c", "b.c"]);
}

#[test]
fn glob_hook_can_wrap_native_expansion() {
    // A useful spoof: log every expansion but keep the result by
    // delegating to ls-style matching via the native path (the hook
    // removes itself during the nested expansion).
    let mut m = machine();
    for f in ["/tmp/x1", "/tmp/x2"] {
        m.os_mut().vfs_mut().put_file(f, b"").unwrap();
    }
    m.run("cd /tmp").unwrap();
    m.run(
        "fn %glob pat {
            glob-log = $glob-log $pat
            local (fn-%glob = ) {
                result <>{eval result $pat}
            }
        }",
    )
    .unwrap();
    assert_eq!(val(&mut m, "result x*"), vec!["x1", "x2"]);
    assert_eq!(m.get_var("glob-log"), vec!["x*"]);
}

#[test]
fn expr_enables_arithmetic_in_es() {
    let mut m = machine();
    m.run("fn add a b { result `{expr $a + $b} }").unwrap();
    assert_eq!(val(&mut m, "result <>{add 17 25}"), vec!["42"]);
    // A counting loop in classic Bourne style.
    m.run("n = 0").unwrap();
    m.run("while {~ `{expr $n '<' 5} 1} { n = `{expr $n + 1} }").unwrap();
    assert_eq!(m.get_var("n"), vec!["5"]);
}

// --------------------------------------------------------------------------
// Additional semantic corners.
// --------------------------------------------------------------------------

#[test]
fn return_transparent_through_bare_blocks() {
    // A bare {block} is not a return boundary; function forms are.
    let mut m = machine();
    m.run("fn f { { return inner }; result after }").unwrap();
    assert_eq!(val(&mut m, "result <>{f}"), vec!["inner"]);
    // But an @-form lambda IS a boundary.
    m.run("fn g { dispatch = @ { return from-lambda }; $dispatch; result after }")
        .unwrap();
    assert_eq!(val(&mut m, "result <>{g}"), vec!["after"]);
}

#[test]
fn dollar_zero_and_star() {
    let mut m = machine();
    m.run("fn who { echo name: $0, args: $* }").unwrap();
    assert_eq!(output(&mut m, "who a b"), "name: who, args: a b\n");
    // $* stays visible inside nested control flow.
    m.run("fn v { if {true} { echo $* } }").unwrap();
    assert_eq!(output(&mut m, "v x y"), "x y\n");
    // And inside while bodies.
    m.run("fn w { once = yes; while {~ $once yes} { once = no; echo $* } }")
        .unwrap();
    assert_eq!(output(&mut m, "w p q"), "p q\n");
}

#[test]
fn bqstatus_records_backquote_command_value() {
    let mut m = machine();
    m.run("x = `{echo hi; false}").unwrap();
    assert_eq!(m.get_var("bqstatus"), vec!["1"]);
    m.run("x = `{echo hi}").unwrap();
    assert_eq!(m.get_var("bqstatus"), vec!["0"]);
}

#[test]
fn close_redirection() {
    let mut m = machine();
    // With fd 1 closed, echo's write fails -> error exception.
    let err = m.run("echo hidden >[1=]").unwrap_err();
    assert!(err.contains("echo"), "{err}");
    assert_eq!(m.os_mut().take_output(), "");
    // But the shell survives and fd 1 is restored.
    assert_eq!(output(&mut m, "echo visible"), "visible\n");
}

#[test]
fn here_document_feeds_stdin() {
    let mut m = machine();
    assert_eq!(output(&mut m, "wc -l << 'a\nb\nc\n'"), "3\n");
}

#[test]
fn prompt_variable_is_used_by_parse() {
    let mut m = machine();
    m.run("prompt = ('es> ' '... ')").unwrap();
    m.os_mut().push_input("echo done\n");
    m.repl();
    let err = m.os_mut().take_error();
    assert!(err.contains("es> "), "{err}");
}

#[test]
fn settors_fire_on_local_bindings() {
    let mut m = machine();
    m.run("fn watch-x { set-x = @ { hits = $hits 1; return $* } }").unwrap();
    m.run("watch-x").unwrap();
    m.run("local (x = a) { result $x }").unwrap();
    assert_eq!(m.get_var("hits"), vec!["1"], "settor ran for the local binding");
}

#[test]
fn noexport_variable_respected() {
    let mut m = machine();
    m.run("secret = hidden").unwrap();
    m.run("noexport = $noexport secret").unwrap();
    let env = m.export_environment();
    assert!(!env.iter().any(|(k, _)| k == "secret"));
    assert!(env.iter().any(|(k, _)| k == "fn-%pipe"), "functions still export");
}

#[test]
fn whatis_multiple_names() {
    let mut m = machine();
    m.run("fn one { result 1 }").unwrap();
    assert_eq!(
        output(&mut m, "whatis one ls"),
        "@ * {result 1}\n/bin/ls\n"
    );
}

#[test]
fn empty_pattern_list_matches_empty_subject_only() {
    let mut m = machine();
    assert_eq!(val(&mut m, "~ ()"), vec!["0"]);
    assert_eq!(val(&mut m, "~ x"), vec!["1"]);
}

#[test]
fn division_of_labor_if_branches() {
    let mut m = machine();
    // Multi-arm if from Figure 3: first true condition wins.
    let src = "fn classify e {
        if {~ $e eof} { result end-of-file } \
           {~ $e error} { result user-error } \
           { result unknown }
    }";
    m.run(src).unwrap();
    assert_eq!(val(&mut m, "result <>{classify eof}"), vec!["end-of-file"]);
    assert_eq!(val(&mut m, "result <>{classify error}"), vec!["user-error"]);
    assert_eq!(val(&mut m, "result <>{classify retry}"), vec!["unknown"]);
}

#[test]
fn fork_inside_pipeline() {
    let mut m = machine();
    assert_eq!(
        output(&mut m, "fork {echo from subshell} | tr a-z A-Z"),
        "FROM SUBSHELL\n"
    );
}

#[test]
fn exceptions_restore_redirections() {
    let mut m = machine();
    let err = m.run("{ throw error boom } > /tmp/out").unwrap_err();
    assert_eq!(err, "error boom");
    // fd 1 must be back on the console.
    assert_eq!(output(&mut m, "echo back"), "back\n");
}

#[test]
fn exceptions_restore_dynamic_bindings() {
    let mut m = machine();
    m.run("x = outer").unwrap();
    let err = m.run("local (x = inner) { throw error bye }").unwrap_err();
    assert_eq!(err, "error bye");
    assert_eq!(m.get_var("x"), vec!["outer"]);
}

#[test]
fn deeply_nested_closures_survive_collection() {
    let mut m = machine();
    m.run("fn wrap f { return @ { result wrapped <>{$f} } }").unwrap();
    m.run("g = @ { result base }").unwrap();
    for _ in 0..10 {
        m.run("g = <>{wrap $g}").unwrap();
    }
    m.heap.collect();
    let got = val(&mut m, "result <>{$g}");
    assert_eq!(got.len(), 11);
    assert!(got.iter().take(10).all(|w| w == "wrapped"));
    assert_eq!(got[10], "base");
}

#[test]
fn interactive_flag_primitive() {
    let mut m = machine();
    assert_eq!(val(&mut m, "$&isinteractive"), vec!["1"]);
    m.opts.interactive = true;
    assert_eq!(val(&mut m, "$&isinteractive"), vec!["0"]);
}

#[test]
fn version_and_primitives_lists() {
    let mut m = machine();
    let v = val(&mut m, "version");
    assert!(v.join(" ").contains("USENIX 1993"));
    let prims = val(&mut m, "primitives");
    assert!(prims.contains(&"create".to_string()));
    assert!(prims.contains(&"catch".to_string()));
    assert!(prims.len() > 30);
}

// --------------------------------------------------------------------------
// The higher-order library shipped in initial.es.
// --------------------------------------------------------------------------

#[test]
fn stdlib_map_filter_fold() {
    let mut m = machine();
    assert_eq!(
        val(&mut m, "result <>{map @ x {result $x$x} a b c}"),
        vec!["aa", "bb", "cc"]
    );
    assert_eq!(
        val(&mut m, "result <>{filter @ x {~ $x *o*} foo bar box}"),
        vec!["foo", "box"]
    );
    assert_eq!(
        val(&mut m, "result <>{fold @ a x {result $a$x} '' 1 2 3}"),
        vec!["123"]
    );
    // And with externals through backquotes: numeric fold via expr.
    assert_eq!(
        val(&mut m, "result <>{fold @ a x {result `{expr $a + $x}} 0 1 2 3 4}"),
        vec!["10"]
    );
}

#[test]
fn stdlib_apply_matches_paper_definition() {
    let mut m = machine();
    assert_eq!(
        output(&mut m, "apply echo testing 1.. 2.. 3.."),
        "testing\n1..\n2..\n3..\n"
    );
}

#[test]
fn stdlib_functions_compose() {
    let mut m = machine();
    // map over the output of filter, folded into one string.
    let v = val(
        &mut m,
        "result <>{fold @ a x {result $a$x} '' <>{map @ x {result '<'$x'>'} <>{filter @ x {!~ $x b} a b c}}}",
    );
    assert_eq!(v, vec!["<a><c>"]);
}

// --------------------------------------------------------------------------
// The resource governor: catchable limits, the watchdog deadline, and
// prompt interrupt delivery (ISSUE 4).
// --------------------------------------------------------------------------

/// The issue's acceptance scenario: a runaway `forever` under a step
/// budget terminates with a catchable `limit` exception, leaks no
/// descriptors, and moves the virtual clock (every eval step charges
/// time, so even pure-CPU loops are visible to the deadline watchdog).
#[test]
fn limit_steps_breach_is_catchable_no_fd_leak_time_advances() {
    let mut m = machine();
    let baseline = m.os().open_desc_count();
    let t0 = m.os().now_ns();
    assert_eq!(
        output(
            &mut m,
            "catch @ e kind used max {echo caught $e $kind} \
             {%limit steps 1000 {forever {true}}}"
        ),
        "caught limit steps\n"
    );
    assert_eq!(m.os().open_desc_count(), baseline, "breach leaked a descriptor");
    assert!(m.os().now_ns() > t0, "virtual time did not advance");
}

/// The two-argument form arms a limit permanently; the three-argument
/// form only tightens for the body and restores on every exit path.
#[test]
fn scoped_limit_restores_outer_limits() {
    let mut m = machine();
    m.run("%limit steps 5000000").unwrap();
    let outer = m.governor().limits().steps;
    assert!(outer.is_some());
    // Value path restores.
    assert_eq!(val(&mut m, "result <>{%limit steps 100000 {result ok}}"), vec!["ok"]);
    assert_eq!(m.governor().limits().steps, outer);
    // Exception path restores too.
    let _ = val(
        &mut m,
        "catch @ e {result $e} {%limit steps 50 {forever {true}}}",
    );
    assert_eq!(m.governor().limits().steps, outer);
}

/// A sandbox cannot loosen an enclosing budget: the scoped form takes
/// the minimum of the inner and outer limits.
#[test]
fn scoped_limit_only_tightens() {
    let mut m = machine();
    assert_eq!(
        val(
            &mut m,
            "catch @ e kind used max {result $e $kind} \
             {%limit steps 200 {%limit steps 999999999 {forever {true}}}}"
        ),
        vec!["limit", "steps"]
    );
}

/// Deep non-tail recursion trips the depth limit (the old hard
/// `max_depth` error, now an ordinary catchable exception), and the
/// guard stays armed afterwards.
#[test]
fn limit_depth_breach_is_catchable_and_rearms() {
    let mut m = machine();
    m.run("fn f { f; result x }").unwrap();
    for _ in 0..2 {
        assert_eq!(
            val(&mut m, "catch @ e kind used max {result $e $kind} {f}"),
            vec!["limit", "depth"]
        );
    }
}

/// The output quota counts every byte the shell writes.
#[test]
fn limit_output_quota_trips() {
    let mut m = machine();
    assert_eq!(
        val(
            &mut m,
            "catch @ e kind used max {result $e $kind} \
             {%limit output 200 {forever {echo 0123456789}}}"
        ),
        vec!["limit", "output"]
    );
}

/// The fd budget sees descriptors opened by redirections; the guard
/// fires while they are held and the scope machinery still closes them.
#[test]
fn limit_fds_budget_trips_without_leak() {
    let mut m = machine();
    let baseline = m.os().open_desc_count();
    let src = format!(
        "catch @ e kind used max {{result $e $kind}} \
         {{{{%limit fds {baseline} {{forever {{true}}}}}} > /tmp/fdlimit}}"
    );
    assert_eq!(val(&mut m, &src), vec!["limit", "fds"]);
    assert_eq!(m.os().open_desc_count(), baseline);
}

/// The heap budget forces a collection first, so only genuinely live
/// objects can breach it; a loop that retains everything does.
#[test]
fn limit_heap_budget_trips_on_live_growth() {
    let mut m = machine();
    let budget = m.heap.len() as u64 + 2000;
    let src = format!(
        "catch @ e kind used max {{result $e $kind}} \
         {{%limit heap {budget} {{forever {{x = $x yyyyyyyy}}}}}}"
    );
    assert_eq!(val(&mut m, &src), vec!["limit", "heap"]);
    assert!(m.heap.stats().budget_collections > 0);
}

/// The virtual-time deadline is a watchdog: it rides the signal path
/// as `signal sigalrm` rather than the `limit` family.
#[test]
fn limit_time_deadline_delivers_sigalrm() {
    let mut m = machine();
    assert_eq!(
        val(
            &mut m,
            "catch @ e sig {result $e $sig} {%limit time 5 {forever {true}}}"
        ),
        vec!["signal", "sigalrm"]
    );
}

/// Crossing 90% of a budget warns once on stderr; the breach itself
/// does not repeat the warning.
#[test]
fn limit_soft_warning_once_on_stderr() {
    let mut m = machine();
    let _ = val(
        &mut m,
        "catch @ e {result $e} {%limit steps 2000 {forever {true}}}",
    );
    let err = m.os_mut().take_error();
    assert_eq!(
        err.matches("es: warning: steps limit").count(),
        1,
        "expected exactly one soft warning, stderr was: {err:?}"
    );
}

/// `limits` reports one `(kind used max)` row per limit kind.
#[test]
fn limits_prim_reports_all_kinds() {
    let mut m = machine();
    let rows = val(&mut m, "result <>{limits}");
    assert_eq!(rows.len(), 18, "six kinds, three columns: {rows:?}");
    assert!(rows.contains(&"depth".to_string()));
    assert_eq!(rows[2], "150", "default depth limit");
    assert!(rows.contains(&"unlimited".to_string()));
}

/// `Machine::arm_limit` (the `--limit KIND=N` backend) accepts every
/// kind, rejects junk, and may raise limits (unlike the scoped form).
#[test]
fn arm_limit_parses_kinds_and_can_raise() {
    let mut m = machine();
    for kind in ["depth", "steps", "heap", "fds", "output", "time"] {
        assert!(m.arm_limit(kind, 100_000).is_ok(), "{kind}");
    }
    assert!(m.arm_limit("bogus", 1).is_err());
    m.arm_limit("depth", 500).unwrap();
    assert_eq!(m.governor().limits().depth, Some(500));
}

/// A signal scheduled on the virtual clock interrupts `while {true} {}`
/// promptly — the loop body never dispatches a command, so the loop
/// itself must poll (the old starvation bug).
#[test]
fn scheduled_signal_interrupts_empty_while_loop() {
    let mut m = machine();
    let baseline = m.os().open_desc_count();
    let at = m.os().now_ns() + 1_000_000;
    m.os_mut().schedule_signal(at, es_os::Signal::Int);
    let err = m.run("while {true} {}").unwrap_err();
    assert_eq!(err, "signal sigint");
    assert_eq!(m.os().open_desc_count(), baseline);
}

/// A signal that becomes deliverable while backquote is draining its
/// pipe (here: after `sleep` pushes the clock past the schedule) is
/// delivered from the read loop, and the read end does not leak.
#[test]
fn backquote_drain_interrupted_by_scheduled_signal() {
    let mut m = machine();
    let baseline = m.os().open_desc_count();
    let at = m.os().now_ns() + 500_000_000;
    m.os_mut().schedule_signal(at, es_os::Signal::Int);
    let err = m.run("x = `{sleep 1}").unwrap_err();
    assert_eq!(err, "signal sigint");
    assert_eq!(m.os().open_desc_count(), baseline, "backquote leaked its read end");
}

// --------------------------------------------------------------------------
// Hook-generation counter and inline-cache invalidation.
// --------------------------------------------------------------------------

fn machine_with_engine(engine: Engine) -> Machine<SimOs> {
    let opts = Options {
        engine,
        ..Options::default()
    };
    Machine::with_options(SimOs::new(), opts).expect("machine boots")
}

/// Every way of touching a `fn-%*` binding bumps the generation
/// counter, and nothing else does. The inline caches key on this, so a
/// missed bump would silently pin stale fast paths.
#[test]
fn hook_generation_counter_tracks_every_binding_site() {
    let mut m = machine();
    assert!(m.hooks_pristine(), "freshly booted machine is pristine");
    let boot = m.hook_gen();

    // Ordinary bindings leave the counter alone.
    m.run("x = 1").unwrap();
    m.run("let (y = 2) {true}").unwrap();
    m.run("fn plain { true }").unwrap();
    assert_eq!(m.hook_gen(), boot, "non-hook bindings must not bump");
    assert!(m.hooks_pristine());

    // A global hook assignment bumps (fn %pipe sugar and raw form).
    m.run("fn %pipe { echo spoofed }").unwrap();
    let after_def = m.hook_gen();
    assert!(after_def > boot, "fn %pipe definition bumps");
    assert!(!m.hooks_pristine(), "any fn-%* change ends pristine mode");

    // Redefinition and removal each bump again.
    m.run("fn %pipe { echo respoofed }").unwrap();
    assert!(m.hook_gen() > after_def, "redefinition bumps");
    let after_redef = m.hook_gen();
    m.run("fn-%pipe = $&pipe").unwrap();
    assert!(m.hook_gen() > after_redef, "restore bumps");

    // Lexical and dynamic fn-%* bindings bump too — a let-shadowed
    // hook is visible to lookup, so the caches must notice.
    let before_let = m.hook_gen();
    m.run("let (fn-%glob = x) {true}").unwrap();
    assert!(m.hook_gen() > before_let, "let-bound fn-%* name bumps");
    let before_local = m.hook_gen();
    m.run("local (fn-%flatten = x) true").unwrap();
    assert!(m.hook_gen() > before_local, "local-bound fn-%* name bumps");

    // Pristine never comes back, even after restoring the primitive.
    assert!(!m.hooks_pristine());
}

/// `fn-%pipe` defined, redefined, and restored mid-session takes
/// effect on the very next pipeline — under both engines. This is the
/// inline-cache invalidation contract: the bytecode engine's cached
/// fast path must notice each change exactly like the tree walker.
#[test]
fn pipe_spoof_defined_redefined_and_restored_mid_session() {
    for engine in [Engine::Tree, Engine::Bytecode] {
        let mut m = machine_with_engine(engine);

        // Warm the call site: the bytecode engine caches the %pipe
        // fast path on this call.
        assert_eq!(output(&mut m, "echo hi | wc -l"), "1\n", "{engine:?}");

        // Define: the cached fast path must be abandoned immediately.
        m.run("fn %pipe { echo spoofed }").unwrap();
        assert_eq!(output(&mut m, "echo hi | wc -l"), "spoofed\n", "{engine:?}");

        // Redefine: the new spoof wins, not the first one.
        m.run("fn %pipe { echo respoofed }").unwrap();
        assert_eq!(
            output(&mut m, "echo hi | wc -l"),
            "respoofed\n",
            "{engine:?}"
        );

        // Unset entirely: both engines fail the same way.
        m.run("fn-%pipe =").unwrap();
        let err = m.run("echo hi | wc -l").unwrap_err();
        assert!(err.contains("%pipe"), "{engine:?}: {err}");

        // Restore the primitive: pipelines work again (but the IC
        // stays conservative — correctness only, not speed).
        m.run("fn-%pipe = $&pipe").unwrap();
        assert_eq!(output(&mut m, "echo hi | wc -l"), "1\n", "{engine:?}");
    }
}

/// A hook spoofed from inside a command substitution in the argument
/// list of the very call being dispatched must be seen: the fast-path
/// check runs after argument evaluation.
#[test]
fn hook_spoof_from_argument_evaluation_is_not_missed() {
    for engine in [Engine::Tree, Engine::Bytecode] {
        let mut m = machine_with_engine(engine);
        // Warm the %flatten call site...
        assert_eq!(
            output(&mut m, "echo <>{%flatten : a b}"),
            "a:b\n",
            "{engine:?}"
        );
        // ...then spoof it from a backquote evaluated while building
        // that same call's separator argument. The redefinition lands
        // before dispatch, so dispatch must use it.
        assert_eq!(
            output(
                &mut m,
                "echo <>{%flatten `{fn %flatten {echo GOT; result X}; echo -n :} a b}"
            ),
            "GOT\nX\n",
            "{engine:?}"
        );
    }
}

// ----- serving substrate: recycle, cooperative yield, warning routing ------

/// `Machine::recycle` restores the frozen boot image: globals, hook
/// bindings, limits, fd table, and the whole kernel (files, clock,
/// consoles) return to the exact post-boot state.
#[test]
fn recycle_restores_boot_state() {
    let mut m = machine();
    m.run("x = dirty; fn leak { echo leak }; fn-%pipe = @ { echo hook }")
        .unwrap();
    m.run("echo contaminant > /tmp/leak").unwrap();
    m.arm_limit("steps", 1234).unwrap();
    assert!(!m.hooks_pristine());
    assert!(m.recycle());
    assert!(m.hooks_pristine(), "hook bindings must return to boot");
    assert_eq!(m.get_var("x"), Vec::<String>::new());
    assert_eq!(m.get_var("fn-leak"), Vec::<String>::new());
    assert_eq!(m.get_var("fn-%pipe"), vec!["$&pipe"]);
    assert_eq!(m.governor().limits().steps, None, "limits re-armed to boot defaults");
    // The kernel was restored too: the file is gone.
    assert_eq!(val(&mut m, "cat /tmp/leak"), vec!["1"]);
    assert_eq!(
        m.os_mut().take_error(),
        "cat: /tmp/leak: No such file or directory\n"
    );
}

/// Satellite: a recycled machine is bit-for-bit equivalent to a
/// cold-started one — identical kernel fingerprints and an identical
/// `SessionTrace` on a probe script that exercises variables, hooks,
/// pipes, redirections, and the filesystem.
#[test]
fn recycled_machine_is_bit_for_bit_cold_equivalent() {
    let probe = [
        "echo $x $path",
        "fn p a { echo [$a] }; p 1",
        "echo probe | wc -l",
        "echo w > /tmp/p; cat /tmp/p",
        "result 7",
    ];
    let mut cold = machine();
    let mut recycled = machine();
    crate::harness::run_session(
        &mut recycled,
        &[
            "x = stale",
            "fn junk { echo junk }",
            "fn-%pipe = @ { echo hooked }",
            "echo residue > /tmp/residue",
            "junk",
        ],
    );
    assert!(recycled.recycle());
    assert_eq!(
        recycled.os().fingerprint(),
        cold.os().fingerprint(),
        "recycled kernel differs from a cold boot"
    );
    let a = crate::harness::run_session(&mut cold, &probe);
    let b = crate::harness::run_session(&mut recycled, &probe);
    assert_eq!(a, b, "probe script diverged between cold and recycled");
    assert_eq!(
        recycled.os().fingerprint(),
        cold.os().fingerprint(),
        "kernels diverged after running the same probe"
    );
}

/// A machine with no boot image (the image itself) refuses to recycle;
/// the yield hook survives recycling (it belongs to the slot, not the
/// session).
#[test]
fn recycle_preserves_yielder() {
    use crate::machine::{Yield, YieldAction};
    struct Free;
    impl Yield for Free {
        fn tick(&self) -> YieldAction {
            YieldAction::Run
        }
    }
    let mut m = machine();
    m.set_yielder(Some(std::rc::Rc::new(Free)));
    assert!(m.recycle());
    assert!(m.yielder().is_some(), "recycle must keep the slot's yield hook");
    assert_eq!(output(&mut m, "echo still gated"), "still gated\n");
}

/// The cooperative-yield hook is consulted every charge; `Cancel`
/// unwinds with the uncatchable exit so tenant `catch` cannot swallow
/// a scheduler's cancellation.
#[test]
fn yield_cancel_is_uncatchable() {
    use crate::governor::CANCEL_EXIT;
    use crate::machine::{Yield, YieldAction};
    use std::cell::Cell;
    struct Budget(Cell<u64>);
    impl Yield for Budget {
        fn tick(&self) -> YieldAction {
            if self.0.get() == 0 {
                return YieldAction::Cancel;
            }
            self.0.set(self.0.get() - 1);
            YieldAction::Run
        }
    }
    let mut m = machine();
    m.set_yielder(Some(std::rc::Rc::new(Budget(Cell::new(100_000)))));
    assert_eq!(output(&mut m, "echo gated"), "gated\n");
    // Exhaust the budget inside a catch-all handler: the cancel must
    // sail straight through it.
    m.set_yielder(Some(std::rc::Rc::new(Budget(Cell::new(50)))));
    let err = m
        .run_text("catch @ e { result caught $e } { while {true} {} }")
        .unwrap_err();
    assert!(
        matches!(err, crate::EsError::Exit(c) if c == CANCEL_EXIT),
        "cancel must unwind as the uncatchable exit, got {err:?}"
    );
}

/// Satellite regression: the governor's 90% warning reaches the
/// session's console stderr even when the tenant redirected fd 2 —
/// the warning belongs to the session's owner, not to whatever file
/// the tenant pointed stderr at. It also does not count against the
/// tenant's own output quota.
#[test]
fn limit_warning_survives_fd2_redirection() {
    let mut m = machine();
    m.arm_limit("output", 200).unwrap();
    let long = "a".repeat(185);
    m.run(&format!("{{echo {long}; echo ok}} >[2] /tmp/quiet"))
        .unwrap();
    let err = m.os_mut().take_error();
    assert!(
        err.contains("es: warning: output limit at"),
        "warning must land on the console stderr, got {err:?}"
    );
    m.os_mut().take_output(); // drain the echoes themselves
    assert_eq!(
        output(&mut m, "cat /tmp/quiet"),
        "",
        "warning must not follow the tenant's fd 2 redirection"
    );
}

