//! Property tests: algebraic laws of the es value/evaluation model,
//! checked against randomly generated data — many under GC stress
//! mode, which collects on every allocation (the paper's debugging
//! collector), so any missed root dies loudly.

use crate::machine::Machine;
use es_os::SimOs;
use es_syntax::print::quote;
use proptest::prelude::*;

fn machine() -> Machine<SimOs> {
    Machine::new(SimOs::new()).expect("machine boots")
}

fn stress_machine() -> Machine<SimOs> {
    let mut m = machine();
    m.heap.set_stress(true);
    m
}

/// es word strategy: printable, no newline (quoting handles the rest).
fn word() -> impl Strategy<Value = String> {
    "[ -~]{0,12}"
}

fn words() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(word(), 0..8)
}

fn quoted_list(items: &[String]) -> String {
    items.iter().map(|w| quote(w)).collect::<Vec<_>>().join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `result <list>` is the identity on lists.
    #[test]
    fn prop_result_is_identity(items in words()) {
        let mut m = machine();
        let got = m.run(&format!("result {}", quoted_list(&items))).unwrap();
        prop_assert_eq!(got, items);
    }

    /// Assignment then reference round-trips any list (under GC
    /// stress, so every value moves many times).
    #[test]
    fn prop_assign_lookup_roundtrip(items in words()) {
        let mut m = stress_machine();
        m.run(&format!("v = {}", quoted_list(&items))).unwrap();
        prop_assert_eq!(m.get_var("v"), items);
    }

    /// `$#v` is the length and `$v(i)` is 1-based indexing.
    #[test]
    fn prop_count_and_subscript(items in words(), idx in 1usize..12) {
        let mut m = machine();
        m.run(&format!("v = {}", quoted_list(&items))).unwrap();
        let count = m.run("result $#v").unwrap();
        prop_assert_eq!(count, vec![items.len().to_string()]);
        let got = m.run(&format!("result $v({idx})")).unwrap();
        match items.get(idx - 1) {
            Some(w) => prop_assert_eq!(got, vec![w.clone()]),
            None => prop_assert!(got.is_empty()),
        }
    }

    /// `$^v` equals the elements joined with single spaces.
    #[test]
    fn prop_flatten_joins(items in words()) {
        let mut m = machine();
        m.run(&format!("v = {}", quoted_list(&items))).unwrap();
        let got = m.run("result $^v").unwrap();
        prop_assert_eq!(got, vec![items.join(" ")]);
    }

    /// Distributive concatenation: single ^ list = elementwise prefix.
    #[test]
    fn prop_concat_distributes(prefix in "[a-z]{1,5}", items in proptest::collection::vec("[a-z]{1,6}", 1..6)) {
        let mut m = machine();
        m.run(&format!("v = {}", items.join(" "))).unwrap();
        let got = m.run(&format!("result {prefix}^$v")).unwrap();
        let want: Vec<String> = items.iter().map(|w| format!("{prefix}{w}")).collect();
        prop_assert_eq!(got, want);
    }

    /// Pairwise concatenation of equal-length lists.
    #[test]
    fn prop_concat_pairwise(pairs in proptest::collection::vec(("[a-z]{1,4}", "[0-9]{1,4}"), 1..6)) {
        let mut m = machine();
        let left: Vec<String> = pairs.iter().map(|(a, _)| a.clone()).collect();
        let right: Vec<String> = pairs.iter().map(|(_, b)| b.clone()).collect();
        m.run(&format!("l = {}", left.join(" "))).unwrap();
        m.run(&format!("r = {}", right.join(" "))).unwrap();
        let got = m.run("result $l^$r").unwrap();
        let want: Vec<String> = pairs.iter().map(|(a, b)| format!("{a}{b}")).collect();
        prop_assert_eq!(got, want);
    }

    /// echo prints its arguments space-joined plus newline.
    #[test]
    fn prop_echo_roundtrip(items in proptest::collection::vec("[a-zA-Z0-9_.,:/-]{1,10}", 0..6)) {
        let mut m = machine();
        m.run(&format!("echo {}", quoted_list(&items))).unwrap();
        prop_assert_eq!(m.os_mut().take_output(), format!("{}\n", items.join(" ")));
    }

    /// A lambda returning its arguments is the identity under `<>`.
    #[test]
    fn prop_lambda_identity(items in words()) {
        let mut m = stress_machine();
        m.run("fn id { result $* }").unwrap();
        let got = m.run(&format!("result <>{{id {}}}", quoted_list(&items))).unwrap();
        prop_assert_eq!(got, items);
    }

    /// for-loop visits every element in order (accumulating into a
    /// global), regardless of contents.
    #[test]
    fn prop_for_visits_in_order(items in proptest::collection::vec("[a-z]{1,6}", 0..10)) {
        let mut m = machine();
        m.run(&format!("src = {}", quoted_list(&items))).unwrap();
        m.run("acc =").unwrap();
        m.run("for (i = $src) { acc = $acc $i }").unwrap();
        prop_assert_eq!(m.get_var("acc"), items);
    }

    /// let-scoping restores the outer value, always.
    #[test]
    fn prop_let_restores(outer in words(), inner in words()) {
        let mut m = machine();
        m.run(&format!("v = {}", quoted_list(&outer))).unwrap();
        m.run(&format!("let (v = {}) {{ result $v }}", quoted_list(&inner))).unwrap();
        prop_assert_eq!(m.get_var("v"), outer);
    }

    /// local-scoping too, via dynamic binding.
    #[test]
    fn prop_local_restores(outer in words(), inner in words()) {
        let mut m = machine();
        m.run(&format!("v = {}", quoted_list(&outer))).unwrap();
        m.run(&format!("local (v = {}) {{ result $v }}", quoted_list(&inner))).unwrap();
        prop_assert_eq!(m.get_var("v"), outer);
    }

    /// Exceptions carry arbitrary payloads through catch unchanged.
    #[test]
    fn prop_throw_catch_payload(items in proptest::collection::vec("[a-z0-9]{1,8}", 1..6)) {
        let mut m = machine();
        let got = m
            .run(&format!(
                "catch @ e {{ result $e }} {{ throw {} }}",
                items.join(" ")
            ))
            .unwrap();
        prop_assert_eq!(got, items);
    }

    /// The environment codec is a lossless round trip for plain
    /// variables with arbitrary printable contents.
    #[test]
    fn prop_env_roundtrip_plain_vars(items in proptest::collection::vec("[ -~&&[^\u{1}]]{0,10}", 0..5)) {
        let mut parent = machine();
        parent.run(&format!("payload = {}", quoted_list(&items))).unwrap();
        let env = parent.export_environment();
        let mut os = SimOs::new();
        os.set_initial_env(env);
        let child = Machine::new(os).expect("child boots");
        prop_assert_eq!(child.get_var("payload"), parent.get_var("payload"));
    }

    /// whatis output reparses to an equivalent definition: define,
    /// unparse, redefine from the text, compare behaviour.
    #[test]
    fn prop_unparse_reparse_functions(
        captured in "[a-z]{1,6}",
        arg in "[a-z]{1,6}",
    ) {
        let mut m = machine();
        let def = format!("let (c = {captured}) fn f {{ echo $c $* }}");
        m.run(&def).unwrap();
        let encoded = m
            .export_environment()
            .into_iter()
            .find(|(k, _)| k == "fn-f")
            .map(|(_, v)| v)
            .expect("fn-f exported");
        m.run(&format!("fn-g = {encoded}")).unwrap();
        m.run(&format!("f {arg}; g {arg}")).unwrap();
        let out = m.os_mut().take_output();
        let lines: Vec<&str> = out.lines().collect();
        prop_assert_eq!(lines.len(), 2);
        prop_assert_eq!(lines[0], lines[1], "f and its reparsed copy agree");
    }

    /// ~ matching agrees with the es-match crate on literal patterns.
    #[test]
    fn prop_match_agrees_with_es_match(subject in "[a-z]{0,8}", pattern in "[a-z*?]{1,8}") {
        let mut m = machine();
        let got = m
            .run(&format!("~ {} {}", quote(&subject), pattern))
            .unwrap();
        let want = es_match::Pattern::parse(&pattern).matches(&subject);
        prop_assert_eq!(got == vec!["0".to_string()], want);
    }

    /// Deterministic replay: the same program in two fresh machines
    /// produces identical output and heap statistics shape.
    #[test]
    fn prop_deterministic(items in proptest::collection::vec("[a-z]{1,5}", 1..5)) {
        let program = format!(
            "v = {}; for (i = $v) {{ echo $i }}; echo $#v",
            items.join(" ")
        );
        let mut m1 = machine();
        let mut m2 = machine();
        m1.run(&program).unwrap();
        m2.run(&program).unwrap();
        prop_assert_eq!(m1.os_mut().take_output(), m2.os_mut().take_output());
        prop_assert_eq!(m1.heap.stats().allocated, m2.heap.stats().allocated);
    }
}

// --------------------------------------------------------------------------
// Fault-injection soak (experiment E10): hundreds of seeded fault
// plans against a scripted session exercising the whole I/O surface.
// Three invariants per seed: the interpreter never panics, the kernel
// descriptor table returns to its baseline (no fd leaks on any error
// or exception path), and a second run of the same seed is
// byte-identical (outputs, command results, and the fault log).
// --------------------------------------------------------------------------

/// The session every soak seed runs: redirections, appends, pipes,
/// here-docs, backquote, functions, catch, externals, and cleanup —
/// each a path where an injected fault historically could leak a
/// descriptor or corrupt the fd table.
const SOAK_SESSION: &[&str] = &[
    "cd /tmp",
    "echo alpha > soak.txt",
    "echo beta >> soak.txt",
    "cat soak.txt",
    "cat soak.txt | tr a-z A-Z | sort",
    "fn shout words { echo $words'!' }",
    "shout soak run",
    "x = `{cat soak.txt}; echo $#x",
    "cat << 'from a here doc'",
    "catch @ e { echo caught $e } { cat /no/such/file }",
    "catch @ e { echo caught $e } { echo trapped > soak.txt; cat soak.txt }",
    "ls | wc -l",
    "rm -f soak.txt",
];

/// One full soak run: boots a clean machine, arms the seeded plan, and
/// drives the session through the shared harness (errors are data
/// here, not failures). Returns the trace plus the fault log.
fn soak_run(seed: u64) -> (crate::harness::SessionTrace, Vec<String>) {
    let mut m = machine();
    m.os_mut()
        .set_fault_plan(Some(es_os::FaultPlan::new(seed).uniform_rate(200)));
    let trace = crate::harness::run_session(&mut m, SOAK_SESSION);
    let log: Vec<String> = m
        .os_mut()
        .take_fault_log()
        .iter()
        .map(|e| e.to_string())
        .collect();
    (trace, log)
}

#[test]
fn soak_fault_plans_no_panic_no_leak_deterministic_replay() {
    let mut injected_total = 0usize;
    for seed in 0..256u64 {
        let (trace, log) = soak_run(seed);
        assert_eq!(
            trace.fd_delta(),
            0,
            "seed {seed} leaked descriptors (fault log: {log:?})"
        );
        injected_total += log.len();
        // Byte-identical replay from the same seed.
        let (trace2, log2) = soak_run(seed);
        assert_eq!(trace, trace2, "seed {seed} trace diverges on replay");
        assert_eq!(log, log2, "seed {seed} fault log diverges on replay");
    }
    assert!(
        injected_total > 1000,
        "the soak should see plenty of weather, saw {injected_total} injections"
    );
}

// --------------------------------------------------------------------------
// Governor soak (ISSUE 4): seeded fault plans *and* a tight step
// budget at the same time. Limit breaches, injected syscall faults,
// and caught exceptions all interleave; the invariants are the same
// as the E10 soak — no panic, no descriptor leak, byte-identical
// replay — plus the budget actually firing often enough to matter.
// --------------------------------------------------------------------------

/// A session built to trip budgets: runaway loops under catch, deep
/// recursion, output floods, and ordinary I/O for the fault plan to
/// chew on. Every command re-arms a fresh step budget (a breach
/// disarms the tripped kind so the handler itself can run).
const LIMIT_SOAK_SESSION: &[&str] = &[
    "cd /tmp",
    "catch @ e kind used max {echo caught $e $kind} {forever {echo spin > spin.txt}}",
    "fn f { f; result x }",
    "catch @ e kind used max {echo caught $e $kind} {f}",
    "catch @ e kind used max {echo caught $e $kind} {forever {x = $x pad}}",
    "echo alpha > soak.txt",
    "catch @ e {echo caught $e} {cat soak.txt | tr a-z A-Z}",
    "catch @ e {echo caught $e} {y = `{cat soak.txt}; echo $#y}",
    "catch @ e {echo caught $e} {while {true} {}}",
    "rm -f soak.txt spin.txt",
];

/// One governed soak run for a seed: a fault plan (as in E10) plus a
/// step budget that varies with the seed, tight enough that the loop
/// commands always breach it. The budget is re-armed before every
/// command via the harness hook (a breach disarms the tripped kind).
fn limit_soak_run(seed: u64) -> (crate::harness::SessionTrace, Vec<String>) {
    let mut m = machine();
    m.os_mut()
        .set_fault_plan(Some(es_os::FaultPlan::new(seed).uniform_rate(150)));
    let budget = 400 + (seed % 7) * 100;
    let trace = crate::harness::run_session_with(&mut m, LIMIT_SOAK_SESSION, |m| {
        m.arm_limit("steps", budget).expect("steps is a limit kind");
    });
    let log: Vec<String> = m
        .os_mut()
        .take_fault_log()
        .iter()
        .map(|e| e.to_string())
        .collect();
    (trace, log)
}

#[test]
fn soak_limits_no_panic_no_leak_deterministic_replay() {
    let mut breaches = 0usize;
    for seed in 0..256u64 {
        let (trace, log) = limit_soak_run(seed);
        assert_eq!(
            trace.fd_delta(),
            0,
            "seed {seed} leaked descriptors (fault log: {log:?})"
        );
        breaches += trace.outcomes.iter().filter(|o| o.contains("limit")).count()
            + trace.stdout.matches("caught limit").count();
        // Byte-identical replay from the same seed.
        let (trace2, log2) = limit_soak_run(seed);
        assert_eq!(trace, trace2, "seed {seed} trace diverges on replay");
        assert_eq!(log, log2, "seed {seed} fault log diverges on replay");
    }
    assert!(
        breaches > 256,
        "the step budget should trip constantly, saw {breaches} breaches"
    );
}
