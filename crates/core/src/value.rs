//! Value helpers: es values are GC lists of strings and closures.
//!
//! The paper restricts lists to the flat, exec-compatible shape ("all
//! lists are flattened, as in rc and csh"), so a value is a chain of
//! `Pair` cells whose heads are `Str` or `Closure` objects. This
//! module provides the rooted construction and inspection helpers the
//! evaluator uses; everything allocates through the copying collector,
//! so builders keep their intermediate state in root slots.

use crate::machine::Heap;
use es_gc::{Obj, Ref, RootSlot};
use es_syntax::ast::Lambda;
use es_syntax::print;
use std::rc::Rc;

/// A term read out of a GC list, for Rust-side consumption.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A string term.
    Str(String),
    /// A closure: the code and the (GC) binding chain it captured.
    /// The `Ref` is only valid until the next allocation.
    Closure(Rc<Lambda>, Ref),
}

/// Incremental list builder with O(1) append, GC-safe: the head and
/// tail cells live in root slots owned by the caller's root scope.
pub struct ListBuilder {
    head: RootSlot,
    tail: RootSlot,
}

impl ListBuilder {
    /// Creates a builder; roots two slots (freed by the caller's
    /// scope truncation).
    pub fn new(heap: &mut Heap) -> ListBuilder {
        let head = heap.push_root(Ref::NIL);
        let tail = heap.push_root(Ref::NIL);
        ListBuilder { head, tail }
    }

    /// Appends one term (must be a `Str` or `Closure` ref).
    pub fn push(&mut self, heap: &mut Heap, term: Ref) {
        let cell = heap.alloc_pair(term, Ref::NIL);
        if heap.root(self.head).is_nil() {
            heap.set_root(self.head, cell);
        } else {
            heap.set_pair_tail(heap.root(self.tail), cell);
        }
        heap.set_root(self.tail, cell);
    }

    /// Appends a string term.
    pub fn push_str(&mut self, heap: &mut Heap, s: &str) {
        let term = heap.alloc_str(s);
        self.push(heap, term);
    }

    /// Appends every term of `list` (shares the term objects, copies
    /// the spine).
    pub fn append(&mut self, heap: &mut Heap, list: Ref) {
        let cursor = heap.push_root(list);
        while !heap.root(cursor).is_nil() {
            let term = heap.pair_head(heap.root(cursor));
            let next = heap.pair_tail(heap.root(cursor));
            heap.set_root(cursor, next);
            // `term` is reachable from the rooted cursor's old cell...
            // which we just dropped. Root it across the allocation.
            let t = heap.push_root(term);
            let term = heap.root(t);
            self.push(heap, term);
            heap.truncate_roots(t.index());
        }
        heap.truncate_roots(cursor.index());
    }

    /// Appends every term of the list held in a root slot.
    pub fn append_slot(&mut self, heap: &mut Heap, slot: RootSlot) {
        let list = heap.root(slot);
        self.append(heap, list);
    }

    /// The built list (rooted in the builder's head slot until the
    /// caller truncates its scope).
    pub fn finish(self, heap: &Heap) -> Ref {
        heap.root(self.head)
    }

    /// The root slot holding the list under construction.
    pub fn head_slot(&self) -> RootSlot {
        self.head
    }
}

/// Builds a list of string terms.
pub fn list_from_strs(heap: &mut Heap, items: &[&str]) -> Ref {
    let base = heap.roots_len();
    let mut b = ListBuilder::new(heap);
    for s in items {
        b.push_str(heap, s);
    }
    let out = b.finish(heap);
    // Keep the result alive past truncation: truncation does not
    // collect, so returning the raw ref is safe as long as the caller
    // roots it before the next allocation.
    heap.truncate_roots(base);
    out
}

/// Reads a list into Rust terms. Closure refs in the result are only
/// valid until the next allocation.
pub fn read_terms(heap: &Heap, mut list: Ref) -> Vec<Term> {
    let mut out = Vec::new();
    while !list.is_nil() {
        let head = heap.pair_head(list);
        match heap.get(head) {
            Obj::Str(s) => out.push(Term::Str(s.to_string())),
            Obj::Closure(code, bindings) => out.push(Term::Closure(code.clone(), *bindings)),
            other => unreachable!("list head is {other:?}"),
        }
        list = heap.pair_tail(list);
    }
    out
}

/// Reads a list of strings; closures are unparsed to their external
/// representation (what happens when a closure is passed to an
/// external program or flattened).
pub fn read_strings(heap: &Heap, list: Ref) -> Vec<String> {
    read_terms(heap, list)
        .into_iter()
        .map(|t| match t {
            Term::Str(s) => s,
            Term::Closure(code, bindings) => unparse_closure(heap, &code, bindings),
        })
        .collect()
}

/// List length without reading contents.
pub fn list_len(heap: &Heap, mut list: Ref) -> usize {
    let mut n = 0;
    while !list.is_nil() {
        n += 1;
        list = heap.pair_tail(list);
    }
    n
}

/// The nth term (1-based, as es subscripts are), if present.
pub fn list_nth(heap: &Heap, mut list: Ref, n: usize) -> Option<Ref> {
    if n == 0 {
        return None;
    }
    let mut i = 1;
    while !list.is_nil() {
        if i == n {
            return Some(heap.pair_head(list));
        }
        i += 1;
        list = heap.pair_tail(list);
    }
    None
}

/// Es truth: a list is true iff every string term is `""`, `"0"`, or
/// `"true"`; closures count as true; the empty list is true. (A
/// non-zero exit status like `"1"` is false.)
pub fn truth(heap: &Heap, list: Ref) -> bool {
    for t in read_terms(heap, list) {
        match t {
            Term::Str(s) => {
                if !(s.is_empty() || s == "0" || s == "true") {
                    return false;
                }
            }
            Term::Closure(..) => {}
        }
    }
    true
}

/// The conventional true value, `(0)`.
pub fn true_value(heap: &mut Heap) -> Ref {
    list_from_strs(heap, &["0"])
}

/// The conventional false value, `(1)`.
pub fn false_value(heap: &mut Heap) -> Ref {
    list_from_strs(heap, &["1"])
}

/// A one-element status value from an exit code.
pub fn status_value(heap: &mut Heap, status: i32) -> Ref {
    list_from_strs(heap, &[&status.to_string()])
}

/// Unparses a closure term to its external `%closure(...)@ ... {...}`
/// representation (or plain `{...}` / `@ p {...}` when it captured
/// nothing) — the paper's `whatis` output and environment encoding.
pub fn unparse_closure(heap: &Heap, code: &Rc<Lambda>, bindings: Ref) -> String {
    let mut visiting = Vec::new();
    let mut memo = std::collections::HashMap::new();
    unparse_closure_guarded(heap, code, bindings, &mut visiting, &mut memo)
}

/// Memo key: the closure's identity is its code pointer plus captured
/// chain (refs are stable within one unparse — nothing allocates).
type UnparseMemo = std::collections::HashMap<(usize, Ref), String>;

/// Worker for [`unparse_closure`] carrying the cycle guard and a memo
/// table. The guard handles true cycles (a closure capturing a binding
/// whose value contains the closure itself — the paper's "true
/// recursive structures"); the memo handles *sharing*: church-list
/// style structures reach the same inner closure along several paths
/// (e.g. through both a named binding and `$*`), which without
/// memoisation makes unparsing exponential in the nesting depth.
fn unparse_closure_guarded(
    heap: &Heap,
    code: &Rc<Lambda>,
    bindings: Ref,
    visiting: &mut Vec<Ref>,
    memo: &mut UnparseMemo,
) -> String {
    let lambda_text = print::unparse_lambda(code, true);
    if !bindings.is_nil() && visiting.contains(&bindings) {
        return lambda_text;
    }
    // Defensive depth cap: nested closures embed their children's
    // text, so pathological structures (a church list hundreds deep)
    // would otherwise produce exponentially large encodings. Past the
    // cap the code is kept but captures are elided; a structure that
    // deep cannot round-trip through a real environ either.
    const MAX_UNPARSE_DEPTH: usize = 64;
    if visiting.len() >= MAX_UNPARSE_DEPTH {
        return lambda_text;
    }
    let key = (Rc::as_ptr(code) as usize, bindings);
    if let Some(cached) = memo.get(&key) {
        return cached.clone();
    }
    visiting.push(bindings);
    let mut binds = Vec::new();
    let mut cur = bindings;
    let mut seen = std::collections::BTreeSet::new();
    while !cur.is_nil() {
        let (name, value, next) = heap.binding_parts(cur);
        let name = name.to_string();
        // Inner bindings shadow outer ones; encode each name once.
        if seen.insert(name.clone()) {
            // Strings are quoted so they reparse as literals; closure
            // terms keep their (unquoted) lambda form so they reparse
            // as closures.
            let vals: Vec<String> = read_terms(heap, value)
                .into_iter()
                .map(|t| match t {
                    Term::Str(s) => print::quote(&s),
                    Term::Closure(code, b) => {
                        unparse_closure_guarded(heap, &code, b, visiting, memo)
                    }
                })
                .collect();
            binds.push(format!("{name}={}", vals.join(" ")));
        }
        cur = next;
    }
    visiting.pop();
    let out = if binds.is_empty() {
        lambda_text
    } else {
        format!("%closure({}){}", binds.join(";"), lambda_text)
    };
    memo.insert(key, out.clone());
    out
}
