//! The bytecode dispatch loop.
//!
//! Executes the op sequences produced by [`crate::compile`] under
//! exactly the tree walker's semantics: same governor charges, same
//! root-scope discipline, same tail-call plumbing. Each op either has
//! a specialised fast path here (calls, `let`/`local`/`for`, slot
//! variable references, inline-cached hook dispatch) or delegates to
//! [`crate::eval`] — cold statements share the walker's one
//! implementation, so the engines cannot drift on them.

use crate::compile::{self, ArgC, BindName, Code, Op};
use crate::eval::{self, must_value, Flow, TailSlots};
use crate::exception::{EsError, EsResult};
use crate::machine::{Engine, Machine};
use crate::prims;
use crate::value::{self, ListBuilder};
use es_gc::{Obj, Ref, RootSlot};
use es_os::Os;
use es_syntax::ast::Node;
use std::rc::Rc;

/// Evaluates a free-standing node under the selected engine. This is
/// the seam every entry point goes through (`run_text`, `eval`, `.`,
/// command substitution); closure bodies instead go through
/// [`crate::Machine::code_for`] + [`exec`] to hit the code cache.
pub fn run_node<O: Os + Clone>(
    m: &mut Machine<O>,
    node: &Node,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    match m.opts.engine {
        Engine::Tree => eval::eval_node(m, node, env, tail),
        Engine::Bytecode => {
            let code = compile::compile_node(node);
            exec(m, &code, env, tail)
        }
    }
}

/// Runs a compiled statement sequence. Mirrors `Node::Seq`: tail goes
/// only to the last op, earlier results are discarded, and an empty
/// sequence yields the empty list.
pub fn exec<O: Os + Clone>(
    m: &mut Machine<O>,
    code: &Code,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    let mut last = Flow::Val(Ref::NIL);
    for (i, op) in code.ops.iter().enumerate() {
        let is_last = i + 1 == code.ops.len();
        let op_tail = if is_last { tail } else { None };
        let flow = exec_op(m, op, env, op_tail)?;
        if is_last {
            last = flow;
        } else {
            let _ = must_value(flow);
        }
    }
    Ok(last)
}

fn exec_op<O: Os + Clone>(
    m: &mut Machine<O>,
    op: &Op,
    env: RootSlot,
    tail: Option<TailSlots>,
) -> EsResult<Flow> {
    match op {
        Op::Call { args, hook } => {
            crate::governor::charge(m)?;
            let base = m.heap.roots_len();
            let list = eval_args(m, args, env)?;
            let flow = match hook {
                Some(h) => {
                    // Checked only after the arguments ran: a command
                    // substitution among them may have respoofed the
                    // hook this very call depends on.
                    let gen = m.hook_gen();
                    if h.ic.get() == gen || m.hooks_pristine() {
                        h.ic.set(gen);
                        prims::call(m, h.prim, list, env, tail)?
                    } else {
                        // Slow path: reconstruct the call the tree
                        // walker would have built, head word included,
                        // and let the full lookup machinery run.
                        let mut b = ListBuilder::new(&mut m.heap);
                        b.push_str(&mut m.heap, &h.name);
                        b.append_slot(&mut m.heap, list);
                        eval::apply_slot(m, b.head_slot(), env, tail)?
                    }
                }
                None => eval::apply_slot(m, list, env, tail)?,
            };
            Ok(eval::pop_scope(m, base, flow))
        }
        Op::Let { bindings, body } => {
            let base = m.heap.roots_len();
            let chain = m.heap.push_root(m.heap.root(env));
            for (name_c, value_args) in bindings {
                let name = bind_name(m, name_c, chain)?;
                let inner = m.heap.roots_len();
                let value_slot = eval_args(m, value_args, chain)?;
                let value = m.heap.root(value_slot);
                m.note_binding(&name);
                let binding = m.heap.alloc_binding(&name, value, m.heap.root(chain));
                m.heap.set_root(chain, binding);
                m.heap.truncate_roots(inner);
            }
            let flow = exec(m, body, chain, tail)?;
            Ok(eval::pop_scope(m, base, flow))
        }
        Op::Local { bindings, body } => {
            let base = m.heap.roots_len();
            let dyn_base = m.dynamics_len();
            let mut staged: Vec<(String, RootSlot)> = Vec::new();
            for (name_c, value_args) in bindings {
                let name = bind_name(m, name_c, env)?;
                let value_slot = eval_args(m, value_args, env)?;
                staged.push((name, value_slot));
            }
            for (name, slot) in &staged {
                let transformed = eval::run_settor(m, env, name, *slot)?;
                m.push_dynamic(name, transformed);
            }
            let result = exec(m, body, env, None);
            m.pop_dynamics(dyn_base);
            let flow = result?;
            let out = must_value(flow);
            Ok(eval::pop_scope(m, base, Flow::Val(out)))
        }
        Op::For { bindings, body } => {
            let base = m.heap.roots_len();
            let mut lists: Vec<(String, RootSlot)> = Vec::new();
            for (name_c, value_args) in bindings {
                let name = bind_name(m, name_c, env)?;
                let slot = eval_args(m, value_args, env)?;
                lists.push((name, slot));
            }
            let n = lists
                .iter()
                .map(|(_, s)| value::list_len(&m.heap, m.heap.root(*s)))
                .max()
                .unwrap_or(0);
            let result_slot = m.heap.push_root(Ref::NIL);
            for i in 1..=n {
                crate::governor::charge(m)?;
                let iter_base = m.heap.roots_len();
                let chain = m.heap.push_root(m.heap.root(env));
                for (name, slot) in &lists {
                    let value = match value::list_nth(&m.heap, m.heap.root(*slot), i) {
                        Some(term) => {
                            let t = m.heap.push_root(term);
                            m.heap.alloc_pair(m.heap.root(t), Ref::NIL)
                        }
                        None => Ref::NIL,
                    };
                    let v = m.heap.push_root(value);
                    m.note_binding(name);
                    let binding = m.heap.alloc_binding(name, m.heap.root(v), m.heap.root(chain));
                    m.heap.set_root(chain, binding);
                }
                match exec(m, body, chain, None) {
                    Ok(flow) => {
                        let v = must_value(flow);
                        m.heap.truncate_roots(iter_base);
                        m.heap.set_root(result_slot, v);
                    }
                    Err(EsError::Throw(e)) if eval::throw_is(m, e, "break") => {
                        let v = m.heap.pair_tail(e);
                        m.heap.truncate_roots(iter_base);
                        m.heap.set_root(result_slot, v);
                        break;
                    }
                    Err(other) => {
                        m.heap.truncate_roots(iter_base);
                        return Err(other);
                    }
                }
            }
            let out = m.heap.root(result_slot);
            Ok(eval::pop_scope(m, base, Flow::Val(out)))
        }
        // Cold statements: one shared implementation. The tail rides
        // through, as `Node::Seq` hands its own tail to a last node of
        // any kind.
        Op::Node(node) => eval::eval_node(m, node, env, tail),
    }
}

/// Resolves a `let`/`local`/`for` binding name.
fn bind_name<O: Os + Clone>(
    m: &mut Machine<O>,
    name: &BindName,
    env: RootSlot,
) -> EsResult<String> {
    match name {
        BindName::Static(s) => Ok(s.clone()),
        BindName::Dyn(e) => eval::single_name(m, e, env),
    }
}

/// Evaluates a compiled argument vector, splicing results into one
/// rooted list (the VM's `eval_exprs`). Returns the slot holding it,
/// inside the caller's scope.
fn eval_args<O: Os + Clone>(
    m: &mut Machine<O>,
    args: &[ArgC],
    env: RootSlot,
) -> EsResult<RootSlot> {
    let mut b = ListBuilder::new(&mut m.heap);
    for a in args {
        match a {
            ArgC::Word(s) => b.push_str(&mut m.heap, s),
            ArgC::Glob(w) => {
                let inner = m.heap.roots_len();
                let list = eval::glob_word(m, w, env)?;
                let slot = m.heap.push_root(list);
                b.append_slot(&mut m.heap, slot);
                m.heap.truncate_roots(inner);
            }
            ArgC::Slot { hops, name } => {
                let value = match slot_value(m, env, *hops, name) {
                    Some(v) => Some(v),
                    // The chain disagreed with the compile-time model
                    // (it never should; belt and braces): full lookup.
                    None => m.lookup(m.heap.root(env), name),
                };
                if let Some(v) = value {
                    let slot = m.heap.push_root(v);
                    b.append_slot(&mut m.heap, slot);
                    m.heap.truncate_roots(slot.index());
                }
            }
            ArgC::Lambda(code) => {
                let env_ref = m.heap.root(env);
                let clo = m.heap.alloc_closure(Rc::clone(code), env_ref);
                let c = m.heap.push_root(clo);
                let term = m.heap.root(c);
                b.push(&mut m.heap, term);
                m.heap.truncate_roots(c.index());
            }
            ArgC::Expr { expr, glob } => {
                let inner = m.heap.roots_len();
                let list = eval::eval_expr(m, expr, env, *glob)?;
                let slot = m.heap.push_root(list);
                b.append_slot(&mut m.heap, slot);
                m.heap.truncate_roots(inner);
            }
        }
    }
    Ok(b.head_slot())
}

/// The slot fast path: the value sits `hops` binding frames into the
/// chain. The frame's name is verified before trusting it; any
/// disagreement returns `None` and the caller falls back to a lookup.
fn slot_value<O: Os + Clone>(
    m: &Machine<O>,
    env: RootSlot,
    hops: usize,
    name: &str,
) -> Option<Ref> {
    let mut cur = m.heap.root(env);
    for _ in 0..hops {
        match m.heap.get(cur) {
            Obj::Binding(_, _, next) => cur = *next,
            _ => return None,
        }
    }
    match m.heap.get(cur) {
        Obj::Binding(n, v, _) if &**n == name => Some(*v),
        _ => None,
    }
}
