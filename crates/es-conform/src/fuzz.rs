//! The grammar-aware script fuzzer.
//!
//! [`ScriptGen`] is a `shims/proptest` [`Strategy`] that generates a
//! whole scripted session (a `Vec<String>` of commands) from a seeded
//! RNG: pipelines over the simulated coreutils, file redirections and
//! appends, backquote substitution, `catch`/`throw`, function
//! definitions, hook spoofs, `fork`, and tight `%limit` budgets.
//!
//! Two profiles:
//!
//! * [`Profile::Full`] — everything the simulator supports, including
//!   simulator-flavoured filters not exercised differentially
//!   (`tac`, `nl`). Driven against `SimOs` only, where the
//!   invariants are panic-freedom, no descriptor leaks, and
//!   byte-identical replay per seed (with FaultPlan weather on a
//!   third of the seeds).
//! * [`Profile::RealSafe`] — restricted to constructs verified
//!   byte-identical across backends (see the conformance scenarios),
//!   so every generated session must pass the differential oracle
//!   against `RealOs` with zero divergences.

use proptest::prelude::Strategy;
use proptest::Rng;

/// Which grammar subset to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Whole simulator grammar (SimOs-only invariants).
    Full,
    /// Only constructs byte-identical across backends.
    RealSafe,
}

/// The session generator; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct ScriptGen(pub Profile);

/// Word pool: lowercase only, so locale-sensitive collation in real
/// `sort` cannot disagree with the simulator's byte order.
const WORDS: &[&str] = &[
    "alpha", "bravo", "cedar", "delta", "ember", "frond", "gleam", "haze",
];

/// Filters safe on either backend (verified byte-identical —
/// `wc`/`uniq -c` joined the pool once the sim adopted GNU's exact
/// count-column formats).
const SAFE_FILTERS: &[&str] = &[
    "tr a-z A-Z",
    "sort",
    "sort -r",
    "uniq",
    "uniq -c",
    "wc -l",
    "cat",
];

/// Extra filters for the Full profile (simulator-flavoured).
const FULL_FILTERS: &[&str] = &["tac", "nl"];

struct Gen<'a> {
    rng: &'a mut Rng,
    profile: Profile,
    /// Files the script has created so far (targets for cat/paste).
    files: Vec<String>,
    next_file: usize,
    next_var: usize,
    spoofed_create: bool,
}

impl<'a> Gen<'a> {
    fn word(&mut self) -> &'static str {
        WORDS[self.rng.below(WORDS.len() as u64) as usize]
    }

    fn fresh_file(&mut self) -> String {
        let name = format!("f{}", self.next_file);
        self.next_file += 1;
        name
    }

    fn existing_file(&mut self) -> String {
        let i = self.rng.below(self.files.len() as u64) as usize;
        self.files[i].clone()
    }

    /// A pipeline source command.
    fn source(&mut self) -> String {
        match self.rng.below(4) {
            0 => {
                let n = 1 + self.rng.below(3);
                let words: Vec<&str> = (0..n).map(|_| self.word()).collect();
                format!("echo {}", words.join(" "))
            }
            1 => format!("seq {}", 1 + self.rng.below(8)),
            2 => format!("cat {}", self.existing_file()),
            // s1/s2 are seeded by the preamble: sorted single-digit
            // sequences, so comm never sees unsorted input.
            _ => {
                if self.rng.bool() {
                    "paste s1 s2".to_string()
                } else {
                    "comm s1 s2".to_string()
                }
            }
        }
    }

    fn filter(&mut self) -> String {
        let full_extra = if self.profile == Profile::Full {
            FULL_FILTERS.len()
        } else {
            0
        };
        // head/tail take a generated count, so they are appended here
        // rather than listed in the static pools.
        let n = SAFE_FILTERS.len() + full_extra + 2;
        let i = self.rng.below(n as u64) as usize;
        if i < SAFE_FILTERS.len() {
            SAFE_FILTERS[i].to_string()
        } else if i < SAFE_FILTERS.len() + full_extra {
            FULL_FILTERS[i - SAFE_FILTERS.len()].to_string()
        } else if i == n - 2 {
            format!("head -n {}", 1 + self.rng.below(5))
        } else {
            format!("tail -n {}", 1 + self.rng.below(5))
        }
    }

    fn pipeline(&mut self) -> String {
        let mut cmd = self.source();
        for _ in 0..self.rng.below(3) {
            cmd.push_str(" | ");
            cmd.push_str(&self.filter());
        }
        cmd
    }

    /// One statement; may push several commands (e.g. a definition
    /// plus a use).
    fn statement(&mut self, out: &mut Vec<String>) {
        match self.rng.below(10) {
            // Pipeline, possibly redirected into a file.
            0..=2 => {
                let pipe = self.pipeline();
                match self.rng.below(4) {
                    0 => {
                        let f = self.fresh_file();
                        out.push(format!("{pipe} > {f}"));
                        out.push(format!("cat {f}"));
                        self.files.push(f);
                    }
                    1 => {
                        // Appends never target the seeded corpus files
                        // (s1/s2): comm requires them sorted, and GNU
                        // comm diagnoses disorder while the sim's does
                        // not.
                        let f = if self.rng.bool() && self.files.len() > 2 {
                            let i = 2 + self.rng.below((self.files.len() - 2) as u64) as usize;
                            self.files[i].clone()
                        } else {
                            let f = self.fresh_file();
                            self.files.push(f.clone());
                            f
                        };
                        out.push(format!("{pipe} >> {f}"));
                        out.push(format!("cat {f}"));
                    }
                    _ => out.push(pipe),
                }
            }
            // Backquote capture and word count.
            3 => {
                let v = format!("x{}", self.next_var);
                self.next_var += 1;
                let pipe = self.pipeline();
                out.push(format!("{v} = `{{{pipe}}}"));
                out.push(format!("echo {v} has $#{v} words: ${v}"));
                out.push("echo bq status $bqstatus".to_string());
            }
            // Short-circuit chains.
            4 => {
                let cond = match self.rng.below(3) {
                    0 => "true".to_string(),
                    1 => "false".to_string(),
                    _ => format!("cat {}", self.existing_file()),
                };
                let (a, b) = (self.word(), self.word());
                out.push(format!("{{{cond}}} && echo {a} || echo {b}"));
            }
            // Exceptions: thrown, caught, and error paths.
            5 => match self.rng.below(3) {
                0 => {
                    let w = self.word();
                    out.push(format!("catch @ e m {{echo caught $e $m}} {{throw error {w}}}"));
                }
                1 => out.push(format!("cat missing-{}", self.rng.below(100))),
                _ => {
                    let w = self.word();
                    out.push(format!("throw error {w}"));
                }
            },
            // Fork with a redirected child.
            6 => {
                let f = self.fresh_file();
                let w = self.word();
                out.push(format!("fork {{echo {w} > {f}}}"));
                out.push(format!("cat {f}"));
                self.files.push(f);
            }
            // Step budget breach under catch (deterministic on both
            // backends: steps are charged by the evaluator).
            7 => {
                let budget = 200 + self.rng.below(400);
                out.push(format!(
                    "catch @ e kind {{echo limited $kind}} {{%limit steps {budget} {{forever {{true}}}}}}"
                ));
            }
            // Function definition and call.
            8 => {
                let v = format!("g{}", self.next_var);
                self.next_var += 1;
                let w = self.word();
                out.push(format!("fn {v} x {{echo {v} got $x}}"));
                out.push(format!("{v} {w}"));
            }
            // Hook spoof: noclobber %create (at most once per script —
            // the spoof is global state).
            _ => {
                if self.spoofed_create {
                    let v = format!("v{}", self.next_var);
                    self.next_var += 1;
                    let (a, b) = (self.word(), self.word());
                    out.push(format!("{v} = {a} {b}"));
                    out.push(format!("echo ${v} / $#{v} / $^{v}"));
                } else {
                    self.spoofed_create = true;
                    let f = self.fresh_file();
                    let w = self.word();
                    out.push(
                        "let (create = $fn-%create) fn %create fd file cmd { if {test -f $file} {throw error $file exists} {$create $fd $file $cmd} }"
                            .to_string(),
                    );
                    out.push(format!("echo {w} > {f}"));
                    out.push(format!("catch @ e m {{echo caught $e $m}} {{echo again > {f}}}"));
                    out.push(format!("cat {f}"));
                    self.files.push(f);
                }
            }
        }
    }
}

impl Strategy for ScriptGen {
    type Value = Vec<String>;

    fn generate(&self, rng: &mut Rng) -> Vec<String> {
        let mut g = Gen {
            rng,
            profile: self.0,
            files: vec!["s1".to_string(), "s2".to_string()],
            next_file: 0,
            next_var: 0,
            spoofed_create: false,
        };
        // Preamble: two sorted corpus files every grammar rule may
        // reference (single-digit lines sort identically under any
        // locale, and keep comm's sortedness precondition).
        let mut out = vec!["seq 3 > s1".to_string(), "seq 5 > s2".to_string()];
        let statements = 3 + g.rng.below(5);
        for _ in 0..statements {
            g.statement(&mut out);
        }
        out
    }
}
