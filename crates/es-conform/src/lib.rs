//! Differential conformance harness for the es reproduction.
//!
//! The paper's claims — pipelines, redirection, exit status, spoofable
//! hooks — were historically tested only against [`es_os::SimOs`]; the
//! [`es_os::RealOs`] backend's parity was an assumption. This crate
//! turns that assumption into a tested contract, in the style of
//! Smoosh's executable POSIX semantics (see PAPERS.md): every
//! *scenario* (a short scripted shell session) runs on a machine
//! booted on each backend, and the two [`es_core::harness::SessionTrace`]s
//! are compared field by field through a shared oracle:
//!
//! * per-command **outcomes** (return values and error strings — this
//!   covers exit status and `&&`/`||` short-circuiting),
//! * **stdout** and **stderr** bytes,
//! * the **descriptor-table delta** (no backend may leak).
//!
//! Known, intentional fidelity gaps are recorded in the
//! [`scenarios::LEDGER`]: a divergence matching a ledger entry is
//! expected (and *must* keep firing — stale entries fail the suite);
//! any divergence not in the ledger is a silent mismatch and fails.
//! Scenarios that cannot run on `RealOs` at all (virtual clock,
//! signals, fault injection) are marked [`scenarios::Mode::SimOnly`]
//! with the reason inline.
//!
//! On top of the oracle sits a grammar-aware script fuzzer
//! ([`fuzz::ScriptGen`], built on the `shims/proptest` strategy API):
//! seeded random sessions composed from pipelines over the simulated
//! coreutils, redirections, backquotes, `catch`/`throw`, hook spoofs,
//! `fork`, and `%limit` budgets. The full profile adds FaultPlan
//! weather and is driven against `SimOs` (panic-freedom, no fd leaks,
//! byte-identical replay per seed); the real-safe profile restricts
//! itself to constructs verified byte-identical across backends and is
//! driven through the differential oracle against `RealOs`.
//!
//! The integration tests (`tests/conform.rs`, `tests/fuzz.rs`) drive
//! everything and emit `BENCH_conform.json` at the repo root.

pub mod fuzz;
pub mod oracle;
pub mod report;
pub mod run;
pub mod scenarios;

pub use oracle::{compare, normalize, Divergence, Field};
pub use run::{have_tools, run_real, run_sim, run_sim_engine};
pub use scenarios::{Mode, Scenario, LEDGER, SCENARIOS};
