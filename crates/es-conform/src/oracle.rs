//! The trace oracle: normalization and field-by-field comparison of
//! two [`SessionTrace`]s, one per backend.

use es_core::harness::SessionTrace;
use std::fmt;

/// The placeholder scenario scripts use for the per-run scratch
/// directory; [`normalize`] maps each backend's real path back to it
/// so traces from different roots compare equal.
pub const TMP_TOKEN: &str = "@TMP@";

/// A comparable dimension of a [`SessionTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Field {
    /// Per-command return values / error strings (covers exit status
    /// and `&&`/`||` behaviour).
    Outcomes,
    /// Standard-output bytes.
    Stdout,
    /// Standard-error bytes.
    Stderr,
    /// Open-descriptor delta over the session.
    FdDelta,
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Field::Outcomes => "outcomes",
            Field::Stdout => "stdout",
            Field::Stderr => "stderr",
            Field::FdDelta => "fd-delta",
        })
    }
}

/// One observed SimOs↔RealOs disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The scenario (or fuzz seed) that diverged.
    pub scenario: String,
    /// Which trace field disagreed.
    pub field: Field,
    /// The simulator's value, rendered for the failure message.
    pub sim: String,
    /// The real backend's value.
    pub real: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]\n  sim:  {:?}\n  real: {:?}",
            self.scenario, self.field, self.sim, self.real
        )
    }
}

/// Rewrites every occurrence of the backend's scratch directory back
/// to [`TMP_TOKEN`] in all textual trace fields.
pub fn normalize(trace: &mut SessionTrace, tmp_root: &str) {
    let fix = |s: &str| s.replace(tmp_root, TMP_TOKEN);
    trace.stdout = fix(&trace.stdout);
    trace.stderr = fix(&trace.stderr);
    for o in &mut trace.outcomes {
        *o = fix(o);
    }
}

/// Compares two (already normalized) traces and returns every
/// disagreement. An empty result means the backends agree on
/// everything the oracle observes.
pub fn compare(scenario: &str, sim: &SessionTrace, real: &SessionTrace) -> Vec<Divergence> {
    let mut out = Vec::new();
    let mut push = |field: Field, s: String, r: String| {
        if s != r {
            out.push(Divergence {
                scenario: scenario.to_string(),
                field,
                sim: s,
                real: r,
            });
        }
    };
    push(
        Field::Outcomes,
        sim.outcomes.join(" | "),
        real.outcomes.join(" | "),
    );
    push(Field::Stdout, sim.stdout.clone(), real.stdout.clone());
    push(Field::Stderr, sim.stderr.clone(), real.stderr.clone());
    push(
        Field::FdDelta,
        sim.fd_delta().to_string(),
        real.fd_delta().to_string(),
    );
    out
}
