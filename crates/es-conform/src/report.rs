//! `BENCH_conform.json`: the machine-readable trajectory file.
//!
//! The conformance and fuzz suites run as separate test binaries, so
//! the report is built up by merging: each section reads the existing
//! file (if any), folds in its own keys, and rewrites it. The format
//! is a flat JSON object, one key per line, with integer and string
//! values only — simple enough to re-parse without a JSON library
//! (the build image has no serde).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// A report value: integers for counts/times, strings for ledgers.
#[derive(Debug, Clone)]
pub enum Value {
    /// An integer metric.
    Num(i64),
    /// A free-text metric (must not contain `"` or backslashes).
    Str(String),
}

/// Where the report lives: the repository root.
pub fn report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_conform.json")
}

static REPORT_LOCK: Mutex<()> = Mutex::new(());

/// Merges `entries` into the report file (within-process writes are
/// serialized by a lock; across processes the test binaries run
/// sequentially under cargo).
pub fn record(entries: &[(&str, Value)]) {
    let _guard = REPORT_LOCK.lock().unwrap();
    let path = report_path();
    let mut map = std::fs::read_to_string(&path)
        .map(|text| parse_flat(&text))
        .unwrap_or_default();
    for (k, v) in entries {
        map.insert(k.to_string(), v.clone());
    }
    let mut out = String::from("{\n");
    let total = map.len();
    for (i, (k, v)) in map.iter().enumerate() {
        let comma = if i + 1 == total { "" } else { "," };
        match v {
            Value::Num(n) => out.push_str(&format!("  \"{k}\": {n}{comma}\n")),
            Value::Str(s) => out.push_str(&format!("  \"{k}\": \"{s}\"{comma}\n")),
        }
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Parses the flat one-key-per-line format [`record`] writes. Tolerant
/// of anything it does not recognize (unknown lines are dropped).
fn parse_flat(text: &str) -> BTreeMap<String, Value> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\": ") else {
            continue;
        };
        let value = value.trim();
        if let Some(s) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) {
            map.insert(key.to_string(), Value::Str(s.to_string()));
        } else if let Ok(n) = value.parse::<i64>() {
            map.insert(key.to_string(), Value::Num(n));
        }
    }
    map
}
