//! Backend runners: boot a machine on each kernel, drive a session
//! through `es_core::harness`, and return normalized traces.

use crate::oracle::{normalize, TMP_TOKEN};
use es_core::harness::{run_session, SessionTrace};
use es_core::{Engine, Machine, Options};
use es_os::{FaultPlan, RealOs, SimOs};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The simulator-side scratch directory (the VFS is private to each
/// run, so a fixed path is fine).
pub const SIM_TMP: &str = "/tmp/conform";

/// Expands `@TMP@` and prepends the `cd` into the scratch directory.
fn materialize(script: &[impl AsRef<str>], tmp: &str) -> Vec<String> {
    let mut cmds = Vec::with_capacity(script.len() + 1);
    cmds.push(format!("cd {tmp}"));
    for line in script {
        cmds.push(line.as_ref().replace(TMP_TOKEN, tmp));
    }
    cmds
}

/// Runs a session on a fresh simulator machine. Returns the
/// normalized trace and the fault log (empty unless `fault_seed`
/// armed a plan).
pub fn run_sim(
    script: &[impl AsRef<str>],
    fault_seed: Option<u64>,
) -> (SessionTrace, Vec<String>) {
    run_sim_engine(script, fault_seed, Engine::default())
}

/// Like [`run_sim`], but on an explicit evaluation engine. The
/// engine-differential suite runs every script twice through this,
/// once per engine, and demands identical traces.
pub fn run_sim_engine(
    script: &[impl AsRef<str>],
    fault_seed: Option<u64>,
    engine: Engine,
) -> (SessionTrace, Vec<String>) {
    let mut os = SimOs::new();
    os.vfs_mut()
        .mkdir_all(SIM_TMP)
        .expect("sim scratch dir creates");
    os.vfs_mut()
        .mkdir_all(&format!("{SIM_TMP}/sub"))
        .expect("sim scratch subdir creates");
    let opts = Options {
        engine,
        ..Options::default()
    };
    let mut m = Machine::with_options(os, opts).expect("sim machine boots");
    if let Some(seed) = fault_seed {
        m.os_mut()
            .set_fault_plan(Some(FaultPlan::new(seed).uniform_rate(150)));
    }
    let cmds = materialize(script, SIM_TMP);
    let mut trace = run_session(&mut m, &cmds);
    let log: Vec<String> = m
        .os_mut()
        .take_fault_log()
        .iter()
        .map(|e| e.to_string())
        .collect();
    normalize(&mut trace, SIM_TMP);
    (trace, log)
}

static REAL_DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Runs a session on a fresh real-backend machine, in console-capture
/// mode, inside a throwaway temp directory (removed afterwards).
/// Returns the normalized trace.
pub fn run_real(script: &[impl AsRef<str>]) -> SessionTrace {
    let dir = std::env::temp_dir().join(format!(
        "es-conform-{}-{}",
        std::process::id(),
        REAL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(dir.join("sub")).expect("real scratch dir creates");
    let tmp = dir.to_str().expect("temp dir is utf-8").to_string();
    let mut os = RealOs::new();
    os.set_capture(true);
    let mut m = Machine::new(os).expect("real machine boots");
    let cmds = materialize(script, &tmp);
    let mut trace = run_session(&mut m, &cmds);
    normalize(&mut trace, &tmp);
    let _ = std::fs::remove_dir_all(&dir);
    trace
}

/// Are all of `tools` available on the test process's `$PATH`? Used
/// to skip (and report) RealOs scenarios on minimal hosts rather than
/// fail them.
pub fn have_tools(tools: &[&str]) -> bool {
    let path = std::env::var("PATH").unwrap_or_default();
    tools.iter().all(|tool| {
        path.split(':').any(|dir| {
            let cand = std::path::Path::new(dir).join(tool);
            #[cfg(unix)]
            {
                use std::os::unix::fs::PermissionsExt;
                std::fs::metadata(&cand)
                    .map(|m| m.is_file() && m.permissions().mode() & 0o111 != 0)
                    .unwrap_or(false)
            }
            #[cfg(not(unix))]
            {
                cand.is_file()
            }
        })
    })
}
