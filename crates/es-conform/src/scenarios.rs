//! The conformance scenario table and the divergence ledger.
//!
//! Each scenario is a short scripted session exercising one paper
//! claim or interpreter subsystem. `Both` scenarios run on the two
//! backends and must agree on every oracle field (or carry a ledger
//! entry); `SimOnly` scenarios document — with the reason inline —
//! the RealOs fidelity gaps the harness cannot bridge.
//!
//! Script conventions: the runner `cd`s into a fresh scratch directory
//! first (pre-created with an empty `sub/` inside), so scripts use
//! relative paths; `@TMP@` expands to the scratch directory when an
//! absolute path is unavoidable.

use crate::oracle::Field;

/// Whether a scenario is differential or simulator-only.
#[derive(Debug, Clone, Copy)]
pub enum Mode {
    /// Runs on both backends; traces must agree modulo the ledger.
    Both,
    /// Runs on SimOs only, for the documented reason.
    SimOnly(&'static str),
}

/// One conformance scenario.
#[derive(Debug)]
pub struct Scenario {
    /// Stable name, referenced by ledger entries and reports.
    pub name: &'static str,
    /// The session, one command per entry.
    pub script: &'static [&'static str],
    /// External tools the RealOs side needs on `$PATH`; the scenario
    /// is skipped (and reported) when one is missing.
    pub needs: &'static [&'static str],
    /// Differential or simulator-only.
    pub mode: Mode,
    /// Arm this FaultPlan seed on the simulator (SimOnly weather
    /// scenarios; fault injection is a SimOs-only API).
    pub fault_seed: Option<u64>,
}

const fn both(
    name: &'static str,
    script: &'static [&'static str],
    needs: &'static [&'static str],
) -> Scenario {
    Scenario {
        name,
        script,
        needs,
        mode: Mode::Both,
        fault_seed: None,
    }
}

const fn sim_only(
    name: &'static str,
    script: &'static [&'static str],
    reason: &'static str,
) -> Scenario {
    Scenario {
        name,
        script,
        needs: &[],
        mode: Mode::SimOnly(reason),
        fault_seed: None,
    }
}

/// A documented, intentional SimOs↔RealOs divergence: the named
/// scenario is expected to disagree on the named field, for the given
/// reason. Entries must keep firing — a stale entry fails the suite.
#[derive(Debug)]
pub struct LedgerEntry {
    /// Scenario the divergence appears in.
    pub scenario: &'static str,
    /// The trace field that disagrees.
    pub field: Field,
    /// Why the divergence is intentional.
    pub reason: &'static str,
}

/// The divergence ledger. Empty: everything the oracle observes must
/// be byte-identical across backends. (The two historical entries —
/// sim `wc` count padding and sim `uniq -c` column width — were real
/// sim bugs, fixed in `es-os::programs::text` to match GNU output
/// byte-for-byte.)
pub const LEDGER: &[LedgerEntry] = &[];

/// Returns the ledger entry covering a divergence, if any.
pub fn ledger_entry(scenario: &str, field: Field) -> Option<&'static LedgerEntry> {
    LEDGER
        .iter()
        .find(|e| e.scenario == scenario && e.field == field)
}

/// The conformance scenario table.
pub const SCENARIOS: &[Scenario] = &[
    // ----- words, lists, and expansion ------------------------------------
    both("echo-basic", &["echo hello world", "echo -n no newline", "echo"], &[]),
    both(
        "exit-status",
        &["true", "false", "result 0 1", "false || result 9"],
        &[],
    ),
    both(
        "and-or-chains",
        &[
            "true && echo yes",
            "false && echo nope",
            "false || echo fallback",
            "true || echo skipped",
            "true && false || echo chained",
        ],
        &[],
    ),
    both(
        "if-else",
        &["if {true} {echo then} {echo else}", "if {false} {echo then} {echo else}"],
        &[],
    ),
    both(
        "vars-lists",
        &["x = a b c", "echo $#x", "echo $x(2)", "echo $^x"],
        &[],
    ),
    both(
        "concat-distributes",
        &["v = 1 2 3", "echo p^$v", "l = a b", "r = x y", "echo $l^$r"],
        &[],
    ),
    both(
        "let-local-scoping",
        &[
            "v = outer",
            "let (v = inner) {echo $v}",
            "echo $v",
            "local (v = dyn) {echo $v}",
            "echo $v",
        ],
        &[],
    ),
    both(
        "for-loop-order",
        &["acc =", "for (i = a b c) {acc = $acc $i}", "echo $acc"],
        &[],
    ),
    both(
        "glob-match",
        &["echo g1 > ga.txt", "echo g2 > gb.txt", "echo *.txt"],
        &[],
    ),
    both("glob-nomatch", &["echo *.zzz"], &[]),
    both(
        "tilde-match",
        &["~ abc a*", "~ abc z*", "if {~ abc [a-c]*} {echo matched}"],
        &[],
    ),
    // ----- redirection -----------------------------------------------------
    both("redirect-create", &["echo alpha > f1", "cat f1"], &["cat"]),
    both(
        "redirect-append",
        &["echo one > f2", "echo two >> f2", "cat f2"],
        &["cat"],
    ),
    both("redirect-open", &["echo data > f3", "cat < f3"], &["cat"]),
    both("heredoc", &["cat << 'h1\nh2\n'"], &["cat"]),
    both(
        "block-redirect",
        &["{echo a; echo b} > f5", "cat f5"],
        &["cat"],
    ),
    both(
        "dup-to-stderr",
        &["{echo out; echo >[1=2] err} > f6", "cat f6"],
        &["cat"],
    ),
    both(
        "write-on-closed-fd",
        &["catch @ e {echo caught $e} {echo x >[1=]}"],
        &[],
    ),
    both("cat-missing-file", &["cat /no/such/file"], &["cat"]),
    both(
        "unknown-command",
        &["catch @ e m {echo caught $e $m} {definitely-not-here}"],
        &[],
    ),
    // ----- pipelines -------------------------------------------------------
    both("pipe-two-stage", &["echo banana | tr a-z A-Z"], &["tr"]),
    both(
        "pipe-three-stage",
        &["seq 6 | head -n 4 | tail -n 2"],
        &["seq", "head", "tail"],
    ),
    both(
        "pipe-five-stage",
        &[
            "echo cherry > w",
            "echo apple >> w",
            "echo date >> w",
            "echo banana >> w",
            "cat w | sort | head -n 3 | tail -n 1 | tr a-z A-Z",
        ],
        &["cat", "sort", "head", "tail", "tr"],
    ),
    both(
        "pipe-status-last-stage",
        &["seq 3 | cat | cat", "cat /no/such | cat"],
        &["seq", "cat"],
    ),
    both(
        "pipe-into-file",
        &["seq 3 | tr 123 abc > f7", "cat f7"],
        &["seq", "tr", "cat"],
    ),
    // ----- backquote substitution ------------------------------------------
    both("backquote-split", &["x = `{seq 3}", "echo $#x $x"], &["seq"]),
    both(
        "backquote-custom-ifs",
        &["let (ifs = :) {x = `{echo a:b:c}; echo $#x $x}"],
        &[],
    ),
    both(
        "bqstatus",
        &["x = `{false}", "echo $bqstatus", "y = `{true}", "echo $bqstatus"],
        &[],
    ),
    // ----- exceptions ------------------------------------------------------
    both(
        "throw-catch",
        &["catch @ e msg {echo caught $e $msg} {throw error boom}"],
        &[],
    ),
    both(
        "throw-custom-payload",
        &["catch @ e {echo got $e} {throw frobnicate a b c}"],
        &[],
    ),
    both("uncaught-error", &["throw error oops"], &[]),
    // ----- functions and closures ------------------------------------------
    both("fn-define-call", &["fn greet who {echo hi $who}", "greet es"], &[]),
    both(
        "closure-capture",
        &["let (c = 42) fn show {echo c is $c}", "show"],
        &[],
    ),
    both("lambda-in-var", &["f = @ x {echo got $x}", "$f one"], &[]),
    both(
        "rich-return-values",
        &["fn pair {result a b}", "echo <>{pair}"],
        &[],
    ),
    both(
        "map-library",
        &["echo <>{map @ x {result $x$x} a b c}"],
        &[],
    ),
    both(
        "apply-paper-example",
        &[
            "fn apply2 cmd args { for (i = $args) $cmd $i }",
            "apply2 @ i {echo ($i)} 1.. 2.. 3..",
        ],
        &[],
    ),
    both(
        "settor-variable",
        &[
            "fn set-watched v {echo settor saw $v; result $v}",
            "watched = hello",
            "echo $watched",
        ],
        &[],
    ),
    // ----- spoofable hooks -------------------------------------------------
    both(
        "spoof-create-noclobber",
        &[
            "let (create = $fn-%create) fn %create fd file cmd { if {test -f $file} {throw error $file exists} {$create $fd $file $cmd} }",
            "echo first > nc.txt",
            "cat nc.txt",
            "catch @ e m {echo caught $e $m} {echo second > nc.txt}",
            "cat nc.txt",
        ],
        &["test", "cat"],
    ),
    both(
        "spoof-pipe-trace",
        &[
            "let (pipe = $fn-%pipe) { fn %pipe first out in rest { echo >[1=2] stage; if {~ $#out 0} {$first} {$pipe {$first} $out $in {%pipe $rest}} } }",
            "seq 3 | cat | tr 1-3 a-c",
        ],
        &["seq", "cat", "tr"],
    ),
    // ----- fork ------------------------------------------------------------
    both("fork-basic", &["fork {echo child}", "echo parent"], &[]),
    both(
        "fork-inside-redirect",
        &["{echo one; fork {echo two}; echo three} > fk", "cat fk"],
        &["cat"],
    ),
    both(
        "fork-isolates-state",
        &["x = outer", "fork {x = inner; echo in $x}", "echo out $x"],
        &[],
    ),
    // ----- resource limits (deterministic kinds only) ----------------------
    both(
        "limit-steps",
        &["catch @ e kind {echo limited $kind} {%limit steps 500 {forever {true}}}"],
        &[],
    ),
    both(
        "limit-depth",
        &[
            // Non-tail recursion: a trailing command after the
            // self-call defeats tail-call elimination, so the stack
            // actually deepens and the depth guard fires.
            "fn rec {rec; result x}",
            "catch @ e kind {echo limited $kind} {%limit depth 40 {rec}}",
        ],
        &[],
    ),
    both(
        "limit-output",
        &["catch @ e kind {echo limited $kind} {%limit output 100 {forever {echo 0123456789}}}"],
        &[],
    ),
    // ----- eval, dot, cd ---------------------------------------------------
    both("eval-dynamic", &["cmd = echo", "eval $cmd dyn args"], &[]),
    both(
        "dot-script",
        &["echo 'echo dotted' > s.es", ". s.es"],
        &[],
    ),
    both(
        "cd-relative",
        &["echo inner > sub/i.txt", "cd sub", "echo *", "cat i.txt", "cd .."],
        &["cat"],
    ),
    // ----- simulated coreutils vs GNU --------------------------------------
    both(
        "paste-columns",
        &[
            "seq 3 > p1",
            "echo x > p2",
            "echo y >> p2",
            "paste p1 p2",
            "paste -d , p1 p2",
            "paste -s p1 p2",
        ],
        &["seq", "paste"],
    ),
    both(
        "comm-three-columns",
        &[
            "echo apple > c1",
            "echo banana >> c1",
            "echo banana > c2",
            "echo cherry >> c2",
            "comm c1 c2",
            "comm -12 c1 c2",
            "comm -3 c1 c2",
        ],
        &["comm"],
    ),
    both("tee-split", &["echo data | tee t1", "cat t1"], &["tee", "cat"]),
    both(
        "cp-mv-rm",
        &[
            "echo z > a.txt",
            "cp a.txt b.txt",
            "cat b.txt",
            "mv b.txt c.txt",
            "cat c.txt",
            "rm a.txt c.txt",
            "if {test -f a.txt} {echo still} {echo gone}",
        ],
        &["cp", "mv", "rm", "cat", "test"],
    ),
    both(
        "grep-literal",
        &["seq 12 | grep 1", "seq 3 | grep 9"],
        &["seq", "grep"],
    ),
    both("cut-fields", &["echo a:b:c | cut -d : -f 2"], &["cut"]),
    both("expr-arith", &["expr 2 + 40", "expr 5 - 5"], &["expr"]),
    both(
        "uniq-adjacent",
        &["echo a > u2", "echo a >> u2", "echo b >> u2", "cat u2 | uniq"],
        &["cat", "uniq"],
    ),
    both(
        "test-file-predicates",
        &[
            "echo hi > t.txt",
            "if {test -f t.txt} {echo yes} {echo no}",
            "if {test -f missing} {echo yes} {echo no}",
        ],
        &["test"],
    ),
    // Formerly ledgered divergences — sim wc/uniq now match GNU
    // byte-for-byte, so these are true differential scenarios.
    both("wc-count-padding", &["seq 5 | wc -l"], &["seq", "wc"]),
    both(
        "wc-count-width",
        &[
            "seq 5 > f5",
            "echo a b c > u3",
            "wc -l f5",
            "wc f5",
            "wc -l f5 u3",
            "seq 9 | wc",
        ],
        &["seq", "wc"],
    ),
    both(
        "uniq-c-padding",
        &[
            "echo a > u",
            "echo a >> u",
            "echo b >> u",
            "sort u | uniq -c",
        ],
        &["sort", "uniq"],
    ),
    // ----- simulator-only scenarios ----------------------------------------
    sim_only(
        "time-rusage",
        &["time {seq 100 | wc -l}"],
        "time reports the virtual clock and per-child rusage; RealOs wall \
         times are nondeterministic and its rusage is approximated",
    ),
    sim_only(
        "date-virtual-epoch",
        &["date"],
        "the simulator's civil clock starts at a fixed virtual epoch; the \
         real clock reports the actual date",
    ),
    sim_only(
        "sleep-virtual",
        &["sleep 5", "echo awake"],
        "simulated sleep advances the virtual clock instantly; real sleep \
         blocks for wall-clock seconds",
    ),
    sim_only(
        "signal-as-exception",
        &["catch @ e {echo sig $e} {kill -INT $pid; true}"],
        "RealOs::take_signal always returns None (no libc signal handling); \
         the simulator delivers signals through its process table",
    ),
    sim_only(
        "ps-process-table",
        &["ps"],
        "the process table is simulated; real ps shows the host's processes",
    ),
    sim_only(
        "limit-time-watchdog",
        &["catch @ e kind {echo limited $kind} {%limit time 5 {forever {true}}}"],
        "the time limit arms a virtual-clock watchdog; RealOs time advances \
         by itself and the deadline is nondeterministic",
    ),
    sim_only(
        "which-path-layout",
        &["which cat"],
        "the simulated /bin layout differs from the host PATH, so resolved \
         paths differ by construction",
    ),
    Scenario {
        name: "fault-weather",
        script: &[
            "echo alpha > fw.txt",
            "catch @ e {echo caught $e} {cat fw.txt | tr a-z A-Z | sort}",
            "catch @ e {echo caught $e} {x = `{cat fw.txt}; echo $#x}",
            "rm -f fw.txt",
        ],
        needs: &[],
        mode: Mode::SimOnly(
            "FaultPlan injection is a SimOs-only API; real kernels do not \
             take orders about when to fail",
        ),
        fault_seed: Some(42),
    },
];
