//! The differential conformance suite: every scenario runs on SimOs
//! (always) and RealOs (Both mode, tools permitting); traces must
//! agree on every oracle field or carry a divergence-ledger entry.
//! Zero silent mismatches, zero stale ledger entries.

use es_conform::report::{record, Value};
use es_conform::scenarios::ledger_entry;
use es_conform::{compare, have_tools, run_real, run_sim, Mode, LEDGER, SCENARIOS};
use std::collections::BTreeSet;
use std::time::Instant;

#[test]
fn conformance_scenarios_agree_or_are_ledgered() {
    let started = Instant::now();
    let mut both_run = 0usize;
    let mut sim_only = 0usize;
    let mut skipped: Vec<&str> = Vec::new();
    let mut silent: Vec<String> = Vec::new();
    let mut ledgered = 0usize;
    let mut fired: BTreeSet<&'static str> = BTreeSet::new();

    for sc in SCENARIOS {
        eprintln!("scenario: {}", sc.name);
        let (sim, _faults) = run_sim(sc.script, sc.fault_seed);
        assert_eq!(
            sim.fd_delta(),
            0,
            "scenario {} leaks descriptors on SimOs",
            sc.name
        );
        let reason = match sc.mode {
            Mode::SimOnly(reason) => Some(reason),
            Mode::Both => None,
        };
        if let Some(reason) = reason {
            assert!(!reason.is_empty());
            sim_only += 1;
            continue;
        }
        if !have_tools(sc.needs) {
            skipped.push(sc.name);
            continue;
        }
        let real = run_real(sc.script);
        assert_eq!(
            real.fd_delta(),
            0,
            "scenario {} leaks descriptors on RealOs",
            sc.name
        );
        both_run += 1;
        for d in compare(sc.name, &sim, &real) {
            match ledger_entry(sc.name, d.field) {
                Some(entry) => {
                    fired.insert(entry.scenario);
                    ledgered += 1;
                }
                None => silent.push(d.to_string()),
            }
        }
    }

    assert!(
        silent.is_empty(),
        "silent SimOs/RealOs mismatches (fix them or ledger them):\n{}",
        silent.join("\n")
    );
    // The ledger must stay honest: every entry still fires (unless its
    // scenario was skipped for missing tools on this host).
    for entry in LEDGER {
        assert!(
            fired.contains(entry.scenario) || skipped.contains(&entry.scenario),
            "stale ledger entry: {} [{}] no longer diverges — delete it",
            entry.scenario,
            entry.field
        );
    }
    assert!(
        both_run >= 40,
        "need at least 40 differential scenarios, ran {both_run} \
         (skipped for missing tools: {skipped:?})"
    );

    let ledger_text = LEDGER
        .iter()
        .map(|e| format!("{} [{}]", e.scenario, e.field))
        .collect::<Vec<_>>()
        .join("; ");
    record(&[
        ("scenarios_total", Value::Num(SCENARIOS.len() as i64)),
        ("scenarios_both", Value::Num(both_run as i64)),
        ("scenarios_sim_only", Value::Num(sim_only as i64)),
        ("scenarios_skipped", Value::Num(skipped.len() as i64)),
        ("divergences_ledgered", Value::Num(ledgered as i64)),
        ("divergences_silent", Value::Num(silent.len() as i64)),
        ("divergence_ledger", Value::Str(ledger_text)),
        (
            "wall_ms_conform",
            Value::Num(started.elapsed().as_millis() as i64),
        ),
    ]);
}
