//! Engine-differential conformance: the bytecode engine must be
//! observationally identical to the tree walker it replaced.
//!
//! Every scenario and every fuzz seed runs twice on SimOs — once per
//! engine — and the two `SessionTrace`s must be equal on every field:
//! outcomes, stdout, stderr, and descriptor-table delta. The tree
//! walker is the correctness oracle here; the bytecode engine is the
//! subject under test.

use es_conform::fuzz::{Profile, ScriptGen};
use es_conform::report::{record, Value};
use es_conform::run_sim_engine;
use es_conform::SCENARIOS;
use es_core::Engine;
use proptest::prelude::Strategy;
use proptest::Rng;
use std::time::Instant;

fn seed_count() -> u64 {
    std::env::var("FUZZ_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

#[test]
fn scenarios_identical_across_engines() {
    let started = Instant::now();
    for sc in SCENARIOS {
        let (tree, tree_log) = run_sim_engine(sc.script, sc.fault_seed, Engine::Tree);
        let (byte, byte_log) = run_sim_engine(sc.script, sc.fault_seed, Engine::Bytecode);
        assert_eq!(
            tree, byte,
            "scenario {} diverges between engines",
            sc.name
        );
        assert_eq!(
            tree_log, byte_log,
            "scenario {} fault logs diverge between engines",
            sc.name
        );
        assert_eq!(
            byte.fd_delta(),
            0,
            "scenario {} leaks descriptors under the bytecode engine",
            sc.name
        );
    }
    record(&[
        ("engine_diff_scenarios", Value::Num(SCENARIOS.len() as i64)),
        (
            "wall_ms_engine_scenarios",
            Value::Num(started.elapsed().as_millis() as i64),
        ),
    ]);
}

#[test]
fn fuzz_identical_across_engines() {
    let started = Instant::now();
    let seeds = seed_count();
    let gen = ScriptGen(Profile::Full);
    for seed in 0..seeds {
        // A distinct stream from the single-engine fuzz suite, so this
        // suite explores different scripts.
        let script = gen.generate(&mut Rng::new(seed ^ 0x0E26_12E5));
        let fault = (seed % 3 == 0).then_some(seed);
        let (tree, tree_log) = run_sim_engine(&script, fault, Engine::Tree);
        let (byte, byte_log) = run_sim_engine(&script, fault, Engine::Bytecode);
        assert_eq!(
            tree, byte,
            "seed {seed} diverges between engines\nscript: {script:#?}"
        );
        assert_eq!(
            tree_log, byte_log,
            "seed {seed} fault logs diverge between engines\nscript: {script:#?}"
        );
        assert_eq!(
            byte.fd_delta(),
            0,
            "seed {seed} leaks descriptors under the bytecode engine\nscript: {script:#?}"
        );
        // Replay determinism must hold per engine too.
        let (byte2, _) = run_sim_engine(&script, fault, Engine::Bytecode);
        assert_eq!(
            byte, byte2,
            "seed {seed} bytecode trace diverges on replay\nscript: {script:#?}"
        );
    }
    record(&[
        ("engine_diff_seeds", Value::Num(seeds as i64)),
        (
            "wall_ms_engine_fuzz",
            Value::Num(started.elapsed().as_millis() as i64),
        ),
    ]);
}
