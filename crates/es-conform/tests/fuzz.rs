//! Grammar-aware script fuzzing.
//!
//! * `fuzz_sim_weather_replay` — the Full grammar against SimOs:
//!   panic-free, descriptor-leak-free, byte-identical replay per seed,
//!   with FaultPlan weather armed on a third of the seeds.
//! * `fuzz_differential_fault_free` — the RealSafe grammar through the
//!   differential oracle: SimOs and RealOs must agree on every field
//!   with zero divergences (this subset runs fault-free by design).
//!
//! Seed count comes from `FUZZ_SEEDS` (default 256).

use es_conform::fuzz::{Profile, ScriptGen};
use es_conform::report::{record, Value};
use es_conform::{compare, have_tools, run_real, run_sim};
use proptest::prelude::Strategy;
use proptest::Rng;
use std::time::Instant;

fn seed_count() -> u64 {
    std::env::var("FUZZ_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

#[test]
fn fuzz_sim_weather_replay() {
    let started = Instant::now();
    let seeds = seed_count();
    let gen = ScriptGen(Profile::Full);
    let mut injected = 0usize;
    for seed in 0..seeds {
        let script = gen.generate(&mut Rng::new(seed));
        // A third of the seeds run under injected syscall-fault
        // weather; determinism must hold either way.
        let fault = (seed % 3 == 0).then_some(seed);
        let (trace, log) = run_sim(&script, fault);
        assert_eq!(
            trace.fd_delta(),
            0,
            "seed {seed} leaked descriptors\nscript: {script:#?}"
        );
        injected += log.len();
        let (trace2, log2) = run_sim(&script, fault);
        assert_eq!(
            trace, trace2,
            "seed {seed} trace diverges on replay\nscript: {script:#?}"
        );
        assert_eq!(log, log2, "seed {seed} fault log diverges on replay");
    }
    if seeds >= 16 {
        assert!(
            injected > 0,
            "fault weather never injected anything across {seeds} seeds"
        );
    }
    record(&[
        ("fuzz_sim_seeds", Value::Num(seeds as i64)),
        ("fuzz_sim_fault_injections", Value::Num(injected as i64)),
        (
            "wall_ms_fuzz_sim",
            Value::Num(started.elapsed().as_millis() as i64),
        ),
    ]);
}

#[test]
fn fuzz_differential_fault_free() {
    // Tools the RealSafe grammar can reference.
    const NEEDED: &[&str] = &[
        "cat", "tr", "sort", "uniq", "head", "tail", "seq", "paste", "comm", "test",
    ];
    let started = Instant::now();
    let seeds = seed_count();
    if !have_tools(NEEDED) {
        eprintln!("skipping differential fuzz: missing one of {NEEDED:?}");
        record(&[("fuzz_diff_seeds", Value::Num(0))]);
        return;
    }
    let gen = ScriptGen(Profile::RealSafe);
    for seed in 0..seeds {
        // A distinct stream from the sim fuzz, so the two suites
        // explore different scripts.
        let script = gen.generate(&mut Rng::new(seed ^ 0xD1FF_EB01));
        let (sim, _) = run_sim(&script, None);
        let real = run_real(&script);
        let divergences = compare(&format!("fuzz-seed-{seed}"), &sim, &real);
        assert!(
            divergences.is_empty(),
            "seed {seed} diverges across backends:\n{}\nscript: {script:#?}",
            divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    record(&[
        ("fuzz_diff_seeds", Value::Num(seeds as i64)),
        (
            "wall_ms_fuzz_diff",
            Value::Num(started.elapsed().as_millis() as i64),
        ),
    ]);
}
