//! Serving-path conformance: every scenario in the table must behave
//! identically whether its script runs on a bare machine (the direct
//! `run_sim` path) or through an `es_serve::Server` session — pooled
//! slot, timesliced scheduling, per-command limits and all. The slot
//! pool, baton scheduler, and console plumbing must be semantically
//! invisible.
//!
//! Fault-weather scenarios ride the same oracle: the seed goes in via
//! `Open { fault_seed }` on the serving side and an identical
//! `FaultPlan` on the direct side, so the injected fault schedule is
//! the same in both worlds.

use es_conform::oracle::TMP_TOKEN;
use es_conform::run::SIM_TMP;
use es_conform::SCENARIOS;
use es_core::harness::run_session;
use es_core::{Machine, Options};
use es_os::{FaultPlan, SimOs};
use es_serve::pool::WEATHER_PER_1024;
use es_serve::{Frame, ServeConfig, Server};
use std::sync::Arc;

/// `run::materialize`, reproduced: prepend the `cd` into scratch and
/// expand `@TMP@`.
fn materialize(script: &[&str]) -> Vec<String> {
    let mut cmds = vec![format!("cd {SIM_TMP}")];
    for line in script {
        cmds.push(line.replace(TMP_TOKEN, SIM_TMP));
    }
    cmds
}

fn scratch_setup(os: &mut SimOs) {
    os.vfs_mut().mkdir_all(SIM_TMP).expect("scratch dir");
    os.vfs_mut()
        .mkdir_all(&format!("{SIM_TMP}/sub"))
        .expect("scratch subdir");
}

/// Direct path: same kernel prep and (serving-rate) fault plan,
/// straight through the conformance harness.
fn run_direct(cmds: &[String], fault_seed: Option<u64>) -> (Vec<String>, String, String) {
    let mut os = SimOs::new();
    scratch_setup(&mut os);
    let mut m = Machine::with_options(os, Options::default()).expect("sim machine boots");
    if let Some(seed) = fault_seed {
        m.os_mut()
            .set_fault_plan(Some(FaultPlan::new(seed).uniform_rate(WEATHER_PER_1024)));
    }
    let trace = run_session(&mut m, cmds);
    (trace.outcomes, trace.stdout, trace.stderr)
}

/// Serving path: one session on a pooled server, frames all the way.
fn run_served(
    server: &mut Server,
    cmds: &[String],
    fault_seed: Option<u64>,
) -> (Vec<String>, String, String) {
    let resp = server.feed(Frame::Open {
        limits: vec![],
        fault_seed,
    });
    let sid = match resp.first() {
        Some(Frame::Opened { sid }) => *sid,
        other => panic!("open not admitted: {other:?}"),
    };
    let mut frames = Vec::new();
    for cmd in cmds {
        frames.extend(server.feed(Frame::Line {
            sid,
            cmd: cmd.clone(),
        }));
    }
    loop {
        let pumped = server.pump(1_000);
        if pumped.is_empty() {
            break;
        }
        frames.extend(pumped);
    }
    frames.extend(server.feed(Frame::Close { sid }));

    let mut outcomes = Vec::new();
    let mut stdout = String::new();
    let mut stderr = String::new();
    for f in &frames {
        match f {
            Frame::Done { sid: s, ok, value } if *s == sid => {
                outcomes.push(format!("{}: {value}", if *ok { "ok" } else { "err" }));
            }
            Frame::Out { sid: s, bytes } if *s == sid => {
                stdout.push_str(&String::from_utf8_lossy(bytes));
            }
            Frame::Err { sid: s, bytes } if *s == sid => {
                stderr.push_str(&String::from_utf8_lossy(bytes));
            }
            Frame::Fault { .. } => panic!("serving a scenario must not fault: {f:?}"),
            _ => {}
        }
    }
    (outcomes, stdout, stderr)
}

fn trimmed(outcomes: &[String]) -> Vec<String> {
    outcomes.iter().map(|o| o.trim_end().to_string()).collect()
}

/// Every table scenario, direct vs served, on one server whose slots
/// get recycled between scenarios — so scenario N+1 also proves the
/// reset oracle left nothing of scenario N behind.
#[test]
fn scenarios_agree_between_direct_and_served() {
    let mut server = Server::new(ServeConfig {
        capacity: 2,
        high_water: 2,
        slice_steps: 97, // deliberately odd: slice boundaries must not show
        session_limits: vec![],
        os_setup: Some(Arc::new(scratch_setup)),
        ..ServeConfig::default()
    });
    for sc in SCENARIOS {
        let cmds = materialize(sc.script);
        let direct = run_direct(&cmds, sc.fault_seed);
        let served = run_served(&mut server, &cmds, sc.fault_seed);
        assert_eq!(
            trimmed(&served.0),
            trimmed(&direct.0),
            "{}: outcomes diverged between direct and served",
            sc.name
        );
        assert_eq!(
            served.1, direct.1,
            "{}: stdout diverged between direct and served",
            sc.name
        );
        assert_eq!(
            served.2, direct.2,
            "{}: stderr diverged between direct and served",
            sc.name
        );
    }
    let stats = server.stats();
    assert_eq!(stats.opened as usize, SCENARIOS.len());
    assert_eq!(stats.oracle_violations, 0, "scenarios leaked slot state");
    assert_eq!(stats.panics, 0);
}

/// The weather scenarios really exercise the `Open { fault_seed }`
/// plumbing: at least one table entry carries a seed, and serving the
/// same seeded scenario twice is deterministic.
#[test]
fn seeded_scenarios_are_deterministic_through_the_server() {
    let seeded: Vec<_> = SCENARIOS.iter().filter(|s| s.fault_seed.is_some()).collect();
    assert!(
        !seeded.is_empty(),
        "scenario table lost its fault-weather entries"
    );
    let mut server = Server::new(ServeConfig {
        capacity: 1,
        high_water: 1,
        session_limits: vec![],
        os_setup: Some(Arc::new(scratch_setup)),
        ..ServeConfig::default()
    });
    for sc in seeded {
        let cmds = materialize(sc.script);
        let a = run_served(&mut server, &cmds, sc.fault_seed);
        let b = run_served(&mut server, &cmds, sc.fault_seed);
        assert_eq!(a, b, "{}: seeded serving run is not replayable", sc.name);
    }
}
