//! The semispace heap: object model, bump allocation, Cheney copy.

use crate::stats::GcStats;
use std::time::Instant;

/// A garbage-collected reference: an index into the current semispace
/// tagged with the collection *epoch* in which it was created.
///
/// Copying collection moves every live object, so a `Ref` held across a
/// collection without being registered in the rootset is invalid. The
/// epoch tag makes such bugs deterministic: dereferencing a stale `Ref`
/// panics immediately instead of silently reading relocated memory.
/// This mirrors the original implementation's debugging collector,
/// which `mprotect`ed the old semispace so stale C pointers faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ref {
    idx: u32,
    epoch: u32,
}

impl Ref {
    /// The null reference (end of a list, empty binding chain, ...).
    pub const NIL: Ref = Ref {
        idx: u32::MAX,
        epoch: 0,
    };

    /// Returns true if this is the null reference.
    ///
    /// # Examples
    ///
    /// ```
    /// use es_gc::Ref;
    /// assert!(Ref::NIL.is_nil());
    /// ```
    pub fn is_nil(self) -> bool {
        self.idx == u32::MAX
    }
}

/// A stable handle to a slot in the heap's root stack.
///
/// Unlike a [`Ref`], a `RootSlot` survives collections: the collector
/// rewrites the `Ref` stored in the slot. Interpreter code pushes roots
/// on entry to a region that may allocate, and truncates back to the
/// saved depth on exit (a shadow stack, playing the role of the
/// original's per-routine rootset declarations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootSlot(usize);

impl RootSlot {
    /// The slot's position in the root stack, usable with
    /// [`Heap::truncate_roots`] to pop this slot and everything above it.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A heap object. `C` is the closure code payload (opaque to the
/// collector; cloned on copy), which the interpreter instantiates with
/// a reference-counted lambda.
#[derive(Debug, Clone)]
pub enum Obj<C> {
    /// An immutable string term.
    Str(Box<str>),
    /// A list cell: `(head, tail)`. `head` is a `Str` or `Closure`;
    /// `tail` is a `Pair` or [`Ref::NIL`]. Lists are flat, as the paper
    /// requires ("lists may not contain lists as elements").
    Pair(Ref, Ref),
    /// A closure: code payload plus the chain of captured bindings.
    Closure(C, Ref),
    /// A lexical binding frame: `(name, value list, next frame)`.
    /// Binding values are mutable — es lets a closure assign to a
    /// captured variable, visibly to other closures sharing the frame.
    Binding(Box<str>, Ref, Ref),
    /// Forwarding entry, only present mid-collection.
    Forward(u32),
}

/// A stable handle to a *persistent* root (e.g. a shell global
/// variable). Unlike stack roots these are freed explicitly and may be
/// reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PermSlot(usize);

/// The garbage-collected heap.
///
/// See the crate docs for the design rationale. The heap is
/// single-threaded (the es interpreter is too); `Clone` performs a deep
/// copy of the space and rootset, which is how the interpreter
/// implements `fork` (a subshell gets a copy-on-fork image of all shell
/// state, as a real `fork(2)` would provide).
#[derive(Debug, Clone)]
pub struct Heap<C> {
    space: Vec<Obj<C>>,
    roots: Vec<Ref>,
    perm: Vec<Ref>,
    perm_free: Vec<usize>,
    epoch: u32,
    /// Collection triggers when the space reaches this many objects.
    threshold: usize,
    /// Nesting count of gc-disable regions.
    disabled: u32,
    /// Collect on every allocation (the paper's debugging mode).
    stress: bool,
    stats: GcStats,
}

/// Default number of objects that fit in a semispace before a
/// collection triggers. Deliberately small-ish so ordinary shell
/// workloads actually exercise the collector, as in the original
/// (which sized blocks in tens of kilobytes).
pub const DEFAULT_THRESHOLD: usize = 16 * 1024;

impl<C> Default for Heap<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> Heap<C> {
    /// Creates a heap with the default space size.
    pub fn new() -> Self {
        Self::with_threshold(DEFAULT_THRESHOLD)
    }

    /// Creates a heap whose semispace holds `threshold` objects before
    /// a collection triggers.
    ///
    /// # Examples
    ///
    /// ```
    /// let heap: es_gc::Heap<()> = es_gc::Heap::with_threshold(64);
    /// assert_eq!(heap.stats().collections, 0);
    /// ```
    pub fn with_threshold(threshold: usize) -> Self {
        Heap {
            space: Vec::with_capacity(threshold.min(1 << 20)),
            roots: Vec::new(),
            perm: Vec::new(),
            perm_free: Vec::new(),
            epoch: 0,
            threshold: threshold.max(8),
            disabled: 0,
            stress: false,
            stats: GcStats::default(),
        }
    }

    /// Enables or disables stress mode (collect at every allocation).
    pub fn set_stress(&mut self, on: bool) {
        self.stress = on;
    }

    /// Returns the accumulated collection statistics.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// Resets the statistics counters (useful between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = GcStats::default();
    }

    /// Number of objects currently in the space (live + garbage).
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// Returns true if nothing has been allocated since the last
    /// collection (or ever).
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }

    /// The current collection epoch. Bumped by every collection.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    // ----- gc disable regions ------------------------------------------------

    /// Disables collection (nests). The paper disables GC while the
    /// yacc parser driver runs, because its internal state cannot be
    /// registered as roots; allocations made meanwhile extend the space
    /// instead of collecting.
    pub fn gc_disable(&mut self) {
        self.disabled += 1;
    }

    /// Re-enables collection after [`Heap::gc_disable`].
    ///
    /// # Panics
    ///
    /// Panics if the collector was not disabled (unbalanced calls).
    pub fn gc_enable(&mut self) {
        assert!(self.disabled > 0, "gc_enable without matching gc_disable");
        self.disabled -= 1;
    }

    /// Returns true if collection is currently disabled.
    pub fn gc_disabled(&self) -> bool {
        self.disabled > 0
    }

    // ----- rootset ------------------------------------------------------------

    /// Pushes `r` onto the root stack and returns its slot.
    pub fn push_root(&mut self, r: Ref) -> RootSlot {
        self.roots.push(r);
        RootSlot(self.roots.len() - 1)
    }

    /// Reads the (possibly relocated) ref stored in a root slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot has been popped.
    pub fn root(&self, slot: RootSlot) -> Ref {
        self.roots[slot.0]
    }

    /// Overwrites the ref stored in a root slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot has been popped.
    pub fn set_root(&mut self, slot: RootSlot, r: Ref) {
        self.roots[slot.0] = r;
    }

    /// Current depth of the root stack; pair with
    /// [`Heap::truncate_roots`] for scoped root regions.
    pub fn roots_len(&self) -> usize {
        self.roots.len()
    }

    /// Allocates a persistent root slot holding `r`. Persistent roots
    /// survive until freed; the interpreter uses them for global
    /// variables.
    pub fn alloc_perm(&mut self, r: Ref) -> PermSlot {
        match self.perm_free.pop() {
            Some(i) => {
                self.perm[i] = r;
                PermSlot(i)
            }
            None => {
                self.perm.push(r);
                PermSlot(self.perm.len() - 1)
            }
        }
    }

    /// Reads a persistent root.
    pub fn perm(&self, slot: PermSlot) -> Ref {
        self.perm[slot.0]
    }

    /// Overwrites a persistent root.
    pub fn set_perm(&mut self, slot: PermSlot, r: Ref) {
        self.perm[slot.0] = r;
    }

    /// Frees a persistent root slot for reuse.
    pub fn free_perm(&mut self, slot: PermSlot) {
        self.perm[slot.0] = Ref::NIL;
        self.perm_free.push(slot.0);
    }

    /// Pops root slots down to a previously saved depth.
    ///
    /// # Panics
    ///
    /// Panics if `len` is greater than the current depth (that would
    /// indicate an unbalanced scope).
    pub fn truncate_roots(&mut self, len: usize) {
        assert!(len <= self.roots.len(), "unbalanced root scope");
        self.roots.truncate(len);
    }

    // ----- allocation -----------------------------------------------------------

    fn maybe_collect(&mut self) {
        if self.disabled > 0 {
            self.stats.disabled_allocs += 1;
            if self.space.len() >= self.threshold {
                // "A new chunk of memory is grabbed so that allocation
                // can continue" — we model a chunk as another
                // threshold's worth of headroom.
                self.threshold += DEFAULT_THRESHOLD.min(self.threshold);
                self.stats.chunks_grabbed += 1;
            }
            return;
        }
        if self.stress || self.space.len() >= self.threshold {
            self.collect();
        }
    }

    fn push(&mut self, obj: Obj<C>) -> Ref {
        self.maybe_collect();
        self.stats.allocated += 1;
        let idx = self.space.len() as u32;
        self.space.push(obj);
        Ref {
            idx,
            epoch: self.epoch,
        }
    }

    /// Allocates a string term.
    pub fn alloc_str(&mut self, s: &str) -> Ref {
        self.push(Obj::Str(s.into()))
    }

    /// Allocates a string term from an owned string.
    pub fn alloc_string(&mut self, s: String) -> Ref {
        self.push(Obj::Str(s.into_boxed_str()))
    }

    /// Allocates a list cell.
    ///
    /// # Panics
    ///
    /// Panics (in the same way as any deref) if `head` or `tail` are
    /// stale refs from a previous epoch.
    pub fn alloc_pair(&mut self, head: Ref, tail: Ref) -> Ref {
        self.check(head);
        self.check(tail);
        // Root the children: the allocation itself may collect.
        let base = self.roots.len();
        self.roots.push(head);
        self.roots.push(tail);
        self.maybe_collect();
        let tail = self.roots.pop().expect("root stack underflow");
        let head = self.roots.pop().expect("root stack underflow");
        debug_assert_eq!(self.roots.len(), base);
        self.stats.allocated += 1;
        let idx = self.space.len() as u32;
        self.space.push(Obj::Pair(head, tail));
        Ref {
            idx,
            epoch: self.epoch,
        }
    }

    /// Allocates a closure with the given code payload and captured
    /// binding chain.
    pub fn alloc_closure(&mut self, code: C, bindings: Ref) -> Ref {
        self.check(bindings);
        let base = self.roots.len();
        self.roots.push(bindings);
        self.maybe_collect();
        let bindings = self.roots.pop().expect("root stack underflow");
        debug_assert_eq!(self.roots.len(), base);
        self.stats.allocated += 1;
        let idx = self.space.len() as u32;
        self.space.push(Obj::Closure(code, bindings));
        Ref {
            idx,
            epoch: self.epoch,
        }
    }

    /// Allocates a binding frame `name = value` chained onto `next`.
    pub fn alloc_binding(&mut self, name: &str, value: Ref, next: Ref) -> Ref {
        self.check(value);
        self.check(next);
        let base = self.roots.len();
        self.roots.push(value);
        self.roots.push(next);
        self.maybe_collect();
        let next = self.roots.pop().expect("root stack underflow");
        let value = self.roots.pop().expect("root stack underflow");
        debug_assert_eq!(self.roots.len(), base);
        self.stats.allocated += 1;
        let idx = self.space.len() as u32;
        self.space.push(Obj::Binding(name.into(), value, next));
        Ref {
            idx,
            epoch: self.epoch,
        }
    }

    // ----- access ---------------------------------------------------------------

    #[track_caller]
    fn check(&self, r: Ref) {
        if r.is_nil() {
            return;
        }
        assert_eq!(
            r.epoch, self.epoch,
            "stale gc ref: created in epoch {} but heap is in epoch {} \
             (a ref was held across a collection without being rooted)",
            r.epoch, self.epoch
        );
        assert!((r.idx as usize) < self.space.len(), "gc ref out of range");
    }

    /// Dereferences `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is [`Ref::NIL`] or stale (allocated before the
    /// most recent collection and not re-read through a root slot) —
    /// the safe-Rust analogue of the original's `mprotect` fault on a
    /// missed-rootset bug.
    #[track_caller]
    pub fn get(&self, r: Ref) -> &Obj<C> {
        assert!(!r.is_nil(), "deref of nil gc ref");
        self.check(r);
        &self.space[r.idx as usize]
    }

    /// Returns the string payload of a `Str` object.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a `Str`.
    #[track_caller]
    pub fn str_value(&self, r: Ref) -> &str {
        match self.get(r) {
            Obj::Str(s) => s,
            other => panic!("expected Str, found {}", shape_name(other)),
        }
    }

    /// Returns the head of a `Pair`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a `Pair`.
    #[track_caller]
    pub fn pair_head(&self, r: Ref) -> Ref {
        match self.get(r) {
            Obj::Pair(h, _) => *h,
            other => panic!("expected Pair, found {}", shape_name(other)),
        }
    }

    /// Returns the tail of a `Pair`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a `Pair`.
    #[track_caller]
    pub fn pair_tail(&self, r: Ref) -> Ref {
        match self.get(r) {
            Obj::Pair(_, t) => *t,
            other => panic!("expected Pair, found {}", shape_name(other)),
        }
    }

    /// Replaces the tail of a `Pair` (used for in-place list append).
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a `Pair` or `t` is stale.
    pub fn set_pair_tail(&mut self, r: Ref, t: Ref) {
        self.check(t);
        self.check(r);
        assert!(!r.is_nil(), "deref of nil gc ref");
        match &mut self.space[r.idx as usize] {
            Obj::Pair(_, tail) => *tail = t,
            other => panic!("expected Pair, found {}", shape_name(other)),
        }
    }

    /// Returns the code payload of a `Closure`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a `Closure`.
    #[track_caller]
    pub fn closure_code(&self, r: Ref) -> &C {
        match self.get(r) {
            Obj::Closure(c, _) => c,
            other => panic!("expected Closure, found {}", shape_name(other)),
        }
    }

    /// Returns the captured binding chain of a `Closure`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a `Closure`.
    #[track_caller]
    pub fn closure_bindings(&self, r: Ref) -> Ref {
        match self.get(r) {
            Obj::Closure(_, b) => *b,
            other => panic!("expected Closure, found {}", shape_name(other)),
        }
    }

    /// Returns the `(name, value, next)` parts of a `Binding`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a `Binding`.
    #[track_caller]
    pub fn binding_parts(&self, r: Ref) -> (&str, Ref, Ref) {
        match self.get(r) {
            Obj::Binding(n, v, next) => (n, *v, *next),
            other => panic!("expected Binding, found {}", shape_name(other)),
        }
    }

    /// Mutates the value of a `Binding` frame (lexical assignment).
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a `Binding` or `v` is stale.
    pub fn set_binding_value(&mut self, r: Ref, v: Ref) {
        self.check(v);
        self.check(r);
        assert!(!r.is_nil(), "deref of nil gc ref");
        match &mut self.space[r.idx as usize] {
            Obj::Binding(_, value, _) => *value = v,
            other => panic!("expected Binding, found {}", shape_name(other)),
        }
    }

    // ----- collection ------------------------------------------------------------

    /// Runs a full collection now.
    ///
    /// All live objects (reachable from the root stack) are copied to a
    /// fresh space, the epoch is bumped, and all previously issued
    /// [`Ref`]s become stale. Holders must re-read their refs through
    /// root slots.
    pub fn collect(&mut self) {
        let start = Instant::now();
        let mut to: Vec<Obj<C>> = Vec::with_capacity(self.space.len().min(self.threshold));
        // Copy the rootset (stack roots + persistent roots), then
        // Cheney-scan the to-space.
        for i in 0..self.roots.len() {
            let r = self.roots[i];
            self.roots[i] = copy_obj(&mut self.space, &mut to, r, self.epoch + 1);
        }
        for i in 0..self.perm.len() {
            let r = self.perm[i];
            self.perm[i] = copy_obj(&mut self.space, &mut to, r, self.epoch + 1);
        }
        let mut scan = 0;
        while scan < to.len() {
            // Take the child refs out, copy them, and write them back;
            // splitting the borrow this way keeps the loop safe.
            let (a, b) = match &to[scan] {
                Obj::Pair(h, t) => (Some(*h), Some(*t)),
                Obj::Closure(_, b) => (Some(*b), None),
                Obj::Binding(_, v, n) => (Some(*v), Some(*n)),
                Obj::Str(_) => (None, None),
                Obj::Forward(_) => unreachable!("forward in to-space"),
            };
            let a2 = a.map(|r| copy_obj(&mut self.space, &mut to, r, self.epoch + 1));
            let b2 = b.map(|r| copy_obj(&mut self.space, &mut to, r, self.epoch + 1));
            match &mut to[scan] {
                Obj::Pair(h, t) => {
                    *h = a2.expect("pair head");
                    *t = b2.expect("pair tail");
                }
                Obj::Closure(_, bnd) => *bnd = a2.expect("closure bindings"),
                Obj::Binding(_, v, n) => {
                    *v = a2.expect("binding value");
                    *n = b2.expect("binding next");
                }
                Obj::Str(_) => {}
                Obj::Forward(_) => unreachable!("forward in to-space"),
            }
            scan += 1;
        }
        let live = to.len();
        // Swap spaces; the old space is dropped, which "poisons" it for
        // free — any stale Ref now fails the epoch check on deref.
        self.space = to;
        self.epoch += 1;
        self.stats.collections += 1;
        self.stats.copied += live as u64;
        self.stats.live_after_last = live as u64;
        // If the triggering request would still not fit, grow the space
        // and note it ("a larger block is allocated and the collection
        // is redone" — with a to-space sized by live data the redo is
        // unnecessary, but the growth decision is the same).
        if live >= self.threshold {
            self.threshold = self.threshold.saturating_mul(2);
            self.stats.grows += 1;
        }
        let pause = start.elapsed();
        self.stats.pause_total += pause;
        if pause > self.stats.pause_max {
            self.stats.pause_max = pause;
        }
    }

    /// Checks the space against a governor budget of `max` objects.
    ///
    /// Garbage must not count against a limit, so if the raw count
    /// exceeds `max` this collects first and re-measures; only when
    /// *live* objects still exceed the budget is `Some(live)` returned
    /// for the caller to raise a `limit heap` exception. Returns `None`
    /// (no breach) while the collector is disabled — callers hold
    /// unrooted refs then, and a forced collection would invalidate
    /// them.
    pub fn enforce_budget(&mut self, max: u64) -> Option<u64> {
        if self.space.len() as u64 <= max || self.disabled > 0 {
            return None;
        }
        self.collect();
        self.stats.budget_collections += 1;
        let live = self.space.len() as u64;
        (live > max).then_some(live)
    }
}

/// Copies one object from `from` to `to`, leaving a forwarding entry,
/// and returns its new ref. Already-forwarded objects are not copied
/// again, which is what preserves sharing and cycles.
fn copy_obj<C>(from: &mut [Obj<C>], to: &mut Vec<Obj<C>>, r: Ref, new_epoch: u32) -> Ref {
    if r.is_nil() {
        return Ref::NIL;
    }
    let idx = r.idx as usize;
    if let Obj::Forward(n) = from[idx] {
        return Ref {
            idx: n,
            epoch: new_epoch,
        };
    }
    let new_idx = to.len() as u32;
    let obj = std::mem::replace(&mut from[idx], Obj::Forward(new_idx));
    to.push(obj);
    Ref {
        idx: new_idx,
        epoch: new_epoch,
    }
}

fn shape_name<C>(o: &Obj<C>) -> &'static str {
    match o {
        Obj::Str(_) => "Str",
        Obj::Pair(..) => "Pair",
        Obj::Closure(..) => "Closure",
        Obj::Binding(..) => "Binding",
        Obj::Forward(_) => "Forward",
    }
}
