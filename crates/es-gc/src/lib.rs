//! A semispace copying garbage collector for the es shell runtime.
//!
//! This crate reproduces the memory-management design described in the
//! paper *Es: A shell with higher-order functions* (Haahr & Rakitzis,
//! Winter USENIX 1993), section "Garbage Collection":
//!
//! * Because es embeds a true lambda calculus, runtime values can form
//!   arbitrary cyclic graphs (closures capture bindings which refer to
//!   closures, ...), so neither arena allocation nor reference counting
//!   suffices — a tracing collector is required.
//! * The paper chose a **copying** (semispace) collector: between two
//!   commands little memory is live, command execution can allocate a
//!   lot for a short time, and the live set is far smaller than physical
//!   memory, so trading space for fast collections is the right call.
//! * Allocation is a bump through a preallocated block; when the block
//!   is exhausted, everything reachable from the *rootset* is copied to
//!   a fresh block (Cheney scan) and the spaces are swapped.
//! * During some phases (the yacc parser driver in the original) the
//!   rootset cannot be fully identified, so collection can be
//!   **disabled**; allocation then grabs extra chunks instead of
//!   collecting.
//! * The original's debug mode collects at *every* allocation and
//!   revokes access to the old semispace with `mprotect`, so any stale
//!   pointer faults immediately. Our safe-Rust analogue: every
//!   [`Ref`] carries the collection *epoch* in which it was created and
//!   dereferencing a stale ref panics with a diagnostic — the same bug
//!   class caught at the same moment, without `unsafe`.
//!
//! The object model is exactly the four runtime shapes the es
//! interpreter needs (strings, list cells, closures, binding frames);
//! the closure *code* payload is a generic parameter `C` so this crate
//! does not depend on the syntax crate (the interpreter instantiates it
//! with `Rc<Lambda>`; tests here use `u32`).
//!
//! # Examples
//!
//! ```
//! use es_gc::{Heap, Obj, Ref};
//!
//! let mut heap: Heap<u32> = Heap::new();
//! let s = heap.alloc_str("hello");
//! let cell = heap.alloc_pair(s, Ref::NIL);
//! let root = heap.push_root(cell);
//! heap.collect();
//! let cell = heap.root(root); // refs move across collections
//! match heap.get(heap.pair_head(cell)) {
//!     Obj::Str(s) => assert_eq!(&**s, "hello"),
//!     _ => unreachable!(),
//! }
//! ```

mod heap;
mod stats;

pub use heap::{Heap, Obj, PermSlot, Ref, RootSlot};
pub use stats::GcStats;

#[cfg(test)]
mod tests;
