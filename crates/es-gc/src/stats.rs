//! Collection statistics, used by the E4 experiment ("garbage collection
//! takes roughly 4% of the running time of the shell").

use std::time::Duration;

/// Counters accumulated by a [`crate::Heap`] over its lifetime.
///
/// The interesting derived quantity for experiment E4 is
/// [`GcStats::pause_fraction`]: the share of total elapsed time spent
/// inside the collector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Number of completed collections.
    pub collections: u64,
    /// Total objects allocated since heap creation.
    pub allocated: u64,
    /// Total objects copied by all collections (live at collection time).
    pub copied: u64,
    /// Objects live after the most recent collection.
    pub live_after_last: u64,
    /// Allocations that happened while collection was disabled.
    pub disabled_allocs: u64,
    /// Extra chunks grabbed because an allocation arrived while the
    /// collector was disabled and the space was exhausted (the paper's
    /// "a new chunk of memory is grabbed so that allocation can
    /// continue").
    pub chunks_grabbed: u64,
    /// Collections that had to be redone with a larger space because
    /// the triggering request still could not be satisfied.
    pub grows: u64,
    /// Collections forced by [`crate::Heap::enforce_budget`] — the
    /// resource governor collects before declaring a heap limit
    /// breached, so only *live* objects count against the budget.
    pub budget_collections: u64,
    /// Wall-clock time spent inside the collector.
    pub pause_total: Duration,
    /// Longest single collection pause.
    pub pause_max: Duration,
}

impl GcStats {
    /// Returns the fraction of `elapsed` spent in collection pauses.
    ///
    /// # Examples
    ///
    /// ```
    /// use es_gc::GcStats;
    /// use std::time::Duration;
    ///
    /// let mut s = GcStats::default();
    /// s.pause_total = Duration::from_millis(40);
    /// assert!((s.pause_fraction(Duration::from_secs(1)) - 0.04).abs() < 1e-9);
    /// ```
    pub fn pause_fraction(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.pause_total.as_secs_f64() / elapsed.as_secs_f64()
    }

    /// Average number of objects copied per collection, or 0.0 if no
    /// collection has run.
    pub fn avg_copied(&self) -> f64 {
        if self.collections == 0 {
            0.0
        } else {
            self.copied as f64 / self.collections as f64
        }
    }

    /// Fraction of all allocated objects that were still live at some
    /// collection (a proxy for the paper's observation that "between
    /// two separate commands little memory is preserved").
    pub fn survival_rate(&self) -> f64 {
        if self.allocated == 0 {
            0.0
        } else {
            self.copied as f64 / self.allocated as f64
        }
    }
}
