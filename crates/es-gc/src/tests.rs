//! Unit and property tests for the copying collector.

use crate::{Heap, Obj, Ref};
use proptest::prelude::*;

#[test]
fn alloc_and_read_str() {
    let mut heap: Heap<u32> = Heap::new();
    let r = heap.alloc_str("hello");
    assert_eq!(heap.str_value(r), "hello");
    assert_eq!(heap.stats().allocated, 1);
}

#[test]
fn list_survives_collection() {
    let mut heap: Heap<u32> = Heap::with_threshold(8);
    let a = heap.alloc_str("a");
    let slot_a = heap.push_root(a);
    let cell = heap.alloc_pair(heap.root(slot_a), Ref::NIL);
    let slot = heap.push_root(cell);
    heap.collect();
    let cell = heap.root(slot);
    let head = heap.pair_head(cell);
    assert_eq!(heap.str_value(head), "a");
    assert!(heap.pair_tail(cell).is_nil());
}

#[test]
#[should_panic(expected = "stale gc ref")]
fn stale_ref_panics() {
    let mut heap: Heap<u32> = Heap::new();
    let r = heap.alloc_str("x");
    heap.collect();
    let _ = heap.get(r); // not rooted: must be caught, like the paper's mprotect trap
}

#[test]
#[should_panic(expected = "deref of nil")]
fn nil_deref_panics() {
    let heap: Heap<u32> = Heap::new();
    let _ = heap.get(Ref::NIL);
}

#[test]
fn unreachable_objects_are_dropped() {
    let mut heap: Heap<u32> = Heap::with_threshold(1 << 20);
    for i in 0..100 {
        heap.alloc_str(&format!("garbage{i}"));
    }
    let keep = heap.alloc_str("keep");
    let slot = heap.push_root(keep);
    heap.collect();
    assert_eq!(heap.len(), 1);
    assert_eq!(heap.str_value(heap.root(slot)), "keep");
    assert_eq!(heap.stats().live_after_last, 1);
}

#[test]
fn sharing_is_preserved() {
    let mut heap: Heap<u32> = Heap::new();
    let shared = heap.alloc_str("shared");
    let s_slot = heap.push_root(shared);
    let p1 = heap.alloc_pair(heap.root(s_slot), Ref::NIL);
    let p1_slot = heap.push_root(p1);
    let p2 = heap.alloc_pair(heap.root(s_slot), Ref::NIL);
    let p2_slot = heap.push_root(p2);
    heap.collect();
    // Both pairs must point at the *same* copied string.
    let h1 = heap.pair_head(heap.root(p1_slot));
    let h2 = heap.pair_head(heap.root(p2_slot));
    assert_eq!(h1, h2);
    assert_eq!(heap.len(), 3, "shared string copied exactly once");
}

#[test]
fn cycles_survive_collection() {
    // A binding whose value list contains a closure that captures the
    // binding itself: the paper's "true recursive structures".
    let mut heap: Heap<u32> = Heap::new();
    let binding = heap.alloc_binding("self", Ref::NIL, Ref::NIL);
    let b_slot = heap.push_root(binding);
    let clo = heap.alloc_closure(42, heap.root(b_slot));
    let c_slot = heap.push_root(clo);
    let cell = heap.alloc_pair(heap.root(c_slot), Ref::NIL);
    let cell_slot = heap.push_root(cell);
    heap.set_binding_value(heap.root(b_slot), heap.root(cell_slot));
    heap.collect();
    heap.collect(); // twice: copying a cycle twice is the classic failure mode
    let b = heap.root(b_slot);
    let (name, value, _) = heap.binding_parts(b);
    assert_eq!(name, "self");
    let clo2 = heap.pair_head(value);
    assert_eq!(heap.closure_bindings(clo2), b, "cycle closes back on itself");
    assert_eq!(*heap.closure_code(clo2), 42);
}

#[test]
fn stress_mode_collects_every_alloc() {
    let mut heap: Heap<u32> = Heap::with_threshold(1 << 20);
    heap.set_stress(true);
    let a = heap.alloc_str("a");
    let slot = heap.push_root(a);
    for i in 0..50 {
        let s = heap.alloc_string(format!("x{i}"));
        let tmp = heap.push_root(s);
        let _p = heap.alloc_pair(heap.root(tmp), Ref::NIL);
        heap.truncate_roots(slot.index() + 1);
    }
    assert!(heap.stats().collections >= 100, "one per allocation");
    assert_eq!(heap.str_value(heap.root(slot)), "a");
}

#[test]
fn disabled_gc_grabs_chunks() {
    let mut heap: Heap<u32> = Heap::with_threshold(8);
    heap.gc_disable();
    for i in 0..100 {
        heap.alloc_string(format!("v{i}"));
    }
    assert_eq!(heap.stats().collections, 0, "no collection while disabled");
    assert!(heap.stats().chunks_grabbed > 0, "fallback chunks were grabbed");
    assert_eq!(heap.stats().disabled_allocs, 100);
    heap.gc_enable();
    heap.collect();
    assert_eq!(heap.len(), 0);
}

#[test]
#[should_panic(expected = "gc_enable without matching gc_disable")]
fn unbalanced_enable_panics() {
    let mut heap: Heap<u32> = Heap::new();
    heap.gc_enable();
}

#[test]
fn threshold_grows_when_live_set_is_large() {
    let mut heap: Heap<u32> = Heap::with_threshold(8);
    // Keep everything live so the collection cannot reclaim anything.
    let mut tail = Ref::NIL;
    let slot = heap.push_root(tail);
    for i in 0..64 {
        let s = heap.alloc_string(format!("k{i}"));
        let s_slot = heap.push_root(s);
        tail = heap.root(slot);
        let p = heap.alloc_pair(heap.root(s_slot), tail);
        heap.set_root(slot, p);
        heap.truncate_roots(s_slot.index());
    }
    assert!(heap.stats().grows > 0, "space must grow under live pressure");
    // The whole list is intact.
    let mut n = 0;
    let mut cur = heap.root(slot);
    while !cur.is_nil() {
        n += 1;
        cur = heap.pair_tail(cur);
    }
    assert_eq!(n, 64);
}

#[test]
fn binding_mutation_is_visible_through_sharing() {
    // Two closures capture the same frame; assignment through one is
    // seen by the other (the paper's lexical-scope sharing semantics).
    let mut heap: Heap<u32> = Heap::new();
    let frame = heap.alloc_binding("x", Ref::NIL, Ref::NIL);
    let f_slot = heap.push_root(frame);
    let c1 = heap.alloc_closure(1, heap.root(f_slot));
    let c1_slot = heap.push_root(c1);
    let c2 = heap.alloc_closure(2, heap.root(f_slot));
    let c2_slot = heap.push_root(c2);
    let val = heap.alloc_str("assigned");
    let v_slot = heap.push_root(val);
    let cell = heap.alloc_pair(heap.root(v_slot), Ref::NIL);
    heap.set_binding_value(heap.closure_bindings(heap.root(c1_slot)), cell);
    heap.collect();
    let b2 = heap.closure_bindings(heap.root(c2_slot));
    let (_, value, _) = heap.binding_parts(b2);
    assert_eq!(heap.str_value(heap.pair_head(value)), "assigned");
}

#[test]
fn clone_is_independent_fork_image() {
    let mut heap: Heap<u32> = Heap::new();
    let b = heap.alloc_binding("x", Ref::NIL, Ref::NIL);
    let slot = heap.push_root(b);
    let mut child = heap.clone();
    // Mutate the child; parent must be unaffected (fork semantics).
    let v = child.alloc_str("child-only");
    let v_slot = child.push_root(v);
    let cell = child.alloc_pair(child.root(v_slot), Ref::NIL);
    child.set_binding_value(child.root(slot), cell);
    let (_, parent_val, _) = heap.binding_parts(heap.root(slot));
    assert!(parent_val.is_nil(), "parent not affected by child mutation");
}

#[test]
fn pause_fraction_math() {
    use std::time::Duration;
    let mut s = crate::GcStats {
        pause_total: Duration::from_millis(40),
        ..Default::default()
    };
    assert!((s.pause_fraction(Duration::from_secs(1)) - 0.04).abs() < 1e-12);
    assert_eq!(s.pause_fraction(Duration::ZERO), 0.0);
    s.collections = 4;
    s.copied = 100;
    s.allocated = 1000;
    assert_eq!(s.avg_copied(), 25.0);
    assert!((s.survival_rate() - 0.1).abs() < 1e-12);
}

// ---------------------------------------------------------------------------
// Property tests: build random list-of-strings graphs, collect at random
// points, and check that the reachable contents are exactly preserved.
// ---------------------------------------------------------------------------

/// Reads a GC list of string terms back into a Vec<String>.
fn read_list(heap: &Heap<u32>, mut r: Ref) -> Vec<String> {
    let mut out = Vec::new();
    while !r.is_nil() {
        let head = heap.pair_head(r);
        match heap.get(head) {
            Obj::Str(s) => out.push(s.to_string()),
            Obj::Closure(code, _) => out.push(format!("<closure:{code}>")),
            _ => panic!("list head must be Str or Closure"),
        }
        r = heap.pair_tail(r);
    }
    out
}

/// Builds a GC list from strings, collecting along the way if `stress`.
fn build_list(heap: &mut Heap<u32>, items: &[String]) -> crate::RootSlot {
    let slot = heap.push_root(Ref::NIL);
    for item in items.iter().rev() {
        let s = heap.alloc_string(item.clone());
        let s_slot = heap.push_root(s);
        let tail = heap.root(slot);
        let p = heap.alloc_pair(heap.root(s_slot), tail);
        heap.set_root(slot, p);
        heap.truncate_roots(s_slot.index());
    }
    slot
}

proptest! {
    #[test]
    fn prop_lists_survive_any_collection_schedule(
        items in proptest::collection::vec("[a-z]{0,12}", 0..60),
        threshold in 8usize..64,
        stress in any::<bool>(),
        extra_collects in 0usize..4,
    ) {
        let mut heap: Heap<u32> = Heap::with_threshold(threshold);
        heap.set_stress(stress);
        let slot = build_list(&mut heap, &items);
        for _ in 0..extra_collects {
            heap.collect();
        }
        let got = read_list(&heap, heap.root(slot));
        prop_assert_eq!(got, items);
    }

    #[test]
    fn prop_garbage_is_reclaimed(
        live in proptest::collection::vec("[a-z]{1,8}", 1..20),
        garbage in 1usize..200,
    ) {
        let mut heap: Heap<u32> = Heap::with_threshold(1 << 20);
        let slot = build_list(&mut heap, &live);
        for i in 0..garbage {
            heap.alloc_string(format!("g{i}"));
        }
        heap.collect();
        // Live set: one pair + one str per element.
        prop_assert_eq!(heap.len(), live.len() * 2);
        prop_assert_eq!(read_list(&heap, heap.root(slot)), live);
    }

    #[test]
    fn prop_interleaved_mutation_and_collection(
        ops in proptest::collection::vec((any::<bool>(), "[a-z]{1,6}"), 1..50),
    ) {
        // Model: a single binding holding a list; ops either push a
        // value onto the list (via mutation) or force a collection.
        let mut heap: Heap<u32> = Heap::with_threshold(16);
        let b = heap.alloc_binding("acc", Ref::NIL, Ref::NIL);
        let slot = heap.push_root(b);
        let mut model: Vec<String> = Vec::new();
        for (collect, word) in &ops {
            if *collect {
                heap.collect();
            } else {
                let s = heap.alloc_string(word.clone());
                let s_slot = heap.push_root(s);
                let (_, old, _) = heap.binding_parts(heap.root(slot));
                let cell = heap.alloc_pair(heap.root(s_slot), old);
                heap.set_binding_value(heap.root(slot), cell);
                heap.truncate_roots(s_slot.index());
                model.insert(0, word.clone());
            }
        }
        let (_, value, _) = heap.binding_parts(heap.root(slot));
        prop_assert_eq!(read_list(&heap, value), model);
    }
}

#[test]
fn persistent_roots_survive_and_free() {
    let mut heap: Heap<u32> = Heap::new();
    let a = heap.alloc_str("global-a");
    let slot_a = heap.alloc_perm(a);
    let b = heap.alloc_str("global-b");
    let slot_b = heap.alloc_perm(b);
    heap.collect();
    assert_eq!(heap.str_value(heap.perm(slot_a)), "global-a");
    assert_eq!(heap.str_value(heap.perm(slot_b)), "global-b");
    heap.free_perm(slot_a);
    heap.collect();
    assert_eq!(heap.len(), 1, "freed global was reclaimed");
    // Freed slots are reused.
    let c = heap.alloc_str("global-c");
    let slot_c = heap.alloc_perm(c);
    assert_eq!(slot_c, slot_a);
    assert_eq!(heap.str_value(heap.perm(slot_c)), "global-c");
}

#[test]
fn perm_and_stack_roots_share_objects() {
    let mut heap: Heap<u32> = Heap::new();
    let s = heap.alloc_str("shared");
    let perm = heap.alloc_perm(s);
    let stack = heap.push_root(s);
    heap.collect();
    assert_eq!(heap.perm(perm), heap.root(stack), "copied exactly once");
    assert_eq!(heap.len(), 1);
}
