//! Wildcard pattern matching for the es shell.
//!
//! Es inherits rc's pattern language, used in two places:
//!
//! * the `~ subject pattern...` matching command (the paper: "the
//!   matching is a bit more sophisticated, for the pattern may include
//!   wildcards"), and
//! * filename (glob) expansion of unquoted words.
//!
//! The metacharacters are `*` (any run of characters), `?` (any single
//! character) and `[...]` character classes with ranges; a class
//! beginning with `~` (rc style) or `!` is negated, and a `]`
//! immediately after the opening (or after the negation marker) is a
//! literal member. An unterminated `[` matches itself literally, as in
//! rc.
//!
//! Shell quoting decides which characters are *live*: `echo '*'` must
//! not glob. A [`Pattern`] is therefore compiled either from a plain
//! string (everything live, used for `~` patterns that arrive as
//! already-evaluated strings) or from quoted/unquoted segments as the
//! lexer saw them ([`Pattern::from_segments`]).
//!
//! # Examples
//!
//! ```
//! use es_match::Pattern;
//!
//! let p = Pattern::parse("ab[c-e]*");
//! assert!(p.matches("abd-tail"));
//! assert!(!p.matches("abz"));
//!
//! // A quoted star is a literal star.
//! let q = Pattern::from_segments(&[("a", false), ("*", true)]);
//! assert!(q.matches("a*"));
//! assert!(!q.matches("ab"));
//! ```

#[cfg(test)]
mod tests;

/// One element of a compiled pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Item {
    /// A literal character (possibly a quoted metacharacter).
    Char(char),
    /// `?` — any one character.
    Any,
    /// `*` — any (possibly empty) run of characters.
    Star,
    /// `[...]` — a character class.
    Class { negated: bool, ranges: Vec<(char, char)> },
}

/// A compiled wildcard pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    items: Vec<Item>,
    /// True if any live metacharacter was present.
    wild: bool,
}

impl Pattern {
    /// Compiles a pattern where every metacharacter is live.
    pub fn parse(pattern: &str) -> Pattern {
        Pattern::from_segments(&[(pattern, false)])
    }

    /// Compiles a pattern from `(text, quoted)` segments; quoted
    /// segments contribute only literal characters.
    pub fn from_segments(segments: &[(&str, bool)]) -> Pattern {
        let mut items = Vec::new();
        let mut wild = false;
        for (text, quoted) in segments {
            if *quoted {
                items.extend(text.chars().map(Item::Char));
                continue;
            }
            let chars: Vec<char> = text.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                match chars[i] {
                    '?' => {
                        items.push(Item::Any);
                        wild = true;
                        i += 1;
                    }
                    '*' => {
                        // Runs of stars collapse to one.
                        if items.last() != Some(&Item::Star) {
                            items.push(Item::Star);
                        }
                        wild = true;
                        i += 1;
                    }
                    '[' => match parse_class(&chars, i) {
                        Some((item, next)) => {
                            items.push(item);
                            wild = true;
                            i = next;
                        }
                        None => {
                            items.push(Item::Char('['));
                            i += 1;
                        }
                    },
                    c => {
                        items.push(Item::Char(c));
                        i += 1;
                    }
                }
            }
        }
        Pattern { items, wild }
    }

    /// Returns true if the pattern contains a live metacharacter.
    /// Words without wildcards skip glob expansion entirely.
    pub fn has_wildcards(&self) -> bool {
        self.wild
    }

    /// If the pattern is purely literal, returns the literal string.
    pub fn as_literal(&self) -> Option<String> {
        if self.wild {
            return None;
        }
        Some(
            self.items
                .iter()
                .map(|it| match it {
                    Item::Char(c) => *c,
                    _ => unreachable!("non-literal item in literal pattern"),
                })
                .collect(),
        )
    }

    /// Matches the pattern against an entire subject string.
    pub fn matches(&self, subject: &str) -> bool {
        let subj: Vec<char> = subject.chars().collect();
        match_here(&self.items, &subj)
    }
}

/// Parses a `[...]` class starting at `chars[start] == '['`. Returns
/// the class and the index just past the closing `]`, or `None` if the
/// class is unterminated (in which case `[` is literal, as in rc).
fn parse_class(chars: &[char], start: usize) -> Option<(Item, usize)> {
    let mut i = start + 1;
    let mut negated = false;
    if i < chars.len() && (chars[i] == '~' || chars[i] == '!') {
        negated = true;
        i += 1;
    }
    let mut ranges = Vec::new();
    let mut first = true;
    loop {
        if i >= chars.len() {
            return None; // unterminated
        }
        let c = chars[i];
        if c == ']' && !first {
            return Some((Item::Class { negated, ranges }, i + 1));
        }
        first = false;
        // Range `a-z` (a trailing `-` is a literal member).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let lo = c;
            let hi = chars[i + 2];
            ranges.push(if lo <= hi { (lo, hi) } else { (hi, lo) });
            i += 3;
        } else {
            ranges.push((c, c));
            i += 1;
        }
    }
}

fn class_matches(negated: bool, ranges: &[(char, char)], c: char) -> bool {
    let hit = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
    hit != negated
}

/// Iterative glob match with single-star backtracking (the classic
/// two-pointer algorithm): linear except across `*` boundaries.
fn match_here(items: &[Item], subj: &[char]) -> bool {
    let (mut pi, mut si) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after *, subj idx consumed to)
    loop {
        if pi < items.len() {
            match &items[pi] {
                Item::Star => {
                    star = Some((pi + 1, si));
                    pi += 1;
                    continue;
                }
                Item::Any if si < subj.len() => {
                    pi += 1;
                    si += 1;
                    continue;
                }
                Item::Char(c) if si < subj.len() && subj[si] == *c => {
                    pi += 1;
                    si += 1;
                    continue;
                }
                Item::Class { negated, ranges }
                    if si < subj.len() && class_matches(*negated, ranges, subj[si]) =>
                {
                    pi += 1;
                    si += 1;
                    continue;
                }
                _ => {}
            }
        } else if si == subj.len() {
            return true;
        }
        // Mismatch: backtrack to the last star, consuming one more char.
        match star {
            Some((after, consumed)) if consumed < subj.len() => {
                star = Some((after, consumed + 1));
                pi = after;
                si = consumed + 1;
            }
            _ => return false,
        }
    }
}

/// Convenience: does any of `patterns` match `subject`?
///
/// # Examples
///
/// ```
/// let pats = [es_match::Pattern::parse("a*"), es_match::Pattern::parse("b*")];
/// assert!(es_match::match_any(&pats, "banana"));
/// assert!(!es_match::match_any(&pats, "cherry"));
/// ```
pub fn match_any(patterns: &[Pattern], subject: &str) -> bool {
    patterns.iter().any(|p| p.matches(subject))
}
