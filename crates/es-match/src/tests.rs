//! Unit and property tests for wildcard matching.

use crate::{match_any, Pattern};
use proptest::prelude::*;

fn m(pat: &str, subj: &str) -> bool {
    Pattern::parse(pat).matches(subj)
}

#[test]
fn literal_match() {
    assert!(m("hello", "hello"));
    assert!(!m("hello", "hell"));
    assert!(!m("hello", "hellos"));
    assert!(m("", ""));
    assert!(!m("", "x"));
}

#[test]
fn question_mark() {
    assert!(m("h?llo", "hello"));
    assert!(m("h?llo", "hallo"));
    assert!(!m("h?llo", "hllo"));
    assert!(!m("?", ""));
    assert!(m("?", "x"));
}

#[test]
fn star_basics() {
    assert!(m("*", ""));
    assert!(m("*", "anything"));
    assert!(m("Ex*", "Ex12345"));
    assert!(m("Ex*", "Ex"));
    assert!(!m("Ex*", "ex12"));
    assert!(m("*.c", "main.c"));
    assert!(!m("*.c", "main.h"));
    assert!(m("a*b*c", "aXXbYYc"));
    assert!(m("a*b*c", "abc"));
    assert!(!m("a*b*c", "acb"));
}

#[test]
fn star_backtracking() {
    assert!(m("*aab", "aaaab"));
    assert!(m("*a*a*a*", "aaa"));
    assert!(!m("*a*a*a*a*", "aaa"));
    // Pathological case stays fast thanks to two-pointer matching.
    let subj = "a".repeat(2000);
    assert!(!m("*a*a*a*a*a*a*a*a*b", &subj));
}

#[test]
fn classes() {
    assert!(m("[abc]", "b"));
    assert!(!m("[abc]", "d"));
    assert!(m("[a-z]x", "qx"));
    assert!(!m("[a-z]x", "Qx"));
    assert!(m("[a-z0-9]", "5"));
    assert!(m("x[~a-z]", "x5")); // rc-style negation
    assert!(!m("x[~a-z]", "xq"));
    assert!(m("x[!a-z]", "x5")); // sh-style negation also accepted
    assert!(m("[]]", "]")); // leading ] is literal
    assert!(m("[a-]", "-")); // trailing - is literal
    assert!(m("[a-]", "a"));
    assert!(m("[z-a]", "m")); // reversed range normalised
}

#[test]
fn unterminated_class_is_literal() {
    assert!(m("a[b", "a[b"));
    assert!(!m("a[b", "ab"));
    assert!(m("[", "["));
}

#[test]
fn quoted_segments_are_literal() {
    let p = Pattern::from_segments(&[("*", true)]);
    assert!(p.matches("*"));
    assert!(!p.matches("anything"));
    assert!(!p.has_wildcards());

    let p = Pattern::from_segments(&[("foo.", true), ("*", false)]);
    assert!(p.has_wildcards());
    assert!(p.matches("foo.c"));
    assert!(p.matches("foo."));
    assert!(!p.matches("foa.c"));
}

#[test]
fn as_literal_roundtrip() {
    assert_eq!(Pattern::parse("plain").as_literal().as_deref(), Some("plain"));
    assert_eq!(Pattern::parse("wi*ld").as_literal(), None);
    let q = Pattern::from_segments(&[("a*b", true)]);
    assert_eq!(q.as_literal().as_deref(), Some("a*b"));
}

#[test]
fn paper_examples() {
    // `~ $e error` — exception dispatch by literal match.
    assert!(m("error", "error"));
    assert!(!m("error", "eof"));
    // `~ $file /*` — "is this an absolute path?"
    assert!(m("/*", "/bin/ls"));
    assert!(!m("/*", "bin/ls"));
    // `rm Ex*` style file matching.
    assert!(m("Ex*", "Ex.out"));
    // `~ $#head 0` — counting test.
    assert!(m("0", "0"));
    assert!(!m("0", "2"));
}

#[test]
fn match_any_works() {
    let pats = [Pattern::parse("eof"), Pattern::parse("error")];
    assert!(match_any(&pats, "error"));
    assert!(!match_any(&pats, "retry"));
    assert!(!match_any(&[], "anything"));
}

#[test]
fn unicode_subjects() {
    assert!(m("héll?", "héllo"));
    assert!(m("*é*", "café au lait"));
    assert!(m("[α-ω]", "λ"));
}

#[test]
fn star_collapsing() {
    // Multiple adjacent stars behave as one and stay linear.
    assert!(m("a****b", "ab"));
    assert!(m("a****b", "aXXXb"));
    assert!(!m("a****b", "a"));
}

// ---------------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------------

/// Reference matcher: simple exponential recursion, obviously correct.
fn ref_match(pat: &[char], subj: &[char]) -> bool {
    match pat.split_first() {
        None => subj.is_empty(),
        Some(('*', rest)) => {
            (0..=subj.len()).any(|k| ref_match(rest, &subj[k..]))
        }
        Some(('?', rest)) => !subj.is_empty() && ref_match(rest, &subj[1..]),
        Some((c, rest)) => subj.first() == Some(c) && ref_match(rest, &subj[1..]),
    }
}

proptest! {
    #[test]
    fn prop_agrees_with_reference(
        pat in "[ab*?]{0,10}",
        subj in "[ab]{0,14}",
    ) {
        let fast = Pattern::parse(&pat).matches(&subj);
        let p: Vec<char> = pat.chars().collect();
        let s: Vec<char> = subj.chars().collect();
        prop_assert_eq!(fast, ref_match(&p, &s), "pattern={} subject={}", pat, subj);
    }

    #[test]
    fn prop_literal_matches_itself(word in "[a-zA-Z0-9._/-]{0,20}") {
        // No metacharacters in the alphabet, so the word matches itself.
        prop_assert!(Pattern::parse(&word).matches(&word));
    }

    #[test]
    fn prop_quoted_pattern_matches_only_itself(
        word in "[a-z*?\\[\\]]{1,12}",
        other in "[a-z*?\\[\\]]{1,12}",
    ) {
        let p = Pattern::from_segments(&[(word.as_str(), true)]);
        prop_assert!(p.matches(&word));
        if other != word {
            prop_assert!(!p.matches(&other));
        }
    }

    #[test]
    fn prop_star_prefix_matches_any_suffixed(base in "[a-z]{0,8}", tail in "[a-z]{0,8}") {
        let pat = format!("{base}*");
        let subject = format!("{base}{tail}");
        prop_assert!(Pattern::parse(&pat).matches(&subject));
    }
}
