//! The virtual clock and resource accounting.
//!
//! Figure 1 of the paper spoofs `%pipe` to wrap every pipeline element
//! in `time`, printing per-stage real/user/sys times. Reproducing that
//! deterministically needs a clock under our control: every simulated
//! program *charges* user and system time proportional to the work it
//! does, and real time advances accordingly. The constants are tuned
//! so that a few tens of kilobytes of text through a filter costs a few
//! tenths of a virtual second — the same order as the paper's output.

use std::ops::{Add, AddAssign, Sub};

/// Base user-time cost of an exec (process startup).
pub const EXEC_USER_NS: u64 = 80_000_000;
/// Base system-time cost of an exec (fork + exec overhead).
pub const EXEC_SYS_NS: u64 = 60_000_000;
/// System time charged per I/O system call.
pub const SYSCALL_SYS_NS: u64 = 30_000;
/// System time charged per byte moved through read/write.
pub const BYTE_SYS_NS: u64 = 2_000;
/// User time charged per byte a program processes.
pub const BYTE_USER_NS: u64 = 4_000;

/// Accumulated user + system CPU time, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rusage {
    /// Time spent in "user" code.
    pub user_ns: u64,
    /// Time spent in the "kernel".
    pub sys_ns: u64,
}

impl Rusage {
    /// Total CPU time.
    pub fn total_ns(&self) -> u64 {
        self.user_ns + self.sys_ns
    }

    /// User time in (fractional) seconds.
    pub fn user_secs(&self) -> f64 {
        self.user_ns as f64 / 1e9
    }

    /// System time in (fractional) seconds.
    pub fn sys_secs(&self) -> f64 {
        self.sys_ns as f64 / 1e9
    }
}

impl Add for Rusage {
    type Output = Rusage;
    fn add(self, rhs: Rusage) -> Rusage {
        Rusage {
            user_ns: self.user_ns + rhs.user_ns,
            sys_ns: self.sys_ns + rhs.sys_ns,
        }
    }
}

impl AddAssign for Rusage {
    fn add_assign(&mut self, rhs: Rusage) {
        self.user_ns += rhs.user_ns;
        self.sys_ns += rhs.sys_ns;
    }
}

impl Sub for Rusage {
    type Output = Rusage;
    fn sub(self, rhs: Rusage) -> Rusage {
        Rusage {
            user_ns: self.user_ns.saturating_sub(rhs.user_ns),
            sys_ns: self.sys_ns.saturating_sub(rhs.sys_ns),
        }
    }
}

/// The simulated calendar epoch: 1993-01-25, the first day of the
/// Winter USENIX conference where the paper was presented.
pub const EPOCH: (i64, u32, u32) = (1993, 1, 25);

/// Converts virtual nanoseconds-since-epoch into a civil date/time
/// `(year, month, day, hour, minute, second)`.
pub fn civil_from_ns(ns: u64) -> (i64, u32, u32, u32, u32, u32) {
    let total_secs = ns / 1_000_000_000;
    let (mut y, mut m, mut d) = EPOCH;
    let mut days = total_secs / 86_400;
    let secs = total_secs % 86_400;
    while days > 0 {
        let dim = days_in_month(y, m) as u64;
        let remaining_in_month = dim - d as u64;
        if days > remaining_in_month {
            days -= remaining_in_month + 1;
            d = 1;
            m += 1;
            if m > 12 {
                m = 1;
                y += 1;
            }
        } else {
            d += days as u32;
            days = 0;
        }
    }
    (
        y,
        m,
        d,
        (secs / 3600) as u32,
        ((secs % 3600) / 60) as u32,
        (secs % 60) as u32,
    )
}

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(y) => 29,
        2 => 28,
        _ => unreachable!("month out of range"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_conference_day() {
        assert_eq!(civil_from_ns(0), (1993, 1, 25, 0, 0, 0));
    }

    #[test]
    fn seconds_roll_over() {
        assert_eq!(civil_from_ns(61_000_000_000), (1993, 1, 25, 0, 1, 1));
        assert_eq!(civil_from_ns(86_400 * 1_000_000_000), (1993, 1, 26, 0, 0, 0));
    }

    #[test]
    fn month_and_year_roll_over() {
        // 7 days past Jan 25 = Feb 1.
        let ns = 7 * 86_400 * 1_000_000_000;
        let (y, m, d, ..) = civil_from_ns(ns);
        assert_eq!((y, m, d), (1993, 2, 1));
        // 365 days later: Jan 25, 1994 (1993 not a leap year).
        let ns = 365 * 86_400 * 1_000_000_000;
        let (y, m, d, ..) = civil_from_ns(ns);
        assert_eq!((y, m, d), (1994, 1, 25));
    }

    #[test]
    fn leap_february_1996() {
        // Days from 1993-01-25 to 1996-02-29.
        let days = 365 * 3 + 4 + 31 + 29 - 25; // through 1996-02-29 inclusive-ish
        let (y, m, ..) = civil_from_ns(days * 86_400 * 1_000_000_000);
        assert_eq!(y, 1996);
        assert!(m <= 3);
        assert!(is_leap(1996) && !is_leap(1993) && is_leap(2000) && !is_leap(1900));
    }

    #[test]
    fn rusage_arithmetic() {
        let a = Rusage { user_ns: 5, sys_ns: 2 };
        let b = Rusage { user_ns: 1, sys_ns: 1 };
        assert_eq!((a + b).total_ns(), 9);
        assert_eq!((a - b).user_ns, 4);
        assert_eq!((b - a).user_ns, 0, "saturating");
        let mut c = a;
        c += b;
        assert_eq!(c.user_ns, 6);
    }
}
