//! Errno-style error type shared by the whole substrate.
//!
//! The shell observes UNIX failures as `errno` strings ("No such file
//! or directory" in the paper's `in /temp` example); the simulated
//! kernel reports the same vocabulary so es error messages reproduce
//! byte-for-byte.

use std::fmt;

/// A kernel-level error, tagged with the operand that caused it where
/// that helps error messages (paths, program names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// ENOENT — no such file or directory.
    NoEnt(String),
    /// EACCES — permission denied.
    Access(String),
    /// ENOTDIR — a path component is not a directory.
    NotDir(String),
    /// EISDIR — tried to use a directory as a file.
    IsDir(String),
    /// EEXIST — file exists.
    Exists(String),
    /// EBADF — bad descriptor.
    BadF,
    /// EPIPE — broken pipe.
    Pipe,
    /// ENOEXEC — exec format error (not an executable).
    NoExec(String),
    /// ENOTEMPTY — directory not empty.
    NotEmpty(String),
    /// EINVAL — invalid argument.
    Inval(String),
    /// ECHILD — no such child process.
    Child,
    /// ENOSYS — operation not supported by this backend.
    NoSys(String),
    /// EIO — an I/O error from the real OS backend.
    Io(String),
    /// EINTR — the call was interrupted; retrying is safe.
    Intr,
    /// ENOSPC — no space left on device.
    NoSpc(String),
    /// EMFILE — too many open files.
    MFile,
}

impl OsError {
    /// The classic `strerror(3)` text for this error.
    pub fn strerror(&self) -> &'static str {
        match self {
            OsError::NoEnt(_) => "No such file or directory",
            OsError::Access(_) => "Permission denied",
            OsError::NotDir(_) => "Not a directory",
            OsError::IsDir(_) => "Is a directory",
            OsError::Exists(_) => "File exists",
            OsError::BadF => "Bad file descriptor",
            OsError::Pipe => "Broken pipe",
            OsError::NoExec(_) => "Exec format error",
            OsError::NotEmpty(_) => "Directory not empty",
            OsError::Inval(_) => "Invalid argument",
            OsError::Child => "No child processes",
            OsError::NoSys(_) => "Function not implemented",
            OsError::Io(_) => "Input/output error",
            OsError::Intr => "Interrupted system call",
            OsError::NoSpc(_) => "No space left on device",
            OsError::MFile => "Too many open files",
        }
    }

    /// Is this `EINTR`? Such failures happen *before* any state
    /// changed, so the caller may simply retry the call.
    pub fn is_intr(&self) -> bool {
        matches!(self, OsError::Intr)
    }

    /// The operand (path, program name, ...) attached to this error.
    pub fn operand(&self) -> Option<&str> {
        match self {
            OsError::NoEnt(s)
            | OsError::Access(s)
            | OsError::NotDir(s)
            | OsError::IsDir(s)
            | OsError::Exists(s)
            | OsError::NoExec(s)
            | OsError::NotEmpty(s)
            | OsError::Inval(s)
            | OsError::NoSys(s)
            | OsError::Io(s)
            | OsError::NoSpc(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for OsError {
    /// Shows `operand: strerror`, like `perror(3)` output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.operand() {
            Some(op) if !op.is_empty() => write!(f, "{}: {}", op, self.strerror()),
            _ => write!(f, "{}", self.strerror()),
        }
    }
}

impl std::error::Error for OsError {}

/// Substrate result alias.
pub type OsResult<T> = Result<T, OsError>;
