//! Seeded, deterministic fault injection for the simulated kernel.
//!
//! Real shells live on syscalls that fail: writes are interrupted
//! (`EINTR`), disks fill (`ENOSPC`), descriptor tables overflow
//! (`EMFILE`), media decay (`EIO`), and reads and writes complete
//! partially. The es paper's claim — that redirections, pipes, and the
//! interactive loop are ordinary function calls — only holds up if the
//! interpreter under those calls survives this weather, so [`SimOs`]
//! can be armed with a [`FaultPlan`]: a seeded RNG plus per-syscall
//! probability and schedule tables consulted at every hooked syscall
//! (`open`/`read`/`write`/`pipe`/`dup`/`close`/`run`/`chdir`).
//!
//! Everything is deterministic from the seed: the same plan over the
//! same shell session injects the same faults at the same call
//! numbers, so any failure found by a soak run replays exactly from
//! its seed. Every injection is appended to an event log
//! ([`FaultPlan::log`]) for replay comparison and post-mortems.
//!
//! Faults are injected *before* the syscall mutates any kernel state,
//! which gives `EINTR` the retryable semantics the interpreter's
//! bounded-retry loops rely on (see `es_os::retry_intr`).
//!
//! [`SimOs`]: crate::SimOs
//!
//! # Examples
//!
//! ```
//! use es_os::{FaultKind, FaultPlan, OpenMode, Os, OsError, SimOs, Syscall};
//!
//! let mut os = SimOs::new();
//! // Fail the second write deterministically with ENOSPC.
//! os.set_fault_plan(Some(
//!     FaultPlan::new(7).scheduled(Syscall::Write, 2, FaultKind::NoSpc),
//! ));
//! let fd = os.open("/tmp/out", OpenMode::Write).unwrap();
//! assert!(os.write(fd, b"first ").is_ok());
//! assert_eq!(os.write(fd, b"second"), Err(OsError::NoSpc(String::new())));
//! assert_eq!(os.fault_plan().unwrap().log().len(), 1);
//! ```

use std::fmt;

/// The syscalls the injection layer hooks, used to index the
/// per-syscall rate and call-count tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Syscall {
    /// `open(2)` in any mode.
    Open,
    /// `read(2)`.
    Read,
    /// `write(2)`.
    Write,
    /// `pipe(2)`.
    Pipe,
    /// `dup(2)`.
    Dup,
    /// `close(2)`.
    Close,
    /// Program execution (`fork`+`exec`+`wait` collapsed).
    Run,
    /// `chdir(2)`.
    Chdir,
}

/// How many hooked syscalls there are (table width).
pub const SYSCALL_COUNT: usize = 8;

impl Syscall {
    /// All hooked syscalls, in table order.
    pub const ALL: [Syscall; SYSCALL_COUNT] = [
        Syscall::Open,
        Syscall::Read,
        Syscall::Write,
        Syscall::Pipe,
        Syscall::Dup,
        Syscall::Close,
        Syscall::Run,
        Syscall::Chdir,
    ];

    /// Table index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lowercase name (log rendering).
    pub fn name(self) -> &'static str {
        match self {
            Syscall::Open => "open",
            Syscall::Read => "read",
            Syscall::Write => "write",
            Syscall::Pipe => "pipe",
            Syscall::Dup => "dup",
            Syscall::Close => "close",
            Syscall::Run => "run",
            Syscall::Chdir => "chdir",
        }
    }
}

/// What kind of failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `EINTR` — the call was interrupted before doing anything;
    /// retrying is always safe (and what hardened callers do).
    Intr,
    /// `ENOSPC` — no space left on device.
    NoSpc,
    /// `EMFILE` — descriptor table full.
    MFile,
    /// `EIO` — hard I/O error.
    Io,
    /// The read fills only part of the buffer (never reported as an
    /// error; callers must not equate `n < buf.len()` with EOF).
    ShortRead,
    /// The write consumes only a prefix of the data (reported as
    /// `Ok(n)` with `n < data.len()`; callers must loop).
    PartialWrite,
}

impl FaultKind {
    /// Lowercase name (log rendering).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Intr => "EINTR",
            FaultKind::NoSpc => "ENOSPC",
            FaultKind::MFile => "EMFILE",
            FaultKind::Io => "EIO",
            FaultKind::ShortRead => "short-read",
            FaultKind::PartialWrite => "partial-write",
        }
    }
}

/// One injected fault, as recorded in the plan's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Global injection sequence number (1-based).
    pub seq: u64,
    /// Which syscall the fault hit.
    pub syscall: Syscall,
    /// 1-based call number of that syscall when the fault hit.
    pub call: u64,
    /// What was injected.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}[{}] -> {}",
            self.seq,
            self.syscall.name(),
            self.call,
            self.kind.name()
        )
    }
}

/// Deterministic 64-bit generator (splitmix64) — self-contained so the
/// substrate needs no external RNG crate.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        (((self.next() >> 11) as u128 * bound as u128) >> 53) as u64
    }
}

/// Probability denominator: rates are expressed in parts per 1024.
pub const RATE_DENOM: u16 = 1024;

/// A seeded fault-injection plan: per-syscall probabilities, explicit
/// schedule entries, and the event log of everything injected.
///
/// Plans are cheap to clone (the kernel's `fork` clones them along
/// with the rest of [`SimOs`]), and two plans built identically always
/// inject identically — determinism is the whole point.
///
/// [`SimOs`]: crate::SimOs
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rng: SplitMix64,
    /// Per-syscall injection probability, in parts per [`RATE_DENOM`].
    rates: [u16; SYSCALL_COUNT],
    /// Explicit `(syscall, nth-call, kind)` triggers, checked before
    /// the probabilistic draw.
    schedule: Vec<(Syscall, u64, FaultKind)>,
    /// 1-based per-syscall call counters.
    calls: [u64; SYSCALL_COUNT],
    log: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A quiet plan (no probabilistic faults) with the given seed;
    /// arm it with [`FaultPlan::rate`], [`FaultPlan::uniform_rate`],
    /// or [`FaultPlan::scheduled`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: SplitMix64::new(seed),
            rates: [0; SYSCALL_COUNT],
            schedule: Vec::new(),
            calls: [0; SYSCALL_COUNT],
            log: Vec::new(),
        }
    }

    /// Sets one syscall's injection probability (parts per 1024).
    pub fn rate(mut self, syscall: Syscall, per_1024: u16) -> FaultPlan {
        self.rates[syscall.index()] = per_1024.min(RATE_DENOM);
        self
    }

    /// Sets every hooked syscall's probability (parts per 1024).
    pub fn uniform_rate(mut self, per_1024: u16) -> FaultPlan {
        self.rates = [per_1024.min(RATE_DENOM); SYSCALL_COUNT];
        self
    }

    /// Forces `kind` on the `nth` call (1-based) of `syscall`.
    pub fn scheduled(mut self, syscall: Syscall, nth: u64, kind: FaultKind) -> FaultPlan {
        self.schedule.push((syscall, nth, kind));
        self
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Everything injected so far, in order.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Mutable log access (`SimOs::take_fault_log` drains it).
    pub(crate) fn log_mut(&mut self) -> &mut Vec<FaultEvent> {
        &mut self.log
    }

    /// Total hooked syscalls seen (injected or not).
    pub fn calls_seen(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Decides whether this call of `syscall` faults, and how.
    /// `allowed` is the set of kinds that make sense at the call site
    /// (e.g. `ENOSPC` only for writing opens); the probabilistic draw
    /// picks uniformly among them. Schedule entries fire regardless of
    /// `allowed` — an explicit trigger is the test author's business.
    pub(crate) fn decide(&mut self, syscall: Syscall, allowed: &[FaultKind]) -> Option<FaultKind> {
        let idx = syscall.index();
        self.calls[idx] += 1;
        let call = self.calls[idx];
        let scheduled = self
            .schedule
            .iter()
            .find(|(s, n, _)| *s == syscall && *n == call)
            .map(|(_, _, k)| *k);
        let kind = match scheduled {
            Some(k) => Some(k),
            None => {
                let rate = self.rates[idx];
                if rate == 0 || allowed.is_empty() {
                    None
                } else if self.rng.below(RATE_DENOM as u64) < rate as u64 {
                    Some(allowed[self.rng.below(allowed.len() as u64) as usize])
                } else {
                    None
                }
            }
        }?;
        let seq = self.log.len() as u64 + 1;
        self.log.push(FaultEvent {
            seq,
            syscall,
            call,
            kind,
        });
        Some(kind)
    }

    /// Uniform draw in `[0, bound)` for fault *amounts* (how short a
    /// short read is, how partial a partial write is). Part of the
    /// seeded stream, so amounts replay too.
    pub(crate) fn draw_below(&mut self, bound: u64) -> u64 {
        self.rng.below(bound.max(1))
    }
}
