//! The UNIX substrate for the es shell reproduction.
//!
//! The paper's shell sits directly on UNIX: processes, file
//! descriptors, pipes, a filesystem, signals, and a tree of external
//! programs (`cat`, `tr`, `sort`, ...). A faithful *and deterministic*
//! reproduction needs that substrate under our control, so this crate
//! provides two backends behind the [`Os`] trait:
//!
//! * [`SimOs`] — a simulated kernel: in-memory VFS ([`vfs::Vfs`]),
//!   descriptor table, unbounded byte-buffer pipes, a virtual clock
//!   with per-child rusage (so the paper's Figure 1 `time` output
//!   reproduces exactly), a fake process table, signal delivery, and
//!   ~25 simulated coreutils registered as in-process programs.
//!   All tests and benchmarks run on this backend.
//! * [`RealOs`] — a thin `std::fs`/`std::process` backend so the `es`
//!   binary is usable as an actual shell. Best-effort: pipes are
//!   staged through buffers rather than real kernel pipes.
//!
//! ## Why simulation preserves the paper's behaviour
//!
//! Es only observes the OS through byte streams, exit statuses, errno
//! strings, and rusage numbers. The simulator exposes the same
//! interface and failure modes (ENOENT, EEXIST, ...), so every shell
//! code path the paper discusses — redirection, pipes, spoofed hooks,
//! `%pathsearch`, `fork`, signals-as-exceptions — exercises identically.
//! Timing *shapes* are preserved by charging virtual time per byte
//! processed (see [`clock`]).
//!
//! # Examples
//!
//! ```
//! use es_os::{Os, SimOs, OpenMode};
//!
//! let mut os = SimOs::new();
//! os.vfs_mut().put_file("/tmp/greeting", b"hello, world\n").unwrap();
//! let fd = os.open("/tmp/greeting", OpenMode::Read).unwrap();
//! let mut buf = [0u8; 64];
//! let n = os.read(fd, &mut buf).unwrap();
//! assert_eq!(&buf[..n], b"hello, world\n");
//! ```

pub mod clock;
pub mod error;
pub mod fault;
pub mod programs;
pub mod real;
pub mod sim;
pub mod vfs;

#[cfg(test)]
mod real_tests;
#[cfg(test)]
mod tests;

pub use clock::Rusage;
pub use error::{OsError, OsResult};
pub use fault::{FaultEvent, FaultKind, FaultPlan, Syscall};
pub use real::RealOs;
pub use sim::{Desc, SimOs};
pub use vfs::Vfs;

/// How a file should be opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only; the file must exist (`%open`, `<`).
    Read,
    /// Write-only; create or truncate (`%create`, `>`).
    Write,
    /// Write-only; create if missing, position at end (`%append`, `>>`).
    Append,
}

/// A UNIX signal, delivered to the shell as an exception
/// (the paper maps signals onto the exception mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Interrupt (^C).
    Int,
    /// Termination request.
    Term,
    /// Hangup.
    Hup,
    /// Quit.
    Quit,
    /// Uncatchable kill; the shell exits.
    Kill,
    /// Alarm clock; the governor's virtual-time watchdog delivers this.
    Alrm,
}

impl Signal {
    /// The lowercase exception name es uses (`sigint`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Signal::Int => "sigint",
            Signal::Term => "sigterm",
            Signal::Hup => "sighup",
            Signal::Quit => "sigquit",
            Signal::Kill => "sigkill",
            Signal::Alrm => "sigalrm",
        }
    }

    /// Parses `-9` / `-KILL` / `-sigint` / `SIGINT` style designators.
    /// Matching is case-insensitive; an empty designator (or a bare
    /// run of dashes) is rejected rather than falling through the
    /// alias table.
    pub fn parse(s: &str) -> Option<Signal> {
        let body = s.trim_start_matches('-');
        if body.is_empty() {
            return None;
        }
        match body.to_ascii_lowercase().as_str() {
            "2" | "int" | "sigint" => Some(Signal::Int),
            "15" | "term" | "sigterm" => Some(Signal::Term),
            "1" | "hup" | "sighup" => Some(Signal::Hup),
            "3" | "quit" | "sigquit" => Some(Signal::Quit),
            "9" | "kill" | "sigkill" => Some(Signal::Kill),
            "14" | "alrm" | "sigalrm" => Some(Signal::Alrm),
            _ => None,
        }
    }
}

/// The kernel interface the es interpreter needs.
///
/// Deliberately small: the shell only ever opens/creates files, dups
/// and closes descriptors, reads/writes bytes, makes pipes, runs
/// external programs with an explicit fd layout, changes directory,
/// inspects the filesystem (for `%pathsearch` and glob expansion),
/// reads the clock and child rusage (for `time`), and polls for
/// signals. Everything else in the paper is built *inside* the shell.
pub trait Os {
    /// Opens `path` (relative to [`Os::cwd`]) in the given mode.
    fn open(&mut self, path: &str, mode: OpenMode) -> OsResult<Desc>;
    /// Creates a pipe; returns `(read_end, write_end)`.
    fn pipe(&mut self) -> OsResult<(Desc, Desc)>;
    /// Duplicates a descriptor (shares the open-file description).
    fn dup(&mut self, d: Desc) -> OsResult<Desc>;
    /// Closes a descriptor.
    fn close(&mut self, d: Desc) -> OsResult<()>;
    /// Reads into `buf`; 0 means end-of-file.
    fn read(&mut self, d: Desc, buf: &mut [u8]) -> OsResult<usize>;
    /// Writes `data`; returns bytes written.
    fn write(&mut self, d: Desc, data: &[u8]) -> OsResult<usize>;
    /// Runs an external program to completion and returns its exit
    /// status. `fds` lays out the child's descriptor table as
    /// `(child_fd, parent_desc)` pairs.
    fn run(
        &mut self,
        argv: &[String],
        env: &[(String, String)],
        fds: &[(u32, Desc)],
    ) -> OsResult<i32>;
    /// Changes the current directory.
    fn chdir(&mut self, path: &str) -> OsResult<()>;
    /// The current directory (absolute).
    fn cwd(&self) -> String;
    /// Sorted names in a directory (for glob expansion and `ls`).
    fn read_dir(&self, path: &str) -> OsResult<Vec<String>>;
    /// Does `path` name a regular file?
    fn is_file(&self, path: &str) -> bool;
    /// Does `path` name a directory?
    fn is_dir(&self, path: &str) -> bool;
    /// Is `path` an executable file? (`%pathsearch` uses this.)
    fn is_executable(&self, path: &str) -> bool;
    /// Virtual (or real) nanoseconds since the backend's epoch.
    fn now_ns(&self) -> u64;
    /// Advances the clock by `ns`. The simulator moves its virtual
    /// clock (the interpreter charges a little time per eval step so
    /// deadlines fire even in pure-CPU loops); a real kernel's clock
    /// advances by itself, so the default is a no-op.
    fn advance_ns(&mut self, _ns: u64) {}
    /// How many descriptors are currently open in this kernel's
    /// descriptor table (the governor's fd budget checks this).
    fn open_desc_count(&self) -> usize;
    /// Cumulative rusage of all children so far (`time` diffs this).
    fn children_rusage(&self) -> Rusage;
    /// Takes one pending signal, if any. The interpreter polls this
    /// between commands and converts it into a `signal` exception.
    fn take_signal(&mut self) -> Option<Signal>;
    /// The process environment the shell was started with.
    fn initial_env(&self) -> Vec<(String, String)>;
    /// Drains the captured console streams as `(stdout, stderr)`.
    /// Backends that write straight to the process's stdio (e.g.
    /// [`RealOs`] outside capture mode) return empty strings; the
    /// conformance harness uses this to collect traces generically.
    fn take_console(&mut self) -> (String, String) {
        (String::new(), String::new())
    }
    /// Merges a forked child kernel's observable effects back into the
    /// parent. The shell's `fork` clones the whole kernel and runs the
    /// child to completion; in a real kernel the filesystem, terminal,
    /// clock and process table are *shared*, so the parent adopts the
    /// child's kernel state (keeping only its own working directory).
    fn absorb_fork(&mut self, child: Self)
    where
        Self: Sized;
}

/// The descriptor numbers of the shell's standard streams; both
/// backends pre-open these.
pub const STDIN: Desc = Desc(0);
/// Standard output descriptor.
pub const STDOUT: Desc = Desc(1);
/// Standard error descriptor.
pub const STDERR: Desc = Desc(2);

/// How many consecutive `EINTR`s a retry loop tolerates before giving
/// up. On a real kernel `EINTR` is transient; under fault injection a
/// hostile plan could return it forever, and an unbounded loop would
/// turn an injected fault into a hang.
pub const INTR_RETRY_LIMIT: u32 = 64;

/// Calls `op`, retrying (up to [`INTR_RETRY_LIMIT`] times) while it
/// fails with `EINTR`. Any other outcome — success or a different
/// error — is returned as-is; if the limit is exhausted the final
/// `EINTR` is returned.
pub fn retry_intr<T, F: FnMut() -> OsResult<T>>(mut op: F) -> OsResult<T> {
    for _ in 0..INTR_RETRY_LIMIT {
        match op() {
            Err(e) if e.is_intr() => continue,
            other => return other,
        }
    }
    Err(OsError::Intr)
}

/// Reads everything from a descriptor (convenience built on
/// [`Os::read`]). Retries interrupted reads; a short read just means
/// "go around again", never end-of-file.
pub fn read_all<O: Os + ?Sized>(os: &mut O, d: Desc) -> OsResult<Vec<u8>> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = retry_intr(|| os.read(d, &mut buf))?;
        if n == 0 {
            return Ok(out);
        }
        out.extend_from_slice(&buf[..n]);
    }
}

/// A write that failed partway: `written` bytes made it out before
/// `cause` stopped the transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteError {
    /// Bytes successfully written before the failure.
    pub written: usize,
    /// The kernel error that stopped the transfer.
    pub cause: OsError,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.written > 0 {
            write!(f, "{} (after {} bytes written)", self.cause, self.written)
        } else {
            write!(f, "{}", self.cause)
        }
    }
}

impl std::error::Error for WriteError {}

/// Writes all of `data`, looping on partial writes and retrying
/// interrupted ones. On success returns the byte count; on failure
/// reports both the error *and* how much was already written, so
/// callers can report truncated output honestly.
pub fn write_fully<O: Os + ?Sized>(os: &mut O, d: Desc, data: &[u8]) -> Result<usize, WriteError> {
    let mut off = 0;
    while off < data.len() {
        match retry_intr(|| os.write(d, &data[off..])) {
            Ok(0) => {
                return Err(WriteError {
                    written: off,
                    cause: OsError::Io("write returned 0".into()),
                })
            }
            Ok(n) => off += n,
            Err(cause) => return Err(WriteError { written: off, cause }),
        }
    }
    Ok(off)
}

/// Writes everything to a descriptor (convenience built on
/// [`write_fully`]; kept for callers that don't care how much made it
/// out before a failure).
pub fn write_all<O: Os + ?Sized>(os: &mut O, d: Desc, data: &[u8]) -> OsResult<()> {
    write_fully(os, d, data).map(|_| ()).map_err(|e| e.cause)
}
