//! Additional utilities beyond the paper's examples: expr, cut,
//! printf, nl, tac, cmp, which — the tools richer es scripts (and the
//! wider test suite) lean on. The shell itself has no arithmetic, so
//! `expr` matters: classic Bourne scripting counts with it, and es
//! scripts here do the same.

use super::{lines_of, ProcCtx, ProgramFn};
use std::collections::BTreeMap;

pub(super) fn install(map: &mut BTreeMap<&'static str, ProgramFn>) {
    map.insert("expr", expr);
    map.insert("cut", cut);
    map.insert("printf", printf);
    map.insert("nl", nl);
    map.insert("tac", tac);
    map.insert("cmp", cmp);
    map.insert("which", which);
}

/// `expr a OP b [OP c ...]` — left-associative integer arithmetic and
/// comparisons. Operators: `+ - '*' / % = != '<' '<=' '>' '>='`.
/// Prints the result; exit status 0 for nonzero/true results, 1 for
/// zero/false (the real tool's convention).
fn expr(ctx: &mut ProcCtx) -> i32 {
    let args = ctx.args().to_vec();
    if args.is_empty() {
        return ctx.fail("missing operand");
    }
    let mut acc: i64 = match args[0].parse() {
        Ok(v) => v,
        Err(_) => return ctx.fail(&format!("non-integer argument: {}", args[0])),
    };
    let mut i = 1;
    while i + 1 < args.len() + 1 && i < args.len() {
        let op = &args[i];
        let rhs: i64 = match args.get(i + 1).map(|s| s.parse()) {
            Some(Ok(v)) => v,
            _ => return ctx.fail("missing or bad right operand"),
        };
        acc = match op.as_str() {
            "+" => acc + rhs,
            "-" => acc - rhs,
            "*" => acc * rhs,
            "/" => {
                if rhs == 0 {
                    return ctx.fail("division by zero");
                }
                acc / rhs
            }
            "%" => {
                if rhs == 0 {
                    return ctx.fail("division by zero");
                }
                acc % rhs
            }
            "=" => (acc == rhs) as i64,
            "!=" => (acc != rhs) as i64,
            "<" => (acc < rhs) as i64,
            "<=" => (acc <= rhs) as i64,
            ">" => (acc > rhs) as i64,
            ">=" => (acc >= rhs) as i64,
            other => return ctx.fail(&format!("unknown operator {other}")),
        };
        i += 2;
    }
    ctx.out(&format!("{acc}\n"));
    if acc != 0 {
        0
    } else {
        1
    }
}

/// `cut -d DELIM -f N[,M...] [file]` or `cut -c A-B [file]`.
fn cut(ctx: &mut ProcCtx) -> i32 {
    let mut delim = '\t';
    let mut fields: Vec<usize> = Vec::new();
    let mut chars_range: Option<(usize, usize)> = None;
    let mut input = None;
    let args = ctx.args().to_vec();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-d" => {
                delim = it
                    .next()
                    .and_then(|s| s.chars().next())
                    .unwrap_or('\t');
            }
            "-f" => {
                let spec = match it.next() {
                    Some(s) => s,
                    None => return ctx.fail("missing field list"),
                };
                for part in spec.split(',') {
                    match part.parse() {
                        Ok(n) if n >= 1 => fields.push(n),
                        _ => return ctx.fail(&format!("bad field {part}")),
                    }
                }
            }
            "-c" => {
                let spec = match it.next() {
                    Some(s) => s,
                    None => return ctx.fail("missing character range"),
                };
                let (a, b) = match spec.split_once('-') {
                    Some((a, b)) => (
                        a.parse().unwrap_or(1),
                        b.parse().unwrap_or(usize::MAX),
                    ),
                    None => {
                        let n = spec.parse().unwrap_or(1);
                        (n, n)
                    }
                };
                chars_range = Some((a, b));
            }
            other => input = Some(other.to_string()),
        }
    }
    if fields.is_empty() && chars_range.is_none() {
        return ctx.fail("you must specify a list of fields or characters");
    }
    let data = match input {
        Some(path) => match ctx.read_file(&path) {
            Ok(d) => d,
            Err(e) => return ctx.fail(&e.to_string()),
        },
        None => ctx.stdin_all(),
    };
    let mut out = String::new();
    for line in lines_of(&data) {
        if let Some((a, b)) = chars_range {
            let chars: Vec<char> = line.chars().collect();
            let lo = a.saturating_sub(1).min(chars.len());
            let hi = b.min(chars.len());
            out.extend(chars[lo..hi].iter());
        } else {
            let parts: Vec<&str> = line.split(delim).collect();
            let picked: Vec<&str> = fields
                .iter()
                .filter_map(|&n| parts.get(n - 1).copied())
                .collect();
            out.push_str(&picked.join(&delim.to_string()));
        }
        out.push('\n');
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `printf FORMAT [args...]` — `%s` `%d` `%%` plus `\n` `\t` `\\`
/// escapes; the format is reused until the arguments run out, like the
/// real tool.
fn printf(ctx: &mut ProcCtx) -> i32 {
    let args = ctx.args().to_vec();
    let format = match args.first() {
        Some(f) => f.clone(),
        None => return ctx.fail("missing format"),
    };
    let mut values = args[1..].iter();
    let mut out = String::new();
    loop {
        let mut consumed = false;
        let mut it = format.chars().peekable();
        while let Some(c) = it.next() {
            match c {
                '%' => match it.next() {
                    Some('s') => {
                        if let Some(v) = values.next() {
                            out.push_str(v);
                            consumed = true;
                        }
                    }
                    Some('d') => {
                        let v = values.next().map(String::as_str).unwrap_or("0");
                        match v.parse::<i64>() {
                            Ok(n) => out.push_str(&n.to_string()),
                            Err(_) => return ctx.fail(&format!("bad number {v}")),
                        }
                        consumed = true;
                    }
                    Some('%') => out.push('%'),
                    Some(other) => {
                        out.push('%');
                        out.push(other);
                    }
                    None => out.push('%'),
                },
                '\\' => match it.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('\\') => out.push('\\'),
                    Some(other) => out.push(other),
                    None => out.push('\\'),
                },
                other => out.push(other),
            }
        }
        // Reuse the format while arguments remain (and progress).
        if values.len() == 0 || !consumed {
            break;
        }
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `nl [file]` — number lines (six-wide, tab separated).
fn nl(ctx: &mut ProcCtx) -> i32 {
    let data = match ctx.args().first().cloned() {
        Some(path) => match ctx.read_file(&path) {
            Ok(d) => d,
            Err(e) => return ctx.fail(&e.to_string()),
        },
        None => ctx.stdin_all(),
    };
    let mut out = String::new();
    for (i, line) in lines_of(&data).iter().enumerate() {
        out.push_str(&format!("{:6}\t{line}\n", i + 1));
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `tac [file]` — lines in reverse order.
fn tac(ctx: &mut ProcCtx) -> i32 {
    let data = match ctx.args().first().cloned() {
        Some(path) => match ctx.read_file(&path) {
            Ok(d) => d,
            Err(e) => return ctx.fail(&e.to_string()),
        },
        None => ctx.stdin_all(),
    };
    let mut out = String::new();
    for line in lines_of(&data).iter().rev() {
        out.push_str(line);
        out.push('\n');
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `cmp a b` — silent compare; status 0 iff identical.
fn cmp(ctx: &mut ProcCtx) -> i32 {
    let args = ctx.args().to_vec();
    let (a, b) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a.clone(), b.clone()),
        _ => return ctx.fail("usage: cmp a b"),
    };
    let da = match ctx.read_file(&a) {
        Ok(d) => d,
        Err(e) => return ctx.fail(&e.to_string()),
    };
    let db = match ctx.read_file(&b) {
        Ok(d) => d,
        Err(e) => return ctx.fail(&e.to_string()),
    };
    if da == db {
        0
    } else {
        let _ = ctx.write_fd(1, format!("{a} {b} differ\n").as_bytes());
        1
    }
}

/// `which name...` — resolve against `$PATH`, one path per line.
fn which(ctx: &mut ProcCtx) -> i32 {
    let path = ctx.getenv("PATH").unwrap_or("/bin").to_string();
    let mut status = 0;
    for name in ctx.args().to_vec() {
        if name.contains('/') {
            ctx.out(&format!("{name}\n"));
            continue;
        }
        let mut found = None;
        for dir in path.split(':') {
            let cand = format!("{dir}/{name}");
            if ctx.vfs().is_executable(&cand, "/") {
                found = Some(cand);
                break;
            }
        }
        match found {
            Some(p) => ctx.out(&format!("{p}\n")),
            None => status = ctx.fail(&format!("{name} not found")),
        }
    }
    status
}
