//! Filesystem programs: ls, mkdir, rmdir, rm, touch, cp, mv, test,
//! basename, dirname, pwd.

use super::{ProcCtx, ProgramFn};
use std::collections::BTreeMap;

pub(super) fn install(map: &mut BTreeMap<&'static str, ProgramFn>) {
    map.insert("ls", ls);
    map.insert("mkdir", mkdir);
    map.insert("rmdir", rmdir);
    map.insert("rm", rm);
    map.insert("touch", touch);
    map.insert("cp", cp);
    map.insert("mv", mv);
    map.insert("test", test);
    map.insert("[", test);
    map.insert("basename", basename);
    map.insert("dirname", dirname);
    map.insert("pwd", pwd);
}

/// `ls [-a] [path...]` — list directory contents, one name per line
/// (the form every pipeline consumer wants).
fn ls(ctx: &mut ProcCtx) -> i32 {
    let mut all = false;
    let mut paths = Vec::new();
    for arg in ctx.args().to_vec() {
        match arg.as_str() {
            "-a" => all = true,
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        paths.push(ctx.cwd());
    }
    let mut status = 0;
    let many = paths.len() > 1;
    let cwd = ctx.cwd();
    for (i, path) in paths.iter().enumerate() {
        if ctx.vfs().is_file(path, &cwd) {
            ctx.out(&format!("{path}\n"));
            continue;
        }
        match ctx.vfs().read_dir(path, &cwd) {
            Ok(names) => {
                if many {
                    if i > 0 {
                        ctx.out("\n");
                    }
                    ctx.out(&format!("{path}:\n"));
                }
                let mut out = String::new();
                if all {
                    out.push_str(".\n..\n");
                }
                for name in names {
                    if !all && name.starts_with('.') {
                        continue;
                    }
                    out.push_str(&name);
                    out.push('\n');
                }
                let _ = ctx.write_fd(1, out.as_bytes());
            }
            Err(e) => {
                status = ctx.fail(&e.to_string());
            }
        }
    }
    status
}

/// `mkdir [-p] dir...`.
fn mkdir(ctx: &mut ProcCtx) -> i32 {
    let mut parents = false;
    let mut dirs = Vec::new();
    for arg in ctx.args().to_vec() {
        match arg.as_str() {
            "-p" => parents = true,
            other => dirs.push(other.to_string()),
        }
    }
    if dirs.is_empty() {
        return ctx.fail("missing operand");
    }
    let cwd = ctx.cwd();
    let mut status = 0;
    for dir in &dirs {
        let result = if parents {
            let abs = if dir.starts_with('/') {
                dir.clone()
            } else {
                format!("{}/{}", cwd.trim_end_matches('/'), dir)
            };
            ctx.vfs_mut().mkdir_all(&abs).map(|_| ())
        } else {
            ctx.vfs_mut().mkdir(dir, &cwd).map(|_| ())
        };
        if let Err(e) = result {
            status = ctx.fail(&e.to_string());
        }
    }
    status
}

/// `rmdir dir...`.
fn rmdir(ctx: &mut ProcCtx) -> i32 {
    let cwd = ctx.cwd();
    let mut status = 0;
    for dir in ctx.args().to_vec() {
        if let Err(e) = ctx.vfs_mut().rmdir(&dir, &cwd) {
            status = ctx.fail(&e.to_string());
        }
    }
    status
}

/// `rm [-f] [-r] file...` — remove files (and trees with -r).
fn rm(ctx: &mut ProcCtx) -> i32 {
    let mut force = false;
    let mut recursive = false;
    let mut targets = Vec::new();
    for arg in ctx.args().to_vec() {
        match arg.as_str() {
            "-f" => force = true,
            "-r" | "-rf" | "-fr" => {
                recursive = true;
                force |= arg.contains('f');
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() && !force {
        return ctx.fail("missing operand");
    }
    let cwd = ctx.cwd();
    let mut status = 0;
    for t in &targets {
        let r = if recursive && ctx.vfs().is_dir(t, &cwd) {
            remove_tree(ctx, t, &cwd)
        } else {
            ctx.vfs_mut().unlink(t, &cwd)
        };
        if let Err(e) = r {
            if !force {
                status = ctx.fail(&e.to_string());
            }
        }
    }
    status
}

fn remove_tree(ctx: &mut ProcCtx, path: &str, cwd: &str) -> crate::OsResult<()> {
    let entries = ctx.vfs().read_dir(path, cwd)?;
    for name in entries {
        let child = format!("{}/{}", path.trim_end_matches('/'), name);
        if ctx.vfs().is_dir(&child, cwd) {
            remove_tree(ctx, &child, cwd)?;
        } else {
            ctx.vfs_mut().unlink(&child, cwd)?;
        }
    }
    ctx.vfs_mut().rmdir(path, cwd)
}

/// `touch file...` — create empty files (contents preserved if present).
fn touch(ctx: &mut ProcCtx) -> i32 {
    let cwd = ctx.cwd();
    let mut status = 0;
    for f in ctx.args().to_vec() {
        if let Err(e) = ctx.vfs_mut().create_file(&f, &cwd, false) {
            status = ctx.fail(&e.to_string());
        }
    }
    status
}

/// `cp src dst` — copy one file.
fn cp(ctx: &mut ProcCtx) -> i32 {
    let args = ctx.args().to_vec();
    if args.len() != 2 {
        return ctx.fail("usage: cp src dst");
    }
    let data = match ctx.read_file(&args[0]) {
        Ok(d) => d,
        Err(e) => return ctx.fail(&e.to_string()),
    };
    let cwd = ctx.cwd();
    let dst = if ctx.vfs().is_dir(&args[1], &cwd) {
        let base = args[0].rsplit('/').next().unwrap_or(&args[0]);
        format!("{}/{}", args[1].trim_end_matches('/'), base)
    } else {
        args[1].clone()
    };
    match ctx.write_file(&dst, &data) {
        Ok(()) => 0,
        Err(e) => ctx.fail(&e.to_string()),
    }
}

/// `mv src dst` — move (copy + unlink).
fn mv(ctx: &mut ProcCtx) -> i32 {
    let args = ctx.args().to_vec();
    if args.len() != 2 {
        return ctx.fail("usage: mv src dst");
    }
    let status = cp(ctx);
    if status != 0 {
        return status;
    }
    let cwd = ctx.cwd();
    match ctx.vfs_mut().unlink(&args[0], &cwd) {
        Ok(()) => 0,
        Err(e) => ctx.fail(&e.to_string()),
    }
}

/// `test expr` / `[ expr ]` — evaluate a condition; exit 0 when true.
///
/// Supports the unary operators the paper's spoofs use (`test -f`)
/// plus `-d -e -n -z`, string `=`/`!=`, integer `-eq -ne -lt -le -gt
/// -ge`, and `!` negation.
fn test(ctx: &mut ProcCtx) -> i32 {
    let mut args = ctx.args().to_vec();
    if ctx.name() == "[" {
        if args.last().map(String::as_str) != Some("]") {
            return ctx.fail("missing ]");
        }
        args.pop();
    }
    let mut negate = false;
    let mut rest = &args[..];
    while rest.first().map(String::as_str) == Some("!") {
        negate = !negate;
        rest = &rest[1..];
    }
    let truth = eval_test(ctx, rest);
    match truth {
        Ok(t) => {
            if t != negate {
                0
            } else {
                1
            }
        }
        Err(msg) => ctx.fail(&msg),
    }
}

fn eval_test(ctx: &ProcCtx, args: &[String]) -> Result<bool, String> {
    let cwd = ctx.cwd();
    match args {
        [] => Ok(false),
        [s] => Ok(!s.is_empty()),
        [op, v] => match op.as_str() {
            "-f" => Ok(ctx.vfs().is_file(v, &cwd)),
            "-d" => Ok(ctx.vfs().is_dir(v, &cwd)),
            "-e" => Ok(ctx.vfs().is_file(v, &cwd) || ctx.vfs().is_dir(v, &cwd)),
            "-x" => Ok(ctx.vfs().is_executable(v, &cwd)),
            "-n" => Ok(!v.is_empty()),
            "-z" => Ok(v.is_empty()),
            "-s" => {
                let ino = ctx.vfs().lookup(v, &cwd).map_err(|e| e.to_string());
                Ok(matches!(ino, Ok(i) if ctx.vfs().file_len(i) > 0))
            }
            other => Err(format!("unknown operator {other}")),
        },
        [a, op, b] => match op.as_str() {
            "=" => Ok(a == b),
            "!=" => Ok(a != b),
            "-eq" | "-ne" | "-lt" | "-le" | "-gt" | "-ge" => {
                let x: i64 = a.parse().map_err(|_| format!("bad number {a}"))?;
                let y: i64 = b.parse().map_err(|_| format!("bad number {b}"))?;
                Ok(match op.as_str() {
                    "-eq" => x == y,
                    "-ne" => x != y,
                    "-lt" => x < y,
                    "-le" => x <= y,
                    "-gt" => x > y,
                    _ => x >= y,
                })
            }
            other => Err(format!("unknown operator {other}")),
        },
        _ => Err("too many arguments".into()),
    }
}

/// `basename path [suffix]`.
fn basename(ctx: &mut ProcCtx) -> i32 {
    let args = ctx.args().to_vec();
    let path = match args.first() {
        Some(p) => p.trim_end_matches('/'),
        None => return ctx.fail("missing operand"),
    };
    let mut base = path.rsplit('/').next().unwrap_or(path).to_string();
    if let Some(suffix) = args.get(1) {
        if base.len() > suffix.len() {
            if let Some(stripped) = base.strip_suffix(suffix.as_str()) {
                base = stripped.to_string();
            }
        }
    }
    if base.is_empty() {
        base = "/".into();
    }
    ctx.out(&format!("{base}\n"));
    0
}

/// `dirname path`.
fn dirname(ctx: &mut ProcCtx) -> i32 {
    let args = ctx.args().to_vec();
    let path = match args.first() {
        Some(p) => p.trim_end_matches('/'),
        None => return ctx.fail("missing operand"),
    };
    let dir = match path.rfind('/') {
        Some(0) => "/",
        Some(i) => &path[..i],
        None => ".",
    };
    ctx.out(&format!("{dir}\n"));
    0
}

/// `pwd` — print the kernel's current directory.
fn pwd(ctx: &mut ProcCtx) -> i32 {
    let cwd = ctx.cwd();
    ctx.out(&format!("{cwd}\n"));
    0
}
