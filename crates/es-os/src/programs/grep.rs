//! `grep` — line filtering with the es-regex engine.

use super::{lines_of, ProcCtx};
use es_regex::Regex;

/// `grep [-v] [-c] [-n] [-i] pattern [file...]`.
///
/// Exit status follows the real tool: 0 if anything matched, 1 if
/// nothing did, 2 on a bad pattern — the paper's pipelines rely on
/// grep's status feeding `&&` and `if`.
pub(super) fn grep(ctx: &mut ProcCtx) -> i32 {
    let mut invert = false;
    let mut count = false;
    let mut number = false;
    let mut ignore_case = false;
    let mut operands = Vec::new();
    for arg in ctx.args().to_vec() {
        match arg.as_str() {
            "-v" => invert = true,
            "-c" => count = true,
            "-n" => number = true,
            "-i" => ignore_case = true,
            other => operands.push(other.to_string()),
        }
    }
    if operands.is_empty() {
        return ctx.fail("usage: grep [-vcni] pattern [file...]");
    }
    let raw_pattern = operands.remove(0);
    let pattern = if ignore_case {
        case_fold_pattern(&raw_pattern)
    } else {
        raw_pattern.clone()
    };
    let re = match Regex::new(&pattern) {
        Ok(r) => r,
        Err(e) => {
            ctx.fail(&e.to_string());
            return 2;
        }
    };
    let mut matched_any = false;
    let process = |ctx: &mut ProcCtx, data: &[u8], label: Option<&str>| {
        let mut hits = 0usize;
        let mut out = String::new();
        for (i, line) in lines_of(data).iter().enumerate() {
            let subject = if ignore_case {
                line.to_ascii_lowercase()
            } else {
                line.clone()
            };
            if re.is_match(&subject) != invert {
                hits += 1;
                if !count {
                    if let Some(name) = label {
                        out.push_str(name);
                        out.push(':');
                    }
                    if number {
                        out.push_str(&format!("{}:", i + 1));
                    }
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        if count {
            if let Some(name) = label {
                out.push_str(&format!("{name}:{hits}\n"));
            } else {
                out.push_str(&format!("{hits}\n"));
            }
        }
        let _ = ctx.write_fd(1, out.as_bytes());
        hits > 0
    };
    if operands.is_empty() {
        let data = ctx.stdin_all();
        matched_any = process(ctx, &data, None);
    } else {
        let many = operands.len() > 1;
        for path in &operands {
            match ctx.read_file(path) {
                Ok(data) => {
                    let label = if many { Some(path.as_str()) } else { None };
                    matched_any |= process(ctx, &data, label);
                }
                Err(e) => {
                    ctx.fail(&e.to_string());
                    return 2;
                }
            }
        }
    }
    if matched_any {
        0
    } else {
        1
    }
}

/// Lowercases the literal characters of a pattern (a cheap -i: the
/// subject is lowercased too). Class ranges are left alone.
fn case_fold_pattern(p: &str) -> String {
    p.to_ascii_lowercase()
}
