//! Miscellaneous programs: echo, date, true, false, sleep, env, xargs,
//! ps, kill, awk, yes-bounded helpers.

use super::{lines_of, ProcCtx, ProgramFn};
use crate::Signal;
use std::collections::BTreeMap;

pub(super) fn install(map: &mut BTreeMap<&'static str, ProgramFn>) {
    map.insert("echo", echo);
    map.insert("date", date);
    map.insert("true", true_prog);
    map.insert("false", false_prog);
    map.insert("sleep", sleep);
    map.insert("env", env);
    map.insert("xargs", xargs);
    map.insert("ps", ps);
    map.insert("kill", kill);
    map.insert("awk", awk);
}

/// `echo [-n] args...`.
fn echo(ctx: &mut ProcCtx) -> i32 {
    let mut args = ctx.args().to_vec();
    let newline = if args.first().map(String::as_str) == Some("-n") {
        args.remove(0);
        false
    } else {
        true
    };
    let mut out = args.join(" ");
    if newline {
        out.push('\n');
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `date [+FORMAT]` — formats the virtual clock. Supports the strftime
/// verbs the paper's `fn d { date +%y-%m-%d }` example uses plus the
/// common ones: %Y %y %m %d %H %M %S %%.
fn date(ctx: &mut ProcCtx) -> i32 {
    let (y, mo, d, h, mi, s) = ctx.civil_now();
    let args = ctx.args().to_vec();
    let out = match args.first() {
        Some(fmt) if fmt.starts_with('+') => {
            let mut out = String::new();
            let mut it = fmt[1..].chars();
            while let Some(c) = it.next() {
                if c != '%' {
                    out.push(c);
                    continue;
                }
                match it.next() {
                    Some('Y') => out.push_str(&format!("{y:04}")),
                    Some('y') => out.push_str(&format!("{:02}", y % 100)),
                    Some('m') => out.push_str(&format!("{mo:02}")),
                    Some('d') => out.push_str(&format!("{d:02}")),
                    Some('H') => out.push_str(&format!("{h:02}")),
                    Some('M') => out.push_str(&format!("{mi:02}")),
                    Some('S') => out.push_str(&format!("{s:02}")),
                    Some('%') => out.push('%'),
                    Some(other) => {
                        out.push('%');
                        out.push(other);
                    }
                    None => out.push('%'),
                }
            }
            out
        }
        _ => {
            const MONTHS: [&str; 12] = [
                "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov",
                "Dec",
            ];
            format!(
                "{} {d:2} {h:02}:{mi:02}:{s:02} {y}",
                MONTHS[(mo - 1) as usize]
            )
        }
    };
    ctx.out(&format!("{out}\n"));
    0
}

/// `true` — succeed.
fn true_prog(_ctx: &mut ProcCtx) -> i32 {
    0
}

/// `false` — fail.
fn false_prog(_ctx: &mut ProcCtx) -> i32 {
    1
}

/// `sleep seconds` — advance the virtual clock.
fn sleep(ctx: &mut ProcCtx) -> i32 {
    let secs: f64 = ctx
        .args()
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    ctx.sleep_ns((secs * 1e9) as u64);
    0
}

/// `env` — print the environment, one NAME=value per line.
fn env(ctx: &mut ProcCtx) -> i32 {
    let mut out = String::new();
    for (k, v) in ctx.env().to_vec() {
        out.push_str(&format!("{k}={v}\n"));
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `xargs [cmd [args...]]` — append words read from stdin to the
/// command and run it (single invocation; enough for the paper's
/// `... | xargs kill -9`).
fn xargs(ctx: &mut ProcCtx) -> i32 {
    let stdin = ctx.stdin_all();
    let words: Vec<String> = String::from_utf8_lossy(&stdin)
        .split_whitespace()
        .map(str::to_string)
        .collect();
    let mut argv: Vec<String> = ctx.args().to_vec();
    if argv.is_empty() {
        argv.push("echo".into());
    }
    argv.extend(words);
    match ctx.exec(&argv) {
        Ok(status) => status,
        Err(e) => ctx.fail(&e.to_string()),
    }
}

/// `ps [aux]` — dump the fake process table in `ps aux` shape:
/// `USER PID %CPU %MEM COMMAND`.
fn ps(ctx: &mut ProcCtx) -> i32 {
    let mut out = String::from("USER       PID %CPU %MEM COMMAND\n");
    for p in ctx.procs() {
        out.push_str(&format!(
            "{:<8} {:>5}  0.0  0.1 {}\n",
            p.user, p.pid, p.command
        ));
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `kill [-sig] pid...` — remove processes from the fake table, or
/// queue a signal for the shell if its own pid is named.
fn kill(ctx: &mut ProcCtx) -> i32 {
    let mut sig = Signal::Term;
    let mut pids = Vec::new();
    for arg in ctx.args().to_vec() {
        if let Some(s) = arg.strip_prefix('-') {
            match Signal::parse(s) {
                Some(parsed) => sig = parsed,
                None => return ctx.fail(&format!("bad signal {arg}")),
            }
        } else {
            match arg.parse::<i32>() {
                Ok(pid) => pids.push(pid),
                Err(_) => return ctx.fail(&format!("bad pid {arg}")),
            }
        }
    }
    if pids.is_empty() {
        return ctx.fail("usage: kill [-sig] pid...");
    }
    let hit = ctx.kill(&pids, sig);
    if hit == pids.len() {
        0
    } else {
        1
    }
}

/// `awk 'program' [file...]` — the tiny subset classic shell
/// one-liners use (the paper pipes `ps aux` into `awk '{print $2}'`):
///
/// ```text
/// program := [ '/re/' ] '{' 'print' [expr (',' expr)*] '}'
/// expr    := $N | NF | "literal"
/// ```
fn awk(ctx: &mut ProcCtx) -> i32 {
    let mut operands = ctx.args().to_vec();
    if operands.is_empty() {
        return ctx.fail("usage: awk 'program' [file...]");
    }
    let program = operands.remove(0);
    let (guard, exprs) = match parse_awk(&program) {
        Ok(p) => p,
        Err(msg) => return ctx.fail(&msg),
    };
    let data = if operands.is_empty() {
        ctx.stdin_all()
    } else {
        let mut all = Vec::new();
        for path in &operands {
            match ctx.read_file(path) {
                Ok(d) => all.extend_from_slice(&d),
                Err(e) => return ctx.fail(&e.to_string()),
            }
        }
        all
    };
    let mut out = String::new();
    for line in lines_of(&data) {
        if let Some(re) = &guard {
            if !re.is_match(&line) {
                continue;
            }
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let mut parts = Vec::new();
        for e in &exprs {
            match e {
                AwkExpr::Field(0) => parts.push(line.clone()),
                AwkExpr::Field(n) => {
                    parts.push(fields.get(n - 1).map_or(String::new(), |s| s.to_string()))
                }
                AwkExpr::Nf => parts.push(fields.len().to_string()),
                AwkExpr::Lit(s) => parts.push(s.clone()),
            }
        }
        if parts.is_empty() {
            parts.push(line.clone());
        }
        out.push_str(&parts.join(" "));
        out.push('\n');
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

enum AwkExpr {
    Field(usize),
    Nf,
    Lit(String),
}

fn parse_awk(program: &str) -> Result<(Option<es_regex::Regex>, Vec<AwkExpr>), String> {
    let mut src = program.trim();
    let mut guard = None;
    if let Some(rest) = src.strip_prefix('/') {
        let end = rest.find('/').ok_or("unterminated /re/ guard")?;
        guard = Some(es_regex::Regex::new(&rest[..end]).map_err(|e| e.to_string())?);
        src = rest[end + 1..].trim();
    }
    let body = src
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("expected { action }")?
        .trim();
    if body.is_empty() {
        return Ok((guard, Vec::new()));
    }
    let args = body
        .strip_prefix("print")
        .ok_or("only `print` is supported")?
        .trim();
    let mut exprs = Vec::new();
    if !args.is_empty() {
        for piece in args.split(',') {
            let piece = piece.trim();
            if let Some(n) = piece.strip_prefix('$') {
                exprs.push(AwkExpr::Field(
                    n.parse().map_err(|_| format!("bad field {piece}"))?,
                ));
            } else if piece == "NF" {
                exprs.push(AwkExpr::Nf);
            } else if piece.starts_with('"') && piece.ends_with('"') && piece.len() >= 2 {
                exprs.push(AwkExpr::Lit(piece[1..piece.len() - 1].to_string()));
            } else {
                return Err(format!("unsupported expression {piece}"));
            }
        }
    }
    Ok((guard, exprs))
}
