//! The simulated external programs ("coreutils") and their runtime.
//!
//! Each program is a plain function `fn(&mut ProcCtx) -> i32` running
//! synchronously inside the kernel. A [`ProcCtx`] gives it argv, the
//! environment, a descriptor table laid out by the parent (the shell),
//! and mediated access to files, the process table, and the clock, so
//! all I/O is accounted for in the virtual rusage (which the `time`
//! builtin reports, reproducing Figure 1 of the paper).

use crate::error::{OsError, OsResult};
use crate::sim::{Desc, ProcEntry, SimOs};
use crate::Signal;
use std::collections::BTreeMap;

mod extra;
mod files;
mod grep;
mod misc;
mod multi;
mod sed;
mod text;

/// The type of a simulated program.
pub type ProgramFn = fn(&mut ProcCtx) -> i32;

/// Registers every simulated program under its command name.
pub fn install_all(map: &mut BTreeMap<&'static str, ProgramFn>) {
    text::install(map);
    files::install(map);
    misc::install(map);
    extra::install(map);
    multi::install(map);
    map.insert("grep", grep::grep);
    map.insert("sed", sed::sed);
}

/// The execution context handed to a simulated program.
pub struct ProcCtx<'a> {
    os: &'a mut SimOs,
    name: String,
    args: Vec<String>,
    env: Vec<(String, String)>,
    fds: BTreeMap<u32, Desc>,
    pid: i32,
    bytes_io: u64,
    io_calls: u64,
    extra_user_ns: u64,
}

impl<'a> ProcCtx<'a> {
    pub(crate) fn new(
        os: &'a mut SimOs,
        argv: &[String],
        env: &[(String, String)],
        fds: &[(u32, Desc)],
        pid: i32,
    ) -> ProcCtx<'a> {
        let path = argv.first().cloned().unwrap_or_default();
        let name = path.rsplit('/').next().unwrap_or(&path).to_string();
        ProcCtx {
            os,
            name,
            args: argv.iter().skip(1).cloned().collect(),
            env: env.to_vec(),
            fds: fds.iter().copied().collect(),
            pid,
            bytes_io: 0,
            io_calls: 0,
            extra_user_ns: 0,
        }
    }

    /// The program's own name (basename of argv[0]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// argv[1..].
    pub fn args(&self) -> &[String] {
        &self.args
    }

    /// This process's pid.
    pub fn pid(&self) -> i32 {
        self.pid
    }

    /// Looks up an environment variable.
    pub fn getenv(&self, name: &str) -> Option<&str> {
        self.env
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The whole environment.
    pub fn env(&self) -> &[(String, String)] {
        &self.env
    }

    /// Total bytes moved through this context (for rusage).
    pub fn bytes_io(&self) -> u64 {
        self.bytes_io
    }

    /// Number of I/O calls made (for rusage).
    pub fn io_calls(&self) -> u64 {
        self.io_calls
    }

    /// Extra user time charged by the program itself (e.g. sort).
    pub fn extra_user_ns(&self) -> u64 {
        self.extra_user_ns
    }

    /// Charges additional user time beyond the per-byte default.
    pub fn charge_user_ns(&mut self, ns: u64) {
        self.extra_user_ns += ns;
    }

    // ----- descriptor I/O ---------------------------------------------------

    fn desc(&self, fd: u32) -> OsResult<Desc> {
        self.fds.get(&fd).copied().ok_or(OsError::BadF)
    }

    /// Reads from the child's fd `fd`.
    pub fn read_fd(&mut self, fd: u32, buf: &mut [u8]) -> OsResult<usize> {
        let d = self.desc(fd)?;
        let n = self.os.do_read(d, buf)?;
        self.bytes_io += n as u64;
        self.io_calls += 1;
        Ok(n)
    }

    /// Writes to the child's fd `fd`.
    pub fn write_fd(&mut self, fd: u32, data: &[u8]) -> OsResult<usize> {
        let d = self.desc(fd)?;
        let n = self.os.do_write(d, data)?;
        self.bytes_io += n as u64;
        self.io_calls += 1;
        Ok(n)
    }

    /// Reads all of standard input.
    pub fn stdin_all(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match self.read_fd(0, &mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
            }
        }
        out
    }

    /// Writes `s` to standard output (ignores EBADF like a real
    /// program whose stdout was closed would die quietly).
    pub fn out(&mut self, s: &str) {
        let _ = self.write_fd(1, s.as_bytes());
    }

    /// Writes `s` to standard error, prefixed handling left to callers.
    pub fn err(&mut self, s: &str) {
        let _ = self.write_fd(2, s.as_bytes());
    }

    /// Standard "name: message" diagnostic plus failure status.
    pub fn fail(&mut self, msg: &str) -> i32 {
        let line = format!("{}: {}\n", self.name, msg);
        self.err(&line);
        1
    }

    // ----- filesystem access -------------------------------------------------

    /// Reads a whole file (counted as I/O).
    pub fn read_file(&mut self, path: &str) -> OsResult<Vec<u8>> {
        let cwd = self.os.cwd_ref().to_string();
        let ino = self.os.vfs().lookup(path, &cwd)?;
        if self.os.vfs().is_dir(path, &cwd) {
            return Err(OsError::IsDir(path.to_string()));
        }
        let data = self.os.vfs().file_data(ino).to_vec();
        self.bytes_io += data.len() as u64;
        self.io_calls += 1;
        Ok(data)
    }

    /// Writes a whole file (counted as I/O).
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> OsResult<()> {
        let cwd = self.os.cwd_ref().to_string();
        let ino = self.os.vfs_mut().create_file(path, &cwd, false)?;
        self.os.vfs_mut().truncate(ino);
        self.os.vfs_mut().write_at(ino, 0, data);
        self.bytes_io += data.len() as u64;
        self.io_calls += 1;
        Ok(())
    }

    /// Mutable filesystem access (mkdir, rm, ...).
    pub fn vfs_mut(&mut self) -> &mut crate::vfs::Vfs {
        self.os.vfs_mut()
    }

    /// Read-only filesystem access.
    pub fn vfs(&self) -> &crate::vfs::Vfs {
        self.os.vfs()
    }

    /// The kernel's current directory.
    pub fn cwd(&self) -> String {
        self.os.cwd_ref().to_string()
    }

    // ----- process & clock services -------------------------------------------

    /// Runs another program (xargs does this), inheriting this
    /// process's environment and descriptors.
    pub fn exec(&mut self, argv: &[String]) -> OsResult<i32> {
        use crate::Os as _;
        let fds: Vec<(u32, Desc)> = self.fds.iter().map(|(k, v)| (*k, *v)).collect();
        let env = self.env.clone();
        // Resolve bare names against PATH, as execvp would.
        let mut argv = argv.to_vec();
        if let Some(first) = argv.first_mut() {
            if !first.contains('/') {
                let path = self.getenv("PATH").unwrap_or("/bin").to_string();
                for dir in path.split(':') {
                    let cand = format!("{dir}/{first}");
                    if self.os.vfs().is_executable(&cand, "/") {
                        *first = cand;
                        break;
                    }
                }
            }
        }
        self.os.run(&argv, &env, &fds)
    }

    /// The fake process table.
    pub fn procs(&self) -> Vec<ProcEntry> {
        self.os.procs().to_vec()
    }

    /// Kills pids (removes them from the table / signals the shell).
    pub fn kill(&mut self, pids: &[i32], sig: Signal) -> usize {
        self.os.kill_pids(pids, sig)
    }

    /// Civil date/time from the virtual clock.
    pub fn civil_now(&self) -> (i64, u32, u32, u32, u32, u32) {
        self.os.civil_now()
    }

    /// Advances the virtual clock (sleep).
    pub fn sleep_ns(&mut self, ns: u64) {
        self.os.advance_ns(ns);
    }
}

/// Splits bytes into lines, keeping semantics simple for filters:
/// a trailing newline does not produce an empty final line.
pub(crate) fn lines_of(data: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(data);
    let mut lines: Vec<String> = text.split('\n').map(str::to_string).collect();
    if lines.last().is_some_and(|l| l.is_empty()) {
        lines.pop();
    }
    lines
}
