//! Multi-input text programs: paste, comm.
//!
//! These are the pipeline sources that take *several* files at once,
//! added so generated fuzz pipelines (and the conformance harness)
//! exercise multi-input plumbing. Output formats follow GNU coreutils
//! byte-for-byte for the supported flag subsets, so the SimOs↔RealOs
//! differential oracle can compare them directly.

use super::{lines_of, ProcCtx, ProgramFn};
use std::collections::BTreeMap;

pub(super) fn install(map: &mut BTreeMap<&'static str, ProgramFn>) {
    map.insert("paste", paste);
    map.insert("comm", comm);
}

/// Reads one input ("-" means stdin) as lines.
fn input_lines(ctx: &mut ProcCtx, path: &str) -> Result<Vec<String>, String> {
    if path == "-" {
        let data = ctx.stdin_all();
        return Ok(lines_of(&data));
    }
    match ctx.read_file(path) {
        Ok(data) => Ok(lines_of(&data)),
        Err(e) => Err(e.to_string()),
    }
}

/// `paste [-s] [-d list] file...` — merge corresponding (or, with
/// `-s`, sequential) lines, joined by delimiters cycling through
/// `list` (default tab). Matches GNU: files exhausted early
/// contribute empty fields.
fn paste(ctx: &mut ProcCtx) -> i32 {
    let mut serial = false;
    let mut delims: Vec<char> = vec!['\t'];
    let mut inputs = Vec::new();
    let args = ctx.args().to_vec();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-s" => serial = true,
            "-d" => match iter.next() {
                Some(list) if !list.is_empty() => delims = list.chars().collect(),
                _ => return ctx.fail("option requires an argument -- 'd'"),
            },
            other => {
                if let Some(list) = other.strip_prefix("-d") {
                    if !list.is_empty() {
                        delims = list.chars().collect();
                        continue;
                    }
                }
                inputs.push(other.to_string());
            }
        }
    }
    if inputs.is_empty() {
        inputs.push("-".to_string());
    }
    let mut columns = Vec::with_capacity(inputs.len());
    for path in &inputs {
        match input_lines(ctx, path) {
            Ok(lines) => columns.push(lines),
            Err(e) => return ctx.fail(&e),
        }
    }
    let delim_at = |i: usize| delims[i % delims.len()];
    let mut out = String::new();
    if serial {
        // One output line per input file, its lines joined in order.
        for lines in &columns {
            for (i, line) in lines.iter().enumerate() {
                if i > 0 {
                    out.push(delim_at(i - 1));
                }
                out.push_str(line);
            }
            out.push('\n');
        }
    } else {
        let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
        for row in 0..rows {
            for (i, lines) in columns.iter().enumerate() {
                if i > 0 {
                    out.push(delim_at(i - 1));
                }
                if let Some(line) = lines.get(row) {
                    out.push_str(line);
                }
            }
            out.push('\n');
        }
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `comm [-123] file1 file2` — three-column comparison of two sorted
/// files: lines only in file1, lines only in file2 (one leading tab),
/// lines in both (two leading tabs). `-1`/`-2`/`-3` suppress a column
/// and its share of the indentation, exactly like GNU.
fn comm(ctx: &mut ProcCtx) -> i32 {
    let mut show = (true, true, true);
    let mut inputs = Vec::new();
    for arg in ctx.args().to_vec() {
        if let Some(flags) = arg.strip_prefix('-') {
            if arg != "-" && !flags.is_empty() && flags.chars().all(|c| "123".contains(c)) {
                for c in flags.chars() {
                    match c {
                        '1' => show.0 = false,
                        '2' => show.1 = false,
                        '3' => show.2 = false,
                        _ => unreachable!("filtered above"),
                    }
                }
                continue;
            }
        }
        inputs.push(arg);
    }
    if inputs.len() != 2 {
        return ctx.fail("usage: comm [-123] file1 file2");
    }
    let a = match input_lines(ctx, &inputs[0]) {
        Ok(lines) => lines,
        Err(e) => return ctx.fail(&e),
    };
    let b = match input_lines(ctx, &inputs[1]) {
        Ok(lines) => lines,
        Err(e) => return ctx.fail(&e),
    };
    // Column indents shrink as earlier columns are suppressed.
    let indent2 = if show.0 { "\t" } else { "" };
    let indent3 = match (show.0, show.1) {
        (true, true) => "\t\t",
        (true, false) | (false, true) => "\t",
        (false, false) => "",
    };
    let mut out = String::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let order = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x.cmp(y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => unreachable!("loop condition"),
        };
        match order {
            std::cmp::Ordering::Less => {
                if show.0 {
                    out.push_str(&a[i]);
                    out.push('\n');
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if show.1 {
                    out.push_str(indent2);
                    out.push_str(&b[j]);
                    out.push('\n');
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if show.2 {
                    out.push_str(indent3);
                    out.push_str(&a[i]);
                    out.push('\n');
                }
                i += 1;
                j += 1;
            }
        }
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}
