//! `sed` — the stream-editor subset the paper's pipelines need.
//!
//! Figure 1 ends in `sed 6q`; classic shell one-liners also lean on
//! `s/re/rep/[g]`, `p`, `d`, and `-n`. The supported script grammar:
//!
//! ```text
//! script  := cmd (';' cmd)*
//! cmd     := [address] action
//! address := NUMBER | '$' | '/regex/'
//! action  := 'q' | 'd' | 'p' | 's/re/rep/[g]'
//! ```

use super::{lines_of, ProcCtx};
use es_regex::Regex;

#[derive(Debug, Clone)]
enum Address {
    Line(usize),
    Last,
    Re(Regex),
    All,
}

#[derive(Debug, Clone)]
enum Action {
    Quit,
    Delete,
    Print,
    Subst { re: Regex, rep: String, global: bool },
}

#[derive(Debug, Clone)]
struct Cmd {
    addr: Address,
    action: Action,
}

/// `sed [-n] script [file...]`.
pub(super) fn sed(ctx: &mut ProcCtx) -> i32 {
    let mut quiet = false;
    let mut operands = Vec::new();
    for arg in ctx.args().to_vec() {
        match arg.as_str() {
            "-n" => quiet = true,
            other => operands.push(other.to_string()),
        }
    }
    if operands.is_empty() {
        return ctx.fail("usage: sed [-n] script [file...]");
    }
    let script = operands.remove(0);
    let cmds = match parse_script(&script) {
        Ok(c) => c,
        Err(msg) => return ctx.fail(&msg),
    };
    let data = if operands.is_empty() {
        ctx.stdin_all()
    } else {
        let mut all = Vec::new();
        for path in &operands {
            match ctx.read_file(path) {
                Ok(d) => all.extend_from_slice(&d),
                Err(e) => return ctx.fail(&e.to_string()),
            }
        }
        all
    };
    let lines = lines_of(&data);
    let total = lines.len();
    let mut out = String::new();
    'outer: for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let mut cur = line.clone();
        let mut deleted = false;
        for cmd in &cmds {
            let selected = match &cmd.addr {
                Address::All => true,
                Address::Line(n) => lineno == *n,
                Address::Last => lineno == total,
                Address::Re(re) => re.is_match(&cur),
            };
            if !selected {
                continue;
            }
            match &cmd.action {
                Action::Quit => {
                    if !quiet && !deleted {
                        out.push_str(&cur);
                        out.push('\n');
                    }
                    let _ = ctx.write_fd(1, out.as_bytes());
                    return 0;
                }
                Action::Delete => {
                    deleted = true;
                    break;
                }
                Action::Print => {
                    out.push_str(&cur);
                    out.push('\n');
                }
                Action::Subst { re, rep, global } => {
                    let (new, _) = re.replace(&cur, rep, *global);
                    cur = new;
                }
            }
            if deleted {
                continue 'outer;
            }
        }
        if !quiet && !deleted {
            out.push_str(&cur);
            out.push('\n');
        }
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

fn parse_script(script: &str) -> Result<Vec<Cmd>, String> {
    let mut cmds = Vec::new();
    for part in split_script(script) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        cmds.push(parse_cmd(part)?);
    }
    if cmds.is_empty() {
        return Err("empty script".into());
    }
    Ok(cmds)
}

/// Splits on `;` but not inside `/.../` delimiters.
fn split_script(script: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut depth_slash = false;
    let mut prev_escape = false;
    for c in script.chars() {
        if c == '/' && !prev_escape {
            depth_slash = !depth_slash;
        }
        prev_escape = c == '\\' && !prev_escape;
        if c == ';' && !depth_slash {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    parts.push(cur);
    parts
}

fn parse_cmd(text: &str) -> Result<Cmd, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    // Address.
    let addr = if chars[0].is_ascii_digit() {
        let mut n = 0usize;
        while i < chars.len() && chars[i].is_ascii_digit() {
            n = n * 10 + chars[i] as usize - '0' as usize;
            i += 1;
        }
        Address::Line(n)
    } else if chars[0] == '$' {
        i += 1;
        Address::Last
    } else if chars[0] == '/' {
        let (pat, next) = take_delimited(&chars, 0, '/')?;
        i = next;
        Address::Re(Regex::new(&pat).map_err(|e| e.to_string())?)
    } else {
        Address::All
    };
    while i < chars.len() && chars[i] == ' ' {
        i += 1;
    }
    let action = match chars.get(i) {
        Some('q') => Action::Quit,
        Some('d') => Action::Delete,
        Some('p') => Action::Print,
        Some('s') => {
            let delim = *chars.get(i + 1).ok_or("unterminated s command")?;
            let (pat, next) = take_delimited(&chars, i + 1, delim)?;
            // The replacement runs to the next unescaped delimiter.
            let mut rep = String::new();
            let mut j = next;
            let mut escaped = false;
            loop {
                let c = *chars.get(j).ok_or("unterminated s command")?;
                if c == delim && !escaped {
                    break;
                }
                escaped = c == '\\' && !escaped;
                rep.push(c);
                j += 1;
            }
            let global = chars.get(j + 1) == Some(&'g');
            return Ok(Cmd {
                addr,
                action: Action::Subst {
                    re: Regex::new(&pat).map_err(|e| e.to_string())?,
                    rep,
                    global,
                },
            });
        }
        other => return Err(format!("unknown sed command {other:?}")),
    };
    Ok(Cmd { addr, action })
}

/// Reads a `/delimited/` section starting at the opening delimiter at
/// `chars[start]`; returns the contents and the index after the close.
fn take_delimited(chars: &[char], start: usize, delim: char) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut i = start + 1;
    let mut escaped = false;
    loop {
        let c = *chars.get(i).ok_or("unterminated pattern")?;
        if c == delim && !escaped {
            return Ok((out, i + 1));
        }
        if c == '\\' && !escaped {
            escaped = true;
            // Keep the backslash: the regex engine handles escapes,
            // except the escaped delimiter which becomes literal.
            if chars.get(i + 1) == Some(&delim) {
                i += 1;
                continue;
            }
            out.push(c);
            i += 1;
            continue;
        }
        escaped = false;
        out.push(c);
        i += 1;
    }
}
