//! Text-filter programs: cat, tr, sort, uniq, wc, head, tail, seq, tee.
//!
//! These are the pipeline stages of the paper's Figure 1 word-frequency
//! example (`cat paper9 | tr -cs a-zA-Z0-9 '\012' | sort | uniq -c |
//! sort -nr | sed 6q`), implemented with the option subsets the paper's
//! examples use plus the common flags any es user would reach for.

use super::{lines_of, ProcCtx, ProgramFn};
use std::collections::BTreeMap;

pub(super) fn install(map: &mut BTreeMap<&'static str, ProgramFn>) {
    map.insert("cat", cat);
    map.insert("tr", tr);
    map.insert("sort", sort);
    map.insert("uniq", uniq);
    map.insert("wc", wc);
    map.insert("head", head);
    map.insert("tail", tail);
    map.insert("seq", seq);
    map.insert("tee", tee);
}

/// `cat [file...]` — concatenate files (or stdin) to stdout.
fn cat(ctx: &mut ProcCtx) -> i32 {
    let args = ctx.args().to_vec();
    if args.is_empty() {
        let data = ctx.stdin_all();
        let _ = ctx.write_fd(1, &data);
        return 0;
    }
    let mut status = 0;
    for path in &args {
        if path == "-" {
            let data = ctx.stdin_all();
            let _ = ctx.write_fd(1, &data);
            continue;
        }
        match ctx.read_file(path) {
            Ok(data) => {
                let _ = ctx.write_fd(1, &data);
            }
            Err(e) => {
                status = ctx.fail(&e.to_string());
            }
        }
    }
    status
}

/// Expands `a-z`-style range notation plus `\012` octal and `\n`
/// escapes into a character set.
fn tr_set(spec: &str) -> Vec<char> {
    let mut out = Vec::new();
    let chars: Vec<char> = spec.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\\' && i + 1 < chars.len() {
            // Octal escape (\012) or single-char escape (\n, \t).
            let rest: String = chars[i + 1..].iter().take(3).collect();
            if rest.len() == 3 && rest.chars().all(|c| ('0'..='7').contains(&c)) {
                let code = u32::from_str_radix(&rest, 8).unwrap_or(10);
                out.push(char::from_u32(code).unwrap_or('\n'));
                i += 4;
                continue;
            }
            out.push(match chars[i + 1] {
                'n' => '\n',
                't' => '\t',
                c => c,
            });
            i += 2;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

/// `tr [-c] [-s] [-d] set1 [set2]` — translate or delete characters.
/// Supports the paper's `tr -cs a-zA-Z0-9 '\012'` usage: complement,
/// squeeze, map-to-single-char.
fn tr(ctx: &mut ProcCtx) -> i32 {
    let mut complement = false;
    let mut squeeze = false;
    let mut delete = false;
    let mut sets = Vec::new();
    for arg in ctx.args().to_vec() {
        if let Some(flags) = arg.strip_prefix('-') {
            if arg == "-" || flags.chars().any(|c| !"csd".contains(c)) {
                sets.push(arg);
                continue;
            }
            for c in flags.chars() {
                match c {
                    'c' => complement = true,
                    's' => squeeze = true,
                    'd' => delete = true,
                    _ => unreachable!("filtered above"),
                }
            }
        } else {
            sets.push(arg);
        }
    }
    if sets.is_empty() {
        return ctx.fail("missing operand");
    }
    let set1 = tr_set(&sets[0]);
    let set2: Vec<char> = sets.get(1).map(|s| tr_set(s)).unwrap_or_default();
    let input = String::from_utf8_lossy(&ctx.stdin_all()).into_owned();
    let in_set1 = |c: char| set1.contains(&c) != complement;
    let mut out = String::with_capacity(input.len());
    let mut last_emitted: Option<char> = None;
    for c in input.chars() {
        let mapped = if in_set1(c) {
            if delete {
                continue;
            }
            if set2.is_empty() {
                c
            } else if complement {
                // Complemented translate: everything maps to set2's last char.
                *set2.last().expect("set2 nonempty")
            } else {
                let idx = set1.iter().position(|&s| s == c).expect("member");
                *set2.get(idx).or(set2.last()).expect("set2 nonempty")
            }
        } else {
            c
        };
        let translated = in_set1(c) && !set2.is_empty();
        if squeeze && translated && last_emitted == Some(mapped) {
            continue;
        }
        out.push(mapped);
        last_emitted = Some(mapped);
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `sort [-n] [-r] [-u] [file...]` — sort lines.
fn sort(ctx: &mut ProcCtx) -> i32 {
    let mut numeric = false;
    let mut reverse = false;
    let mut unique = false;
    let mut inputs = Vec::new();
    for arg in ctx.args().to_vec() {
        match arg.as_str() {
            "-n" => numeric = true,
            "-r" => reverse = true,
            "-u" => unique = true,
            "-nr" | "-rn" => {
                numeric = true;
                reverse = true;
            }
            other => inputs.push(other.to_string()),
        }
    }
    let data = if inputs.is_empty() {
        ctx.stdin_all()
    } else {
        let mut all = Vec::new();
        for path in &inputs {
            match ctx.read_file(path) {
                Ok(d) => all.extend_from_slice(&d),
                Err(e) => return ctx.fail(&e.to_string()),
            }
        }
        all
    };
    let mut lines = lines_of(&data);
    // Charge n log n comparisons beyond the per-byte default, so a
    // sort stage costs visibly more than cat in Figure 1's profile
    // (the paper shows sort -nr at 0.6u against cat's 0.3u).
    let n = lines.len().max(1) as u64;
    ctx.charge_user_ns(n * n.ilog2().max(1) as u64 * 40_000);
    if numeric {
        lines.sort_by(|a, b| {
            let ka = leading_number(a);
            let kb = leading_number(b);
            ka.partial_cmp(&kb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
    } else {
        lines.sort();
    }
    if reverse {
        lines.reverse();
    }
    if unique {
        lines.dedup();
    }
    let mut out = lines.join("\n");
    if !lines.is_empty() {
        out.push('\n');
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

fn leading_number(s: &str) -> f64 {
    let t = s.trim_start();
    let end = t
        .char_indices()
        .take_while(|(i, c)| c.is_ascii_digit() || *c == '.' || (*i == 0 && (*c == '-' || *c == '+')))
        .map(|(i, c)| i + c.len_utf8())
        .last()
        .unwrap_or(0);
    t[..end].parse().unwrap_or(0.0)
}

/// `uniq [-c] [file]` — collapse adjacent duplicate lines.
fn uniq(ctx: &mut ProcCtx) -> i32 {
    let mut count = false;
    let mut input = None;
    for arg in ctx.args().to_vec() {
        match arg.as_str() {
            "-c" => count = true,
            other => input = Some(other.to_string()),
        }
    }
    let data = match input {
        Some(path) => match ctx.read_file(&path) {
            Ok(d) => d,
            Err(e) => return ctx.fail(&e.to_string()),
        },
        None => ctx.stdin_all(),
    };
    let mut out = String::new();
    let mut run: Option<(String, usize)> = None;
    let flush = |run: &mut Option<(String, usize)>, out: &mut String| {
        if let Some((line, n)) = run.take() {
            if count {
                // GNU uniq -c right-aligns the count in 7 columns
                // (`%7d `), growing only for counts past 9,999,999.
                out.push_str(&format!("{n:7} {line}\n"));
            } else {
                out.push_str(&line);
                out.push('\n');
            }
        }
    };
    for line in lines_of(&data) {
        match &mut run {
            Some((cur, n)) if *cur == line => *n += 1,
            _ => {
                flush(&mut run, &mut out);
                run = Some((line, 1));
            }
        }
    }
    flush(&mut run, &mut out);
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `wc [-l] [-w] [-c] [file...]` — count lines, words, bytes.
/// With no flags prints all three, like the paper's `61 61 478`.
fn wc(ctx: &mut ProcCtx) -> i32 {
    let mut show = (false, false, false);
    let mut inputs = Vec::new();
    for arg in ctx.args().to_vec() {
        match arg.as_str() {
            "-l" => show.0 = true,
            "-w" => show.1 = true,
            "-c" => show.2 = true,
            other => inputs.push(other.to_string()),
        }
    }
    if show == (false, false, false) {
        show = (true, true, true);
    }
    let fmt = |show: (bool, bool, bool), width: usize, l: usize, w: usize, c: usize, name: &str| {
        let mut parts = Vec::new();
        if show.0 {
            parts.push(format!("{l:width$}"));
        }
        if show.1 {
            parts.push(format!("{w:width$}"));
        }
        if show.2 {
            parts.push(format!("{c:width$}"));
        }
        let mut line = parts.join(" ");
        if !name.is_empty() {
            line.push(' ');
            line.push_str(name);
        }
        line.push('\n');
        line
    };
    let count = |data: &[u8]| {
        let text = String::from_utf8_lossy(data);
        let l = text.matches('\n').count();
        let w = text.split_whitespace().count();
        (l, w, data.len())
    };
    let one_count = [show.0, show.1, show.2].iter().filter(|b| **b).count() == 1;
    if inputs.is_empty() {
        // GNU: a single count from an unstatable stdin prints bare;
        // multiple counts pad to the stdin default of 7 columns.
        let data = ctx.stdin_all();
        let (l, w, c) = count(&data);
        let width = if one_count { 1 } else { 7 };
        let line = fmt(show, width, l, w, c, "");
        ctx.out(&line);
        return 0;
    }
    // Read every input up front: GNU sizes the count columns to the
    // digits of the total byte count across all named files.
    let mut counted = Vec::new();
    for path in &inputs {
        match ctx.read_file(path) {
            Ok(data) => counted.push((count(&data), path)),
            Err(e) => return ctx.fail(&e.to_string()),
        }
    }
    let total_bytes: usize = counted.iter().map(|((_, _, c), _)| c).sum();
    let width = if one_count && inputs.len() == 1 {
        1
    } else {
        total_bytes.to_string().len()
    };
    let mut totals = (0, 0, 0);
    for ((l, w, c), path) in &counted {
        totals = (totals.0 + l, totals.1 + w, totals.2 + c);
        let line = fmt(show, width, *l, *w, *c, path);
        ctx.out(&line);
    }
    if inputs.len() > 1 {
        let line = fmt(show, width, totals.0, totals.1, totals.2, "total");
        ctx.out(&line);
    }
    0
}

/// `head [-n N | -N] [file]` — first N lines (default 10).
fn head(ctx: &mut ProcCtx) -> i32 {
    let (n, input) = head_tail_args(ctx);
    let data = match input {
        Some(path) => match ctx.read_file(&path) {
            Ok(d) => d,
            Err(e) => return ctx.fail(&e.to_string()),
        },
        None => ctx.stdin_all(),
    };
    let mut out = String::new();
    for line in lines_of(&data).into_iter().take(n) {
        out.push_str(&line);
        out.push('\n');
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `tail [-n N | -N] [file]` — last N lines (default 10).
fn tail(ctx: &mut ProcCtx) -> i32 {
    let (n, input) = head_tail_args(ctx);
    let data = match input {
        Some(path) => match ctx.read_file(&path) {
            Ok(d) => d,
            Err(e) => return ctx.fail(&e.to_string()),
        },
        None => ctx.stdin_all(),
    };
    let lines = lines_of(&data);
    let start = lines.len().saturating_sub(n);
    let mut out = String::new();
    for line in &lines[start..] {
        out.push_str(line);
        out.push('\n');
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

fn head_tail_args(ctx: &ProcCtx) -> (usize, Option<String>) {
    let mut n = 10usize;
    let mut input = None;
    let mut args = ctx.args().iter();
    while let Some(arg) = args.next() {
        if arg == "-n" {
            if let Some(v) = args.next() {
                n = v.parse().unwrap_or(10);
            }
        } else if let Some(num) = arg.strip_prefix('-') {
            if let Ok(v) = num.parse() {
                n = v;
            }
        } else {
            input = Some(arg.clone());
        }
    }
    (n, input)
}

/// `seq [first] last` — print integers, one per line.
fn seq(ctx: &mut ProcCtx) -> i32 {
    let args = ctx.args();
    let (first, last) = match args.len() {
        1 => (1i64, args[0].parse().unwrap_or(0)),
        2 => (
            args[0].parse().unwrap_or(1),
            args[1].parse().unwrap_or(0),
        ),
        _ => return ctx.fail("usage: seq [first] last"),
    };
    let mut out = String::new();
    let mut i = first;
    while i <= last {
        out.push_str(&i.to_string());
        out.push('\n');
        i += 1;
    }
    let _ = ctx.write_fd(1, out.as_bytes());
    0
}

/// `tee [file...]` — copy stdin to stdout and every file.
fn tee(ctx: &mut ProcCtx) -> i32 {
    let data = ctx.stdin_all();
    let _ = ctx.write_fd(1, &data);
    let mut status = 0;
    for path in ctx.args().to_vec() {
        if let Err(e) = ctx.write_file(&path, &data) {
            status = ctx.fail(&e.to_string());
        }
    }
    status
}
