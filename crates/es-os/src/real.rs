//! A best-effort real-OS backend so the `es` binary works as an
//! actual shell.
//!
//! Files and directories use `std::fs`; external commands run through
//! `std::process`. Pipes are staged through in-memory buffers rather
//! than kernel pipes (pipeline stages run sequentially, exactly like
//! the simulator), and child rusage is approximated by wall time —
//! good enough for interactive use, while all *measurements* in this
//! repository run on [`crate::SimOs`].

use crate::clock::Rusage;
use crate::error::{OsError, OsResult};
use crate::sim::Desc;
use crate::{OpenMode, Os, Signal};
use std::fs;
use std::io::{Read, Write};
use std::process::{Command, Stdio};
use std::time::Instant;

#[derive(Debug)]
enum RealKind {
    StdIn,
    StdOut,
    StdErr,
    File(fs::File),
    PipeR(usize),
    PipeW(usize),
}

#[derive(Debug)]
struct RealFile {
    kind: RealKind,
    refs: usize,
}

/// The `std`-backed kernel. See the module docs for fidelity notes.
#[derive(Debug)]
pub struct RealOs {
    files: Vec<Option<RealFile>>,
    pipes: Vec<Vec<u8>>,
    start: Instant,
    children: Rusage,
}

impl Clone for RealOs {
    /// Fork support: the clone gets fresh stdio and copies of the
    /// pipe buffers; open file descriptors are not carried over (a
    /// documented limitation — measurements run on [`crate::SimOs`],
    /// whose clone is exact).
    fn clone(&self) -> Self {
        let mut fresh = RealOs::new();
        fresh.pipes = self.pipes.clone();
        fresh.start = self.start;
        fresh.children = self.children;
        fresh
    }
}

impl Default for RealOs {
    fn default() -> Self {
        Self::new()
    }
}

impl RealOs {
    /// Creates the backend with 0/1/2 bound to the process streams.
    pub fn new() -> RealOs {
        RealOs {
            files: vec![
                Some(RealFile { kind: RealKind::StdIn, refs: 1 }),
                Some(RealFile { kind: RealKind::StdOut, refs: 1 }),
                Some(RealFile { kind: RealKind::StdErr, refs: 1 }),
            ],
            pipes: Vec::new(),
            start: Instant::now(),
            children: Rusage::default(),
        }
    }

    fn alloc(&mut self, kind: RealKind) -> Desc {
        for (i, slot) in self.files.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(RealFile { kind, refs: 1 });
                return Desc(i as u32);
            }
        }
        self.files.push(Some(RealFile { kind, refs: 1 }));
        Desc((self.files.len() - 1) as u32)
    }

    fn file_mut(&mut self, d: Desc) -> OsResult<&mut RealFile> {
        self.files
            .get_mut(d.0 as usize)
            .and_then(|f| f.as_mut())
            .ok_or(OsError::BadF)
    }

    fn io_err(e: std::io::Error) -> OsError {
        match e.kind() {
            std::io::ErrorKind::NotFound => OsError::NoEnt(String::new()),
            std::io::ErrorKind::PermissionDenied => OsError::Access(String::new()),
            _ => OsError::Io(e.to_string()),
        }
    }
}

impl Os for RealOs {
    fn open(&mut self, path: &str, mode: OpenMode) -> OsResult<Desc> {
        let file = match mode {
            OpenMode::Read => fs::File::open(path),
            OpenMode::Write => fs::File::create(path),
            OpenMode::Append => fs::OpenOptions::new().create(true).append(true).open(path),
        }
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => OsError::NoEnt(path.into()),
            std::io::ErrorKind::PermissionDenied => OsError::Access(path.into()),
            _ => OsError::Io(e.to_string()),
        })?;
        Ok(self.alloc(RealKind::File(file)))
    }

    fn pipe(&mut self) -> OsResult<(Desc, Desc)> {
        let p = self.pipes.len();
        self.pipes.push(Vec::new());
        let r = self.alloc(RealKind::PipeR(p));
        let w = self.alloc(RealKind::PipeW(p));
        Ok((r, w))
    }

    fn dup(&mut self, d: Desc) -> OsResult<Desc> {
        self.file_mut(d)?.refs += 1;
        Ok(d)
    }

    fn close(&mut self, d: Desc) -> OsResult<()> {
        let idx = d.0 as usize;
        let f = self
            .files
            .get_mut(idx)
            .and_then(|f| f.as_mut())
            .ok_or(OsError::BadF)?;
        f.refs -= 1;
        if f.refs == 0 {
            self.files[idx] = None;
        }
        Ok(())
    }

    fn read(&mut self, d: Desc, buf: &mut [u8]) -> OsResult<usize> {
        let f = self.file_mut(d)?;
        match &mut f.kind {
            RealKind::StdIn => std::io::stdin().read(buf).map_err(Self::io_err),
            RealKind::File(file) => file.read(buf).map_err(Self::io_err),
            RealKind::PipeR(p) => {
                let p = *p;
                let pipe = &mut self.pipes[p];
                let n = buf.len().min(pipe.len());
                buf[..n].copy_from_slice(&pipe[..n]);
                pipe.drain(..n);
                Ok(n)
            }
            _ => Err(OsError::BadF),
        }
    }

    fn write(&mut self, d: Desc, data: &[u8]) -> OsResult<usize> {
        let f = self.file_mut(d)?;
        match &mut f.kind {
            RealKind::StdOut => {
                std::io::stdout().write_all(data).map_err(Self::io_err)?;
                let _ = std::io::stdout().flush();
                Ok(data.len())
            }
            RealKind::StdErr => {
                std::io::stderr().write_all(data).map_err(Self::io_err)?;
                let _ = std::io::stderr().flush();
                Ok(data.len())
            }
            RealKind::File(file) => file.write(data).map_err(Self::io_err),
            RealKind::PipeW(p) => {
                let p = *p;
                self.pipes[p].extend_from_slice(data);
                Ok(data.len())
            }
            _ => Err(OsError::BadF),
        }
    }

    fn run(
        &mut self,
        argv: &[String],
        env: &[(String, String)],
        fds: &[(u32, Desc)],
    ) -> OsResult<i32> {
        let path = argv.first().ok_or_else(|| OsError::Inval("empty argv".into()))?;
        let mut cmd = Command::new(path);
        cmd.args(&argv[1..]);
        cmd.env_clear();
        for (k, v) in env {
            cmd.env(k, v);
        }
        let lookup = |fds: &[(u32, Desc)], fd: u32| fds.iter().find(|(n, _)| *n == fd).map(|(_, d)| *d);
        // Stage stdin: console inherits; files/pipes are drained into
        // a buffer handed to the child.
        let stdin_data: Option<Vec<u8>> = match lookup(fds, 0) {
            Some(Desc(0)) => None,
            Some(d) => Some(crate::read_all(self, d)?),
            None => Some(Vec::new()),
        };
        cmd.stdin(if stdin_data.is_some() {
            Stdio::piped()
        } else {
            Stdio::inherit()
        });
        let out_desc = lookup(fds, 1);
        let err_desc = lookup(fds, 2);
        cmd.stdout(if out_desc == Some(Desc(1)) {
            Stdio::inherit()
        } else {
            Stdio::piped()
        });
        cmd.stderr(if err_desc == Some(Desc(2)) || err_desc.is_none() {
            Stdio::inherit()
        } else {
            Stdio::piped()
        });
        let began = Instant::now();
        let mut child = cmd.spawn().map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => OsError::NoEnt(path.clone()),
            std::io::ErrorKind::PermissionDenied => OsError::Access(path.clone()),
            _ => OsError::Io(e.to_string()),
        })?;
        if let (Some(data), Some(mut stdin)) = (stdin_data, child.stdin.take()) {
            let _ = stdin.write_all(&data);
        }
        let output = child
            .wait_with_output()
            .map_err(|e| OsError::Io(e.to_string()))?;
        if let Some(d) = out_desc {
            if d != Desc(1) {
                crate::write_all(self, d, &output.stdout)?;
            }
        }
        if let Some(d) = err_desc {
            if d != Desc(2) {
                crate::write_all(self, d, &output.stderr)?;
            }
        }
        // Approximate child CPU as wall time (measurements use SimOs).
        let elapsed = began.elapsed().as_nanos() as u64;
        self.children.user_ns += elapsed / 2;
        self.children.sys_ns += elapsed / 2;
        Ok(output.status.code().unwrap_or(128))
    }

    fn chdir(&mut self, path: &str) -> OsResult<()> {
        std::env::set_current_dir(path).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => OsError::NoEnt(path.into()),
            _ => OsError::Io(e.to_string()),
        })
    }

    fn cwd(&self) -> String {
        std::env::current_dir()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|_| "/".into())
    }

    fn read_dir(&self, path: &str) -> OsResult<Vec<String>> {
        let mut names: Vec<String> = fs::read_dir(path)
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::NotFound => OsError::NoEnt(path.into()),
                _ => OsError::Io(e.to_string()),
            })?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        Ok(names)
    }

    fn is_file(&self, path: &str) -> bool {
        fs::metadata(path).map(|m| m.is_file()).unwrap_or(false)
    }

    fn is_dir(&self, path: &str) -> bool {
        fs::metadata(path).map(|m| m.is_dir()).unwrap_or(false)
    }

    fn is_executable(&self, path: &str) -> bool {
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            fs::metadata(path)
                .map(|m| m.is_file() && m.permissions().mode() & 0o111 != 0)
                .unwrap_or(false)
        }
        #[cfg(not(unix))]
        {
            self.is_file(path)
        }
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    // advance_ns: trait default no-op — the real clock advances itself.

    fn open_desc_count(&self) -> usize {
        self.files.iter().flatten().count()
    }

    fn children_rusage(&self) -> Rusage {
        self.children
    }

    fn take_signal(&mut self) -> Option<Signal> {
        None // Signal handling needs libc; the simulator models it instead.
    }

    fn initial_env(&self) -> Vec<(String, String)> {
        std::env::vars().collect()
    }

    fn absorb_fork(&mut self, _child: Self) {
        // The real filesystem and terminal are already shared.
    }
}
