//! The real-OS backend, so the `es` binary works as an actual shell
//! *and* so the conformance harness can hold it to the simulator's
//! behaviour.
//!
//! Files and directories use `std::fs`; external commands run through
//! `std::process`. Pipes are staged through in-memory buffers and
//! pipeline stages run sequentially, exactly like the simulator. The
//! current directory is tracked per instance (never via
//! `std::env::set_current_dir`), so several `RealOs` kernels can
//! coexist in one test process and `cd` behaves like a per-process
//! property, as on a real kernel.
//!
//! Fidelity notes, for the conformance divergence ledger:
//!
//! * child rusage is approximated by wall time (all *measurements* in
//!   this repository run on [`crate::SimOs`], whose clock is virtual);
//! * there is no signal delivery (`take_signal` always returns `None`);
//! * `clone` (the shell's `fork`) re-opens file-backed descriptors by
//!   path and seeks to the saved offset — the open-file description is
//!   *not* shared with the parent afterwards, but since the shell runs
//!   forked children to completion before the parent continues, and
//!   [`Os::absorb_fork`] adopts the child's table, redirections inside
//!   subshells still agree with the simulator.
//!
//! For differential testing, [`RealOs::set_capture`] redirects the
//! console streams into in-memory buffers (mirroring
//! [`crate::SimOs::take_output`]) instead of the process's stdio.

use crate::clock::Rusage;
use crate::error::{OsError, OsResult};
use crate::sim::Desc;
use crate::{OpenMode, Os, Signal};
use std::collections::VecDeque;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

#[derive(Debug)]
enum RealKind {
    StdIn,
    StdOut,
    StdErr,
    /// A real file, remembering how it was opened so `clone` can
    /// rebuild an equivalent descriptor (fork support).
    File {
        file: fs::File,
        path: PathBuf,
        mode: OpenMode,
    },
    PipeR(usize),
    PipeW(usize),
}

#[derive(Debug)]
struct RealFile {
    kind: RealKind,
    refs: usize,
}

/// The `std`-backed kernel. See the module docs for fidelity notes.
#[derive(Debug)]
pub struct RealOs {
    files: Vec<Option<RealFile>>,
    pipes: Vec<Vec<u8>>,
    cwd: PathBuf,
    /// Console capture (conformance harness): when on, stdio reads and
    /// writes go through these buffers instead of the process streams.
    capture: bool,
    console_in: VecDeque<u8>,
    console_out: Vec<u8>,
    console_err: Vec<u8>,
    start: Instant,
    children: Rusage,
}

impl Clone for RealOs {
    /// Fork support: rebuilds the descriptor table slot by slot (same
    /// indices, so the shell's fd table stays valid in the clone).
    /// File-backed descriptors are re-opened by path and positioned at
    /// the parent's offset; a file that can no longer be opened leaves
    /// an empty slot, which subsequent I/O reports as `EBADF`.
    fn clone(&self) -> Self {
        let files = self
            .files
            .iter()
            .map(|slot| {
                let f = slot.as_ref()?;
                let kind = match &f.kind {
                    RealKind::StdIn => RealKind::StdIn,
                    RealKind::StdOut => RealKind::StdOut,
                    RealKind::StdErr => RealKind::StdErr,
                    RealKind::PipeR(p) => RealKind::PipeR(*p),
                    RealKind::PipeW(p) => RealKind::PipeW(*p),
                    RealKind::File { file, path, mode } => {
                        let reopened = reopen_at(file, path, *mode)?;
                        RealKind::File {
                            file: reopened,
                            path: path.clone(),
                            mode: *mode,
                        }
                    }
                };
                Some(RealFile {
                    kind,
                    refs: f.refs,
                })
            })
            .collect();
        RealOs {
            files,
            pipes: self.pipes.clone(),
            cwd: self.cwd.clone(),
            capture: self.capture,
            console_in: self.console_in.clone(),
            console_out: self.console_out.clone(),
            console_err: self.console_err.clone(),
            start: self.start,
            children: self.children,
        }
    }
}

/// Re-opens `path` the way `mode` originally did — but *without*
/// truncating — and seeks to the original descriptor's current
/// position, so the clone continues where the parent's cursor is.
fn reopen_at(original: &fs::File, path: &Path, mode: OpenMode) -> Option<fs::File> {
    let mut opts = fs::OpenOptions::new();
    match mode {
        OpenMode::Read => {
            opts.read(true);
        }
        OpenMode::Write => {
            opts.write(true).create(true);
        }
        OpenMode::Append => {
            opts.append(true).create(true);
        }
    }
    let file = opts.open(path).ok()?;
    if mode != OpenMode::Append {
        // `impl Seek for &File` lets us read the parent's cursor
        // without mutable access.
        let pos = (&*original).stream_position().ok()?;
        (&file).seek(SeekFrom::Start(pos)).ok()?;
    }
    Some(file)
}

impl Default for RealOs {
    fn default() -> Self {
        Self::new()
    }
}

impl RealOs {
    /// Creates the backend with 0/1/2 bound to the process streams and
    /// the current directory inherited from the process.
    pub fn new() -> RealOs {
        RealOs {
            files: vec![
                Some(RealFile { kind: RealKind::StdIn, refs: 1 }),
                Some(RealFile { kind: RealKind::StdOut, refs: 1 }),
                Some(RealFile { kind: RealKind::StdErr, refs: 1 }),
            ],
            pipes: Vec::new(),
            cwd: std::env::current_dir().unwrap_or_else(|_| PathBuf::from("/")),
            capture: false,
            console_in: VecDeque::new(),
            console_out: Vec::new(),
            console_err: Vec::new(),
            start: Instant::now(),
            children: Rusage::default(),
        }
    }

    /// Enables (or disables) console capture: with capture on, writes
    /// to stdout/stderr collect in buffers readable via
    /// [`RealOs::take_output`]/[`RealOs::take_error`], and stdin reads
    /// drain the buffer filled by [`RealOs::push_input`]. The
    /// conformance harness uses this to compare RealOs traces against
    /// SimOs byte for byte.
    pub fn set_capture(&mut self, on: bool) {
        self.capture = on;
    }

    /// Queues bytes on the captured standard input (capture mode).
    pub fn push_input(&mut self, text: &str) {
        self.console_in.extend(text.bytes());
    }

    /// Takes and clears everything written to the captured stdout.
    pub fn take_output(&mut self) -> String {
        String::from_utf8_lossy(&std::mem::take(&mut self.console_out)).into_owned()
    }

    /// Takes and clears everything written to the captured stderr.
    pub fn take_error(&mut self) -> String {
        String::from_utf8_lossy(&std::mem::take(&mut self.console_err)).into_owned()
    }

    /// Resolves `path` against this kernel's current directory and
    /// normalizes `.`/`..` lexically (mirroring the simulator's VFS,
    /// so `pwd` and error messages agree across backends).
    fn resolve(&self, path: &str) -> PathBuf {
        let joined = if Path::new(path).is_absolute() {
            PathBuf::from(path)
        } else {
            self.cwd.join(path)
        };
        let mut out = PathBuf::from("/");
        for comp in joined.components() {
            use std::path::Component;
            match comp {
                Component::RootDir | Component::Prefix(_) => {}
                Component::CurDir => {}
                Component::ParentDir => {
                    out.pop();
                }
                Component::Normal(c) => out.push(c),
            }
        }
        out
    }

    fn alloc(&mut self, kind: RealKind) -> Desc {
        for (i, slot) in self.files.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(RealFile { kind, refs: 1 });
                return Desc(i as u32);
            }
        }
        self.files.push(Some(RealFile { kind, refs: 1 }));
        Desc((self.files.len() - 1) as u32)
    }

    fn file_mut(&mut self, d: Desc) -> OsResult<&mut RealFile> {
        self.files
            .get_mut(d.0 as usize)
            .and_then(|f| f.as_mut())
            .ok_or(OsError::BadF)
    }

    /// Puts back bytes a child process was offered on stdin but never
    /// read: to the front of the source pipe/console buffer, or by
    /// rewinding a file cursor. Unknown/closed descriptors are a no-op
    /// (the data was already consumed from them; there is nowhere to
    /// return it).
    fn unread(&mut self, d: Desc, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        enum Source {
            Console,
            File,
            Pipe(usize),
        }
        let src = match self.files.get(d.0 as usize) {
            Some(Some(f)) => match &f.kind {
                RealKind::StdIn => Source::Console,
                RealKind::File { .. } => Source::File,
                RealKind::PipeR(p) => Source::Pipe(*p),
                _ => return,
            },
            _ => return,
        };
        match src {
            Source::Console => {
                for &b in bytes.iter().rev() {
                    self.console_in.push_front(b);
                }
            }
            Source::File => {
                if let Some(Some(f)) = self.files.get_mut(d.0 as usize) {
                    if let RealKind::File { file, .. } = &mut f.kind {
                        let _ = file.seek(SeekFrom::Current(-(bytes.len() as i64)));
                    }
                }
            }
            Source::Pipe(p) => {
                let pipe = &mut self.pipes[p];
                let mut restored = bytes.to_vec();
                restored.extend_from_slice(pipe);
                *pipe = restored;
            }
        }
    }

    fn io_err(e: std::io::Error) -> OsError {
        match e.kind() {
            std::io::ErrorKind::NotFound => OsError::NoEnt(String::new()),
            std::io::ErrorKind::PermissionDenied => OsError::Access(String::new()),
            _ => OsError::Io(e.to_string()),
        }
    }

    fn path_err(e: std::io::Error, path: &str) -> OsError {
        match e.kind() {
            std::io::ErrorKind::NotFound => OsError::NoEnt(path.into()),
            std::io::ErrorKind::PermissionDenied => OsError::Access(path.into()),
            _ => OsError::Io(e.to_string()),
        }
    }
}

impl Os for RealOs {
    fn open(&mut self, path: &str, mode: OpenMode) -> OsResult<Desc> {
        let abs = self.resolve(path);
        let file = match mode {
            OpenMode::Read => fs::File::open(&abs),
            OpenMode::Write => fs::File::create(&abs),
            OpenMode::Append => fs::OpenOptions::new().create(true).append(true).open(&abs),
        }
        .map_err(|e| Self::path_err(e, path))?;
        if mode == OpenMode::Read && abs.is_dir() {
            return Err(OsError::IsDir(path.into()));
        }
        Ok(self.alloc(RealKind::File {
            file,
            path: abs,
            mode,
        }))
    }

    fn pipe(&mut self) -> OsResult<(Desc, Desc)> {
        let p = self.pipes.len();
        self.pipes.push(Vec::new());
        let r = self.alloc(RealKind::PipeR(p));
        let w = self.alloc(RealKind::PipeW(p));
        Ok((r, w))
    }

    fn dup(&mut self, d: Desc) -> OsResult<Desc> {
        self.file_mut(d)?.refs += 1;
        Ok(d)
    }

    fn close(&mut self, d: Desc) -> OsResult<()> {
        let idx = d.0 as usize;
        let f = self
            .files
            .get_mut(idx)
            .and_then(|f| f.as_mut())
            .ok_or(OsError::BadF)?;
        f.refs -= 1;
        if f.refs == 0 {
            self.files[idx] = None;
        }
        Ok(())
    }

    fn read(&mut self, d: Desc, buf: &mut [u8]) -> OsResult<usize> {
        let capture = self.capture;
        let f = self.file_mut(d)?;
        match &mut f.kind {
            RealKind::StdIn => {
                if capture {
                    let n = buf.len().min(self.console_in.len());
                    for b in buf.iter_mut().take(n) {
                        *b = self.console_in.pop_front().expect("len checked");
                    }
                    Ok(n)
                } else {
                    std::io::stdin().read(buf).map_err(Self::io_err)
                }
            }
            RealKind::File { file, .. } => file.read(buf).map_err(Self::io_err),
            RealKind::PipeR(p) => {
                let p = *p;
                let pipe = &mut self.pipes[p];
                let n = buf.len().min(pipe.len());
                buf[..n].copy_from_slice(&pipe[..n]);
                pipe.drain(..n);
                Ok(n)
            }
            _ => Err(OsError::BadF),
        }
    }

    fn write(&mut self, d: Desc, data: &[u8]) -> OsResult<usize> {
        let capture = self.capture;
        let f = self.file_mut(d)?;
        match &mut f.kind {
            RealKind::StdOut => {
                if capture {
                    self.console_out.extend_from_slice(data);
                } else {
                    std::io::stdout().write_all(data).map_err(Self::io_err)?;
                    let _ = std::io::stdout().flush();
                }
                Ok(data.len())
            }
            RealKind::StdErr => {
                if capture {
                    self.console_err.extend_from_slice(data);
                } else {
                    std::io::stderr().write_all(data).map_err(Self::io_err)?;
                    let _ = std::io::stderr().flush();
                }
                Ok(data.len())
            }
            RealKind::File { file, .. } => file.write(data).map_err(Self::io_err),
            RealKind::PipeW(p) => {
                let p = *p;
                self.pipes[p].extend_from_slice(data);
                Ok(data.len())
            }
            _ => Err(OsError::BadF),
        }
    }

    fn run(
        &mut self,
        argv: &[String],
        env: &[(String, String)],
        fds: &[(u32, Desc)],
    ) -> OsResult<i32> {
        let path = argv.first().ok_or_else(|| OsError::Inval("empty argv".into()))?;
        let mut cmd = Command::new(self.resolve(path));
        cmd.args(&argv[1..]);
        // The shell hands us a resolved path, but tools self-identify
        // via argv[0] in diagnostics ("cat: ..."), so pass the bare
        // program name the way a shell's exec would.
        #[cfg(unix)]
        {
            use std::os::unix::process::CommandExt;
            if let Some(name) = std::path::Path::new(path).file_name() {
                cmd.arg0(name);
            }
        }
        cmd.env_clear();
        cmd.current_dir(&self.cwd);
        for (k, v) in env {
            cmd.env(k, v);
        }
        let lookup = |fds: &[(u32, Desc)], fd: u32| fds.iter().find(|(n, _)| *n == fd).map(|(_, d)| *d);
        // Stage stdin: the console inherits (or, under capture, hands
        // over the scripted buffer); files/pipes are drained into a
        // buffer fed to the child through a real OS pipe. Whatever the
        // child leaves unread is reclaimed into the source descriptor
        // afterwards — a child that ignores stdin (`test`, `echo`)
        // must not destroy pipeline data that later stages still need.
        let stdin_src = lookup(fds, 0);
        let stdin_data: Option<Vec<u8>> = match stdin_src {
            Some(Desc(0)) if !self.capture => None,
            Some(Desc(0)) => Some(self.console_in.drain(..).collect()),
            Some(d) => Some(crate::read_all(self, d)?),
            None => Some(Vec::new()),
        };
        let mut stdin_pipe = None;
        match &stdin_data {
            Some(_) => {
                let (r, w) = std::io::pipe().map_err(Self::io_err)?;
                cmd.stdin(Stdio::from(r.try_clone().map_err(Self::io_err)?));
                stdin_pipe = Some((r, w));
            }
            None => {
                cmd.stdin(Stdio::inherit());
            }
        }
        let out_desc = lookup(fds, 1);
        let err_desc = lookup(fds, 2);
        // Under capture nothing may inherit the process streams —
        // child output must land in the capture buffers.
        let inherit_out = !self.capture && out_desc == Some(Desc(1));
        let inherit_err = !self.capture && (err_desc == Some(Desc(2)) || err_desc.is_none());
        cmd.stdout(if inherit_out { Stdio::inherit() } else { Stdio::piped() });
        cmd.stderr(if inherit_err { Stdio::inherit() } else { Stdio::piped() });
        let began = Instant::now();
        let child = cmd.spawn().map_err(|e| Self::path_err(e, path))?;
        // Feed from a thread so a child that never reads stdin cannot
        // deadlock the parent against a full pipe buffer.
        let feeder = match (stdin_pipe, stdin_data) {
            (Some((r, mut w)), Some(data)) => Some((
                r,
                std::thread::spawn(move || {
                    let _ = w.write_all(&data);
                }),
            )),
            _ => None,
        };
        let output = child
            .wait_with_output()
            .map_err(|e| OsError::Io(e.to_string()))?;
        if let Some((mut r, feed)) = feeder {
            // The child has exited; drain what it never consumed (this
            // also unblocks the feeder) and push it back upstream.
            let mut rest = Vec::new();
            let _ = r.read_to_end(&mut rest);
            let _ = feed.join();
            if let Some(src) = stdin_src {
                self.unread(src, &rest);
            }
        }
        if !inherit_out {
            match out_desc {
                Some(d) => crate::write_all(self, d, &output.stdout)?,
                None => self.console_out.extend_from_slice(&output.stdout),
            }
        }
        if !inherit_err {
            match err_desc {
                Some(d) => crate::write_all(self, d, &output.stderr)?,
                None => self.console_err.extend_from_slice(&output.stderr),
            }
        }
        // Approximate child CPU as wall time (measurements use SimOs).
        let elapsed = began.elapsed().as_nanos() as u64;
        self.children.user_ns += elapsed / 2;
        self.children.sys_ns += elapsed / 2;
        Ok(output.status.code().unwrap_or(128))
    }

    fn chdir(&mut self, path: &str) -> OsResult<()> {
        let abs = self.resolve(path);
        let meta = fs::metadata(&abs).map_err(|e| Self::path_err(e, path))?;
        if !meta.is_dir() {
            return Err(OsError::NotDir(path.into()));
        }
        self.cwd = abs;
        Ok(())
    }

    fn cwd(&self) -> String {
        self.cwd.display().to_string()
    }

    fn read_dir(&self, path: &str) -> OsResult<Vec<String>> {
        let mut names: Vec<String> = fs::read_dir(self.resolve(path))
            .map_err(|e| Self::path_err(e, path))?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        Ok(names)
    }

    fn is_file(&self, path: &str) -> bool {
        fs::metadata(self.resolve(path))
            .map(|m| m.is_file())
            .unwrap_or(false)
    }

    fn is_dir(&self, path: &str) -> bool {
        fs::metadata(self.resolve(path))
            .map(|m| m.is_dir())
            .unwrap_or(false)
    }

    fn is_executable(&self, path: &str) -> bool {
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            fs::metadata(self.resolve(path))
                .map(|m| m.is_file() && m.permissions().mode() & 0o111 != 0)
                .unwrap_or(false)
        }
        #[cfg(not(unix))]
        {
            self.is_file(path)
        }
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    // advance_ns: trait default no-op — the real clock advances itself.

    fn open_desc_count(&self) -> usize {
        self.files.iter().flatten().count()
    }

    fn children_rusage(&self) -> Rusage {
        self.children
    }

    fn take_signal(&mut self) -> Option<Signal> {
        None // Signal handling needs libc; the simulator models it instead.
    }

    fn take_console(&mut self) -> (String, String) {
        (self.take_output(), self.take_error())
    }

    fn initial_env(&self) -> Vec<(String, String)> {
        std::env::vars().collect()
    }

    fn absorb_fork(&mut self, child: Self) {
        // The filesystem is genuinely shared, but the descriptor
        // offsets, pipe buffers, capture buffers, and child rusage the
        // forked shell accumulated are the newer truth — adopt them,
        // keeping only this kernel's own working directory (fork keeps
        // cwd per-process). Mirrors SimOs::absorb_fork.
        let cwd = std::mem::take(&mut self.cwd);
        *self = child;
        self.cwd = cwd;
    }
}
