//! Tests for the real-OS backend (run against a temp directory and
//! real /bin tools where available).

use crate::{read_all, write_all, OpenMode, Os, RealOs};

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("es-real-test-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[test]
fn real_file_roundtrip() {
    let mut os = RealOs::new();
    let path = tmpdir().join("roundtrip.txt");
    let path = path.to_str().unwrap();
    let fd = os.open(path, OpenMode::Write).unwrap();
    write_all(&mut os, fd, b"real bytes\n").unwrap();
    os.close(fd).unwrap();
    let fd = os.open(path, OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"real bytes\n");
    os.close(fd).unwrap();
    let fd = os.open(path, OpenMode::Append).unwrap();
    write_all(&mut os, fd, b"more\n").unwrap();
    os.close(fd).unwrap();
    let fd = os.open(path, OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"real bytes\nmore\n");
    os.close(fd).unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn real_missing_file_is_enoent() {
    let mut os = RealOs::new();
    let err = os.open("/definitely/not/here", OpenMode::Read).unwrap_err();
    assert_eq!(err.strerror(), "No such file or directory");
}

#[test]
fn real_pipes_buffer() {
    let mut os = RealOs::new();
    let (r, w) = os.pipe().unwrap();
    write_all(&mut os, w, b"through").unwrap();
    os.close(w).unwrap();
    assert_eq!(read_all(&mut os, r).unwrap(), b"through");
}

#[test]
fn real_fs_inspection() {
    let os = RealOs::new();
    assert!(os.is_dir("/"));
    assert!(!os.is_file("/"));
    let names = os.read_dir("/").unwrap();
    assert!(!names.is_empty());
}

#[cfg(unix)]
#[test]
fn real_run_external_program() {
    let mut os = RealOs::new();
    if !os.is_executable("/bin/echo") {
        return; // minimal containers may lack it
    }
    let (r, w) = os.pipe().unwrap();
    let status = os
        .run(
            &["/bin/echo".into(), "real".into(), "exec".into()],
            &[("PATH".into(), "/bin".into())],
            &[(1, w)],
        )
        .unwrap();
    os.close(w).unwrap();
    assert_eq!(status, 0);
    assert_eq!(read_all(&mut os, r).unwrap(), b"real exec\n");
}

#[test]
fn real_clock_advances() {
    let os = RealOs::new();
    let a = os.now_ns();
    let b = os.now_ns();
    assert!(b >= a);
}

#[cfg(unix)]
#[test]
fn real_multi_stage_pipeline() {
    // tr a-z A-Z | sort -r, staged through two buffer pipes exactly
    // the way the shell's %pipe primitive lays out descriptors.
    let mut os = RealOs::new();
    if !os.is_executable("/usr/bin/tr") || !os.is_executable("/usr/bin/sort") {
        return;
    }
    let (r1, w1) = os.pipe().unwrap();
    write_all(&mut os, w1, b"pear\napple\nmango\n").unwrap();
    os.close(w1).unwrap();
    let (r2, w2) = os.pipe().unwrap();
    let st = os
        .run(
            &["/usr/bin/tr".into(), "a-z".into(), "A-Z".into()],
            &[],
            &[(0, r1), (1, w2)],
        )
        .unwrap();
    assert_eq!(st, 0);
    os.close(r1).unwrap();
    os.close(w2).unwrap();
    let (r3, w3) = os.pipe().unwrap();
    let st = os
        .run(
            &["/usr/bin/sort".into(), "-r".into()],
            &[],
            &[(0, r2), (1, w3)],
        )
        .unwrap();
    assert_eq!(st, 0);
    os.close(r2).unwrap();
    os.close(w3).unwrap();
    assert_eq!(read_all(&mut os, r3).unwrap(), b"PEAR\nMANGO\nAPPLE\n");
    os.close(r3).unwrap();
}

#[cfg(unix)]
#[test]
fn real_append_redirection_through_run() {
    // Two child processes appending to the same descriptor must
    // accumulate, not truncate (>> semantics).
    let mut os = RealOs::new();
    if !os.is_executable("/bin/echo") {
        return;
    }
    let path = tmpdir().join("append-run.txt");
    let _ = std::fs::remove_file(&path);
    let path = path.to_str().unwrap().to_string();
    let fd = os.open(&path, OpenMode::Append).unwrap();
    for word in ["first", "second"] {
        let st = os
            .run(&["/bin/echo".into(), word.into()], &[], &[(1, fd)])
            .unwrap();
        assert_eq!(st, 0);
    }
    os.close(fd).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), b"first\nsecond\n");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn real_dup_close_refcounting() {
    let mut os = RealOs::new();
    let baseline = os.open_desc_count();
    let path = tmpdir().join("refcount.txt");
    let path = path.to_str().unwrap();
    let fd = os.open(path, OpenMode::Write).unwrap();
    let dup = os.dup(fd).unwrap();
    assert_eq!(dup, fd, "dup shares the open-file description");
    assert_eq!(os.open_desc_count(), baseline + 1);
    os.close(fd).unwrap();
    // One reference remains: the descriptor must still be writable.
    write_all(&mut os, dup, b"still open\n").unwrap();
    os.close(dup).unwrap();
    assert_eq!(os.open_desc_count(), baseline);
    // Fully closed now: further I/O is EBADF.
    assert!(os.write(fd, b"x").is_err());
    assert!(os.close(fd).is_err());
    let _ = std::fs::remove_file(path);
}

#[cfg(unix)]
#[test]
fn real_run_exit_status_propagation() {
    let mut os = RealOs::new();
    if !os.is_executable("/bin/sh") {
        return;
    }
    for (script, expect) in [("exit 0", 0), ("exit 1", 1), ("exit 7", 7), ("exit 42", 42)] {
        let st = os
            .run(
                &["/bin/sh".into(), "-c".into(), script.into()],
                &[],
                &[],
            )
            .unwrap();
        assert_eq!(st, expect, "sh -c '{script}'");
    }
    // A missing binary is ENOENT, not a status.
    let err = os
        .run(&["/definitely/not/a/binary".into()], &[], &[])
        .unwrap_err();
    assert_eq!(err.strerror(), "No such file or directory");
}

#[test]
fn real_clone_carries_file_descriptors() {
    // Regression: clone() used to drop file-backed descriptors, so
    // redirections inside `fork {...}` lost their targets on RealOs.
    let mut os = RealOs::new();
    let path = tmpdir().join("clone-carry.txt");
    let path = path.to_str().unwrap().to_string();
    let fd = os.open(&path, OpenMode::Write).unwrap();
    write_all(&mut os, fd, b"parent|").unwrap();
    let mut child = os.clone();
    write_all(&mut child, fd, b"child|").unwrap();
    os.absorb_fork(child);
    write_all(&mut os, fd, b"parent again\n").unwrap();
    os.close(fd).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), b"parent|child|parent again\n");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn real_clone_preserves_read_offset() {
    let mut os = RealOs::new();
    let path = tmpdir().join("clone-offset.txt");
    std::fs::write(&path, b"0123456789").unwrap();
    let path = path.to_str().unwrap();
    let fd = os.open(path, OpenMode::Read).unwrap();
    let mut buf = [0u8; 4];
    assert_eq!(os.read(fd, &mut buf).unwrap(), 4);
    assert_eq!(&buf, b"0123");
    // The clone's cursor continues where the parent's stopped.
    let mut child = os.clone();
    assert_eq!(read_all(&mut child, fd).unwrap(), b"456789");
    os.close(fd).unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn real_capture_mode_console() {
    use crate::{STDERR, STDIN, STDOUT};
    let mut os = RealOs::new();
    os.set_capture(true);
    os.push_input("typed input\n");
    assert_eq!(read_all(&mut os, STDIN).unwrap(), b"typed input\n");
    write_all(&mut os, STDOUT, b"to stdout\n").unwrap();
    write_all(&mut os, STDERR, b"to stderr\n").unwrap();
    let (out, err) = os.take_console();
    assert_eq!(out, "to stdout\n");
    assert_eq!(err, "to stderr\n");
    // Buffers drain on take.
    assert_eq!(os.take_console(), (String::new(), String::new()));
}

#[cfg(unix)]
#[test]
fn real_capture_mode_run_lands_in_buffers() {
    use crate::{STDERR, STDOUT};
    let mut os = RealOs::new();
    if !os.is_executable("/bin/sh") {
        return;
    }
    os.set_capture(true);
    let st = os
        .run(
            &["/bin/sh".into(), "-c".into(), "echo out; echo err >&2".into()],
            &[],
            &[(1, STDOUT), (2, STDERR)],
        )
        .unwrap();
    assert_eq!(st, 0);
    let (out, err) = os.take_console();
    assert_eq!(out, "out\n");
    assert_eq!(err, "err\n");
}

#[test]
fn real_cwd_is_per_instance() {
    let dir = tmpdir();
    let sub = dir.join("cwd-a");
    let _ = std::fs::create_dir_all(&sub);
    let mut a = RealOs::new();
    let b = RealOs::new();
    let before = b.cwd();
    a.chdir(sub.to_str().unwrap()).unwrap();
    assert_eq!(a.cwd(), sub.to_str().unwrap());
    // Changing directory in one kernel must not leak into another
    // (chdir is tracked per instance, not via set_current_dir).
    assert_eq!(b.cwd(), before);
    // Relative paths resolve against the instance cwd...
    std::fs::write(sub.join("rel.txt"), b"relative\n").unwrap();
    let mut a2 = a.clone();
    let fd = a2.open("rel.txt", OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut a2, fd).unwrap(), b"relative\n");
    a2.close(fd).unwrap();
    // ...and dot-dot normalizes lexically.
    a.chdir("..").unwrap();
    assert_eq!(a.cwd(), dir.to_str().unwrap());
    // chdir to a non-directory fails without changing anything.
    assert!(a.chdir("rel-missing-dir").is_err());
    assert_eq!(a.cwd(), dir.to_str().unwrap());
}
