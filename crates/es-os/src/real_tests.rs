//! Tests for the real-OS backend (run against a temp directory and
//! real /bin tools where available).

use crate::{read_all, write_all, OpenMode, Os, RealOs};

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("es-real-test-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[test]
fn real_file_roundtrip() {
    let mut os = RealOs::new();
    let path = tmpdir().join("roundtrip.txt");
    let path = path.to_str().unwrap();
    let fd = os.open(path, OpenMode::Write).unwrap();
    write_all(&mut os, fd, b"real bytes\n").unwrap();
    os.close(fd).unwrap();
    let fd = os.open(path, OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"real bytes\n");
    os.close(fd).unwrap();
    let fd = os.open(path, OpenMode::Append).unwrap();
    write_all(&mut os, fd, b"more\n").unwrap();
    os.close(fd).unwrap();
    let fd = os.open(path, OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"real bytes\nmore\n");
    os.close(fd).unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn real_missing_file_is_enoent() {
    let mut os = RealOs::new();
    let err = os.open("/definitely/not/here", OpenMode::Read).unwrap_err();
    assert_eq!(err.strerror(), "No such file or directory");
}

#[test]
fn real_pipes_buffer() {
    let mut os = RealOs::new();
    let (r, w) = os.pipe().unwrap();
    write_all(&mut os, w, b"through").unwrap();
    os.close(w).unwrap();
    assert_eq!(read_all(&mut os, r).unwrap(), b"through");
}

#[test]
fn real_fs_inspection() {
    let os = RealOs::new();
    assert!(os.is_dir("/"));
    assert!(!os.is_file("/"));
    let names = os.read_dir("/").unwrap();
    assert!(!names.is_empty());
}

#[cfg(unix)]
#[test]
fn real_run_external_program() {
    let mut os = RealOs::new();
    if !os.is_executable("/bin/echo") {
        return; // minimal containers may lack it
    }
    let (r, w) = os.pipe().unwrap();
    let status = os
        .run(
            &["/bin/echo".into(), "real".into(), "exec".into()],
            &[("PATH".into(), "/bin".into())],
            &[(1, w)],
        )
        .unwrap();
    os.close(w).unwrap();
    assert_eq!(status, 0);
    assert_eq!(read_all(&mut os, r).unwrap(), b"real exec\n");
}

#[test]
fn real_clock_advances() {
    let os = RealOs::new();
    let a = os.now_ns();
    let b = os.now_ns();
    assert!(b >= a);
}
