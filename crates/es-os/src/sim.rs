//! The simulated kernel: descriptors, pipes, processes, clock, signals.

use crate::clock::{
    civil_from_ns, Rusage, BYTE_SYS_NS, BYTE_USER_NS, EXEC_SYS_NS, EXEC_USER_NS, SYSCALL_SYS_NS,
};
use crate::error::{OsError, OsResult};
use crate::fault::{FaultEvent, FaultKind, FaultPlan, Syscall};
use crate::programs::{self, ProgramFn};
use crate::vfs::Vfs;
use crate::{OpenMode, Os, Signal};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read as _, Write as _};

/// A kernel descriptor: an index into the open-description table.
/// Descriptors are reference counted ([`Os::dup`] shares the
/// description; each `dup` needs a matching `close`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Desc(pub u32);

/// What an open description refers to.
#[derive(Debug, Clone)]
enum FileKind {
    /// A VFS file with a cursor.
    Vnode {
        ino: crate::vfs::Ino,
        offset: usize,
        readable: bool,
        writable: bool,
        append: bool,
    },
    /// Read end of pipe `n`.
    PipeR(usize),
    /// Write end of pipe `n`.
    PipeW(usize),
    /// The shell's standard input (scripted or interactive).
    ConsoleIn,
    /// The shell's standard output (captured, optionally echoed).
    ConsoleOut,
    /// The shell's standard error (captured, optionally echoed).
    ConsoleErr,
}

#[derive(Debug, Clone)]
struct OpenFile {
    kind: FileKind,
    refs: usize,
}

#[derive(Debug, Clone, Default)]
struct Pipe {
    buf: VecDeque<u8>,
    writers: usize,
    readers: usize,
}

/// One row of the fake process table (for `ps` / `kill` / the paper's
/// `ps aux | grep '^byron' | ... | xargs kill -9` example).
#[derive(Debug, Clone)]
pub struct ProcEntry {
    /// Owner login name.
    pub user: String,
    /// Process id.
    pub pid: i32,
    /// Command line shown by `ps`.
    pub command: String,
}

/// The simulated UNIX kernel. See the crate docs for scope.
///
/// `Clone` deep-copies the whole kernel (filesystem, descriptors,
/// pipes, clock); the interpreter's `fork` clones the kernel together
/// with the shell state, giving true fork semantics.
#[derive(Clone)]
pub struct SimOs {
    vfs: Vfs,
    cwd: String,
    files: Vec<Option<OpenFile>>,
    pipes: Vec<Pipe>,
    programs: BTreeMap<&'static str, ProgramFn>,
    /// Virtual nanoseconds since the 1993-01-25 epoch.
    real_ns: u64,
    children: Rusage,
    console_in: VecDeque<u8>,
    console_out: Vec<u8>,
    console_err: Vec<u8>,
    /// Mirror console output to the real stdout/stderr, and fall back
    /// to reading real stdin when the scripted input runs dry — this is
    /// what makes `es --sim` usable interactively.
    interactive: bool,
    signals: VecDeque<Signal>,
    /// Signals scheduled for delivery at a virtual time (sorted by
    /// time). `take_signal` delivers one once the clock reaches it —
    /// tests use this to model "^C arrives mid-computation".
    sig_schedule: Vec<(u64, Signal)>,
    procs: Vec<ProcEntry>,
    next_pid: i32,
    initial_env: Vec<(String, String)>,
    /// The shell's own pid in the fake process table.
    pub shell_pid: i32,
    shell_sys_ns: u64,
    /// Armed fault-injection plan, if any (see [`crate::fault`]).
    fault: Option<FaultPlan>,
}

impl std::fmt::Debug for SimOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimOs")
            .field("cwd", &self.cwd)
            .field("real_ns", &self.real_ns)
            .field("open_files", &self.files.iter().flatten().count())
            .finish()
    }
}

impl Default for SimOs {
    fn default() -> Self {
        Self::new()
    }
}

impl SimOs {
    /// Boots a kernel with the standard filesystem layout (`/bin` full
    /// of simulated coreutils, `/tmp`, `/usr/tmp`, `/home/user`), a
    /// fake process table, and descriptors 0/1/2 pre-opened on the
    /// console.
    pub fn new() -> SimOs {
        let mut vfs = Vfs::new();
        for dir in ["/bin", "/usr/bin", "/tmp", "/usr/tmp", "/home/user", "/etc"] {
            vfs.mkdir_all(dir).expect("fresh vfs accepts mkdir");
        }
        let mut programs = BTreeMap::new();
        programs::install_all(&mut programs);
        for name in programs.keys() {
            vfs.put_program(&format!("/bin/{name}"), name)
                .expect("fresh vfs accepts programs");
        }
        vfs.put_file("/etc/motd", b"welcome to the es simulation\n")
            .expect("fresh vfs accepts files");
        let files = vec![
            Some(OpenFile { kind: FileKind::ConsoleIn, refs: 1 }),
            Some(OpenFile { kind: FileKind::ConsoleOut, refs: 1 }),
            Some(OpenFile { kind: FileKind::ConsoleErr, refs: 1 }),
        ];
        let procs = vec![
            ProcEntry { user: "root".into(), pid: 1, command: "init".into() },
            ProcEntry { user: "root".into(), pid: 74, command: "update".into() },
            ProcEntry { user: "byron".into(), pid: 4523, command: "rc".into() },
            ProcEntry { user: "byron".into(), pid: 4619, command: "vi paper.ms".into() },
            ProcEntry { user: "haahr".into(), pid: 5000, command: "es".into() },
        ];
        SimOs {
            vfs,
            cwd: "/home/user".into(),
            files,
            pipes: Vec::new(),
            programs,
            real_ns: 0,
            children: Rusage::default(),
            console_in: VecDeque::new(),
            console_out: Vec::new(),
            console_err: Vec::new(),
            interactive: false,
            signals: VecDeque::new(),
            sig_schedule: Vec::new(),
            procs,
            next_pid: 6000,
            shell_sys_ns: 0,
            initial_env: vec![
                ("HOME".into(), "/home/user".into()),
                ("PATH".into(), "/bin:/usr/bin".into()),
                ("TERM".into(), "vt100".into()),
            ],
            shell_pid: 5000,
            fault: None,
        }
    }

    /// Direct access to the filesystem (test and example setup).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    /// Read-only access to the filesystem.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Queues bytes on the shell's standard input.
    pub fn push_input(&mut self, text: &str) {
        self.console_in.extend(text.bytes());
    }

    /// Takes and clears everything the shell wrote to stdout.
    pub fn take_output(&mut self) -> String {
        String::from_utf8_lossy(&std::mem::take(&mut self.console_out)).into_owned()
    }

    /// Takes and clears everything the shell wrote to stderr.
    pub fn take_error(&mut self) -> String {
        String::from_utf8_lossy(&std::mem::take(&mut self.console_err)).into_owned()
    }

    /// Enables interactive mode: console output is echoed to the real
    /// stdout/stderr and console input falls back to the real stdin.
    pub fn set_interactive(&mut self, on: bool) {
        self.interactive = on;
    }

    /// Replaces the environment reported by [`Os::initial_env`].
    pub fn set_initial_env(&mut self, env: Vec<(String, String)>) {
        self.initial_env = env;
    }

    /// Delivers a signal to the shell (tests use this to model ^C).
    pub fn raise_signal(&mut self, sig: Signal) {
        self.signals.push_back(sig);
    }

    /// Schedules a signal for delivery once the virtual clock reaches
    /// `at_ns`. Deterministic: the signal surfaces at the first
    /// `take_signal` poll at or after that instant.
    pub fn schedule_signal(&mut self, at_ns: u64, sig: Signal) {
        self.sig_schedule.push((at_ns, sig));
        self.sig_schedule.sort_by_key(|&(t, _)| t);
    }

    /// The fake process table (shared with `ps`/`kill`).
    pub fn procs(&self) -> &[ProcEntry] {
        &self.procs
    }

    /// Advances the virtual clock (also used by `sleep`).
    pub fn advance_ns(&mut self, ns: u64) {
        self.real_ns += ns;
    }

    /// Borrowed current directory (avoids a clone inside ProcCtx).
    pub(crate) fn cwd_ref(&self) -> &str {
        &self.cwd
    }

    /// Arms (or disarms, with `None`) fault injection. The plan is
    /// consulted by every `open`/`read`/`write`/`pipe`/`dup`/`close`/
    /// `run`/`chdir` the shell issues.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The armed plan, if any (its log tells you what was injected).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Takes the armed plan's event log (empty if no plan).
    pub fn take_fault_log(&mut self) -> Vec<FaultEvent> {
        self.fault
            .as_mut()
            .map(|p| std::mem::take(p.log_mut()))
            .unwrap_or_default()
    }

    /// How many descriptor-table slots are currently open (the fresh
    /// kernel has 3: stdin/stdout/stderr). Leak checks compare this
    /// against a baseline snapshot.
    pub fn open_desc_count(&self) -> usize {
        self.files.iter().flatten().count()
    }

    /// Consults the armed plan for this syscall; `None` means proceed
    /// normally. Injection happens *before* any kernel state changes,
    /// so an injected `EINTR` is always safely retryable.
    fn inject(&mut self, sc: Syscall, allowed: &[FaultKind]) -> Option<FaultKind> {
        self.fault.as_mut()?.decide(sc, allowed)
    }

    /// Maps an injected fault kind to the errno it surfaces as.
    fn fault_error(kind: FaultKind, operand: &str) -> OsError {
        match kind {
            FaultKind::Intr => OsError::Intr,
            FaultKind::NoSpc => OsError::NoSpc(operand.to_string()),
            FaultKind::MFile => OsError::MFile,
            // ShortRead / PartialWrite never reach here from their own
            // syscalls; a schedule forcing them elsewhere degrades to EIO.
            FaultKind::Io | FaultKind::ShortRead | FaultKind::PartialWrite => {
                OsError::Io(operand.to_string())
            }
        }
    }

    // ---- internals shared with ProcCtx -------------------------------------

    fn file(&self, d: Desc) -> OsResult<&OpenFile> {
        self.files
            .get(d.0 as usize)
            .and_then(|f| f.as_ref())
            .ok_or(OsError::BadF)
    }

    fn charge_sys(&mut self, bytes: usize) {
        let ns = SYSCALL_SYS_NS + BYTE_SYS_NS * bytes as u64;
        self.real_ns += ns;
        self.shell_sys_ns += ns;
    }

    pub(crate) fn do_read(&mut self, d: Desc, buf: &mut [u8]) -> OsResult<usize> {
        let kind = self.file(d)?.kind.clone();
        let n = match kind {
            FileKind::Vnode { ino, offset, readable, .. } => {
                if !readable {
                    return Err(OsError::BadF);
                }
                let n = self.vfs.read_at(ino, offset, buf);
                if let Some(Some(of)) = self.files.get_mut(d.0 as usize) {
                    if let FileKind::Vnode { offset, .. } = &mut of.kind {
                        *offset += n;
                    }
                }
                n
            }
            FileKind::PipeR(p) => {
                let pipe = &mut self.pipes[p];
                let n = buf.len().min(pipe.buf.len());
                for b in buf.iter_mut().take(n) {
                    *b = pipe.buf.pop_front().expect("len checked");
                }
                n
            }
            FileKind::PipeW(_) | FileKind::ConsoleOut | FileKind::ConsoleErr => {
                return Err(OsError::BadF)
            }
            FileKind::ConsoleIn => {
                let n = buf.len().min(self.console_in.len());
                if n == 0 && self.interactive {
                    // Fall back to the real stdin so the REPL works.
                    return std::io::stdin()
                        .read(buf)
                        .map_err(|e| OsError::Io(e.to_string()));
                }
                for b in buf.iter_mut().take(n) {
                    *b = self.console_in.pop_front().expect("len checked");
                }
                n
            }
        };
        self.charge_sys(n);
        Ok(n)
    }

    pub(crate) fn do_write(&mut self, d: Desc, data: &[u8]) -> OsResult<usize> {
        let kind = self.file(d)?.kind.clone();
        match kind {
            FileKind::Vnode { ino, offset, writable, append, .. } => {
                if !writable {
                    return Err(OsError::BadF);
                }
                let at = if append { self.vfs.file_len(ino) } else { offset };
                self.vfs.write_at(ino, at, data);
                if let Some(Some(of)) = self.files.get_mut(d.0 as usize) {
                    if let FileKind::Vnode { offset, .. } = &mut of.kind {
                        *offset = at + data.len();
                    }
                }
            }
            FileKind::PipeW(p) => {
                let pipe = &mut self.pipes[p];
                if pipe.readers == 0 {
                    return Err(OsError::Pipe);
                }
                pipe.buf.extend(data.iter().copied());
            }
            FileKind::ConsoleOut => {
                self.console_out.extend_from_slice(data);
                if self.interactive {
                    let _ = std::io::stdout().write_all(data);
                    let _ = std::io::stdout().flush();
                }
            }
            FileKind::ConsoleErr => {
                self.console_err.extend_from_slice(data);
                if self.interactive {
                    let _ = std::io::stderr().write_all(data);
                    let _ = std::io::stderr().flush();
                }
            }
            FileKind::PipeR(_) | FileKind::ConsoleIn => return Err(OsError::BadF),
        }
        self.charge_sys(data.len());
        Ok(data.len())
    }

    fn alloc_desc(&mut self, kind: FileKind) -> Desc {
        // Reuse the lowest free slot, like a real descriptor table.
        for (i, slot) in self.files.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(OpenFile { kind, refs: 1 });
                return Desc(i as u32);
            }
        }
        self.files.push(Some(OpenFile { kind, refs: 1 }));
        Desc((self.files.len() - 1) as u32)
    }

    /// Removes pids from the fake process table; returns how many were
    /// found. Signals aimed at the shell's own pid are queued instead.
    pub(crate) fn kill_pids(&mut self, pids: &[i32], sig: Signal) -> usize {
        let mut hit = 0;
        for &pid in pids {
            if pid == self.shell_pid {
                self.signals.push_back(sig);
                hit += 1;
                continue;
            }
            let before = self.procs.len();
            self.procs.retain(|p| p.pid != pid);
            if self.procs.len() != before {
                hit += 1;
            }
        }
        hit
    }

    /// Formats the virtual clock for `date`: `(y, m, d, h, min, s)`.
    pub(crate) fn civil_now(&self) -> (i64, u32, u32, u32, u32, u32) {
        civil_from_ns(self.real_ns)
    }

    /// System time charged to the shell itself (not children); `time`
    /// reports child usage only, like getrusage(RUSAGE_CHILDREN).
    pub fn shell_sys_ns(&self) -> u64 {
        self.shell_sys_ns
    }

    /// Deterministic digest of every tenant-observable piece of kernel
    /// state: the filesystem (paths, contents, executable bits), the
    /// descriptor table (kinds, cursors, refcounts), pipes and their
    /// buffered bytes, console buffers, working directory, virtual
    /// clock, child rusage, pending and scheduled signals, the process
    /// table, and the pid counter. The serving pool's reset oracle
    /// compares a recycled slot's fingerprint against its boot
    /// image's — equality means zero cross-tenant state bleed at the
    /// kernel layer. The armed fault plan is deliberately excluded: it
    /// is per-session *configuration*, not state a tenant mutates.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        fnv(&mut h, self.cwd.as_bytes());
        fnv_u64(&mut h, self.real_ns);
        fnv_u64(&mut h, self.shell_sys_ns);
        fnv_u64(&mut h, self.children.user_ns);
        fnv_u64(&mut h, self.children.sys_ns);
        fnv_u64(&mut h, self.next_pid as u64);
        fnv_u64(&mut h, self.shell_pid as u64);
        self.hash_tree("/", &mut h);
        for (i, slot) in self.files.iter().enumerate() {
            let Some(of) = slot else { continue };
            fnv_u64(&mut h, i as u64);
            fnv_u64(&mut h, of.refs as u64);
            match &of.kind {
                FileKind::Vnode { ino, offset, readable, writable, append } => {
                    fnv(&mut h, b"vnode");
                    fnv_u64(&mut h, ino.0 as u64);
                    fnv_u64(&mut h, *offset as u64);
                    fnv(&mut h, &[*readable as u8, *writable as u8, *append as u8]);
                }
                FileKind::PipeR(p) => {
                    fnv(&mut h, b"piper");
                    fnv_u64(&mut h, *p as u64);
                }
                FileKind::PipeW(p) => {
                    fnv(&mut h, b"pipew");
                    fnv_u64(&mut h, *p as u64);
                }
                FileKind::ConsoleIn => fnv(&mut h, b"cin"),
                FileKind::ConsoleOut => fnv(&mut h, b"cout"),
                FileKind::ConsoleErr => fnv(&mut h, b"cerr"),
            }
        }
        for (i, pipe) in self.pipes.iter().enumerate() {
            // Only pipes with a live end are observable; fully closed
            // entries are dead rows kept for index stability.
            if pipe.readers == 0 && pipe.writers == 0 {
                continue;
            }
            fnv_u64(&mut h, i as u64);
            fnv_u64(&mut h, pipe.readers as u64);
            fnv_u64(&mut h, pipe.writers as u64);
            let (a, b) = pipe.buf.as_slices();
            fnv(&mut h, a);
            fnv(&mut h, b);
        }
        fnv(&mut h, self.console_in.as_slices().0);
        fnv(&mut h, self.console_in.as_slices().1);
        fnv(&mut h, &self.console_out);
        fnv(&mut h, &self.console_err);
        for sig in &self.signals {
            fnv(&mut h, sig.name().as_bytes());
        }
        for (t, sig) in &self.sig_schedule {
            fnv_u64(&mut h, *t);
            fnv(&mut h, sig.name().as_bytes());
        }
        for p in &self.procs {
            fnv(&mut h, p.user.as_bytes());
            fnv_u64(&mut h, p.pid as u64);
            fnv(&mut h, p.command.as_bytes());
        }
        h
    }

    fn hash_tree(&self, path: &str, h: &mut u64) {
        let Ok(names) = self.vfs.read_dir(path, "/") else {
            return;
        };
        for name in names {
            let full = if path == "/" {
                format!("/{name}")
            } else {
                format!("{path}/{name}")
            };
            fnv(h, full.as_bytes());
            if self.vfs.is_dir(&full, "/") {
                fnv(h, b"dir");
                self.hash_tree(&full, h);
                continue;
            }
            fnv(h, &[self.vfs.is_executable(&full, "/") as u8]);
            if let Ok(ino) = self.vfs.lookup(&full, "/") {
                match self.vfs.program_of(ino) {
                    Some(key) => {
                        fnv(h, b"prog");
                        fnv(h, key.as_bytes());
                    }
                    None => {
                        fnv(h, b"file");
                        fnv(h, self.vfs.file_data(ino));
                    }
                }
            }
        }
    }
}

/// FNV-1a over a byte run (the fingerprint's mixing step).
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// FNV-1a over a little-endian u64.
fn fnv_u64(h: &mut u64, v: u64) {
    fnv(h, &v.to_le_bytes());
}

impl Os for SimOs {
    fn open(&mut self, path: &str, mode: OpenMode) -> OsResult<Desc> {
        let allowed: &[FaultKind] = match mode {
            OpenMode::Read => &[FaultKind::Intr, FaultKind::MFile, FaultKind::Io],
            OpenMode::Write | OpenMode::Append => &[
                FaultKind::Intr,
                FaultKind::MFile,
                FaultKind::NoSpc,
                FaultKind::Io,
            ],
        };
        if let Some(kind) = self.inject(Syscall::Open, allowed) {
            return Err(Self::fault_error(kind, path));
        }
        let (ino, readable, writable, append) = match mode {
            OpenMode::Read => {
                let ino = self.vfs.lookup(path, &self.cwd)?;
                if self.vfs.is_dir(path, &self.cwd) {
                    return Err(OsError::IsDir(path.to_string()));
                }
                (ino, true, false, false)
            }
            OpenMode::Write => {
                let cwd = self.cwd.clone();
                let ino = self.vfs.create_file(path, &cwd, false)?;
                self.vfs.truncate(ino);
                (ino, false, true, false)
            }
            OpenMode::Append => {
                let cwd = self.cwd.clone();
                let ino = self.vfs.create_file(path, &cwd, false)?;
                (ino, false, true, true)
            }
        };
        self.charge_sys(0);
        Ok(self.alloc_desc(FileKind::Vnode {
            ino,
            offset: 0,
            readable,
            writable,
            append,
        }))
    }

    fn pipe(&mut self) -> OsResult<(Desc, Desc)> {
        if let Some(kind) = self.inject(Syscall::Pipe, &[FaultKind::Intr, FaultKind::MFile]) {
            return Err(Self::fault_error(kind, "pipe"));
        }
        let p = self.pipes.len();
        self.pipes.push(Pipe {
            buf: VecDeque::new(),
            writers: 1,
            readers: 1,
        });
        let r = self.alloc_desc(FileKind::PipeR(p));
        let w = self.alloc_desc(FileKind::PipeW(p));
        self.charge_sys(0);
        Ok((r, w))
    }

    fn dup(&mut self, d: Desc) -> OsResult<Desc> {
        if let Some(kind) = self.inject(Syscall::Dup, &[FaultKind::Intr, FaultKind::MFile]) {
            return Err(Self::fault_error(kind, "dup"));
        }
        let kind = self.file(d)?.kind.clone();
        if let Some(Some(of)) = self.files.get_mut(d.0 as usize) {
            of.refs += 1;
        }
        match kind {
            FileKind::PipeR(p) => self.pipes[p].readers += 1,
            FileKind::PipeW(p) => self.pipes[p].writers += 1,
            _ => {}
        }
        Ok(d)
    }

    fn close(&mut self, d: Desc) -> OsResult<()> {
        // Close only injects EINTR-before-anything-happened (the one
        // safe interpretation of EINTR-from-close); the descriptor
        // stays open and the caller retries.
        if let Some(kind) = self.inject(Syscall::Close, &[FaultKind::Intr]) {
            return Err(Self::fault_error(kind, "close"));
        }
        let idx = d.0 as usize;
        let of = self
            .files
            .get_mut(idx)
            .and_then(|f| f.as_mut())
            .ok_or(OsError::BadF)?;
        of.refs -= 1;
        let kind = of.kind.clone();
        let drop_it = of.refs == 0;
        match kind {
            FileKind::PipeR(p) => self.pipes[p].readers -= 1,
            FileKind::PipeW(p) => self.pipes[p].writers -= 1,
            _ => {}
        }
        if drop_it {
            self.files[idx] = None;
        }
        Ok(())
    }

    fn read(&mut self, d: Desc, buf: &mut [u8]) -> OsResult<usize> {
        let allowed: &[FaultKind] = if buf.len() >= 2 {
            &[FaultKind::Intr, FaultKind::Io, FaultKind::ShortRead]
        } else {
            // A 1-byte read can't be meaningfully shortened (0 would
            // read as EOF), so short reads only apply to larger buffers.
            &[FaultKind::Intr, FaultKind::Io]
        };
        match self.inject(Syscall::Read, allowed) {
            Some(FaultKind::ShortRead) if buf.len() >= 2 => {
                let n = 1 + self.fault.as_mut().expect("plan armed").draw_below(buf.len() as u64 - 1)
                    as usize;
                self.do_read(d, &mut buf[..n])
            }
            Some(kind) => Err(Self::fault_error(kind, "read")),
            None => self.do_read(d, buf),
        }
    }

    fn write(&mut self, d: Desc, data: &[u8]) -> OsResult<usize> {
        let allowed: &[FaultKind] = if data.len() >= 2 {
            &[
                FaultKind::Intr,
                FaultKind::Io,
                FaultKind::NoSpc,
                FaultKind::PartialWrite,
            ]
        } else {
            &[FaultKind::Intr, FaultKind::Io, FaultKind::NoSpc]
        };
        match self.inject(Syscall::Write, allowed) {
            Some(FaultKind::PartialWrite) if data.len() >= 2 => {
                // Consume only a nonempty strict prefix; the caller
                // must loop for the rest.
                let n = 1 + self.fault.as_mut().expect("plan armed").draw_below(data.len() as u64 - 1)
                    as usize;
                self.do_write(d, &data[..n])
            }
            Some(kind) => Err(Self::fault_error(kind, "")),
            None => self.do_write(d, data),
        }
    }

    fn run(
        &mut self,
        argv: &[String],
        env: &[(String, String)],
        fds: &[(u32, Desc)],
    ) -> OsResult<i32> {
        let path = argv.first().ok_or_else(|| OsError::Inval("empty argv".into()))?;
        if let Some(kind) = self.inject(Syscall::Run, &[FaultKind::Intr, FaultKind::Io]) {
            return Err(Self::fault_error(kind, path));
        }
        let ino = self.vfs.lookup(path, &self.cwd)?;
        let key = match self.vfs.program_of(ino) {
            Some(k) => k.to_string(),
            None if self.vfs.is_executable(path, &self.cwd) => {
                return Err(OsError::NoExec(path.clone()))
            }
            None => return Err(OsError::Access(path.clone())),
        };
        let prog = *self
            .programs
            .get(key.as_str())
            .ok_or_else(|| OsError::NoExec(path.clone()))?;
        let pid = self.next_pid;
        self.next_pid += 1;
        let mut ctx = programs::ProcCtx::new(self, argv, env, fds, pid);
        let status = prog(&mut ctx);
        let bytes = ctx.bytes_io();
        let extra = ctx.extra_user_ns();
        let usage = Rusage {
            user_ns: EXEC_USER_NS + BYTE_USER_NS * bytes + extra,
            sys_ns: EXEC_SYS_NS + SYSCALL_SYS_NS * ctx.io_calls() + BYTE_SYS_NS * bytes,
        };
        self.children += usage;
        self.real_ns += usage.total_ns();
        Ok(status)
    }

    fn chdir(&mut self, path: &str) -> OsResult<()> {
        if let Some(kind) = self.inject(Syscall::Chdir, &[FaultKind::Intr, FaultKind::Io]) {
            return Err(Self::fault_error(kind, path));
        }
        let ino = self.vfs.lookup(path, &self.cwd)?;
        if self.vfs.program_of(ino).is_some() || self.vfs.is_file(path, &self.cwd) {
            return Err(OsError::NotDir(path.to_string()));
        }
        let comps = Vfs::normalize(path, &self.cwd);
        self.cwd = format!("/{}", comps.join("/"));
        Ok(())
    }

    fn cwd(&self) -> String {
        self.cwd.clone()
    }

    fn read_dir(&self, path: &str) -> OsResult<Vec<String>> {
        self.vfs.read_dir(path, &self.cwd)
    }

    fn is_file(&self, path: &str) -> bool {
        self.vfs.is_file(path, &self.cwd)
    }

    fn is_dir(&self, path: &str) -> bool {
        self.vfs.is_dir(path, &self.cwd)
    }

    fn is_executable(&self, path: &str) -> bool {
        self.vfs.is_executable(path, &self.cwd)
    }

    fn now_ns(&self) -> u64 {
        self.real_ns
    }

    fn children_rusage(&self) -> Rusage {
        self.children
    }

    fn take_signal(&mut self) -> Option<Signal> {
        if let Some(sig) = self.signals.pop_front() {
            return Some(sig);
        }
        match self.sig_schedule.first() {
            Some(&(t, sig)) if t <= self.real_ns => {
                self.sig_schedule.remove(0);
                Some(sig)
            }
            _ => None,
        }
    }

    // Explicit impls (not the trait defaults): generic `Machine<O: Os>`
    // code dispatches through the trait, which would otherwise see the
    // no-op `advance_ns` default instead of the inherent method above.
    fn advance_ns(&mut self, ns: u64) {
        SimOs::advance_ns(self, ns);
    }

    fn open_desc_count(&self) -> usize {
        SimOs::open_desc_count(self)
    }

    fn initial_env(&self) -> Vec<(String, String)> {
        self.initial_env.clone()
    }

    fn take_console(&mut self) -> (String, String) {
        (self.take_output(), self.take_error())
    }

    fn absorb_fork(&mut self, child: Self) {
        // Execution is strictly sequential (the child ran to
        // completion), so the child's kernel state is simply the
        // newer truth — except the working directory, which a real
        // fork keeps per-process.
        let cwd = self.cwd.clone();
        *self = child;
        self.cwd = cwd;
    }
}
