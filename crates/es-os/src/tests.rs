//! Integration tests for the simulated kernel and its coreutils.

use crate::{read_all, write_all, OpenMode, Os, OsError, SimOs, Signal, STDIN, STDOUT};
use proptest::prelude::*;

/// Runs `/bin/<name> args...` with stdin scripted and stdout captured
/// into a pipe; returns (status, stdout-as-string).
fn run_prog(os: &mut SimOs, name: &str, args: &[&str], stdin: &str) -> (i32, String) {
    let (stdin_r, stdin_w) = os.pipe().unwrap();
    write_all(os, stdin_w, stdin.as_bytes()).unwrap();
    os.close(stdin_w).unwrap();
    let (out_r, out_w) = os.pipe().unwrap();
    let mut argv = vec![format!("/bin/{name}")];
    argv.extend(args.iter().map(|s| s.to_string()));
    let env = os.initial_env();
    let status = os
        .run(&argv, &env, &[(0, stdin_r), (1, out_w), (2, crate::STDERR)])
        .unwrap();
    os.close(out_w).unwrap();
    let out = read_all(os, out_r).unwrap();
    os.close(out_r).unwrap();
    os.close(stdin_r).unwrap();
    (status, String::from_utf8_lossy(&out).into_owned())
}

#[test]
fn open_read_write_roundtrip() {
    let mut os = SimOs::new();
    let fd = os.open("/tmp/foo", OpenMode::Write).unwrap();
    write_all(&mut os, fd, b"hello\n").unwrap();
    os.close(fd).unwrap();
    let fd = os.open("/tmp/foo", OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"hello\n");
    os.close(fd).unwrap();
}

#[test]
fn write_truncates_append_appends() {
    let mut os = SimOs::new();
    let fd = os.open("/tmp/f", OpenMode::Write).unwrap();
    write_all(&mut os, fd, b"one\n").unwrap();
    os.close(fd).unwrap();
    let fd = os.open("/tmp/f", OpenMode::Append).unwrap();
    write_all(&mut os, fd, b"two\n").unwrap();
    os.close(fd).unwrap();
    let fd = os.open("/tmp/f", OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"one\ntwo\n");
    os.close(fd).unwrap();
    let fd = os.open("/tmp/f", OpenMode::Write).unwrap();
    os.close(fd).unwrap();
    let fd = os.open("/tmp/f", OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"", "Write truncates");
    os.close(fd).unwrap();
}

#[test]
fn open_missing_file_is_enoent() {
    let mut os = SimOs::new();
    assert_eq!(
        os.open("/no/where", OpenMode::Read),
        Err(OsError::NoEnt("/no/where".into()))
    );
}

#[test]
fn pipes_carry_bytes_and_eof() {
    let mut os = SimOs::new();
    let (r, w) = os.pipe().unwrap();
    write_all(&mut os, w, b"abc").unwrap();
    os.close(w).unwrap();
    assert_eq!(read_all(&mut os, r).unwrap(), b"abc");
    os.close(r).unwrap();
}

#[test]
fn write_to_pipe_without_reader_is_epipe() {
    let mut os = SimOs::new();
    let (r, w) = os.pipe().unwrap();
    os.close(r).unwrap();
    assert_eq!(os.write(w, b"x"), Err(OsError::Pipe));
}

#[test]
fn dup_shares_description() {
    let mut os = SimOs::new();
    let (r, w) = os.pipe().unwrap();
    let w2 = os.dup(w).unwrap();
    os.close(w).unwrap();
    // Still one writer: the pipe is not EOF yet conceptually, and the
    // dup'd descriptor still works.
    write_all(&mut os, w2, b"via dup").unwrap();
    os.close(w2).unwrap();
    assert_eq!(read_all(&mut os, r).unwrap(), b"via dup");
}

#[test]
fn chdir_and_cwd() {
    let mut os = SimOs::new();
    assert_eq!(os.cwd(), "/home/user");
    os.chdir("/tmp").unwrap();
    assert_eq!(os.cwd(), "/tmp");
    assert_eq!(os.chdir("/temp"), Err(OsError::NoEnt("/temp".into())));
    assert_eq!(
        os.chdir("/temp").unwrap_err().to_string(),
        "/temp: No such file or directory",
        "the paper's `in /temp` example error text"
    );
    os.chdir("..").unwrap();
    assert_eq!(os.cwd(), "/");
}

#[test]
fn console_io_is_scriptable() {
    let mut os = SimOs::new();
    os.push_input("typed\n");
    let mut buf = [0u8; 16];
    let n = os.read(STDIN, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"typed\n");
    write_all(&mut os, STDOUT, b"printed").unwrap();
    assert_eq!(os.take_output(), "printed");
    assert_eq!(os.take_output(), "", "take clears");
}

#[test]
fn signals_queue_and_drain() {
    let mut os = SimOs::new();
    assert_eq!(os.take_signal(), None);
    os.raise_signal(Signal::Int);
    os.raise_signal(Signal::Term);
    assert_eq!(os.take_signal(), Some(Signal::Int));
    assert_eq!(os.take_signal(), Some(Signal::Term));
    assert_eq!(os.take_signal(), None);
}

#[test]
fn run_missing_program_is_enoent() {
    let mut os = SimOs::new();
    let err = os
        .run(&["/bin/nosuch".into()], &[], &[])
        .unwrap_err();
    assert_eq!(err, OsError::NoEnt("/bin/nosuch".into()));
}

#[test]
fn run_non_executable_is_eacces_or_noexec() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/data", b"hi").unwrap();
    assert_eq!(
        os.run(&["/tmp/data".into()], &[], &[]),
        Err(OsError::Access("/tmp/data".into()))
    );
    os.vfs_mut().set_executable("/tmp/data", true).unwrap();
    assert_eq!(
        os.run(&["/tmp/data".into()], &[], &[]),
        Err(OsError::NoExec("/tmp/data".into())),
        "executable scripts bounce back to the shell as ENOEXEC"
    );
}

// ---------------------------------------------------------------------------
// Coreutils.
// ---------------------------------------------------------------------------

#[test]
fn echo_basic_and_n() {
    let mut os = SimOs::new();
    assert_eq!(run_prog(&mut os, "echo", &["hi", "there"], "").1, "hi there\n");
    assert_eq!(run_prog(&mut os, "echo", &["-n", "x"], "").1, "x");
    assert_eq!(run_prog(&mut os, "echo", &[], "").1, "\n");
}

#[test]
fn cat_stdin_and_files() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/a", b"A\n").unwrap();
    os.vfs_mut().put_file("/tmp/b", b"B\n").unwrap();
    assert_eq!(run_prog(&mut os, "cat", &[], "from stdin").1, "from stdin");
    assert_eq!(run_prog(&mut os, "cat", &["/tmp/a", "/tmp/b"], "").1, "A\nB\n");
    let (status, _) = run_prog(&mut os, "cat", &["/tmp/missing"], "");
    assert_eq!(status, 1);
}

#[test]
fn tr_cs_splits_words_like_figure_1() {
    let mut os = SimOs::new();
    let (_, out) = run_prog(
        &mut os,
        "tr",
        &["-cs", "a-zA-Z0-9", "\\012"],
        "the quick, brown fox -- 42 times!\n",
    );
    let words: Vec<&str> = out.split('\n').filter(|w| !w.is_empty()).collect();
    assert_eq!(words, ["the", "quick", "brown", "fox", "42", "times"]);
}

#[test]
fn tr_translate_and_delete() {
    let mut os = SimOs::new();
    assert_eq!(run_prog(&mut os, "tr", &["a-z", "A-Z"], "abc!").1, "ABC!");
    assert_eq!(run_prog(&mut os, "tr", &["-d", "0-9"], "a1b2c3").1, "abc");
}

#[test]
fn sort_plain_numeric_reverse_unique() {
    let mut os = SimOs::new();
    assert_eq!(run_prog(&mut os, "sort", &[], "b\na\nc\n").1, "a\nb\nc\n");
    assert_eq!(
        run_prog(&mut os, "sort", &["-n"], "10\n9\n100\n").1,
        "9\n10\n100\n"
    );
    assert_eq!(
        run_prog(&mut os, "sort", &["-nr"], "  1 b\n 10 a\n  2 c\n").1,
        " 10 a\n  2 c\n  1 b\n"
    );
    assert_eq!(run_prog(&mut os, "sort", &["-u"], "b\na\nb\n").1, "a\nb\n");
}

#[test]
fn uniq_counts_adjacent_runs() {
    let mut os = SimOs::new();
    assert_eq!(run_prog(&mut os, "uniq", &[], "a\na\nb\na\n").1, "a\nb\na\n");
    // GNU format: `%7d ` count column.
    let (_, out) = run_prog(&mut os, "uniq", &["-c"], "x\nx\ny\n");
    assert_eq!(out, "      2 x\n      1 y\n");
}

#[test]
fn wc_counts() {
    let mut os = SimOs::new();
    // GNU pads stdin counts to 7 columns, space separated...
    let (_, out) = run_prog(&mut os, "wc", &[], "one two\nthree\n");
    assert_eq!(out, "      2       3      14\n");
    // ...but a single count type prints bare.
    let (_, out) = run_prog(&mut os, "wc", &["-l"], "a\nb\n");
    assert_eq!(out, "2\n");
    // Named files size the column to the digits of the total byte
    // count (here 10 + 6 = 16 bytes → width 2).
    os.vfs_mut().put_file("/tmp/f5", b"1\n2\n3\n4\n5\n").unwrap();
    os.vfs_mut().put_file("/tmp/u3", b"a\nb\nc\n").unwrap();
    let (_, out) = run_prog(&mut os, "wc", &["-l", "/tmp/f5", "/tmp/u3"], "");
    assert_eq!(out, " 5 /tmp/f5\n 3 /tmp/u3\n 8 total\n");
    let (_, out) = run_prog(&mut os, "wc", &["/tmp/f5"], "");
    assert_eq!(out, " 5  5 10 /tmp/f5\n");
}

#[test]
fn head_and_tail() {
    let mut os = SimOs::new();
    let input = "1\n2\n3\n4\n5\n";
    assert_eq!(run_prog(&mut os, "head", &["-2"], input).1, "1\n2\n");
    assert_eq!(run_prog(&mut os, "head", &["-n", "2"], input).1, "1\n2\n");
    assert_eq!(run_prog(&mut os, "tail", &["-2"], input).1, "4\n5\n");
    let eleven = (1..=11).map(|i| format!("{i}\n")).collect::<String>();
    assert_eq!(
        run_prog(&mut os, "head", &[], &eleven).1,
        (1..=10).map(|i| format!("{i}\n")).collect::<String>()
    );
}

#[test]
fn grep_patterns_and_status() {
    let mut os = SimOs::new();
    let input = "byron 4523\nroot 1\nbyron 99\n";
    let (st, out) = run_prog(&mut os, "grep", &["^byron"], input);
    assert_eq!(st, 0);
    assert_eq!(out, "byron 4523\nbyron 99\n");
    let (st, out) = run_prog(&mut os, "grep", &["-v", "^byron"], input);
    assert_eq!(st, 0);
    assert_eq!(out, "root 1\n");
    let (st, out) = run_prog(&mut os, "grep", &["-c", "byron"], input);
    assert_eq!((st, out.trim()), (0, "2"));
    let (st, _) = run_prog(&mut os, "grep", &["nomatch"], input);
    assert_eq!(st, 1);
    let (st, _) = run_prog(&mut os, "grep", &["(bad"], input);
    assert_eq!(st, 2);
}

#[test]
fn sed_q_s_p_d() {
    let mut os = SimOs::new();
    let input = "a\nb\nc\nd\n";
    assert_eq!(run_prog(&mut os, "sed", &["2q"], input).1, "a\nb\n");
    assert_eq!(run_prog(&mut os, "sed", &["s/a/X/"], input).1, "X\nb\nc\nd\n");
    assert_eq!(
        run_prog(&mut os, "sed", &["s/[ab]/X/"], "aa\nbb\n").1,
        "Xa\nXb\n"
    );
    assert_eq!(
        run_prog(&mut os, "sed", &["s/[ab]/X/g"], "ab\n").1,
        "XX\n"
    );
    assert_eq!(run_prog(&mut os, "sed", &["/b/d"], input).1, "a\nc\nd\n");
    assert_eq!(run_prog(&mut os, "sed", &["-n", "/c/p"], input).1, "c\n");
    assert_eq!(run_prog(&mut os, "sed", &["$d"], input).1, "a\nb\nc\n");
    assert_eq!(
        run_prog(&mut os, "sed", &["s/\\(.\\)x/<\\1>/"], "ax\n").1,
        "ax\n",
        "BRE-style escaped parens are literal in our ERE engine"
    );
    assert_eq!(
        run_prog(&mut os, "sed", &["s/(.)x/<\\1>/"], "ax\n").1,
        "<a>\n"
    );
}

#[test]
fn awk_print_fields() {
    let mut os = SimOs::new();
    let input = "byron 4523 0.0\nroot 1 0.0\n";
    assert_eq!(
        run_prog(&mut os, "awk", &["{print $2}"], input).1,
        "4523\n1\n"
    );
    assert_eq!(
        run_prog(&mut os, "awk", &["/^byron/ {print $2}"], input).1,
        "4523\n"
    );
    assert_eq!(run_prog(&mut os, "awk", &["{print NF}"], input).1, "3\n3\n");
}

#[test]
fn ls_and_file_programs() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/z", b"").unwrap();
    os.vfs_mut().put_file("/tmp/a", b"").unwrap();
    assert_eq!(run_prog(&mut os, "ls", &["/tmp"], "").1, "a\nz\n");
    run_prog(&mut os, "rm", &["/tmp/a"], "");
    assert!(!os.is_file("/tmp/a"));
    run_prog(&mut os, "touch", &["/tmp/new"], "");
    assert!(os.is_file("/tmp/new"));
    run_prog(&mut os, "mkdir", &["/tmp/dir"], "");
    assert!(os.is_dir("/tmp/dir"));
    run_prog(&mut os, "cp", &["/tmp/z", "/tmp/dir"], "");
    assert!(os.is_file("/tmp/dir/z"));
    run_prog(&mut os, "mv", &["/tmp/z", "/tmp/zz"], "");
    assert!(os.is_file("/tmp/zz") && !os.is_file("/tmp/z"));
    run_prog(&mut os, "rm", &["-r", "/tmp/dir"], "");
    assert!(!os.is_dir("/tmp/dir"));
}

#[test]
fn test_program_conditions() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/f", b"x").unwrap();
    assert_eq!(run_prog(&mut os, "test", &["-f", "/tmp/f"], "").0, 0);
    assert_eq!(run_prog(&mut os, "test", &["-f", "/tmp/g"], "").0, 1);
    assert_eq!(run_prog(&mut os, "test", &["-d", "/tmp"], "").0, 0);
    assert_eq!(run_prog(&mut os, "test", &["a", "=", "a"], "").0, 0);
    assert_eq!(run_prog(&mut os, "test", &["a", "!=", "a"], "").0, 1);
    assert_eq!(run_prog(&mut os, "test", &["3", "-lt", "5"], "").0, 0);
    assert_eq!(run_prog(&mut os, "test", &["!", "-f", "/tmp/g"], "").0, 0);
    assert_eq!(run_prog(&mut os, "[", &["-f", "/tmp/f", "]"], "").0, 0);
    assert_eq!(run_prog(&mut os, "[", &["-f", "/tmp/f"], "").0, 1, "missing ]");
}

#[test]
fn date_formats_virtual_clock() {
    let mut os = SimOs::new();
    let (_, out) = run_prog(&mut os, "date", &["+%y-%m-%d"], "");
    assert_eq!(out.trim(), "93-01-25", "the paper's `fn d` example format");
    os.advance_ns(86_400 * 1_000_000_000);
    let (_, out) = run_prog(&mut os, "date", &["+%Y/%m/%d %H:%M"], "");
    assert!(out.starts_with("1993/01/26"), "clock advanced: {out}");
}

#[test]
fn ps_grep_awk_xargs_kill_pipeline_by_hand() {
    // The paper's intro pipeline, staged manually through pipes:
    // ps aux | grep '^byron' | awk '{print $2}' | xargs kill -9
    let mut os = SimOs::new();
    let (_, ps_out) = run_prog(&mut os, "ps", &["aux"], "");
    assert!(ps_out.contains("byron"));
    let (_, grep_out) = run_prog(&mut os, "grep", &["^byron"], &ps_out);
    let (_, awk_out) = run_prog(&mut os, "awk", &["{print $2}"], &grep_out);
    let pids: Vec<&str> = awk_out.split_whitespace().collect();
    assert_eq!(pids, ["4523", "4619"]);
    let (st, _) = run_prog(&mut os, "xargs", &["kill", "-9"], &awk_out);
    assert_eq!(st, 0);
    let (_, ps_after) = run_prog(&mut os, "ps", &["aux"], "");
    assert!(!ps_after.contains("byron"), "byron's processes are gone");
}

#[test]
fn kill_shell_pid_queues_signal() {
    let mut os = SimOs::new();
    let pid = os.shell_pid.to_string();
    let (st, _) = run_prog(&mut os, "kill", &["-2", &pid], "");
    assert_eq!(st, 0);
    assert_eq!(os.take_signal(), Some(Signal::Int));
}

#[test]
fn figure1_pipeline_shape() {
    // cat paper | tr -cs a-zA-Z0-9 '\012' | sort | uniq -c | sort -nr | sed 6q
    let mut os = SimOs::new();
    let text = "the a the b the a to of is and the a to to a of\n".repeat(20);
    os.vfs_mut().put_file("/tmp/paper9", text.as_bytes()).unwrap();
    let (_, s1) = run_prog(&mut os, "cat", &["/tmp/paper9"], "");
    let (_, s2) = run_prog(&mut os, "tr", &["-cs", "a-zA-Z0-9", "\\012"], &s1);
    let (_, s3) = run_prog(&mut os, "sort", &[], &s2);
    let (_, s4) = run_prog(&mut os, "uniq", &["-c"], &s3);
    let (_, s5) = run_prog(&mut os, "sort", &["-nr"], &s4);
    let (_, s6) = run_prog(&mut os, "sed", &["6q"], &s5);
    let lines: Vec<&str> = s6.lines().collect();
    assert_eq!(lines.len(), 6);
    // "the" appears 4x20=80 times, the most frequent word.
    assert!(lines[0].trim().starts_with("80"), "top line: {}", lines[0]);
    assert!(lines[0].ends_with("the"));
    // Counts are non-increasing down the list.
    let counts: Vec<i64> = lines
        .iter()
        .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
        .collect();
    assert!(counts.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn virtual_time_advances_with_work() {
    let mut os = SimOs::new();
    let t0 = os.now_ns();
    let r0 = os.children_rusage();
    run_prog(&mut os, "echo", &["hi"], "");
    assert!(os.now_ns() > t0, "real time advanced");
    let r1 = os.children_rusage();
    assert!(r1.user_ns > r0.user_ns && r1.sys_ns > r0.sys_ns);
    // Sort charges more user time than cat for the same bytes.
    let base = os.children_rusage();
    let input = "z\ny\nx\nw\nv\nu\n".repeat(200);
    run_prog(&mut os, "cat", &[], &input);
    let cat_cost = os.children_rusage() - base;
    let base = os.children_rusage();
    run_prog(&mut os, "sort", &[], &input);
    let sort_cost = os.children_rusage() - base;
    assert!(
        sort_cost.user_ns > cat_cost.user_ns,
        "sort {} !> cat {}",
        sort_cost.user_ns,
        cat_cost.user_ns
    );
}

#[test]
fn fork_clone_is_independent() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/shared", b"1").unwrap();
    let mut child = os.clone();
    child.vfs_mut().put_file("/tmp/childonly", b"2").unwrap();
    child.chdir("/tmp").unwrap();
    assert!(!os.is_file("/tmp/childonly"));
    assert_eq!(os.cwd(), "/home/user");
    assert_eq!(child.cwd(), "/tmp");
}

#[test]
fn basename_dirname_pwd() {
    let mut os = SimOs::new();
    assert_eq!(run_prog(&mut os, "basename", &["/a/b/c.txt"], "").1, "c.txt\n");
    assert_eq!(
        run_prog(&mut os, "basename", &["/a/b/c.txt", ".txt"], "").1,
        "c\n"
    );
    assert_eq!(run_prog(&mut os, "dirname", &["/a/b/c.txt"], "").1, "/a/b\n");
    assert_eq!(run_prog(&mut os, "dirname", &["plain"], "").1, ".\n");
    assert_eq!(run_prog(&mut os, "pwd", &[], "").1, "/home/user\n");
}

#[test]
fn seq_and_tee() {
    let mut os = SimOs::new();
    assert_eq!(run_prog(&mut os, "seq", &["3"], "").1, "1\n2\n3\n");
    assert_eq!(run_prog(&mut os, "seq", &["2", "4"], "").1, "2\n3\n4\n");
    let (_, out) = run_prog(&mut os, "tee", &["/tmp/copy"], "data\n");
    assert_eq!(out, "data\n");
    let fd = os.open("/tmp/copy", OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"data\n");
}

#[test]
fn env_program_reports_environment() {
    let mut os = SimOs::new();
    let (_, out) = run_prog(&mut os, "env", &[], "");
    assert!(out.contains("HOME=/home/user"));
    assert!(out.contains("PATH=/bin:/usr/bin"));
}

#[test]
fn sleep_advances_real_clock_only() {
    let mut os = SimOs::new();
    let r0 = os.children_rusage();
    let t0 = os.now_ns();
    run_prog(&mut os, "sleep", &["2"], "");
    assert!(os.now_ns() - t0 >= 2_000_000_000);
    let cpu = os.children_rusage() - r0;
    assert!(cpu.total_ns() < 1_000_000_000, "sleep burns no CPU");
}

proptest! {
    #[test]
    fn prop_sort_output_is_sorted_permutation(
        lines in proptest::collection::vec("[a-z]{0,6}", 0..40)
    ) {
        let mut os = SimOs::new();
        let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let (st, out) = run_prog(&mut os, "sort", &[], &input);
        prop_assert_eq!(st, 0);
        let mut got: Vec<&str> = out.lines().collect();
        let mut want: Vec<&str> = lines.iter().map(String::as_str).collect();
        prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prop_wc_l_equals_line_count(lines in proptest::collection::vec("[a-z ]{0,10}", 0..30)) {
        let mut os = SimOs::new();
        let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let (_, out) = run_prog(&mut os, "wc", &["-l"], &input);
        prop_assert_eq!(out.trim().parse::<usize>().unwrap(), lines.len());
    }

    #[test]
    fn prop_grep_v_partitions(lines in proptest::collection::vec("[ab]{1,4}", 1..30)) {
        let mut os = SimOs::new();
        let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let (_, hits) = run_prog(&mut os, "grep", &["^a"], &input);
        let (_, misses) = run_prog(&mut os, "grep", &["-v", "^a"], &input);
        prop_assert_eq!(hits.lines().count() + misses.lines().count(), lines.len());
        prop_assert!(hits.lines().all(|l| l.starts_with('a')));
        prop_assert!(misses.lines().all(|l| !l.starts_with('a')));
    }

    #[test]
    fn prop_head_tail_cover(n in 1usize..20, k in 0usize..25) {
        let mut os = SimOs::new();
        let lines: Vec<String> = (0..n).map(|i| format!("line{i}")).collect();
        let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let karg = k.to_string();
        let (_, h) = run_prog(&mut os, "head", &["-n", &karg], &input);
        let (_, t) = run_prog(&mut os, "tail", &["-n", &karg], &input);
        prop_assert_eq!(h.lines().count(), k.min(n));
        prop_assert_eq!(t.lines().count(), k.min(n));
    }
}

// ---------------------------------------------------------------------------
// The extra utilities (expr, cut, printf, nl, tac, cmp, which).
// ---------------------------------------------------------------------------

#[test]
fn expr_arithmetic_and_comparisons() {
    let mut os = SimOs::new();
    assert_eq!(run_prog(&mut os, "expr", &["2", "+", "3"], ""), (0, "5\n".into()));
    assert_eq!(run_prog(&mut os, "expr", &["10", "-", "4", "*", "2"], "").1, "12\n");
    assert_eq!(run_prog(&mut os, "expr", &["7", "/", "2"], "").1, "3\n");
    assert_eq!(run_prog(&mut os, "expr", &["7", "%", "2"], "").1, "1\n");
    assert_eq!(run_prog(&mut os, "expr", &["3", "<", "5"], ""), (0, "1\n".into()));
    assert_eq!(run_prog(&mut os, "expr", &["5", "<", "3"], ""), (1, "0\n".into()));
    assert_eq!(run_prog(&mut os, "expr", &["4", "=", "4"], "").0, 0);
    let (st, _) = run_prog(&mut os, "expr", &["1", "/", "0"], "");
    assert_eq!(st, 1);
    let (st, _) = run_prog(&mut os, "expr", &["x"], "");
    assert_eq!(st, 1);
}

#[test]
fn cut_fields_and_chars() {
    let mut os = SimOs::new();
    let input = "a:b:c\nd:e:f\n";
    assert_eq!(
        run_prog(&mut os, "cut", &["-d", ":", "-f", "2"], input).1,
        "b\ne\n"
    );
    assert_eq!(
        run_prog(&mut os, "cut", &["-d", ":", "-f", "1,3"], input).1,
        "a:c\nd:f\n"
    );
    assert_eq!(run_prog(&mut os, "cut", &["-c", "2-3"], "abcdef\n").1, "bc\n");
    assert_eq!(run_prog(&mut os, "cut", &["-c", "2"], "abc\n").1, "b\n");
    let (st, _) = run_prog(&mut os, "cut", &[], "x\n");
    assert_eq!(st, 1);
}

#[test]
fn printf_formats() {
    let mut os = SimOs::new();
    assert_eq!(
        run_prog(&mut os, "printf", &["%s=%d\\n", "a", "1", "b", "2"], "").1,
        "a=1\nb=2\n"
    );
    assert_eq!(run_prog(&mut os, "printf", &["100%%\\n"], "").1, "100%\n");
    assert_eq!(run_prog(&mut os, "printf", &["x\\ty\\n"], "").1, "x\ty\n");
}

#[test]
fn nl_tac_cmp_which() {
    let mut os = SimOs::new();
    assert_eq!(
        run_prog(&mut os, "nl", &[], "a\nb\n").1,
        format!("{:6}\ta\n{:6}\tb\n", 1, 2)
    );
    assert_eq!(run_prog(&mut os, "tac", &[], "1\n2\n3\n").1, "3\n2\n1\n");
    os.vfs_mut().put_file("/tmp/x", b"same").unwrap();
    os.vfs_mut().put_file("/tmp/y", b"same").unwrap();
    os.vfs_mut().put_file("/tmp/z", b"diff").unwrap();
    assert_eq!(run_prog(&mut os, "cmp", &["/tmp/x", "/tmp/y"], "").0, 0);
    assert_eq!(run_prog(&mut os, "cmp", &["/tmp/x", "/tmp/z"], "").0, 1);
    assert_eq!(run_prog(&mut os, "which", &["ls"], "").1, "/bin/ls\n");
    assert_eq!(run_prog(&mut os, "which", &["nosuch"], "").0, 1);
}

// --------------------------------------------------------------------------
// Fault injection (crate::fault)
// --------------------------------------------------------------------------

use crate::fault::{FaultKind, FaultPlan, Syscall};
use crate::{retry_intr, write_fully};

#[test]
fn fault_scheduled_fires_on_exact_call() {
    let mut os = SimOs::new();
    os.set_fault_plan(Some(
        FaultPlan::new(1).scheduled(Syscall::Open, 2, FaultKind::MFile),
    ));
    let a = os.open("/tmp/a", OpenMode::Write).unwrap();
    assert_eq!(os.open("/tmp/b", OpenMode::Write), Err(OsError::MFile));
    let c = os.open("/tmp/c", OpenMode::Write).unwrap();
    os.close(a).unwrap();
    os.close(c).unwrap();
    let log = os.take_fault_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].syscall, Syscall::Open);
    assert_eq!(log[0].call, 2);
    assert_eq!(log[0].kind, FaultKind::MFile);
}

#[test]
fn fault_eintr_is_injected_before_state_changes() {
    // An interrupted open must not create, truncate, or leak anything;
    // a retry loop must succeed and see the original file intact.
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/keep", b"payload").unwrap();
    let baseline = os.open_desc_count();
    os.set_fault_plan(Some(
        FaultPlan::new(2)
            .scheduled(Syscall::Open, 1, FaultKind::Intr)
            .scheduled(Syscall::Close, 1, FaultKind::Intr),
    ));
    let fd = retry_intr(|| os.open("/tmp/keep", OpenMode::Read)).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"payload");
    retry_intr(|| os.close(fd)).unwrap();
    assert_eq!(os.open_desc_count(), baseline, "no leaked descriptor");
    assert_eq!(os.take_fault_log().len(), 2);
}

#[test]
fn fault_partial_write_consumes_prefix_and_write_fully_loops() {
    let mut os = SimOs::new();
    os.set_fault_plan(Some(
        FaultPlan::new(3).scheduled(Syscall::Write, 1, FaultKind::PartialWrite),
    ));
    let fd = os.open("/tmp/partial", OpenMode::Write).unwrap();
    let n = os.write(fd, b"0123456789").unwrap();
    assert!((1..10).contains(&n), "strict nonempty prefix, got {n}");
    // The hardened writer finishes the job across the fault.
    let fd2 = os.open("/tmp/full", OpenMode::Write).unwrap();
    os.set_fault_plan(Some(
        FaultPlan::new(3)
            .scheduled(Syscall::Write, 1, FaultKind::PartialWrite)
            .scheduled(Syscall::Write, 2, FaultKind::Intr),
    ));
    assert_eq!(write_fully(&mut os, fd2, b"0123456789"), Ok(10));
    os.close(fd).unwrap();
    os.close(fd2).unwrap();
    let fd = os.open("/tmp/full", OpenMode::Read).unwrap();
    assert_eq!(read_all(&mut os, fd).unwrap(), b"0123456789");
    os.close(fd).unwrap();
}

#[test]
fn fault_short_read_is_not_eof() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/data", b"abcdefgh").unwrap();
    os.set_fault_plan(Some(
        FaultPlan::new(4).scheduled(Syscall::Read, 1, FaultKind::ShortRead),
    ));
    let fd = os.open("/tmp/data", OpenMode::Read).unwrap();
    // read_all keeps reading past the short read and sees every byte.
    assert_eq!(read_all(&mut os, fd).unwrap(), b"abcdefgh");
    os.close(fd).unwrap();
    let log = os.take_fault_log();
    assert_eq!(log[0].kind, FaultKind::ShortRead);
}

#[test]
fn fault_write_fully_reports_bytes_written_on_hard_error() {
    let mut os = SimOs::new();
    os.set_fault_plan(Some(
        FaultPlan::new(5)
            .scheduled(Syscall::Write, 1, FaultKind::PartialWrite)
            .scheduled(Syscall::Write, 2, FaultKind::NoSpc),
    ));
    let fd = os.open("/tmp/out", OpenMode::Write).unwrap();
    let err = write_fully(&mut os, fd, b"0123456789").unwrap_err();
    assert_eq!(err.cause, OsError::NoSpc(String::new()));
    assert!((1..10).contains(&err.written), "{}", err.written);
    os.close(fd).unwrap();
}

#[test]
fn fault_probabilistic_plan_replays_identically() {
    // Two runs of the same syscall trace under the same seed inject
    // byte-identically; a different seed diverges (overwhelmingly).
    fn trace(seed: u64) -> (Vec<String>, Vec<u8>) {
        let mut os = SimOs::new();
        os.set_fault_plan(Some(FaultPlan::new(seed).uniform_rate(200)));
        let mut outcomes = Vec::new();
        for i in 0..40 {
            let path = format!("/tmp/f{i}");
            match retry_intr(|| os.open(&path, OpenMode::Write)) {
                Ok(fd) => {
                    let r = write_fully(&mut os, fd, format!("line {i}\n").as_bytes());
                    outcomes.push(format!("open+write {i}: {r:?}"));
                    retry_intr(|| os.close(fd)).ok();
                }
                Err(e) => outcomes.push(format!("open {i}: {e:?}")),
            }
        }
        let log = os
            .take_fault_log()
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(";")
            .into_bytes();
        (outcomes, log)
    }
    let (a1, l1) = trace(42);
    let (a2, l2) = trace(42);
    assert_eq!(a1, a2, "outcomes replay from the seed");
    assert_eq!(l1, l2, "fault log replays from the seed");
    assert!(!l1.is_empty(), "a 20% uniform rate injects something in 40 iterations");
    let (a3, _) = trace(43);
    assert_ne!(a1, a3, "different seed, different weather");
}

#[test]
fn fault_zero_rate_plan_is_inert() {
    let mut os = SimOs::new();
    os.set_fault_plan(Some(FaultPlan::new(9)));
    let (st, out) = run_prog(&mut os, "echo", &["quiet"], "");
    assert_eq!((st, out.as_str()), (0, "quiet\n"));
    assert!(os.take_fault_log().is_empty());
    assert!(os.fault_plan().unwrap().calls_seen() > 0, "plan was consulted");
}

#[test]
fn signal_parse_full_alias_table() {
    let table: &[(&str, Signal)] = &[
        ("2", Signal::Int),
        ("int", Signal::Int),
        ("sigint", Signal::Int),
        ("INT", Signal::Int),
        ("SIGINT", Signal::Int),
        ("-sigint", Signal::Int),
        ("-9", Signal::Kill),
        ("9", Signal::Kill),
        ("kill", Signal::Kill),
        ("SIGKILL", Signal::Kill),
        ("15", Signal::Term),
        ("term", Signal::Term),
        ("SIGTERM", Signal::Term),
        ("1", Signal::Hup),
        ("hup", Signal::Hup),
        ("SIGHUP", Signal::Hup),
        ("3", Signal::Quit),
        ("quit", Signal::Quit),
        ("SIGQUIT", Signal::Quit),
        ("14", Signal::Alrm),
        ("alrm", Signal::Alrm),
        ("SIGALRM", Signal::Alrm),
        ("-SigAlrm", Signal::Alrm),
    ];
    for &(s, want) in table {
        assert_eq!(Signal::parse(s), Some(want), "parse({s:?})");
    }
    for bad in ["", "-", "--", "sig", "99", "sigbogus", "int9", " int"] {
        assert_eq!(Signal::parse(bad), None, "parse({bad:?}) should fail");
    }
}

#[test]
fn scheduled_signal_delivers_once_clock_reaches_it() {
    let mut os = SimOs::new();
    os.schedule_signal(500, Signal::Int);
    assert_eq!(os.take_signal(), None, "not due yet");
    os.advance_ns(499);
    assert_eq!(os.take_signal(), None, "one ns early");
    os.advance_ns(1);
    assert_eq!(os.take_signal(), Some(Signal::Int), "due at exactly 500");
    assert_eq!(os.take_signal(), None, "delivered only once");
}

#[test]
fn scheduled_signals_deliver_in_time_order_after_queued_ones() {
    let mut os = SimOs::new();
    os.schedule_signal(200, Signal::Term);
    os.schedule_signal(100, Signal::Hup);
    os.raise_signal(Signal::Int);
    os.advance_ns(1_000);
    assert_eq!(os.take_signal(), Some(Signal::Int), "queued signals first");
    assert_eq!(os.take_signal(), Some(Signal::Hup), "then earliest scheduled");
    assert_eq!(os.take_signal(), Some(Signal::Term));
    assert_eq!(os.take_signal(), None);
}

// --------------------------------------------------------------------------
// Multi-input text programs (paste, comm) — output formats follow GNU
// coreutils byte-for-byte so the differential conformance oracle can
// compare them directly against the real binaries.
// --------------------------------------------------------------------------

#[test]
fn paste_merges_corresponding_lines_with_tabs() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/p1", b"a\nb\nc\n").unwrap();
    os.vfs_mut().put_file("/tmp/p2", b"x\ny\n").unwrap();
    let (status, out) = run_prog(&mut os, "paste", &["/tmp/p1", "/tmp/p2"], "");
    assert_eq!(status, 0);
    // The exhausted second file still contributes an (empty) field.
    assert_eq!(out, "a\tx\nb\ty\nc\t\n");
}

#[test]
fn paste_custom_delimiters_cycle() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/p1", b"a\nb\n").unwrap();
    os.vfs_mut().put_file("/tmp/p2", b"x\ny\n").unwrap();
    let (status, out) = run_prog(&mut os, "paste", &["-d", ":", "/tmp/p1", "/tmp/p2"], "");
    assert_eq!(status, 0);
    assert_eq!(out, "a:x\nb:y\n");
    let (status, out) = run_prog(
        &mut os,
        "paste",
        &["-d", ":;", "/tmp/p1", "/tmp/p2", "/tmp/p1"],
        "",
    );
    assert_eq!(status, 0, "delimiter list cycles across three columns");
    assert_eq!(out, "a:x;a\nb:y;b\n");
}

#[test]
fn paste_serial_joins_each_file_on_one_line() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/p1", b"a\nb\nc\n").unwrap();
    os.vfs_mut().put_file("/tmp/p2", b"x\ny\n").unwrap();
    let (status, out) = run_prog(&mut os, "paste", &["-s", "/tmp/p1", "/tmp/p2"], "");
    assert_eq!(status, 0);
    assert_eq!(out, "a\tb\tc\nx\ty\n");
}

#[test]
fn paste_reads_stdin_for_dash_and_no_operands() {
    let mut os = SimOs::new();
    let (status, out) = run_prog(&mut os, "paste", &[], "one\ntwo\n");
    assert_eq!(status, 0);
    assert_eq!(out, "one\ntwo\n");
    os.vfs_mut().put_file("/tmp/p1", b"a\nb\n").unwrap();
    let (status, out) = run_prog(&mut os, "paste", &["/tmp/p1", "-"], "one\ntwo\n");
    assert_eq!(status, 0);
    assert_eq!(out, "a\tone\nb\ttwo\n");
}

#[test]
fn paste_missing_file_fails() {
    let mut os = SimOs::new();
    let (status, _) = run_prog(&mut os, "paste", &["/tmp/nope"], "");
    assert_eq!(status, 1);
}

#[test]
fn comm_three_columns_with_tab_indents() {
    let mut os = SimOs::new();
    os.vfs_mut()
        .put_file("/tmp/c1", b"apple\nbanana\ncherry\n")
        .unwrap();
    os.vfs_mut().put_file("/tmp/c2", b"banana\ndate\n").unwrap();
    let (status, out) = run_prog(&mut os, "comm", &["/tmp/c1", "/tmp/c2"], "");
    assert_eq!(status, 0);
    assert_eq!(out, "apple\n\t\tbanana\ncherry\n\tdate\n");
}

#[test]
fn comm_suppression_flags_shrink_indentation() {
    let mut os = SimOs::new();
    os.vfs_mut()
        .put_file("/tmp/c1", b"apple\nbanana\ncherry\n")
        .unwrap();
    os.vfs_mut().put_file("/tmp/c2", b"banana\ndate\n").unwrap();
    let case = |os: &mut SimOs, flags: &str| run_prog(os, "comm", &[flags, "/tmp/c1", "/tmp/c2"], "").1;
    assert_eq!(case(&mut os, "-12"), "banana\n", "only the common column, unindented");
    assert_eq!(case(&mut os, "-3"), "apple\ncherry\n\tdate\n");
    assert_eq!(case(&mut os, "-23"), "apple\ncherry\n");
    assert_eq!(case(&mut os, "-1"), "\tbanana\ndate\n", "col2 bare, col3 one tab");
    let (status, _) = run_prog(&mut os, "comm", &["/tmp/c1"], "");
    assert_eq!(status, 1, "comm needs exactly two operands");
}

#[test]
fn comm_reads_stdin_for_dash() {
    let mut os = SimOs::new();
    os.vfs_mut().put_file("/tmp/c1", b"a\nm\nz\n").unwrap();
    let (status, out) = run_prog(&mut os, "comm", &["/tmp/c1", "-"], "m\n");
    assert_eq!(status, 0);
    assert_eq!(out, "a\n\t\tm\nz\n");
}

// ----- kernel fingerprint (the serving pool's reset oracle) ----------------

/// The fingerprint is a pure function of kernel state: two kernels
/// driven through the same operations digest identically, and a fresh
/// boot always digests the same.
#[test]
fn fingerprint_is_deterministic_across_same_ops() {
    assert_eq!(SimOs::new().fingerprint(), SimOs::new().fingerprint());
    let drive = || {
        let mut os = SimOs::new();
        let fd = os.open("/tmp/fp", OpenMode::Write).unwrap();
        write_all(&mut os, fd, b"same bytes\n").unwrap();
        os.close(fd).unwrap();
        os.advance_ns(1_000);
        run_prog(&mut os, "echo", &["hello"], "");
        os.fingerprint()
    };
    assert_eq!(drive(), drive());
}

/// Every tenant-observable mutation moves the digest: file contents,
/// a dangling open descriptor, buffered console bytes, and the clock
/// each produce a distinct fingerprint. This is what lets the pool
/// audit a recycled slot against its boot image with one comparison.
#[test]
fn fingerprint_is_sensitive_to_observable_state() {
    let boot = SimOs::new().fingerprint();
    let mut seen = vec![boot];
    let mut check = |os: &SimOs, what: &str| {
        let fp = os.fingerprint();
        assert!(!seen.contains(&fp), "{what} did not change the fingerprint");
        seen.push(fp);
    };

    let mut os = SimOs::new();
    let fd = os.open("/tmp/dirt", OpenMode::Write).unwrap();
    write_all(&mut os, fd, b"residue").unwrap();
    check(&os, "writing a file (with its fd still open)");
    os.close(fd).unwrap();
    check(&os, "closing the fd (file remains)");

    let mut os = SimOs::new();
    let _leak = os.open("/bin/echo", OpenMode::Read).unwrap();
    check(&os, "leaking an open descriptor");

    let mut os = SimOs::new();
    write_all(&mut os, crate::STDERR, b"unclaimed warning").unwrap();
    check(&os, "buffered console stderr");

    let mut os = SimOs::new();
    os.advance_ns(1);
    check(&os, "advancing the virtual clock");
}
