//! The in-memory filesystem behind [`crate::SimOs`].
//!
//! A straightforward inode table: directories are name→inode maps,
//! files carry their bytes plus an optional *program key* naming an
//! entry in the simulated-program registry (that is how `/bin/cat`
//! "executes"). Paths are resolved UNIX-style against a current
//! working directory, with `.` and `..` handling.

use crate::error::{OsError, OsResult};
use std::collections::BTreeMap;

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ino(pub(crate) usize);

/// One filesystem node.
#[derive(Debug, Clone)]
pub enum Node {
    /// A directory: sorted name → inode map.
    Dir(BTreeMap<String, Ino>),
    /// A regular file.
    File {
        /// File contents.
        data: Vec<u8>,
        /// If set, the file is an executable bound to this key in the
        /// simulated program registry.
        program: Option<String>,
        /// Executable permission bit (scripts may be executable
        /// without a program key).
        executable: bool,
    },
}

/// The filesystem: an inode table plus the root inode.
#[derive(Debug, Clone)]
pub struct Vfs {
    nodes: Vec<Node>,
}

/// Result of a path resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolved {
    /// The path names this existing inode.
    Found(Ino),
    /// The parent directory exists but the final component does not.
    /// Carries the parent inode (creation can proceed).
    Missing(Ino),
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates a filesystem containing only an empty root directory.
    pub fn new() -> Vfs {
        Vfs {
            nodes: vec![Node::Dir(BTreeMap::new())],
        }
    }

    /// The root directory's inode.
    pub fn root(&self) -> Ino {
        Ino(0)
    }

    fn node(&self, ino: Ino) -> &Node {
        &self.nodes[ino.0]
    }

    fn node_mut(&mut self, ino: Ino) -> &mut Node {
        &mut self.nodes[ino.0]
    }

    /// Normalises `path` against `cwd` into absolute components.
    /// `cwd` must itself be absolute ("/" separated, starting with /).
    pub fn normalize(path: &str, cwd: &str) -> Vec<String> {
        let mut comps: Vec<String> = Vec::new();
        let full: String = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("{}/{}", cwd.trim_end_matches('/'), path)
        };
        for part in full.split('/') {
            match part {
                "" | "." => {}
                ".." => {
                    comps.pop();
                }
                other => comps.push(other.to_string()),
            }
        }
        comps
    }

    /// Resolves `path` (relative to `cwd`) to an inode, or to its
    /// would-be parent if only the final component is missing.
    pub fn resolve(&self, path: &str, cwd: &str) -> OsResult<Resolved> {
        let comps = Self::normalize(path, cwd);
        let mut cur = self.root();
        for (i, comp) in comps.iter().enumerate() {
            let last = i + 1 == comps.len();
            match self.node(cur) {
                Node::Dir(entries) => match entries.get(comp) {
                    Some(&child) => cur = child,
                    None if last => return Ok(Resolved::Missing(cur)),
                    None => return Err(OsError::NoEnt(path.to_string())),
                },
                Node::File { .. } => return Err(OsError::NotDir(path.to_string())),
            }
        }
        Ok(Resolved::Found(cur))
    }

    /// Resolves `path` to an existing inode or fails with ENOENT.
    pub fn lookup(&self, path: &str, cwd: &str) -> OsResult<Ino> {
        match self.resolve(path, cwd)? {
            Resolved::Found(ino) => Ok(ino),
            Resolved::Missing(_) => Err(OsError::NoEnt(path.to_string())),
        }
    }

    /// Returns true if `path` names an existing regular file.
    pub fn is_file(&self, path: &str, cwd: &str) -> bool {
        matches!(
            self.lookup(path, cwd).map(|i| self.node(i)),
            Ok(Node::File { .. })
        )
    }

    /// Returns true if `path` names an existing directory.
    pub fn is_dir(&self, path: &str, cwd: &str) -> bool {
        matches!(self.lookup(path, cwd).map(|i| self.node(i)), Ok(Node::Dir(_)))
    }

    /// Returns true if `path` is an executable file.
    pub fn is_executable(&self, path: &str, cwd: &str) -> bool {
        matches!(
            self.lookup(path, cwd).map(|i| self.node(i)),
            Ok(Node::File { executable: true, .. })
                | Ok(Node::File { program: Some(_), .. })
        )
    }

    /// The program-registry key of an executable, if any.
    pub fn program_of(&self, ino: Ino) -> Option<&str> {
        match self.node(ino) {
            Node::File { program: Some(p), .. } => Some(p),
            _ => None,
        }
    }

    /// Whole contents of the file at `ino`.
    ///
    /// # Panics
    ///
    /// Panics if `ino` is a directory (callers check first).
    pub fn file_data(&self, ino: Ino) -> &[u8] {
        match self.node(ino) {
            Node::File { data, .. } => data,
            Node::Dir(_) => panic!("file_data on a directory"),
        }
    }

    /// Byte length of the file at `ino` (0 for directories).
    pub fn file_len(&self, ino: Ino) -> usize {
        match self.node(ino) {
            Node::File { data, .. } => data.len(),
            Node::Dir(_) => 0,
        }
    }

    /// Reads up to `buf.len()` bytes at `offset`.
    pub fn read_at(&self, ino: Ino, offset: usize, buf: &mut [u8]) -> usize {
        let data = self.file_data(ino);
        if offset >= data.len() {
            return 0;
        }
        let n = buf.len().min(data.len() - offset);
        buf[..n].copy_from_slice(&data[offset..offset + n]);
        n
    }

    /// Writes `bytes` at `offset`, zero-filling any gap.
    pub fn write_at(&mut self, ino: Ino, offset: usize, bytes: &[u8]) {
        match self.node_mut(ino) {
            Node::File { data, .. } => {
                if data.len() < offset {
                    data.resize(offset, 0);
                }
                let end = offset + bytes.len();
                if end <= data.len() {
                    data[offset..end].copy_from_slice(bytes);
                } else {
                    data.truncate(offset);
                    data.extend_from_slice(bytes);
                }
            }
            Node::Dir(_) => panic!("write_at on a directory"),
        }
    }

    /// Truncates the file to zero length.
    pub fn truncate(&mut self, ino: Ino) {
        match self.node_mut(ino) {
            Node::File { data, .. } => data.clear(),
            Node::Dir(_) => panic!("truncate on a directory"),
        }
    }

    /// Creates (or opens, if `exclusive` is false) a regular file.
    /// Returns its inode. Fails with EEXIST if `exclusive` and present,
    /// EISDIR if the path is a directory.
    pub fn create_file(&mut self, path: &str, cwd: &str, exclusive: bool) -> OsResult<Ino> {
        match self.resolve(path, cwd)? {
            Resolved::Found(ino) => match self.node(ino) {
                Node::Dir(_) => Err(OsError::IsDir(path.to_string())),
                Node::File { .. } if exclusive => Err(OsError::Exists(path.to_string())),
                Node::File { .. } => Ok(ino),
            },
            Resolved::Missing(parent) => {
                let name = Self::normalize(path, cwd)
                    .pop()
                    .ok_or_else(|| OsError::Inval(path.to_string()))?;
                let ino = Ino(self.nodes.len());
                self.nodes.push(Node::File {
                    data: Vec::new(),
                    program: None,
                    executable: false,
                });
                match self.node_mut(parent) {
                    Node::Dir(entries) => {
                        entries.insert(name, ino);
                    }
                    Node::File { .. } => unreachable!("parent is a dir by construction"),
                }
                Ok(ino)
            }
        }
    }

    /// Creates a directory. Fails with EEXIST if the path exists.
    pub fn mkdir(&mut self, path: &str, cwd: &str) -> OsResult<Ino> {
        match self.resolve(path, cwd)? {
            Resolved::Found(_) => Err(OsError::Exists(path.to_string())),
            Resolved::Missing(parent) => {
                let name = Self::normalize(path, cwd)
                    .pop()
                    .ok_or_else(|| OsError::Inval(path.to_string()))?;
                let ino = Ino(self.nodes.len());
                self.nodes.push(Node::Dir(BTreeMap::new()));
                match self.node_mut(parent) {
                    Node::Dir(entries) => {
                        entries.insert(name, ino);
                    }
                    Node::File { .. } => unreachable!("parent is a dir by construction"),
                }
                Ok(ino)
            }
        }
    }

    /// Creates every missing directory along `path` (mkdir -p).
    pub fn mkdir_all(&mut self, path: &str) -> OsResult<Ino> {
        let comps = Self::normalize(path, "/");
        let mut cur = "/".to_string();
        let mut ino = self.root();
        for comp in comps {
            let next = format!("{}/{}", cur.trim_end_matches('/'), comp);
            ino = match self.resolve(&next, "/")? {
                Resolved::Found(i) => match self.node(i) {
                    Node::Dir(_) => i,
                    Node::File { .. } => return Err(OsError::NotDir(next)),
                },
                Resolved::Missing(_) => self.mkdir(&next, "/")?,
            };
            cur = next;
        }
        Ok(ino)
    }

    /// Removes a file (not a directory).
    pub fn unlink(&mut self, path: &str, cwd: &str) -> OsResult<()> {
        let comps = Self::normalize(path, cwd);
        let name = comps.last().cloned().ok_or(OsError::Inval(path.into()))?;
        let ino = self.lookup(path, cwd)?;
        if matches!(self.node(ino), Node::Dir(_)) {
            return Err(OsError::IsDir(path.to_string()));
        }
        let parent_path: String = format!("/{}", comps[..comps.len() - 1].join("/"));
        let parent = self.lookup(&parent_path, "/")?;
        match self.node_mut(parent) {
            Node::Dir(entries) => {
                entries.remove(&name);
                Ok(())
            }
            Node::File { .. } => unreachable!("parent is a dir by construction"),
        }
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str, cwd: &str) -> OsResult<()> {
        let comps = Self::normalize(path, cwd);
        let name = comps.last().cloned().ok_or(OsError::Inval(path.into()))?;
        let ino = self.lookup(path, cwd)?;
        match self.node(ino) {
            Node::Dir(entries) if !entries.is_empty() => {
                return Err(OsError::NotEmpty(path.to_string()))
            }
            Node::Dir(_) => {}
            Node::File { .. } => return Err(OsError::NotDir(path.to_string())),
        }
        let parent_path: String = format!("/{}", comps[..comps.len() - 1].join("/"));
        let parent = self.lookup(&parent_path, "/")?;
        match self.node_mut(parent) {
            Node::Dir(entries) => {
                entries.remove(&name);
                Ok(())
            }
            Node::File { .. } => unreachable!("parent is a dir by construction"),
        }
    }

    /// Sorted names in a directory.
    pub fn read_dir(&self, path: &str, cwd: &str) -> OsResult<Vec<String>> {
        let ino = self.lookup(path, cwd)?;
        match self.node(ino) {
            Node::Dir(entries) => Ok(entries.keys().cloned().collect()),
            Node::File { .. } => Err(OsError::NotDir(path.to_string())),
        }
    }

    /// Convenience: writes a whole file, creating it if needed.
    pub fn put_file(&mut self, path: &str, data: &[u8]) -> OsResult<Ino> {
        if let Some(dir) = parent_of(path) {
            self.mkdir_all(&dir)?;
        }
        let ino = self.create_file(path, "/", false)?;
        self.truncate(ino);
        self.write_at(ino, 0, data);
        Ok(ino)
    }

    /// Convenience: installs an executable bound to a registry program.
    pub fn put_program(&mut self, path: &str, key: &str) -> OsResult<Ino> {
        let ino = self.put_file(path, b"#!simulated\n")?;
        if let Node::File { program, executable, .. } = self.node_mut(ino) {
            *program = Some(key.to_string());
            *executable = true;
        }
        Ok(ino)
    }

    /// Marks an existing file executable (e.g. an es script).
    pub fn set_executable(&mut self, path: &str, on: bool) -> OsResult<()> {
        let ino = self.lookup(path, "/")?;
        match self.node_mut(ino) {
            Node::File { executable, .. } => {
                *executable = on;
                Ok(())
            }
            Node::Dir(_) => Err(OsError::IsDir(path.to_string())),
        }
    }
}

/// The directory part of an absolute path, if any.
fn parent_of(path: &str) -> Option<String> {
    let trimmed = path.trim_end_matches('/');
    trimmed.rfind('/').map(|i| {
        if i == 0 {
            "/".to_string()
        } else {
            trimmed[..i].to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_paths() {
        assert_eq!(Vfs::normalize("/a/b", "/"), vec!["a", "b"]);
        assert_eq!(Vfs::normalize("b", "/a"), vec!["a", "b"]);
        assert_eq!(Vfs::normalize("../c", "/a/b"), vec!["a", "c"]);
        assert_eq!(Vfs::normalize("./x/./y", "/"), vec!["x", "y"]);
        assert_eq!(Vfs::normalize("/..", "/"), Vec::<String>::new());
        assert_eq!(Vfs::normalize("//a///b//", "/"), vec!["a", "b"]);
    }

    #[test]
    fn create_write_read() {
        let mut fs = Vfs::new();
        let ino = fs.put_file("/tmp/foo", b"hello").unwrap();
        assert_eq!(fs.file_data(ino), b"hello");
        let mut buf = [0u8; 3];
        assert_eq!(fs.read_at(ino, 2, &mut buf), 3);
        assert_eq!(&buf, b"llo");
        assert_eq!(fs.read_at(ino, 5, &mut buf), 0);
        fs.write_at(ino, 3, b"LOW");
        assert_eq!(fs.file_data(ino), b"helLOW");
    }

    #[test]
    fn exclusive_create() {
        let mut fs = Vfs::new();
        fs.put_file("/f", b"x").unwrap();
        assert_eq!(
            fs.create_file("/f", "/", true),
            Err(OsError::Exists("/f".into()))
        );
        assert!(fs.create_file("/f", "/", false).is_ok());
    }

    #[test]
    fn lookup_errors() {
        let fs = Vfs::new();
        assert_eq!(fs.lookup("/nope", "/"), Err(OsError::NoEnt("/nope".into())));
        let mut fs = Vfs::new();
        fs.put_file("/file", b"").unwrap();
        assert_eq!(
            fs.lookup("/file/sub", "/"),
            Err(OsError::NotDir("/file/sub".into()))
        );
        // Missing intermediate directory is ENOENT, not Missing.
        assert_eq!(
            fs.resolve("/no/such/dir", "/"),
            Err(OsError::NoEnt("/no/such/dir".into()))
        );
    }

    #[test]
    fn dirs_and_listing() {
        let mut fs = Vfs::new();
        fs.mkdir_all("/usr/tmp").unwrap();
        fs.put_file("/usr/tmp/b", b"").unwrap();
        fs.put_file("/usr/tmp/a", b"").unwrap();
        assert_eq!(fs.read_dir("/usr/tmp", "/").unwrap(), vec!["a", "b"]);
        assert!(fs.is_dir("/usr/tmp", "/"));
        assert!(!fs.is_dir("/usr/tmp/a", "/"));
        assert!(fs.is_file("/usr/tmp/a", "/"));
    }

    #[test]
    fn unlink_and_rmdir() {
        let mut fs = Vfs::new();
        fs.mkdir_all("/d").unwrap();
        fs.put_file("/d/f", b"").unwrap();
        assert_eq!(fs.rmdir("/d", "/"), Err(OsError::NotEmpty("/d".into())));
        fs.unlink("/d/f", "/").unwrap();
        fs.rmdir("/d", "/").unwrap();
        assert!(!fs.is_dir("/d", "/"));
        assert_eq!(fs.unlink("/d/f", "/"), Err(OsError::NoEnt("/d/f".into())));
    }

    #[test]
    fn programs_are_executable() {
        let mut fs = Vfs::new();
        fs.put_program("/bin/cat", "cat").unwrap();
        assert!(fs.is_executable("/bin/cat", "/"));
        let ino = fs.lookup("/bin/cat", "/").unwrap();
        assert_eq!(fs.program_of(ino), Some("cat"));
        assert!(!fs.is_executable("/bin", "/"));
    }

    #[test]
    fn relative_resolution_uses_cwd() {
        let mut fs = Vfs::new();
        fs.put_file("/home/u/notes", b"n").unwrap();
        assert!(fs.is_file("notes", "/home/u"));
        assert!(fs.is_file("../u/notes", "/home/u"));
        assert!(!fs.is_file("notes", "/"));
    }

    #[test]
    fn write_with_gap_zero_fills() {
        let mut fs = Vfs::new();
        let ino = fs.put_file("/f", b"ab").unwrap();
        fs.write_at(ino, 4, b"z");
        assert_eq!(fs.file_data(ino), b"ab\0\0z");
    }
}
