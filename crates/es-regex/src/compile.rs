//! AST → VM instruction program.

use crate::parse::Ast;

/// One VM instruction. Program counters are indices into the program
/// vector; `Split` tries `a` first (greedy preference) and falls back
/// to `b` on backtrack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Match one specific character.
    Char(char),
    /// Match any one character.
    Any,
    /// Match one character in (or out of) the class.
    Class { negated: bool, ranges: Vec<(char, char)> },
    /// Unconditional jump.
    Jmp(usize),
    /// Nondeterministic branch: prefer `a`, backtrack to `b`.
    Split(usize, usize),
    /// Record the current position in capture slot `n`.
    Save(usize),
    /// Assert beginning of subject.
    Bol,
    /// Assert end of subject.
    Eol,
    /// Accept.
    Match,
}

/// Compiles an AST into a program ending in `Match`, wrapped in
/// `Save(0) .. Save(1)` so group 0 is the whole match.
pub(crate) fn compile(ast: &Ast) -> Vec<Inst> {
    let mut prog = Vec::new();
    prog.push(Inst::Save(0));
    emit(ast, &mut prog);
    prog.push(Inst::Save(1));
    prog.push(Inst::Match);
    prog
}

fn emit(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(c) => prog.push(Inst::Char(*c)),
        Ast::Dot => prog.push(Inst::Any),
        Ast::Class { negated, ranges } => prog.push(Inst::Class {
            negated: *negated,
            ranges: ranges.clone(),
        }),
        Ast::Bol => prog.push(Inst::Bol),
        Ast::Eol => prog.push(Inst::Eol),
        Ast::Concat(items) => {
            for item in items {
                emit(item, prog);
            }
        }
        Ast::Alt(alts) => {
            // split L1, L2 ; L1: a ; jmp END ; L2: split ... chain.
            let mut jumps_to_end = Vec::new();
            for (i, alt) in alts.iter().enumerate() {
                if i + 1 < alts.len() {
                    let split_at = prog.len();
                    prog.push(Inst::Split(0, 0)); // patched below
                    emit(alt, prog);
                    jumps_to_end.push(prog.len());
                    prog.push(Inst::Jmp(0)); // patched below
                    let here = prog.len();
                    if let Inst::Split(a, b) = &mut prog[split_at] {
                        *a = split_at + 1;
                        *b = here;
                    }
                } else {
                    emit(alt, prog);
                }
            }
            let end = prog.len();
            for j in jumps_to_end {
                if let Inst::Jmp(t) = &mut prog[j] {
                    *t = end;
                }
            }
        }
        Ast::Star(inner) => {
            // L1: split L2, L3 ; L2: inner ; jmp L1 ; L3:
            let l1 = prog.len();
            prog.push(Inst::Split(0, 0));
            emit(inner, prog);
            prog.push(Inst::Jmp(l1));
            let l3 = prog.len();
            if let Inst::Split(a, b) = &mut prog[l1] {
                *a = l1 + 1;
                *b = l3;
            }
        }
        Ast::Plus(inner) => {
            // L1: inner ; split L1, L2 ; L2:
            let l1 = prog.len();
            emit(inner, prog);
            let split_at = prog.len();
            prog.push(Inst::Split(l1, split_at + 1));
        }
        Ast::Opt(inner) => {
            // split L1, L2 ; L1: inner ; L2:
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            emit(inner, prog);
            let l2 = prog.len();
            if let Inst::Split(a, b) = &mut prog[split_at] {
                *a = split_at + 1;
                *b = l2;
            }
        }
        Ast::Group(g, inner) => {
            prog.push(Inst::Save(2 * g));
            emit(inner, prog);
            prog.push(Inst::Save(2 * g + 1));
        }
    }
}
