//! A small regular-expression engine for the coreutils substrate.
//!
//! The es paper's examples run pipelines through `grep` and `sed`
//! (e.g. `ps aux | grep '^byron'` and the Figure 1 word-frequency
//! pipeline ending in `sed 6q`). The simulated coreutils in `es-os`
//! need a regex engine for those programs, and the reproduction builds
//! everything from scratch, so here is one.
//!
//! The supported language is a practical ERE subset:
//!
//! * literals, `.`, `[...]` / `[^...]` classes with ranges
//! * `*`, `+`, `?` greedy repetition
//! * alternation `|`, capturing groups `(...)`
//! * anchors `^` and `$`
//! * escapes `\.` `\\` `\*` ... plus `\d` `\w` `\s` and `\n` `\t`
//!
//! Patterns compile to a small instruction program executed by a
//! backtracking VM with an explicit stack (no recursion, no stack
//! overflow on long inputs). Captures are recorded via `Save` slots,
//! so `sed`'s `s/../../` replacements can use `&` and `\1`..`\9`.
//!
//! # Examples
//!
//! ```
//! use es_regex::Regex;
//!
//! let re = Regex::new("^[a-z]+ ([0-9]+)$").unwrap();
//! let m = re.find("byron 4523").unwrap();
//! assert_eq!(m.group_str(1), Some("4523"));
//! assert!(!re.is_match("Byron 4523"));
//! ```

mod compile;
mod parse;
mod vm;

#[cfg(test)]
mod tests;

pub use compile::Inst;
pub use parse::RegexError;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Vec<Inst>,
    ngroups: usize,
    pattern: String,
}

/// A successful match: overall extent plus capture groups, all as
/// **byte** offsets into the subject (suitable for slicing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult<'t> {
    text: &'t str,
    /// Slot `0` is the whole match; slot `g` is capture group `g`.
    groups: Vec<Option<(usize, usize)>>,
}

impl<'t> MatchResult<'t> {
    /// Byte range of the whole match.
    pub fn range(&self) -> (usize, usize) {
        self.groups[0].expect("group 0 always present in a match")
    }

    /// Text of the whole match.
    pub fn as_str(&self) -> &'t str {
        let (s, e) = self.range();
        &self.text[s..e]
    }

    /// Byte range of capture group `g`, if it participated.
    pub fn group(&self, g: usize) -> Option<(usize, usize)> {
        self.groups.get(g).copied().flatten()
    }

    /// Text of capture group `g`, if it participated.
    pub fn group_str(&self, g: usize) -> Option<&'t str> {
        self.group(g).map(|(s, e)| &self.text[s..e])
    }

    /// Number of capture slots (including the implicit group 0).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Always false: a match has at least group 0.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Regex {
    /// Compiles `pattern`.
    ///
    /// # Examples
    ///
    /// ```
    /// assert!(es_regex::Regex::new("a(b").is_err());
    /// assert!(es_regex::Regex::new("a(b)").is_ok());
    /// ```
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let (ast, ngroups) = parse::parse(pattern)?;
        let prog = compile::compile(&ast);
        Ok(Regex {
            prog,
            ngroups,
            pattern: pattern.to_string(),
        })
    }

    /// The source pattern this regex was compiled from.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Returns true if the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Finds the leftmost match in `text`.
    pub fn find<'t>(&self, text: &'t str) -> Option<MatchResult<'t>> {
        self.find_at(text, 0)
    }

    /// Finds the leftmost match starting at or after byte offset `start`
    /// (which must lie on a char boundary).
    pub fn find_at<'t>(&self, text: &'t str, start: usize) -> Option<MatchResult<'t>> {
        let chars: Vec<(usize, char)> = text.char_indices().collect();
        let start_ci = chars
            .iter()
            .position(|&(b, _)| b >= start)
            .unwrap_or(chars.len());
        for at in start_ci..=chars.len() {
            if let Some(groups) = vm::run(&self.prog, &chars, text.len(), at, self.ngroups) {
                return Some(MatchResult { text, groups });
            }
        }
        None
    }

    /// Replaces the first (or every, if `global`) match with `rep`.
    ///
    /// In the replacement, `&` inserts the whole match, `\1`..`\9`
    /// insert capture groups, and `\&` / `\\` escape. This is the
    /// semantics `sed`'s `s///` command needs.
    ///
    /// Returns the rewritten string and the number of replacements.
    pub fn replace(&self, text: &str, rep: &str, global: bool) -> (String, usize) {
        let mut out = String::new();
        let mut pos = 0usize;
        let mut count = 0usize;
        while pos <= text.len() {
            let m = match self.find_at(text, pos) {
                Some(m) => m,
                None => break,
            };
            let (ms, me) = m.range();
            out.push_str(&text[pos..ms]);
            expand_replacement(&mut out, rep, &m);
            count += 1;
            if me == ms {
                // Empty match: emit one char and continue, to guarantee progress.
                match text[me..].chars().next() {
                    Some(c) => {
                        out.push(c);
                        pos = me + c.len_utf8();
                    }
                    None => {
                        pos = me + 1;
                    }
                }
            } else {
                pos = me;
            }
            if !global {
                break;
            }
        }
        if pos <= text.len() {
            out.push_str(&text[pos.min(text.len())..]);
        }
        (out, count)
    }
}

/// Expands `&`, `\1`..`\9`, `\&`, `\\` in a sed-style replacement.
fn expand_replacement(out: &mut String, rep: &str, m: &MatchResult<'_>) {
    let mut it = rep.chars();
    while let Some(c) = it.next() {
        match c {
            '&' => out.push_str(m.as_str()),
            '\\' => match it.next() {
                Some(d @ '1'..='9') => {
                    let g = d as usize - '0' as usize;
                    if let Some(s) = m.group_str(g) {
                        out.push_str(s);
                    }
                }
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            },
            other => out.push(other),
        }
    }
}
