//! Pattern text → AST.

use std::fmt;

/// Parse error for a malformed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    msg: String,
}

impl RegexError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        RegexError { msg: msg.into() }
    }
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error: {}", self.msg)
    }
}

impl std::error::Error for RegexError {}

/// Regex AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Ast {
    Empty,
    Char(char),
    Dot,
    Class { negated: bool, ranges: Vec<(char, char)> },
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
    Group(usize, Box<Ast>),
    Bol,
    Eol,
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    next_group: usize,
}

/// Parses a pattern; returns the AST and the number of capture groups.
pub(crate) fn parse(pattern: &str) -> Result<(Ast, usize), RegexError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        next_group: 1,
    };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(RegexError::new(format!(
            "unexpected `{}` at position {}",
            p.chars[p.pos], p.pos
        )));
    }
    Ok((ast, p.next_group))
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn alternation(&mut self) -> Result<Ast, RegexError> {
        let mut alts = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("one alternative")
        } else {
            Ast::Alt(alts)
        })
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.atom()?;
        match self.peek() {
            Some('*') => {
                self.bump();
                self.reject_double_repeat()?;
                Ok(Ast::Star(Box::new(atom)))
            }
            Some('+') => {
                self.bump();
                self.reject_double_repeat()?;
                Ok(Ast::Plus(Box::new(atom)))
            }
            Some('?') => {
                self.bump();
                self.reject_double_repeat()?;
                Ok(Ast::Opt(Box::new(atom)))
            }
            _ => Ok(atom),
        }
    }

    fn reject_double_repeat(&self) -> Result<(), RegexError> {
        if matches!(self.peek(), Some('*') | Some('+')) {
            return Err(RegexError::new("nested repetition operator"));
        }
        Ok(())
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Err(RegexError::new("unexpected end of pattern")),
            Some('(') => {
                let g = self.next_group;
                self.next_group += 1;
                let inner = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err(RegexError::new("unclosed group"));
                }
                Ok(Ast::Group(g, Box::new(inner)))
            }
            Some('[') => self.class(),
            Some('.') => Ok(Ast::Dot),
            Some('^') => Ok(Ast::Bol),
            Some('$') => Ok(Ast::Eol),
            Some('*') => Err(RegexError::new("repetition with nothing to repeat")),
            Some('+') => Err(RegexError::new("repetition with nothing to repeat")),
            Some('?') => Err(RegexError::new("repetition with nothing to repeat")),
            Some('\\') => self.escape(),
            Some(c) => Ok(Ast::Char(c)),
        }
    }

    fn escape(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Err(RegexError::new("trailing backslash")),
            Some('n') => Ok(Ast::Char('\n')),
            Some('t') => Ok(Ast::Char('\t')),
            Some('r') => Ok(Ast::Char('\r')),
            Some('d') => Ok(Ast::Class {
                negated: false,
                ranges: vec![('0', '9')],
            }),
            Some('w') => Ok(Ast::Class {
                negated: false,
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            }),
            Some('s') => Ok(Ast::Class {
                negated: false,
                ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
            }),
            Some(c) => Ok(Ast::Char(c)),
        }
    }

    fn class(&mut self) -> Result<Ast, RegexError> {
        let mut negated = false;
        if self.peek() == Some('^') {
            negated = true;
            self.bump();
        }
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            let c = match self.bump() {
                None => return Err(RegexError::new("unclosed character class")),
                Some(c) => c,
            };
            if c == ']' && !first {
                break;
            }
            first = false;
            let c = if c == '\\' {
                match self.bump() {
                    None => return Err(RegexError::new("trailing backslash in class")),
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(other) => other,
                }
            } else {
                c
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // consume '-'
                let hi = match self.bump() {
                    None => return Err(RegexError::new("unclosed character class")),
                    Some(h) => h,
                };
                ranges.push(if c <= hi { (c, hi) } else { (hi, c) });
            } else {
                ranges.push((c, c));
            }
        }
        Ok(Ast::Class { negated, ranges })
    }
}
