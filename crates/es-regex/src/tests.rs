//! Unit and property tests for the regex engine.

use crate::Regex;
use proptest::prelude::*;

fn re(p: &str) -> Regex {
    Regex::new(p).expect("pattern compiles")
}

#[test]
fn literal() {
    assert!(re("abc").is_match("xxabcxx"));
    assert!(!re("abc").is_match("ab"));
    assert!(re("").is_match("anything"));
}

#[test]
fn anchors() {
    assert!(re("^byron").is_match("byron   4523"));
    assert!(!re("^byron").is_match("  byron"));
    assert!(re("end$").is_match("the end"));
    assert!(!re("end$").is_match("end."));
    assert!(re("^exact$").is_match("exact"));
    assert!(!re("^exact$").is_match("exactly"));
    assert!(re("^$").is_match(""));
    assert!(!re("^$").is_match("x"));
}

#[test]
fn dot_and_classes() {
    assert!(re("a.c").is_match("abc"));
    assert!(re("a.c").is_match("a-c"));
    assert!(!re("a.c").is_match("ac"));
    assert!(re("[0-9]+").is_match("pid 4523"));
    assert!(!re("[0-9]+").is_match("no digits"));
    assert!(re("[^0-9]").is_match("a"));
    assert!(!re("^[^0-9]+$").is_match("ab3cd"));
    assert!(re("[a-zA-Z0-9]").is_match("Q"));
    assert!(re("[]]").is_match("]"));
    assert!(re("[a-]").is_match("-"));
}

#[test]
fn repetition() {
    assert!(re("ab*c").is_match("ac"));
    assert!(re("ab*c").is_match("abbbc"));
    assert!(re("ab+c").is_match("abc"));
    assert!(!re("ab+c").is_match("ac"));
    assert!(re("ab?c").is_match("ac"));
    assert!(re("ab?c").is_match("abc"));
    assert!(!re("ab?c").is_match("abbc"));
}

#[test]
fn alternation() {
    let r = re("cat|dog|bird");
    assert!(r.is_match("hotdog"));
    assert!(r.is_match("a bird"));
    assert!(!r.is_match("fish"));
    assert!(re("^(a|bc)+$").is_match("abcbca"));
}

#[test]
fn groups_and_captures() {
    let r = re("(\\w+)@(\\w+)");
    let m = r.find("mail haahr@adobe now").unwrap();
    assert_eq!(m.as_str(), "haahr@adobe");
    assert_eq!(m.group_str(1), Some("haahr"));
    assert_eq!(m.group_str(2), Some("adobe"));
    assert_eq!(m.group(3), None);
}

#[test]
fn leftmost_greedy() {
    let m = re("a+").find("baaad").unwrap();
    assert_eq!(m.range(), (1, 4), "leftmost then greedy");
    let m = re("<.*>").find("<a><b>").unwrap();
    assert_eq!(m.as_str(), "<a><b>", "star is greedy");
}

#[test]
fn escapes() {
    assert!(re("\\.").is_match("a.b"));
    assert!(!re("\\.").is_match("ab"));
    assert!(re("a\\*b").is_match("a*b"));
    assert!(re("\\d+").is_match("x42"));
    assert!(re("\\s").is_match("a b"));
    assert!(re("\\w+").is_match("_id9"));
    assert!(re("a\\nb").is_match("a\nb"));
}

#[test]
fn parse_errors() {
    assert!(Regex::new("(ab").is_err());
    assert!(Regex::new("ab)").is_err());
    assert!(Regex::new("[ab").is_err());
    assert!(Regex::new("*a").is_err());
    assert!(Regex::new("a**").is_err());
    assert!(Regex::new("a\\").is_err());
    let err = Regex::new("(x").unwrap_err();
    assert!(err.to_string().contains("regex error"));
}

#[test]
fn empty_loop_terminates() {
    // `(a?)*` can iterate without consuming; the visited set must stop it.
    assert!(re("(a?)*").is_match(""));
    assert!(re("(a?)*b").is_match("aab"));
    assert!(!re("^(a?)*b$").is_match("aac"));
    assert!(re("(a*)*").is_match("aaa"));
}

#[test]
fn pathological_is_fast() {
    // Classic exponential blowup case for naive backtrackers.
    let pat = format!("^{}$", "a?".repeat(20) + &"a".repeat(20));
    let subj = "a".repeat(20);
    assert!(re(&pat).is_match(&subj));
    let subj_short = "a".repeat(19);
    assert!(!re(&pat).is_match(&subj_short));
}

#[test]
fn replace_first_and_global() {
    let r = re("o");
    assert_eq!(r.replace("foo bob", "0", false), ("f0o bob".into(), 1));
    assert_eq!(r.replace("foo bob", "0", true), ("f00 b0b".into(), 3));
}

#[test]
fn replace_with_ampersand_and_groups() {
    let r = re("([a-z]+)=([0-9]+)");
    let (out, n) = r.replace("x=1, y=22", "\\2:=\\1 (&)", true);
    assert_eq!(out, "1:=x (x=1), 22:=y (y=22)");
    assert_eq!(n, 2);
    // Escaped ampersand and backslash.
    let (out, _) = re("b").replace("abc", "\\&", false);
    assert_eq!(out, "a&c");
}

#[test]
fn replace_empty_match_progresses() {
    let (out, n) = re("x*").replace("ab", "-", true);
    // Matches empty at 0, 1, 2 (and never loops forever).
    assert_eq!(out, "-a-b-");
    assert_eq!(n, 3);
}

#[test]
fn find_at_offsets() {
    let r = re("a");
    let text = "xaxa";
    let m1 = r.find(text).unwrap();
    assert_eq!(m1.range(), (1, 2));
    let m2 = r.find_at(text, 2).unwrap();
    assert_eq!(m2.range(), (3, 4));
    assert!(r.find_at(text, 4).is_none());
}

#[test]
fn unicode() {
    assert!(re("é+").is_match("café"));
    let m = re("[α-ω]+").find("x λογος y").unwrap();
    assert_eq!(m.as_str(), "λογος");
    let (out, _) = re("λ").replace("aλb", "<&>", false);
    assert_eq!(out, "a<λ>b");
}

#[test]
fn ps_grep_kill_pipeline_pattern() {
    // The paper's intro example: ps aux | grep '^byron'.
    let r = re("^byron");
    assert!(r.is_match("byron    4523  0.0 es"));
    assert!(!r.is_match("root     1     0.0 init"));
}

// ---------------------------------------------------------------------------
// Property tests against a reference matcher for a restricted language.
// ---------------------------------------------------------------------------

/// Reference: match `pat` (literals, `.`, `*` postfix) against whole text.
fn ref_match(pat: &[char], text: &[char]) -> bool {
    if pat.is_empty() {
        return text.is_empty();
    }
    if pat.len() >= 2 && pat[1] == '*' {
        // zero or more of pat[0]
        if ref_match(&pat[2..], text) {
            return true;
        }
        let mut i = 0;
        while i < text.len() && (pat[0] == '.' || text[i] == pat[0]) {
            i += 1;
            if ref_match(&pat[2..], &text[i..]) {
                return true;
            }
        }
        false
    } else {
        !text.is_empty() && (pat[0] == '.' || text[0] == pat[0]) && ref_match(&pat[1..], &text[1..])
    }
}

/// Keeps only patterns the reference understands: no leading `*`, no `**`.
fn valid_simple_pattern(p: &str) -> bool {
    let cs: Vec<char> = p.chars().collect();
    for (i, c) in cs.iter().enumerate() {
        if *c == '*' && (i == 0 || cs[i - 1] == '*') {
            return false;
        }
    }
    true
}

proptest! {
    #[test]
    fn prop_agrees_with_reference(
        pat in "[ab.*]{0,8}".prop_filter("simple", |p| valid_simple_pattern(p)),
        text in "[ab]{0,10}",
    ) {
        let anchored = format!("^({pat})$");
        let got = Regex::new(&anchored).unwrap().is_match(&text);
        let p: Vec<char> = pat.chars().collect();
        let t: Vec<char> = text.chars().collect();
        prop_assert_eq!(got, ref_match(&p, &t), "pattern={} text={}", pat, text);
    }

    #[test]
    fn prop_literal_finds_itself(s in "[a-z]{1,12}", pre in "[0-9]{0,5}", post in "[0-9]{0,5}") {
        let text = format!("{pre}{s}{post}");
        let m = re(&s).find(&text).expect("must match");
        prop_assert_eq!(m.as_str(), s.as_str());
        prop_assert_eq!(m.range().0, pre.len());
    }

    #[test]
    fn prop_replace_global_removes_all(s in "[a-c]{0,20}") {
        let (out, _) = re("a").replace(&s, "", true);
        prop_assert!(!out.contains('a'));
        let kept: String = s.chars().filter(|&c| c != 'a').collect();
        prop_assert_eq!(out, kept);
    }

    #[test]
    fn prop_never_panics(pat in "[a-c().*+?\\[\\]|^$\\\\]{0,12}", text in "[a-c]{0,12}") {
        if let Ok(r) = Regex::new(&pat) {
            let _ = r.is_match(&text);
            let _ = r.replace(&text, "x", true);
        }
    }
}
