//! The backtracking VM.

use crate::compile::Inst;

/// One pending alternative: program counter, char index, and the saves
/// vector as it was when the alternative was created.
struct Thread {
    pc: usize,
    ci: usize,
    saves: Vec<Option<usize>>,
}

/// Runs `prog` against the subject starting at char index `start`.
///
/// `chars` is the subject's `char_indices`; `text_len` the subject's
/// byte length. Returns capture slots as byte ranges on success.
///
/// The VM is a depth-first backtracker with an explicit stack, with one
/// refinement: a `(pc, ci)` visited set. Depth-first order preserves
/// greedy/leftmost semantics (the first accepting path wins), while the
/// visited set both bounds the running time polynomially and kills the
/// infinite empty-iteration loops that patterns like `(a?)*` would
/// otherwise produce.
pub(crate) fn run(
    prog: &[Inst],
    chars: &[(usize, char)],
    text_len: usize,
    start: usize,
    ngroups: usize,
) -> Option<Vec<Option<(usize, usize)>>> {
    let nslots = 2 * ngroups;
    let width = chars.len() + 1;
    let mut visited = vec![false; prog.len() * width];
    let mut stack = vec![Thread {
        pc: 0,
        ci: start,
        saves: vec![None; nslots],
    }];

    while let Some(mut th) = stack.pop() {
        loop {
            let key = th.pc * width + th.ci;
            if visited[key] {
                break;
            }
            visited[key] = true;
            match &prog[th.pc] {
                Inst::Match => {
                    return Some(finish(&th.saves, ngroups));
                }
                Inst::Char(c) => {
                    if th.ci < chars.len() && chars[th.ci].1 == *c {
                        th.pc += 1;
                        th.ci += 1;
                    } else {
                        break;
                    }
                }
                Inst::Any => {
                    if th.ci < chars.len() {
                        th.pc += 1;
                        th.ci += 1;
                    } else {
                        break;
                    }
                }
                Inst::Class { negated, ranges } => {
                    if th.ci < chars.len() {
                        let c = chars[th.ci].1;
                        let hit = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                        if hit != *negated {
                            th.pc += 1;
                            th.ci += 1;
                            continue;
                        }
                    }
                    break;
                }
                Inst::Jmp(t) => {
                    // A jump does not consume input; clear the visited
                    // mark we just set for the jump instruction itself
                    // is fine — the target gets its own mark.
                    th.pc = *t;
                }
                Inst::Split(a, b) => {
                    stack.push(Thread {
                        pc: *b,
                        ci: th.ci,
                        saves: th.saves.clone(),
                    });
                    th.pc = *a;
                }
                Inst::Save(n) => {
                    th.saves[*n] = Some(byte_at(chars, text_len, th.ci));
                    th.pc += 1;
                }
                Inst::Bol => {
                    if th.ci == 0 {
                        th.pc += 1;
                    } else {
                        break;
                    }
                }
                Inst::Eol => {
                    if th.ci == chars.len() {
                        th.pc += 1;
                    } else {
                        break;
                    }
                }
            }
        }
    }
    None
}

fn byte_at(chars: &[(usize, char)], text_len: usize, ci: usize) -> usize {
    if ci < chars.len() {
        chars[ci].0
    } else {
        text_len
    }
}

fn finish(saves: &[Option<usize>], ngroups: usize) -> Vec<Option<(usize, usize)>> {
    (0..ngroups)
        .map(|g| match (saves[2 * g], saves[2 * g + 1]) {
            (Some(s), Some(e)) if s <= e => Some((s, e)),
            _ => None,
        })
        .collect()
}
