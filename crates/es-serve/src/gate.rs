//! The slice gate: the baton a scheduler and one slot worker pass.
//!
//! Cooperative timeslicing works by blocking, not by unwinding: the
//! worker thread runs its `Machine` normally, and the machine's
//! [`es_core::Yield`] hook (installed per slot) calls
//! [`SliceGate::tick`] at every `charge()`. Ticks burn slice fuel;
//! when the fuel is gone the worker parks *in place* — arbitrarily
//! deep in the evaluator — and the scheduler's
//! [`SliceGate::wait_parked`] returns so the run loop can hand the
//! baton to another slot. Exactly one side runs at any moment, which
//! is what makes the served event log deterministic and byte-replayable.
//!
//! Cancellation rides the same gate: [`SliceGate::cancel`] wakes a
//! parked worker and makes its next tick return
//! [`YieldAction::Cancel`], which the interpreter turns into the
//! uncatchable `EsError::Exit` — tenant code cannot catch its way out
//! of a cancel the way it can catch a `limit` breach.

use es_core::{Yield, YieldAction};
use std::sync::{Condvar, Mutex};

/// Where the worker is, as observed through the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// No request in flight.
    Idle,
    /// The worker holds the baton (a granted slice is being consumed).
    Running,
    /// The worker parked mid-command: its slice fuel ran out.
    Parked,
    /// The worker finished the request and posted its reply.
    Done,
}

#[derive(Debug)]
struct GateState {
    phase: Phase,
    /// Charge ticks left in the granted slice.
    fuel: u64,
    /// When set, the next tick cancels the running command.
    cancel: bool,
    /// Slices granted since the gate was built (stats/fairness tests).
    slices: u64,
}

/// The scheduler↔worker baton. One per pool slot, shared by `Arc`.
#[derive(Debug)]
pub struct SliceGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Default for SliceGate {
    fn default() -> Self {
        Self::new()
    }
}

impl SliceGate {
    /// A fresh gate in [`Phase::Idle`].
    pub fn new() -> SliceGate {
        SliceGate {
            state: Mutex::new(GateState {
                phase: Phase::Idle,
                fuel: 0,
                cancel: false,
                slices: 0,
            }),
            cv: Condvar::new(),
        }
    }

    // ---- scheduler side --------------------------------------------------

    /// Grants a timeslice of `fuel` charge ticks and wakes the worker.
    pub fn grant(&self, fuel: u64) {
        let mut s = self.state.lock().expect("gate lock");
        s.fuel = fuel;
        s.phase = Phase::Running;
        s.slices += 1;
        self.cv.notify_all();
    }

    /// Requests cancellation of the in-flight command and wakes a
    /// parked worker so it can observe it. The worker still finishes
    /// normally (posting its reply and reaching [`Phase::Done`]) — the
    /// scheduler must keep waiting for that.
    pub fn cancel(&self) {
        let mut s = self.state.lock().expect("gate lock");
        s.cancel = true;
        // Wake a parked worker; a running one notices at its next tick.
        if s.phase == Phase::Parked {
            s.phase = Phase::Running;
        }
        self.cv.notify_all();
    }

    /// Wakes a worker still waiting in [`SliceGate::acquire`] (its
    /// command was posted but never granted a slice) without touching
    /// a gate that is already `Running`/`Parked`/`Done` — used with
    /// [`SliceGate::cancel`] to reap a command no matter where its
    /// worker currently waits.
    pub fn wake(&self) {
        let mut s = self.state.lock().expect("gate lock");
        if s.phase == Phase::Idle {
            s.phase = Phase::Running;
            s.fuel = 0;
        }
        self.cv.notify_all();
    }

    /// Blocks until the worker either parks (slice exhausted) or
    /// completes the request; returns the phase that ended the wait.
    pub fn wait_parked(&self) -> Phase {
        let mut s = self.state.lock().expect("gate lock");
        while s.phase != Phase::Parked && s.phase != Phase::Done {
            s = self.cv.wait(s).expect("gate wait");
        }
        s.phase
    }

    /// Blocks until the worker completes the request ([`Phase::Done`]),
    /// then resets the gate to [`Phase::Idle`] for the next request.
    pub fn wait_done(&self) {
        let mut s = self.state.lock().expect("gate lock");
        while s.phase != Phase::Done {
            s = self.cv.wait(s).expect("gate wait");
        }
        s.phase = Phase::Idle;
        s.cancel = false;
        s.fuel = 0;
    }

    /// Slices granted so far (fairness assertions in tests).
    pub fn slices_granted(&self) -> u64 {
        self.state.lock().expect("gate lock").slices
    }

    /// Whether cancellation was requested for the in-flight command.
    /// The worker reads this to classify its outcome — a tenant
    /// running `exit 124` must not be mistaken for a server cancel, so
    /// classification never keys on the exit status alone.
    pub fn cancel_requested(&self) -> bool {
        self.state.lock().expect("gate lock").cancel
    }

    // ---- worker side -----------------------------------------------------

    /// Waits for the first slice of a new command (the scheduler may
    /// have granted it before the worker even picked the request up).
    pub fn acquire(&self) {
        let mut s = self.state.lock().expect("gate lock");
        while s.phase != Phase::Running {
            s = self.cv.wait(s).expect("gate wait");
        }
    }

    /// Marks the current request complete and wakes the scheduler.
    pub fn done(&self) {
        let mut s = self.state.lock().expect("gate lock");
        s.phase = Phase::Done;
        self.cv.notify_all();
    }

    /// The per-charge tick: burn one unit of fuel, parking in place
    /// when the slice is spent, until the scheduler grants the next
    /// slice (or cancels).
    pub fn tick(&self) -> YieldAction {
        let mut s = self.state.lock().expect("gate lock");
        if s.cancel {
            return YieldAction::Cancel;
        }
        if s.fuel > 0 {
            s.fuel -= 1;
            return YieldAction::Run;
        }
        s.phase = Phase::Parked;
        self.cv.notify_all();
        while s.phase != Phase::Running {
            s = self.cv.wait(s).expect("gate wait");
        }
        if s.cancel {
            return YieldAction::Cancel;
        }
        s.fuel = s.fuel.saturating_sub(1);
        YieldAction::Run
    }
}

/// The `Rc`-able adapter a `Machine` holds: forwards its yield ticks
/// to the slot's shared gate.
pub struct GateYield(pub std::sync::Arc<SliceGate>);

impl Yield for GateYield {
    fn tick(&self) -> YieldAction {
        self.0.tick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A worker burning fuel parks when it runs out and resumes on the
    /// next grant; cancel surfaces at the next tick.
    #[test]
    fn park_resume_cancel() {
        let gate = Arc::new(SliceGate::new());
        let g2 = Arc::clone(&gate);
        let worker = std::thread::spawn(move || {
            g2.acquire();
            let mut ticks = 0u64;
            while let YieldAction::Run = g2.tick() {
                ticks += 1;
            }
            g2.done();
            ticks
        });
        gate.grant(10);
        assert_eq!(gate.wait_parked(), Phase::Parked);
        gate.grant(5);
        assert_eq!(gate.wait_parked(), Phase::Parked);
        gate.cancel();
        gate.wait_done();
        assert_eq!(worker.join().expect("worker joins"), 15);
    }
}
