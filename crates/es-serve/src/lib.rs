//! es-serve: a fault-isolated multi-tenant session server for the es
//! interpreter.
//!
//! One server hosts many concurrent es sessions over a simple framed
//! protocol ([`proto`]): spawn a session, feed it command lines,
//! stream back its output, close it. Under the hood:
//!
//! - [`pool`] — a slab of recycled `Machine<SimOs>` slots, each behind
//!   a dedicated worker thread (machines are `!Send`), with a reset
//!   oracle proving zero state bleed between tenants.
//! - [`gate`] — the cooperative timeslicing baton: workers park at the
//!   interpreter's `charge()` seam when their slice is spent, so one
//!   runaway `while {true} {}` cannot delay anyone else.
//! - [`server`] — admission control (high-water shedding with
//!   exponential-backoff hints), baton scheduling, panic containment
//!   at the slot boundary, and drain-mode shutdown.
//! - [`soak`] — the seeded acceptance driver: thousands of sessions
//!   with fault weather, tight budgets, and injected panics, whose
//!   event log must replay byte-identically.

pub mod gate;
pub mod pool;
pub mod proto;
pub mod server;
pub mod soak;

pub use gate::{GateYield, Phase, SliceGate};
pub use pool::{Outcome, Pool, ResetReport, SlotState};
pub use proto::{Frame, FaultClass, ProtoError};
pub use server::{ServeConfig, ServeStats, Server};
pub use soak::{run_soak, SoakConfig, SoakReport};
