//! The slot pool: recycled `Machine` instances behind worker threads.
//!
//! A `Machine<SimOs>` is `!Send` (its heap is `Rc`-threaded), so each
//! pool slot owns a dedicated worker thread that boots the machine
//! once and keeps it for the slot's whole life. The scheduler never
//! touches a machine directly — it sends [`WorkerMsg`]s down the
//! slot's channel and timeslices execution through the slot's
//! [`SliceGate`]. Booting is the expensive part (parsing and running
//! `initial.es`, importing the environment); recycling via
//! [`es_core::Machine::recycle`] restores the frozen boot image in
//! place, which is why a pooled session starts orders of magnitude
//! faster than a cold one (measured in E14).
//!
//! ## The reset oracle
//!
//! Every release runs the machine through `recycle()` and then audits
//! it against the snapshot taken right after boot: the kernel
//! fingerprint ([`es_os::SimOs::fingerprint`] — vfs, descriptors,
//! pipes, consoles, clocks, signals), the open-descriptor delta, the
//! hook-generation counter, and the armed limits. A clean report means
//! the next tenant provably cannot observe the previous one. A dirty
//! report quarantines the slot; scrubbing (a fresh boot) is the only
//! way back, and a slot whose *scrub* still fails the oracle is
//! retired for good.

use crate::gate::{GateYield, SliceGate};
use es_core::Machine;
use es_os::{Os, SimOs};
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Once};
use std::thread::JoinHandle;

/// Background fault-injection intensity for sessions opened with a
/// fault seed: roughly 1.2% of syscalls fail (`12/1024`), the same
/// weather band the in-crate fault soaks run under.
pub const WEATHER_PER_1024: u16 = 12;

/// Hook applied to a slot's kernel *before* boot (and again on every
/// scrub), e.g. to seed `/bin` with scenario programs. Runs before
/// `initial.es`, so whatever it installs is part of the boot image
/// that `recycle()` restores.
pub type OsSetup = Arc<dyn Fn(&mut SimOs) + Send + Sync>;

/// What the scheduler asks a slot worker to do.
pub enum WorkerMsg {
    /// Arm per-session limits and (optionally) fault weather for the
    /// tenant about to use this slot.
    Arm {
        limits: Vec<(String, u64)>,
        fault_seed: Option<u64>,
    },
    /// Run one command line to completion (timesliced via the gate).
    Run(String),
    /// Restore the boot image and audit it (normal release path).
    Recycle,
    /// Throw the machine away and boot a fresh one (post-panic path).
    Scrub,
    /// Exit the worker thread.
    Shutdown,
}

/// What a slot worker reports back.
pub enum Reply {
    Armed(Result<(), String>),
    Ran(Outcome),
    Recycled(ResetReport),
    Scrubbed(ResetReport),
}

/// Everything observable from one command run in a slot.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The es-level result: the command's value list (joined) or its
    /// error rendering. Errors here are tenant-visible data, not
    /// server faults.
    pub result: Result<String, String>,
    /// The scheduler cancelled this command (drain or close); the
    /// error value is the cancel unwind, not tenant code.
    pub cancelled: bool,
    /// The interpreter panicked; the payload message. The machine is
    /// in an unknown state and the slot must be scrubbed.
    pub panic: Option<String>,
    /// Bytes the command wrote to the session's stdout.
    pub stdout: String,
    /// Bytes the command wrote to the session's stderr (including any
    /// governor warnings, which land here and nowhere else).
    pub stderr: String,
    /// Eval steps the command consumed.
    pub steps: u64,
}

/// The recycle/scrub audit: how the machine compares to its own
/// post-boot snapshot. All four checks must hold for the slot to be
/// handed to another tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetReport {
    /// Kernel fingerprint matches the post-boot fingerprint (vfs,
    /// descriptor table, pipes, consoles, clock, signals).
    pub os_clean: bool,
    /// Open kernel descriptors gained since boot (0 when clean).
    pub fd_delta: isize,
    /// No `fn-%*` hook binding differs from its boot binding.
    pub hooks_pristine: bool,
    /// Armed limits are exactly the boot defaults again.
    pub limits_ok: bool,
}

impl ResetReport {
    /// True when every check passed — the next tenant cannot observe
    /// the previous one.
    pub fn clean(&self) -> bool {
        self.os_clean && self.fd_delta == 0 && self.hooks_pristine && self.limits_ok
    }

    /// The checks that failed, by name (for `Fault` frame details).
    pub fn violations(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if !self.os_clean {
            v.push("kernel-fingerprint");
        }
        if self.fd_delta != 0 {
            v.push("fd-delta");
        }
        if !self.hooks_pristine {
            v.push("hook-bindings");
        }
        if !self.limits_ok {
            v.push("limits");
        }
        v
    }
}

/// A slot's lifecycle state, as the pool tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Ready for a new tenant.
    Free,
    /// Leased to a live session.
    Leased,
    /// A panic or dirty recycle happened; must be scrubbed before
    /// reuse.
    Quarantined,
    /// Scrubbing did not produce a clean machine; permanently out of
    /// rotation.
    Retired,
}

struct Slot {
    gate: Arc<SliceGate>,
    tx: Sender<WorkerMsg>,
    rx: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
    state: SlotState,
}

/// The fixed-capacity slot pool.
pub struct Pool {
    slots: Vec<Slot>,
    panic_probe: String,
}

/// Thread-name prefix for slot workers; the quiet panic hook keys on
/// it so injected panics don't spray backtraces over test output while
/// every other thread's panics still report normally.
const WORKER_PREFIX: &str = "es-serve-slot";

fn install_quiet_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_PREFIX));
            if !quiet {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Boot state the worker audits against: taken once right after boot,
/// retaken after every scrub.
struct BootSnapshot {
    fingerprint: u64,
    fds: usize,
    limits: es_core::governor::Limits,
}

fn boot_machine(setup: &Option<OsSetup>) -> Machine<SimOs> {
    let mut os = SimOs::new();
    if let Some(f) = setup {
        f(&mut os);
    }
    Machine::new(os).expect("slot boot: initial.es must run clean")
}

fn snapshot(m: &Machine<SimOs>) -> BootSnapshot {
    BootSnapshot {
        fingerprint: m.os().fingerprint(),
        fds: m.os().open_desc_count(),
        limits: *m.governor().limits(),
    }
}

fn audit(m: &Machine<SimOs>, boot: &BootSnapshot) -> ResetReport {
    ResetReport {
        os_clean: m.os().fingerprint() == boot.fingerprint,
        fd_delta: m.os().open_desc_count() as isize - boot.fds as isize,
        hooks_pristine: m.hooks_pristine(),
        limits_ok: *m.governor().limits() == boot.limits,
    }
}

#[allow(clippy::too_many_lines)]
fn worker_main(
    gate: Arc<SliceGate>,
    rx: Receiver<WorkerMsg>,
    tx: Sender<Reply>,
    setup: Option<OsSetup>,
    panic_probe: String,
) {
    let mut m = boot_machine(&setup);
    let mut boot = snapshot(&m);
    m.set_yielder(Some(Rc::new(GateYield(Arc::clone(&gate)))));
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Arm { limits, fault_seed } => {
                let mut res = Ok(());
                for (kind, value) in &limits {
                    if let Err(e) = m.arm_limit(kind, *value) {
                        res = Err(e);
                        break;
                    }
                }
                if let Some(seed) = fault_seed {
                    m.os_mut().set_fault_plan(Some(
                        es_os::FaultPlan::new(seed).uniform_rate(WEATHER_PER_1024),
                    ));
                }
                let _ = tx.send(Reply::Armed(res));
            }
            WorkerMsg::Run(cmd) => {
                gate.acquire();
                let steps_before = m.governor().steps();
                let run = panic::catch_unwind(AssertUnwindSafe(|| {
                    if cmd == panic_probe {
                        panic!("injected probe panic");
                    }
                    m.run(&cmd)
                }));
                let cancelled = gate.cancel_requested();
                let outcome = match run {
                    Ok(Ok(values)) => Outcome {
                        result: Ok(values.join(" ")),
                        cancelled,
                        panic: None,
                        stdout: String::new(),
                        stderr: String::new(),
                        steps: m.governor().steps() - steps_before,
                    },
                    Ok(Err(e)) => Outcome {
                        result: Err(e.to_string()),
                        cancelled,
                        panic: None,
                        stdout: String::new(),
                        stderr: String::new(),
                        steps: m.governor().steps() - steps_before,
                    },
                    Err(payload) => Outcome {
                        result: Err("panic".to_string()),
                        cancelled,
                        panic: Some(panic_message(payload)),
                        stdout: String::new(),
                        stderr: String::new(),
                        steps: m.governor().steps().saturating_sub(steps_before),
                    },
                };
                let (stdout, stderr) = m.os_mut().take_console();
                let outcome = Outcome {
                    stdout,
                    stderr,
                    ..outcome
                };
                let _ = tx.send(Reply::Ran(outcome));
                gate.done();
            }
            WorkerMsg::Recycle => {
                m.os_mut().set_fault_plan(None);
                m.recycle();
                let _ = tx.send(Reply::Recycled(audit(&m, &boot)));
            }
            WorkerMsg::Scrub => {
                m = boot_machine(&setup);
                boot = snapshot(&m);
                m.set_yielder(Some(Rc::new(GateYield(Arc::clone(&gate)))));
                let _ = tx.send(Reply::Scrubbed(audit(&m, &boot)));
            }
            WorkerMsg::Shutdown => break,
        }
    }
}

impl Pool {
    /// Spawns `capacity` slot workers, each booting its machine
    /// eagerly (the pool is warm by the time `new` returns the first
    /// replies — workers boot in parallel on their own threads).
    pub fn new(
        capacity: usize,
        setup: Option<OsSetup>,
        panic_probe: String,
        worker_stack: usize,
    ) -> Pool {
        install_quiet_panics();
        let mut slots = Vec::with_capacity(capacity);
        for i in 0..capacity {
            let gate = Arc::new(SliceGate::new());
            let (msg_tx, msg_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            let g = Arc::clone(&gate);
            let s = setup.clone();
            let probe = panic_probe.clone();
            let handle = std::thread::Builder::new()
                .name(format!("{WORKER_PREFIX}-{i}"))
                .stack_size(worker_stack)
                .spawn(move || worker_main(g, msg_rx, reply_tx, s, probe))
                .expect("spawn slot worker");
            slots.push(Slot {
                gate,
                tx: msg_tx,
                rx: reply_rx,
                handle: Some(handle),
                state: SlotState::Free,
            });
        }
        Pool { slots, panic_probe }
    }

    /// Total slots, regardless of state.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently available to lease.
    pub fn free_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state == SlotState::Free)
            .count()
    }

    /// Slots permanently out of rotation.
    pub fn retired_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state == SlotState::Retired)
            .count()
    }

    /// The command string that makes a worker panic (test/probe rig).
    pub fn panic_probe(&self) -> &str {
        &self.panic_probe
    }

    /// Leases the lowest-numbered free slot.
    pub fn acquire(&mut self) -> Option<usize> {
        let idx = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Free)?;
        self.slots[idx].state = SlotState::Leased;
        Some(idx)
    }

    /// The slot's scheduler↔worker gate.
    pub fn gate(&self, idx: usize) -> &Arc<SliceGate> {
        &self.slots[idx].gate
    }

    /// The slot's lifecycle state.
    pub fn state(&self, idx: usize) -> SlotState {
        self.slots[idx].state
    }

    /// Arms session limits/weather on a leased slot (synchronous).
    pub fn arm(
        &mut self,
        idx: usize,
        limits: Vec<(String, u64)>,
        fault_seed: Option<u64>,
    ) -> Result<(), String> {
        let slot = &self.slots[idx];
        slot.tx
            .send(WorkerMsg::Arm { limits, fault_seed })
            .map_err(|_| "slot worker gone".to_string())?;
        match slot.rx.recv() {
            Ok(Reply::Armed(res)) => res,
            _ => Err("slot worker gone".to_string()),
        }
    }

    /// Posts a command to a leased slot. The worker will block in
    /// `acquire` until the scheduler grants a slice; the reply arrives
    /// via [`Pool::take_reply`] once the gate reports `Done`.
    pub fn start_run(&self, idx: usize, cmd: String) {
        let _ = self.slots[idx].tx.send(WorkerMsg::Run(cmd));
    }

    /// Receives the worker's pending reply (call after the gate
    /// reaches `Done`, or after a synchronous message).
    pub fn take_reply(&self, idx: usize) -> Option<Reply> {
        self.slots[idx].rx.recv().ok()
    }

    /// Releases a leased slot through the recycle+audit path. A clean
    /// report frees the slot; a dirty one quarantines it (caller
    /// decides whether to scrub now or retire).
    pub fn release(&mut self, idx: usize) -> ResetReport {
        let slot = &mut self.slots[idx];
        let _ = slot.tx.send(WorkerMsg::Recycle);
        let report = match slot.rx.recv() {
            Ok(Reply::Recycled(r)) => r,
            _ => ResetReport {
                os_clean: false,
                fd_delta: 0,
                hooks_pristine: false,
                limits_ok: false,
            },
        };
        slot.state = if report.clean() {
            SlotState::Free
        } else {
            SlotState::Quarantined
        };
        report
    }

    /// Marks a slot quarantined without recycling (post-panic: the
    /// machine is not trustworthy enough to even run `recycle`).
    pub fn quarantine(&mut self, idx: usize) {
        self.slots[idx].state = SlotState::Quarantined;
    }

    /// Scrubs a quarantined slot: fresh boot, fresh audit. Clean →
    /// back to `Free`; still dirty → `Retired`.
    pub fn scrub(&mut self, idx: usize) -> ResetReport {
        let slot = &mut self.slots[idx];
        let _ = slot.tx.send(WorkerMsg::Scrub);
        let report = match slot.rx.recv() {
            Ok(Reply::Scrubbed(r)) => r,
            _ => ResetReport {
                os_clean: false,
                fd_delta: 0,
                hooks_pristine: false,
                limits_ok: false,
            },
        };
        slot.state = if report.clean() {
            SlotState::Free
        } else {
            SlotState::Retired
        };
        report
    }

    /// Stops every worker. In-flight commands are cancelled (the gate
    /// wakes any parked worker with a cancel flag set), pending
    /// replies are drained, and threads are joined.
    pub fn shutdown(&mut self) {
        for slot in &mut self.slots {
            slot.gate.cancel();
            slot.gate.wake();
            let _ = slot.tx.send(WorkerMsg::Shutdown);
        }
        for slot in &mut self.slots {
            if let Some(h) = slot.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}
