//! The serving protocol: length-prefixed frames over any byte stream.
//!
//! A frame is one ASCII header line — `name arg... <payload-len>\n` —
//! followed by exactly `payload-len` raw payload bytes. Headers carry
//! only small integers and enum words, payloads carry tenant bytes
//! (command text, stdout/stderr runs, error details), so arbitrary
//! binary output frames cleanly and the encoded stream is
//! byte-comparable — the server's interleaved event log is the
//! concatenation of every frame it consumed and emitted, and the soak
//! suite's replay oracle compares two runs' logs for byte identity.

use std::fmt;

/// A containment class carried by [`Frame::Fault`] — why a session
/// ended abnormally. Budget breaches are *not* here: a breach is a
/// per-command error (the session survives it), reported through
/// [`Frame::Done`] with `ok = false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The slot's evaluator panicked; the panic was caught at the slot
    /// boundary, the slot quarantined and scrubbed, the session ended.
    Panic,
    /// The server cancelled the session's in-flight command (client
    /// close or drain deadline).
    Cancelled,
    /// The reset oracle found cross-session state bleed when the slot
    /// was recycled. Never expected; the slot is retired, not reused.
    Oracle,
    /// A frame referenced a session id the server does not know.
    NoSession,
}

impl FaultClass {
    /// The wire word for this class.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Panic => "panic",
            FaultClass::Cancelled => "cancelled",
            FaultClass::Oracle => "oracle",
            FaultClass::NoSession => "nosession",
        }
    }

    /// Parses a wire word.
    pub fn parse(s: &str) -> Option<FaultClass> {
        match s {
            "panic" => Some(FaultClass::Panic),
            "cancelled" => Some(FaultClass::Cancelled),
            "oracle" => Some(FaultClass::Oracle),
            "nosession" => Some(FaultClass::NoSession),
            _ => None,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One protocol frame, client→server or server→client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    // ---- client → server ------------------------------------------------
    /// Spawn a session. The payload is a comma-separated limit spec
    /// (`steps=20000,output=65536`) re-armed before every command;
    /// `fault_seed` arms deterministic syscall weather for the whole
    /// session. Answered by [`Frame::Opened`] or [`Frame::Shed`].
    Open {
        /// Per-session limit spec, merged over the server default.
        limits: Vec<(String, u64)>,
        /// FaultPlan seed for injected kernel weather, if any.
        fault_seed: Option<u64>,
    },
    /// Feed one command line to a session (queued FIFO per session).
    Line {
        /// Target session.
        sid: u64,
        /// The es command text.
        cmd: String,
    },
    /// Close a session; cancels any in-flight command first.
    Close {
        /// Target session.
        sid: u64,
    },
    /// Enter drain mode: shed all new opens, give in-flight commands
    /// up to `grace` more timeslices, cancel stragglers, close
    /// everything, answer with [`Frame::Drained`].
    Drain {
        /// Timeslices each in-flight command may still consume.
        grace: u64,
    },

    // ---- server → client ------------------------------------------------
    /// Session admitted.
    Opened {
        /// The new session's id.
        sid: u64,
    },
    /// Session refused (admission control): retry after the given
    /// hint. `attempt` is the server's consecutive-shed streak — the
    /// exponential-backoff exponent the hint was computed from.
    Shed {
        /// Suggested client wait before retrying, in milliseconds.
        retry_after_ms: u64,
        /// Consecutive sheds so far (backoff exponent).
        attempt: u32,
    },
    /// A run of the session's standard output.
    Out {
        /// Owning session.
        sid: u64,
        /// Raw stdout bytes.
        bytes: Vec<u8>,
    },
    /// A run of the session's standard error (includes the governor's
    /// 90%-of-limit warnings — routed per session, never interleaved
    /// into another tenant's stream).
    Err {
        /// Owning session.
        sid: u64,
        /// Raw stderr bytes.
        bytes: Vec<u8>,
    },
    /// One command finished. `ok = false` carries the error text —
    /// including catchable budget breaches (`limit steps 2000 2000`)
    /// and watchdog signals (`signal sigalrm`); the session survives.
    Done {
        /// Owning session.
        sid: u64,
        /// Did the command produce a value (vs unwind with an error)?
        ok: bool,
        /// The value (space-joined) or the error text.
        value: String,
    },
    /// The session ended abnormally; see [`FaultClass`].
    Fault {
        /// Owning session (0 when no session is involved).
        sid: u64,
        /// Why.
        class: FaultClass,
        /// Human-readable detail (panic message, cancel reason, ...).
        detail: String,
    },
    /// Session closed; its slot was scrubbed and returned to the pool.
    Closed {
        /// The session that closed.
        sid: u64,
    },
    /// Drain finished.
    Drained {
        /// In-flight commands that completed within the grace budget.
        finished: u64,
        /// Commands (and their sessions) cancelled at the deadline.
        cancelled: u64,
    },
}

/// A decode failure: the byte stream violates the framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// More bytes are needed to complete the frame.
    NeedMore,
    /// The header or payload is malformed.
    Bad(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::NeedMore => f.write_str("incomplete frame"),
            ProtoError::Bad(msg) => write!(f, "bad frame: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

fn header(out: &mut Vec<u8>, parts: &[&str], plen: usize) {
    for p in parts {
        out.extend_from_slice(p.as_bytes());
        out.push(b' ');
    }
    out.extend_from_slice(plen.to_string().as_bytes());
    out.push(b'\n');
}

/// Encodes the limit spec an [`Frame::Open`] payload carries.
pub fn encode_limits(limits: &[(String, u64)]) -> String {
    limits
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses an [`Frame::Open`] limit-spec payload.
pub fn parse_limits(s: &str) -> Result<Vec<(String, u64)>, ProtoError> {
    let mut out = Vec::new();
    for part in s.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| ProtoError::Bad(format!("limit spec '{part}'")))?;
        let v: u64 = v
            .parse()
            .map_err(|_| ProtoError::Bad(format!("limit value '{part}'")))?;
        out.push((k.to_string(), v));
    }
    Ok(out)
}

impl Frame {
    /// Appends the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Open { limits, fault_seed } => {
                let payload = encode_limits(limits);
                let seed = match fault_seed {
                    Some(s) => s.to_string(),
                    None => "-".to_string(),
                };
                header(out, &["open", &seed], payload.len());
                out.extend_from_slice(payload.as_bytes());
            }
            Frame::Line { sid, cmd } => {
                header(out, &["line", &sid.to_string()], cmd.len());
                out.extend_from_slice(cmd.as_bytes());
            }
            Frame::Close { sid } => header(out, &["close", &sid.to_string()], 0),
            Frame::Drain { grace } => header(out, &["drain", &grace.to_string()], 0),
            Frame::Opened { sid } => header(out, &["opened", &sid.to_string()], 0),
            Frame::Shed { retry_after_ms, attempt } => header(
                out,
                &["shed", &retry_after_ms.to_string(), &attempt.to_string()],
                0,
            ),
            Frame::Out { sid, bytes } => {
                header(out, &["out", &sid.to_string()], bytes.len());
                out.extend_from_slice(bytes);
            }
            Frame::Err { sid, bytes } => {
                header(out, &["err", &sid.to_string()], bytes.len());
                out.extend_from_slice(bytes);
            }
            Frame::Done { sid, ok, value } => {
                let okw = if *ok { "ok" } else { "err" };
                header(out, &["done", &sid.to_string(), okw], value.len());
                out.extend_from_slice(value.as_bytes());
            }
            Frame::Fault { sid, class, detail } => {
                header(out, &["fault", &sid.to_string(), class.name()], detail.len());
                out.extend_from_slice(detail.as_bytes());
            }
            Frame::Closed { sid } => header(out, &["closed", &sid.to_string()], 0),
            Frame::Drained { finished, cancelled } => header(
                out,
                &["drained", &finished.to_string(), &cancelled.to_string()],
                0,
            ),
        }
    }

    /// The encoded frame as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the front of `buf`; returns the frame
    /// and how many bytes it consumed. [`ProtoError::NeedMore`] means
    /// the buffer holds only a prefix of a frame so far.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), ProtoError> {
        let nl = buf
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(ProtoError::NeedMore)?;
        let head = std::str::from_utf8(&buf[..nl])
            .map_err(|_| ProtoError::Bad("non-utf8 header".into()))?;
        let words: Vec<&str> = head.split(' ').collect();
        let plen: usize = words
            .last()
            .ok_or_else(|| ProtoError::Bad("empty header".into()))?
            .parse()
            .map_err(|_| ProtoError::Bad(format!("payload length in '{head}'")))?;
        let body_start = nl + 1;
        if buf.len() < body_start + plen {
            return Err(ProtoError::NeedMore);
        }
        let payload = &buf[body_start..body_start + plen];
        let used = body_start + plen;
        let text = || {
            String::from_utf8(payload.to_vec())
                .map_err(|_| ProtoError::Bad("non-utf8 text payload".into()))
        };
        let int = |s: &str| -> Result<u64, ProtoError> {
            s.parse()
                .map_err(|_| ProtoError::Bad(format!("integer '{s}' in '{head}'")))
        };
        let arity = |n: usize| -> Result<(), ProtoError> {
            if words.len() == n + 2 {
                Ok(())
            } else {
                Err(ProtoError::Bad(format!("arity of '{head}'")))
            }
        };
        let frame = match words[0] {
            "open" => {
                arity(1)?;
                let fault_seed = match words[1] {
                    "-" => None,
                    s => Some(int(s)?),
                };
                Frame::Open {
                    limits: parse_limits(&text()?)?,
                    fault_seed,
                }
            }
            "line" => {
                arity(1)?;
                Frame::Line { sid: int(words[1])?, cmd: text()? }
            }
            "close" => {
                arity(1)?;
                Frame::Close { sid: int(words[1])? }
            }
            "drain" => {
                arity(1)?;
                Frame::Drain { grace: int(words[1])? }
            }
            "opened" => {
                arity(1)?;
                Frame::Opened { sid: int(words[1])? }
            }
            "shed" => {
                arity(2)?;
                Frame::Shed {
                    retry_after_ms: int(words[1])?,
                    attempt: int(words[2])? as u32,
                }
            }
            "out" => {
                arity(1)?;
                Frame::Out { sid: int(words[1])?, bytes: payload.to_vec() }
            }
            "err" => {
                arity(1)?;
                Frame::Err { sid: int(words[1])?, bytes: payload.to_vec() }
            }
            "done" => {
                arity(2)?;
                let ok = match words[2] {
                    "ok" => true,
                    "err" => false,
                    other => return Err(ProtoError::Bad(format!("done status '{other}'"))),
                };
                Frame::Done { sid: int(words[1])?, ok, value: text()? }
            }
            "fault" => {
                arity(2)?;
                let class = FaultClass::parse(words[2])
                    .ok_or_else(|| ProtoError::Bad(format!("fault class '{}'", words[2])))?;
                Frame::Fault { sid: int(words[1])?, class, detail: text()? }
            }
            "closed" => {
                arity(1)?;
                Frame::Closed { sid: int(words[1])? }
            }
            "drained" => {
                arity(2)?;
                Frame::Drained { finished: int(words[1])?, cancelled: int(words[2])? }
            }
            other => return Err(ProtoError::Bad(format!("unknown frame '{other}'"))),
        };
        Ok((frame, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        let (back, used) = Frame::decode(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Open {
            limits: vec![("steps".into(), 20000), ("output".into(), 65536)],
            fault_seed: Some(7),
        });
        roundtrip(Frame::Open { limits: vec![], fault_seed: None });
        roundtrip(Frame::Line { sid: 3, cmd: "echo hi | wc -l".into() });
        roundtrip(Frame::Close { sid: 9 });
        roundtrip(Frame::Drain { grace: 4 });
        roundtrip(Frame::Opened { sid: 1 });
        roundtrip(Frame::Shed { retry_after_ms: 800, attempt: 3 });
        roundtrip(Frame::Out { sid: 2, bytes: b"binary\n\x00\xffrun".to_vec() });
        roundtrip(Frame::Err { sid: 2, bytes: b"es: warning: steps\n".to_vec() });
        roundtrip(Frame::Done { sid: 4, ok: false, value: "limit steps 100 100".into() });
        roundtrip(Frame::Fault {
            sid: 5,
            class: FaultClass::Panic,
            detail: "injected".into(),
        });
        roundtrip(Frame::Closed { sid: 5 });
        roundtrip(Frame::Drained { finished: 10, cancelled: 2 });
    }

    #[test]
    fn partial_input_needs_more() {
        let bytes = Frame::Line { sid: 1, cmd: "echo hello".into() }.encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                Frame::decode(&bytes[..cut]).unwrap_err(),
                ProtoError::NeedMore,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn payloads_may_contain_newlines_and_headers() {
        // A payload that *looks* like a frame header must not confuse
        // the decoder: length-prefix framing reads it as bytes.
        let evil = b"close 99 0\nopen - 0\n".to_vec();
        let f = Frame::Out { sid: 1, bytes: evil };
        let bytes = f.encode();
        let (back, used) = Frame::decode(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(matches!(
            Frame::decode(b"bogus 1 0\n"),
            Err(ProtoError::Bad(_))
        ));
        assert!(matches!(
            Frame::decode(b"done 1 maybe 0\n"),
            Err(ProtoError::Bad(_))
        ));
    }

    #[test]
    fn limit_specs_roundtrip() {
        let spec = vec![("steps".to_string(), 5u64), ("fds".to_string(), 9u64)];
        assert_eq!(parse_limits(&encode_limits(&spec)).unwrap(), spec);
        assert_eq!(parse_limits("").unwrap(), vec![]);
        assert!(parse_limits("steps").is_err());
        assert!(parse_limits("steps=abc").is_err());
    }
}
