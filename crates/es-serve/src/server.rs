//! The session server: admission control, baton scheduling, fault
//! containment, and graceful drain over a [`crate::pool::Pool`].
//!
//! The server is deliberately *caller-driven*: [`Server::feed`]
//! consumes one client frame and returns any immediate responses;
//! [`Server::pump`] advances execution by up to `max_slices` baton
//! grants and returns whatever frames that produced. No hidden
//! threads make scheduling decisions — the only threads are the slot
//! workers, and exactly one of them runs at any moment (the baton),
//! which makes the whole serving path deterministic: the same frame
//! sequence fed through the same pump cadence produces a
//! byte-identical event log, which is the soak suite's replay oracle.
//!
//! ## Containment ladder
//!
//! - A *budget breach* (`limit steps ...`) is a per-command error: the
//!   tenant gets [`Frame::Done`] with `ok = false`, the session
//!   survives, and its limits are re-armed before the next command.
//! - A *cancellation* (client close, drain deadline) unwinds the
//!   command with the uncatchable exit — tenant `catch` cannot
//!   intercept it — and is reported as [`FaultClass::Cancelled`].
//! - A *panic* is caught at the slot boundary: the tenant gets
//!   [`FaultClass::Panic`], the slot is quarantined and scrubbed
//!   (fresh boot + reset audit), and every other session keeps
//!   running undisturbed.
//! - A *reset-oracle violation* on release means the slot could leak
//!   state to its next tenant: [`FaultClass::Oracle`] is reported and
//!   the slot is scrubbed — or retired if even a fresh boot fails the
//!   audit.

use crate::gate::Phase;
use crate::pool::{OsSetup, Outcome, Pool, Reply, SlotState};
use crate::proto::{FaultClass, Frame};
use es_core::governor::Kind;
use std::collections::{BTreeMap, VecDeque};

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Pool slots (maximum concurrently admitted sessions).
    pub capacity: usize,
    /// Admission high-water mark: opens are shed while live sessions
    /// are at or above this (≤ `capacity`).
    pub high_water: usize,
    /// Charge ticks per baton grant — the fairness quantum.
    pub slice_steps: u64,
    /// Limits re-armed before every command of every session (an
    /// `Open` may override individual kinds).
    pub session_limits: Vec<(String, u64)>,
    /// Base retry hint for shed responses, in milliseconds.
    pub shed_base_ms: u64,
    /// Cap on the shed backoff exponent (`base << min(streak, cap)`).
    pub shed_max_exp: u32,
    /// Command text that makes a slot worker panic — the containment
    /// test rig. Choose something no real tenant would type.
    pub panic_probe: String,
    /// Kernel setup run before each slot boots (seed `/bin`, etc.).
    pub os_setup: Option<OsSetup>,
    /// Stack size for slot worker threads.
    pub worker_stack: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            capacity: 8,
            high_water: 8,
            slice_steps: 200,
            session_limits: vec![("steps".to_string(), 200_000)],
            shed_base_ms: 25,
            shed_max_exp: 8,
            panic_probe: "__es_serve_panic_probe__".to_string(),
            os_setup: None,
            // Slot workers interpret recursive tenant code under the
            // default depth-150 governor; 4 MiB clears that with room
            // for the evaluator's own frames even in debug builds.
            worker_stack: 4 << 20,
        }
    }
}

/// Counters the serve tests and the soak report read.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Sessions admitted.
    pub opened: u64,
    /// Opens refused by admission control.
    pub shed: u64,
    /// Commands that finished with a value.
    pub completed: u64,
    /// Commands that finished with an es-level error (breaches etc.).
    pub failed: u64,
    /// Commands cancelled by close or drain deadline.
    pub cancelled: u64,
    /// Panics caught at the slot boundary.
    pub panics: u64,
    /// Dirty reset audits (recycle or scrub).
    pub oracle_violations: u64,
    /// Fresh boots forced by quarantine.
    pub scrubs: u64,
    /// Slots permanently retired.
    pub retired: u64,
    /// Most sessions live at once.
    pub max_live: usize,
}

struct Session {
    slot: usize,
    /// Merged limit spec, re-armed before every command.
    limits: Vec<(String, u64)>,
    /// Commands accepted but not yet started (FIFO).
    queue: VecDeque<String>,
    /// A command is in flight on the slot worker.
    running: bool,
    /// Baton grants consumed since drain began (drain deadline).
    drain_used: u64,
}

/// The multi-tenant session server. See the module docs for the
/// feed/pump driving model.
pub struct Server {
    cfg: ServeConfig,
    pool: Pool,
    sessions: BTreeMap<u64, Session>,
    next_sid: u64,
    /// Consecutive sheds since the last successful admit.
    shed_streak: u32,
    /// Round-robin position: the last sid granted a slice.
    rr_cursor: u64,
    draining: bool,
    drain_grace: u64,
    drain_finished: u64,
    drain_cancelled: u64,
    /// A `Drained` frame is still owed once in-flight work ends.
    drain_pending: bool,
    /// Every frame consumed and emitted, encoded, in order.
    log: Vec<u8>,
    stats: ServeStats,
}

impl Server {
    /// Boots the pool (all slots warm) and an empty session table.
    pub fn new(cfg: ServeConfig) -> Server {
        assert!(cfg.high_water <= cfg.capacity, "high_water > capacity");
        let pool = Pool::new(
            cfg.capacity,
            cfg.os_setup.clone(),
            cfg.panic_probe.clone(),
            cfg.worker_stack,
        );
        Server {
            cfg,
            pool,
            sessions: BTreeMap::new(),
            next_sid: 1,
            shed_streak: 0,
            rr_cursor: 0,
            draining: false,
            drain_grace: 0,
            drain_finished: 0,
            drain_cancelled: 0,
            drain_pending: false,
            log: Vec::new(),
            stats: ServeStats::default(),
        }
    }

    /// Live (admitted, unclosed) sessions.
    pub fn live(&self) -> usize {
        self.sessions.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// The interleaved event log: every frame consumed and emitted so
    /// far, encoded in order. Two identically-driven servers produce
    /// byte-identical logs (the replay oracle).
    pub fn event_log(&self) -> &[u8] {
        &self.log
    }

    /// The slot pool (tests inspect slot states).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    // ---- feed ------------------------------------------------------------

    /// Consumes one client frame; returns (and logs) the immediate
    /// responses. Command output arrives later, via [`Server::pump`].
    pub fn feed(&mut self, frame: Frame) -> Vec<Frame> {
        frame.encode_into(&mut self.log);
        let mut out = Vec::new();
        match frame {
            Frame::Open { limits, fault_seed } => self.open(limits, fault_seed, &mut out),
            Frame::Line { sid, cmd } => self.line(sid, cmd, &mut out),
            Frame::Close { sid } => self.close(sid, &mut out),
            Frame::Drain { grace } => self.drain(grace, &mut out),
            other => out.push(Frame::Fault {
                sid: 0,
                class: FaultClass::NoSession,
                detail: format!("server-to-client frame fed to server: {other:?}"),
            }),
        }
        for f in &out {
            f.encode_into(&mut self.log);
        }
        out
    }

    fn shed(&mut self, out: &mut Vec<Frame>) {
        let exp = self.shed_streak.min(self.cfg.shed_max_exp);
        out.push(Frame::Shed {
            retry_after_ms: self.cfg.shed_base_ms << exp,
            attempt: self.shed_streak,
        });
        self.shed_streak = self.shed_streak.saturating_add(1);
        self.stats.shed += 1;
    }

    fn open(&mut self, limits: Vec<(String, u64)>, fault_seed: Option<u64>, out: &mut Vec<Frame>) {
        if self.draining || self.sessions.len() >= self.cfg.high_water {
            self.shed(out);
            return;
        }
        if let Some((bad, _)) = limits.iter().find(|(k, _)| Kind::parse(k).is_none()) {
            out.push(Frame::Fault {
                sid: 0,
                class: FaultClass::NoSession,
                detail: format!("unknown limit kind '{bad}'"),
            });
            return;
        }
        let Some(slot) = self.pool.acquire() else {
            // Slots can lag sessions when quarantined/retired ones are
            // out of rotation; that is still back-pressure.
            self.shed(out);
            return;
        };
        let mut merged = self.cfg.session_limits.clone();
        for (k, v) in limits {
            match merged.iter_mut().find(|(mk, _)| *mk == k) {
                Some(slot) => slot.1 = v,
                None => merged.push((k, v)),
            }
        }
        if let Err(e) = self.pool.arm(slot, merged.clone(), fault_seed) {
            self.pool.release(slot);
            out.push(Frame::Fault {
                sid: 0,
                class: FaultClass::NoSession,
                detail: e,
            });
            return;
        }
        let sid = self.next_sid;
        self.next_sid += 1;
        self.sessions.insert(
            sid,
            Session {
                slot,
                limits: merged,
                queue: VecDeque::new(),
                running: false,
                drain_used: 0,
            },
        );
        self.shed_streak = 0;
        self.stats.opened += 1;
        self.stats.max_live = self.stats.max_live.max(self.sessions.len());
        out.push(Frame::Opened { sid });
    }

    fn line(&mut self, sid: u64, cmd: String, out: &mut Vec<Frame>) {
        match self.sessions.get_mut(&sid) {
            None => out.push(Frame::Fault {
                sid,
                class: FaultClass::NoSession,
                detail: String::new(),
            }),
            Some(s) => s.queue.push_back(cmd),
        }
    }

    fn close(&mut self, sid: u64, out: &mut Vec<Frame>) {
        let Some(sess) = self.sessions.remove(&sid) else {
            out.push(Frame::Fault {
                sid,
                class: FaultClass::NoSession,
                detail: String::new(),
            });
            return;
        };
        if sess.running {
            let outcome = self.cancel_and_reap(sess.slot);
            self.emit_console(sid, &outcome, out);
            if let Some(msg) = &outcome.panic {
                self.stats.panics += 1;
                out.push(Frame::Fault {
                    sid,
                    class: FaultClass::Panic,
                    detail: msg.clone(),
                });
                self.pool.quarantine(sess.slot);
                self.scrub_slot(sess.slot);
                out.push(Frame::Closed { sid });
                return;
            }
            self.stats.cancelled += 1;
            out.push(Frame::Fault {
                sid,
                class: FaultClass::Cancelled,
                detail: "session closed".to_string(),
            });
        }
        self.release_slot(sid, sess.slot, out);
        out.push(Frame::Closed { sid });
    }

    fn drain(&mut self, grace: u64, out: &mut Vec<Frame>) {
        self.draining = true;
        self.drain_grace = grace;
        self.drain_pending = true;
        // Sessions with nothing in flight close right away; queued but
        // unstarted commands are dropped (only in-flight work gets the
        // grace budget).
        let idle: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| !s.running)
            .map(|(&sid, _)| sid)
            .collect();
        for sid in idle {
            let sess = self.sessions.remove(&sid).expect("session exists");
            self.release_slot(sid, sess.slot, out);
            out.push(Frame::Closed { sid });
        }
        for sess in self.sessions.values_mut() {
            sess.queue.clear();
            sess.drain_used = 0;
        }
        if self.sessions.is_empty() {
            out.push(Frame::Drained {
                finished: self.drain_finished,
                cancelled: self.drain_cancelled,
            });
            self.drain_pending = false;
        }
    }

    // ---- pump ------------------------------------------------------------

    /// Advances execution by up to `max_slices` baton grants,
    /// round-robin across sessions with work, starting queued commands
    /// as their slots go idle. Returns (and logs) every frame emitted.
    /// Returns early when no session has anything in flight.
    pub fn pump(&mut self, max_slices: u64) -> Vec<Frame> {
        let mut out = Vec::new();
        let mut granted = 0u64;
        loop {
            self.start_pending();
            let runnable: Vec<u64> = self
                .sessions
                .iter()
                .filter(|(_, s)| s.running)
                .map(|(&sid, _)| sid)
                .collect();
            if runnable.is_empty() {
                if self.drain_pending && self.sessions.is_empty() {
                    out.push(Frame::Drained {
                        finished: self.drain_finished,
                        cancelled: self.drain_cancelled,
                    });
                    self.drain_pending = false;
                }
                break;
            }
            if granted >= max_slices {
                break;
            }
            let sid = *runnable
                .iter()
                .find(|&&s| s > self.rr_cursor)
                .unwrap_or(&runnable[0]);
            self.rr_cursor = sid;
            let slot = self.sessions[&sid].slot;

            if self.draining {
                let used = {
                    let s = self.sessions.get_mut(&sid).expect("session exists");
                    s.drain_used += 1;
                    s.drain_used
                };
                if used > self.drain_grace {
                    // Deadline: cancel this straggler instead of
                    // granting another slice.
                    let sess = self.sessions.remove(&sid).expect("session exists");
                    let outcome = self.cancel_and_reap(slot);
                    self.emit_console(sid, &outcome, &mut out);
                    self.stats.cancelled += 1;
                    self.drain_cancelled += 1;
                    out.push(Frame::Fault {
                        sid,
                        class: FaultClass::Cancelled,
                        detail: "drain deadline".to_string(),
                    });
                    if outcome.panic.is_some() {
                        self.stats.panics += 1;
                        self.pool.quarantine(sess.slot);
                        self.scrub_slot(sess.slot);
                    } else {
                        self.release_slot(sid, sess.slot, &mut out);
                    }
                    out.push(Frame::Closed { sid });
                    continue;
                }
            }

            self.pool.gate(slot).grant(self.cfg.slice_steps);
            granted += 1;
            if self.pool.gate(slot).wait_parked() == Phase::Done {
                self.pool.gate(slot).wait_done();
                let Some(Reply::Ran(outcome)) = self.pool.take_reply(slot) else {
                    continue;
                };
                self.finish_command(sid, outcome, &mut out);
            }
        }
        for f in &out {
            f.encode_into(&mut self.log);
        }
        out
    }

    /// Starts the head-of-queue command on every idle session,
    /// re-arming its limit budget first (a breach disarms the breached
    /// kind; each command gets a fresh budget).
    fn start_pending(&mut self) {
        let ready: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| !s.running && !s.queue.is_empty())
            .map(|(&sid, _)| sid)
            .collect();
        for sid in ready {
            let (slot, limits, cmd) = {
                let s = self.sessions.get_mut(&sid).expect("session exists");
                let cmd = s.queue.pop_front().expect("queue non-empty");
                s.running = true;
                (s.slot, s.limits.clone(), cmd)
            };
            let _ = self.pool.arm(slot, limits, None);
            self.pool.start_run(slot, cmd);
        }
    }

    fn finish_command(&mut self, sid: u64, outcome: Outcome, out: &mut Vec<Frame>) {
        self.emit_console(sid, &outcome, out);
        if let Some(msg) = &outcome.panic {
            // Session-fatal: the machine is untrustworthy. Quarantine
            // and scrub; other sessions never notice.
            self.stats.panics += 1;
            let sess = self.sessions.remove(&sid).expect("session exists");
            out.push(Frame::Fault {
                sid,
                class: FaultClass::Panic,
                detail: msg.clone(),
            });
            self.pool.quarantine(sess.slot);
            self.scrub_slot(sess.slot);
            out.push(Frame::Closed { sid });
            return;
        }
        if outcome.cancelled {
            // Only the drain path cancels without removing the session
            // first, and it reaps synchronously — a cancel seen here
            // means the close raced a completion; treat as done.
            self.stats.cancelled += 1;
        }
        match &outcome.result {
            Ok(v) => {
                self.stats.completed += 1;
                out.push(Frame::Done {
                    sid,
                    ok: true,
                    value: v.clone(),
                });
            }
            Err(e) => {
                self.stats.failed += 1;
                out.push(Frame::Done {
                    sid,
                    ok: false,
                    value: e.clone(),
                });
            }
        }
        if self.draining {
            self.drain_finished += 1;
            let sess = self.sessions.remove(&sid).expect("session exists");
            self.release_slot(sid, sess.slot, out);
            out.push(Frame::Closed { sid });
            return;
        }
        let s = self.sessions.get_mut(&sid).expect("session exists");
        s.running = false;
    }

    fn emit_console(&self, sid: u64, outcome: &Outcome, out: &mut Vec<Frame>) {
        if !outcome.stdout.is_empty() {
            out.push(Frame::Out {
                sid,
                bytes: outcome.stdout.clone().into_bytes(),
            });
        }
        if !outcome.stderr.is_empty() {
            out.push(Frame::Err {
                sid,
                bytes: outcome.stderr.clone().into_bytes(),
            });
        }
    }

    /// Cancels the in-flight command on `slot` and waits for the
    /// worker's reply. The worker may be parked mid-command or still
    /// waiting for its first slice; `wake` covers the latter without
    /// racing a completion.
    fn cancel_and_reap(&mut self, slot: usize) -> Outcome {
        let gate = self.pool.gate(slot);
        gate.cancel();
        gate.wake();
        gate.wait_done();
        match self.pool.take_reply(slot) {
            Some(Reply::Ran(o)) => o,
            _ => Outcome {
                result: Err("slot worker gone".to_string()),
                cancelled: true,
                panic: Some("slot worker gone".to_string()),
                stdout: String::new(),
                stderr: String::new(),
                steps: 0,
            },
        }
    }

    /// Recycle+audit on session close. A dirty audit is a containment
    /// event: report it, scrub the slot (retiring it if even a fresh
    /// boot fails), and keep serving.
    fn release_slot(&mut self, sid: u64, slot: usize, out: &mut Vec<Frame>) {
        let report = self.pool.release(slot);
        if !report.clean() {
            self.stats.oracle_violations += 1;
            out.push(Frame::Fault {
                sid,
                class: FaultClass::Oracle,
                detail: report.violations().join(","),
            });
            self.scrub_slot(slot);
        }
    }

    fn scrub_slot(&mut self, slot: usize) {
        self.stats.scrubs += 1;
        let report = self.pool.scrub(slot);
        if !report.clean() {
            self.stats.oracle_violations += 1;
        }
        if self.pool.state(slot) == SlotState::Retired {
            self.stats.retired += 1;
        }
    }
}
