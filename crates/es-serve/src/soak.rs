//! The deterministic serving soak: thousands of seeded sessions with
//! fault weather, tight budgets, injected panics, and churn, driven
//! through one [`crate::server::Server`] — the acceptance rig for the
//! containment story.
//!
//! Everything the driver does is a pure function of the seed
//! (splitmix64 all the way down), and the server itself is
//! deterministic under a fixed feed/pump cadence, so running the same
//! soak twice must produce *byte-identical* event logs — the replay
//! oracle. The report carries the log so callers can compare runs.

use crate::proto::Frame;
use crate::server::{ServeConfig, ServeStats, Server};
use std::collections::VecDeque;

/// Soak shape knobs. All defaults match the checked-in `make
/// serve-soak` acceptance run except `sessions`, which that target
/// scales up to 10k.
#[derive(Clone)]
pub struct SoakConfig {
    /// Total sessions to push through the server.
    pub sessions: u64,
    /// Master seed; every decision derives from it.
    pub seed: u64,
    /// Server under test.
    pub serve: ServeConfig,
    /// Keep roughly this many sessions live at once (drives admission
    /// past the high-water mark when it exceeds it).
    pub target_live: usize,
    /// One in this many sessions opens with fault weather.
    pub weather_one_in: u64,
    /// One in this many commands is the panic probe.
    pub panic_one_in: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        let serve = ServeConfig {
            capacity: 8,
            high_water: 6,
            slice_steps: 150,
            // Tight per-command budgets: runaway loops breach in a
            // few dozen slices instead of hanging the soak.
            session_limits: vec![("steps".to_string(), 4000), ("output".to_string(), 16384)],
            ..ServeConfig::default()
        };
        SoakConfig {
            sessions: 400,
            seed: 0xE5_5E44_E001,
            serve,
            target_live: 7,
            weather_one_in: 3,
            panic_one_in: 64,
        }
    }
}

/// What one soak run observed. `log` is the server's full event log;
/// byte-compare two seeded runs for the replay oracle.
pub struct SoakReport {
    /// Final server counters.
    pub stats: ServeStats,
    /// Total client frames fed.
    pub frames_fed: u64,
    /// Total server frames received back.
    pub frames_emitted: u64,
    /// The interleaved event log.
    pub log: Vec<u8>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The command mix: ordinary work, state that must not leak (globals,
/// hook rebinds, open redirections), breach-bound loops, and output
/// through pipes. Index by rng.
const COMMANDS: &[&str] = &[
    "echo soak",
    "x = a b c; echo $x(2)",
    "let (i = one two) { echo $i }",
    "if {true} {echo yes} {echo no}",
    "fn f a { echo <$a> }; f 7",
    "echo hi | wc -l",
    "echo stored > /tmp/soak; cat /tmp/soak",
    "catch @ e { echo caught } { throw error soak boom }",
    "fn-%pipe = @ { echo hooked }",
    "while {true} {}",
    "echo a b c d e f g h",
    "result 1 2 3",
];

/// Drives one seeded soak and returns the report. Panics only if the
/// *driver's* invariants break (a session the server claims is open
/// refusing commands, the drain never completing); server-side faults
/// are data, counted in the report.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let mut rng = cfg.seed;
    let mut server = Server::new(cfg.serve.clone());
    let mut alive: VecDeque<u64> = VecDeque::new();
    let mut frames_fed = 0u64;
    let mut frames_emitted = 0u64;

    let note = |alive: &mut VecDeque<u64>, frames: &[Frame]| {
        for f in frames {
            if let Frame::Closed { sid } = f {
                alive.retain(|s| s != sid);
            }
        }
    };

    let mut opened = 0u64;
    while opened < cfg.sessions {
        // Admission: retry-after-shed, closing the oldest session to
        // free capacity — the backoff loop a well-behaved client runs.
        let fault_seed = if splitmix(&mut rng).is_multiple_of(cfg.weather_one_in) {
            Some(splitmix(&mut rng))
        } else {
            None
        };
        let mut retries = 0u32;
        let sid = loop {
            retries += 1;
            assert!(retries < 10_000, "admission permanently stuck");
            frames_fed += 1;
            let resp = server.feed(Frame::Open {
                limits: vec![],
                fault_seed,
            });
            frames_emitted += resp.len() as u64;
            match resp.first() {
                Some(Frame::Opened { sid }) => break *sid,
                _ => {
                    // Shed: make room — pump in-flight work, close the
                    // oldest session — then retry.
                    let pumped = server.pump(32 + splitmix(&mut rng) % 64);
                    frames_emitted += pumped.len() as u64;
                    note(&mut alive, &pumped);
                    if let Some(old) = alive.pop_front() {
                        frames_fed += 1;
                        let closed = server.feed(Frame::Close { sid: old });
                        frames_emitted += closed.len() as u64;
                    }
                }
            }
        };
        alive.push_back(sid);
        opened += 1;

        // Queue this session's script.
        let ncmds = 1 + splitmix(&mut rng) % 3;
        for _ in 0..ncmds {
            let cmd = if splitmix(&mut rng).is_multiple_of(cfg.panic_one_in) {
                cfg.serve.panic_probe.clone()
            } else {
                COMMANDS[(splitmix(&mut rng) % COMMANDS.len() as u64) as usize].to_string()
            };
            frames_fed += 1;
            let resp = server.feed(Frame::Line { sid, cmd });
            frames_emitted += resp.len() as u64;
        }

        // Interleave: a burst of baton grants across everything live.
        let pumped = server.pump(16 + splitmix(&mut rng) % 48);
        frames_emitted += pumped.len() as u64;
        note(&mut alive, &pumped);

        // Churn down to the target population.
        while alive.len() > cfg.target_live {
            let old = alive.pop_front().expect("non-empty");
            frames_fed += 1;
            let closed = server.feed(Frame::Close { sid: old });
            frames_emitted += closed.len() as u64;
        }
    }

    // Run remaining work dry, then drain.
    loop {
        let pumped = server.pump(10_000);
        frames_emitted += pumped.len() as u64;
        note(&mut alive, &pumped);
        if pumped.is_empty() {
            break;
        }
    }
    frames_fed += 1;
    let resp = server.feed(Frame::Drain { grace: 64 });
    frames_emitted += resp.len() as u64;
    note(&mut alive, &resp);
    let mut drained = resp.iter().any(|f| matches!(f, Frame::Drained { .. }));
    let mut rounds = 0;
    while !drained {
        let pumped = server.pump(10_000);
        frames_emitted += pumped.len() as u64;
        note(&mut alive, &pumped);
        drained = pumped.iter().any(|f| matches!(f, Frame::Drained { .. }));
        rounds += 1;
        assert!(rounds < 1000, "drain never completed");
    }

    SoakReport {
        stats: server.stats(),
        frames_fed,
        frames_emitted,
        log: server.event_log().to_vec(),
    }
}
