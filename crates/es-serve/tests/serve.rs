//! Serving-path integration tests: admission, fairness, containment,
//! recycling purity, drain, and the serve-vs-direct differential.

use es_serve::proto::{FaultClass, Frame};
use es_serve::server::{ServeConfig, Server};

fn cfg(capacity: usize, high_water: usize) -> ServeConfig {
    ServeConfig {
        capacity,
        high_water,
        ..ServeConfig::default()
    }
}

fn open(server: &mut Server) -> u64 {
    open_with(server, vec![], None)
}

fn open_with(server: &mut Server, limits: Vec<(String, u64)>, fault_seed: Option<u64>) -> u64 {
    match server
        .feed(Frame::Open { limits, fault_seed })
        .first()
        .expect("open answered")
    {
        Frame::Opened { sid } => *sid,
        other => panic!("expected Opened, got {other:?}"),
    }
}

fn line(server: &mut Server, sid: u64, cmd: &str) {
    let resp = server.feed(Frame::Line {
        sid,
        cmd: cmd.to_string(),
    });
    assert!(resp.is_empty(), "line should queue silently: {resp:?}");
}

/// Pumps until quiescent, collecting every emitted frame.
fn pump_all(server: &mut Server) -> Vec<Frame> {
    let mut out = Vec::new();
    loop {
        let batch = server.pump(10_000);
        if batch.is_empty() {
            break;
        }
        out.extend(batch);
    }
    out
}

fn stdout_of(frames: &[Frame], sid: u64) -> String {
    let mut s = String::new();
    for f in frames {
        if let Frame::Out { sid: fsid, bytes } = f {
            if *fsid == sid {
                s.push_str(std::str::from_utf8(bytes).expect("utf8 stdout"));
            }
        }
    }
    s
}

fn stderr_of(frames: &[Frame], sid: u64) -> String {
    let mut s = String::new();
    for f in frames {
        if let Frame::Err { sid: fsid, bytes } = f {
            if *fsid == sid {
                s.push_str(std::str::from_utf8(bytes).expect("utf8 stderr"));
            }
        }
    }
    s
}

fn dones_of(frames: &[Frame], sid: u64) -> Vec<(bool, String)> {
    frames
        .iter()
        .filter_map(|f| match f {
            Frame::Done {
                sid: fsid,
                ok,
                value,
            } if *fsid == sid => Some((*ok, value.clone())),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------

#[test]
fn basic_session_runs_commands_and_closes_clean() {
    let mut server = Server::new(cfg(2, 2));
    let sid = open(&mut server);
    line(&mut server, sid, "echo hello, serve");
    line(&mut server, sid, "x = a b c; echo $x(2)");
    let frames = pump_all(&mut server);
    assert_eq!(stdout_of(&frames, sid), "hello, serve\nb\n");
    assert_eq!(
        dones_of(&frames, sid),
        vec![(true, "0".into()), (true, "0".into())]
    );
    let closed = server.feed(Frame::Close { sid });
    assert_eq!(closed, vec![Frame::Closed { sid }]);
    assert_eq!(server.stats().oracle_violations, 0);
    assert_eq!(server.live(), 0);
}

#[test]
fn unknown_session_gets_nosession_fault() {
    let mut server = Server::new(cfg(1, 1));
    let resp = server.feed(Frame::Line {
        sid: 99,
        cmd: "echo hi".into(),
    });
    assert!(matches!(
        resp.first(),
        Some(Frame::Fault {
            sid: 99,
            class: FaultClass::NoSession,
            ..
        })
    ));
    let resp = server.feed(Frame::Close { sid: 42 });
    assert!(matches!(
        resp.first(),
        Some(Frame::Fault {
            sid: 42,
            class: FaultClass::NoSession,
            ..
        })
    ));
}

/// Satellite: an infinite loop in one session must not delay another
/// session's command past its timeslice budget. Session A spins in
/// `while {true} {}` under a huge step budget; session B's `echo`
/// still completes within a couple of scheduling rounds.
#[test]
fn runaway_session_does_not_starve_neighbors() {
    let mut server = Server::new(cfg(2, 2));
    let a = open_with(&mut server, vec![("steps".into(), 10_000_000)], None);
    let b = open(&mut server);
    line(&mut server, a, "while {true} {}");
    line(&mut server, b, "echo prompt service");
    // Round-robin grants: B shares every round with A, so B's one
    // command (well under two slices of work) finishes within a few
    // rounds no matter how long A keeps spinning.
    let mut got_b = Vec::new();
    let mut rounds = 0;
    while dones_of(&got_b, b).is_empty() {
        got_b.extend(server.pump(4));
        rounds += 1;
        assert!(rounds <= 4, "B's echo was delayed past its slice budget");
    }
    assert_eq!(stdout_of(&got_b, b), "prompt service\n");
    assert_eq!(dones_of(&got_b, b), vec![(true, "0".into())]);
    // A really was running the whole time (it consumed slices), and is
    // still running now.
    assert!(dones_of(&got_b, a).is_empty());
    // Closing A cancels the runaway command; the server survives.
    let closed = server.feed(Frame::Close { sid: a });
    assert!(closed
        .iter()
        .any(|f| matches!(f, Frame::Fault { class: FaultClass::Cancelled, .. })));
    assert!(closed.iter().any(|f| matches!(f, Frame::Closed { sid } if *sid == a)));
    assert_eq!(server.stats().cancelled, 1);
}

/// Satellite: the governor's 90% warning lands on the owning session's
/// stderr stream — as an `Err` frame for that sid — not on the server
/// process's stderr and not in any other session's stream.
#[test]
fn governor_warning_routes_to_owning_session_stderr() {
    let mut server = Server::new(cfg(2, 2));
    let noisy = open_with(&mut server, vec![("output".into(), 200)], None);
    let quiet = open(&mut server);
    let long = "a".repeat(185);
    line(&mut server, noisy, &format!("echo {long}; echo ok"));
    line(&mut server, quiet, "echo calm");
    let frames = pump_all(&mut server);
    let warn = stderr_of(&frames, noisy);
    assert!(
        warn.contains("es: warning: output limit at"),
        "expected 90% warning on noisy session stderr, got {warn:?}"
    );
    assert_eq!(stderr_of(&frames, quiet), "", "warning leaked across sessions");
    // Both commands completed: the warning is advisory, not a breach.
    assert_eq!(dones_of(&frames, noisy), vec![(true, "0".into())]);
    assert_eq!(stdout_of(&frames, quiet), "calm\n");
}

/// A budget breach is a per-command error; the session survives and
/// its next command gets a fresh budget.
#[test]
fn budget_breach_is_survivable_per_command_error() {
    let mut server = Server::new(cfg(1, 1));
    let sid = open_with(&mut server, vec![("steps".into(), 800)], None);
    line(&mut server, sid, "while {true} {}");
    line(&mut server, sid, "echo still alive");
    let frames = pump_all(&mut server);
    let dones = dones_of(&frames, sid);
    assert_eq!(dones.len(), 2);
    assert!(!dones[0].0, "runaway loop should breach");
    assert!(
        dones[0].1.contains("limit steps"),
        "breach error text: {:?}",
        dones[0].1
    );
    assert!(dones[1].0, "session must survive the breach");
    assert_eq!(stdout_of(&frames, sid), "still alive\n");
    assert_eq!(server.stats().failed, 1);
    assert_eq!(server.stats().completed, 1);
    // And the session still closes clean.
    let closed = server.feed(Frame::Close { sid });
    assert_eq!(closed, vec![Frame::Closed { sid }]);
}

/// A panic is caught at the slot boundary: the tenant gets a Fault
/// frame, the slot is scrubbed and reused, and other sessions never
/// notice.
#[test]
fn panic_is_contained_to_its_slot() {
    let mut server = Server::new(cfg(2, 2));
    let probe = {
        let c = ServeConfig::default();
        c.panic_probe
    };
    let victim = open(&mut server);
    let bystander = open(&mut server);
    line(&mut server, victim, "echo before");
    line(&mut server, victim, &probe);
    line(&mut server, bystander, "echo unbothered");
    let frames = pump_all(&mut server);
    assert!(frames.iter().any(|f| matches!(
        f,
        Frame::Fault {
            sid,
            class: FaultClass::Panic,
            ..
        } if *sid == victim
    )));
    assert!(frames.iter().any(|f| matches!(f, Frame::Closed { sid } if *sid == victim)));
    assert_eq!(stdout_of(&frames, victim), "before\n");
    assert_eq!(stdout_of(&frames, bystander), "unbothered\n");
    assert_eq!(dones_of(&frames, bystander), vec![(true, "0".into())]);
    let stats = server.stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.scrubs, 1);
    assert_eq!(stats.retired, 0, "scrub must return the slot to rotation");
    assert_eq!(stats.oracle_violations, 0);
    // The scrubbed slot serves again.
    let again = open(&mut server);
    line(&mut server, again, "echo reused");
    let frames = pump_all(&mut server);
    assert_eq!(stdout_of(&frames, again), "reused\n");
}

/// Admission control: opens beyond the high-water mark are shed with
/// exponentially growing retry hints; the streak resets on a
/// successful admit; already-admitted sessions are unaffected.
#[test]
fn shedding_backs_off_and_recovers() {
    let mut server = Server::new(cfg(2, 1));
    let sid = open(&mut server);
    line(&mut server, sid, "echo admitted");

    let shed1 = server.feed(Frame::Open {
        limits: vec![],
        fault_seed: None,
    });
    let shed2 = server.feed(Frame::Open {
        limits: vec![],
        fault_seed: None,
    });
    let (Some(Frame::Shed { retry_after_ms: r1, attempt: a1 }), Some(Frame::Shed { retry_after_ms: r2, attempt: a2 })) =
        (shed1.first(), shed2.first())
    else {
        panic!("expected two sheds: {shed1:?} {shed2:?}");
    };
    assert_eq!((*a1, *a2), (0, 1));
    assert_eq!(*r2, *r1 * 2, "backoff hint must double per consecutive shed");

    // The admitted session is untouched by the shedding.
    let frames = pump_all(&mut server);
    assert_eq!(stdout_of(&frames, sid), "admitted\n");

    // Freeing capacity admits again and resets the streak.
    server.feed(Frame::Close { sid });
    let sid2 = open(&mut server);
    server.feed(Frame::Close { sid: sid2 });
    // Fill back to high water, then shed: attempt restarts at 0.
    let sid3 = open(&mut server);
    let shed3 = server.feed(Frame::Open {
        limits: vec![],
        fault_seed: None,
    });
    assert!(matches!(shed3.first(), Some(Frame::Shed { attempt: 0, .. })));
    server.feed(Frame::Close { sid: sid3 });
    assert_eq!(server.stats().shed, 3);
}

/// Drain: in-flight commands get the grace budget; quick ones finish,
/// stragglers are cancelled; everything closes; new opens are shed.
#[test]
fn drain_finishes_quick_work_and_cancels_stragglers() {
    let mut server = Server::new(ServeConfig {
        capacity: 3,
        high_water: 3,
        slice_steps: 10,
        ..ServeConfig::default()
    });
    let spinner = open_with(&mut server, vec![("steps".into(), 10_000_000)], None);
    let quick = open(&mut server);
    let idle = open(&mut server);
    line(&mut server, spinner, "while {true} {}");
    // Bounded work, several 10-step slices long: still in flight when
    // the drain arrives, done well inside the grace budget.
    line(
        &mut server,
        quick,
        "n = a; while {!~ $n aaaaaaaaaaaaaaaaaaaa} { n = $n^a }; echo finishing",
    );
    // One grant each: both commands are now in flight.
    server.pump(2);

    let resp = server.feed(Frame::Drain { grace: 100 });
    // The idle session closes immediately.
    assert!(resp.iter().any(|f| matches!(f, Frame::Closed { sid } if *sid == idle)));

    let frames = pump_all(&mut server);
    assert_eq!(stdout_of(&frames, quick), "finishing\n");
    assert!(frames.iter().any(|f| matches!(
        f,
        Frame::Fault { sid, class: FaultClass::Cancelled, detail } if *sid == spinner && detail == "drain deadline"
    )));
    let drained = frames
        .iter()
        .find_map(|f| match f {
            Frame::Drained {
                finished,
                cancelled,
            } => Some((*finished, *cancelled)),
            _ => None,
        })
        .expect("drain must complete");
    assert_eq!(drained, (1, 1));
    assert_eq!(server.live(), 0);

    // Post-drain opens are shed.
    let resp = server.feed(Frame::Open {
        limits: vec![],
        fault_seed: None,
    });
    assert!(matches!(resp.first(), Some(Frame::Shed { .. })));
}

/// Recycling purity: a session that dirties everything it can reach —
/// globals, functions, hook bindings, files, redirections — leaves no
/// trace for the slot's next tenant, and the release passes the reset
/// oracle (no Oracle fault).
#[test]
fn recycled_slot_shows_no_previous_tenant_state() {
    let mut server = Server::new(cfg(1, 1));
    let dirty = open(&mut server);
    line(&mut server, dirty, "x = leaked; fn f { echo leaked-fn }");
    line(&mut server, dirty, "fn-%pipe = @ { echo hooked }");
    line(&mut server, dirty, "echo contaminant > /tmp/leak");
    let frames = pump_all(&mut server);
    assert_eq!(dones_of(&frames, dirty).len(), 3);
    let closed = server.feed(Frame::Close { sid: dirty });
    assert_eq!(
        closed,
        vec![Frame::Closed { sid: dirty }],
        "recycle must pass the reset oracle (no Oracle fault)"
    );

    // Same single slot, next tenant: nothing persists.
    let fresh = open(&mut server);
    line(&mut server, fresh, "echo val: $x");
    line(&mut server, fresh, "echo a | cat");
    line(&mut server, fresh, "cat /tmp/leak");
    let frames = pump_all(&mut server);
    assert_eq!(
        stdout_of(&frames, fresh),
        "val:\na\n",
        "previous tenant's global/hook/file state leaked"
    );
    let dones = dones_of(&frames, fresh);
    // `cat` of a missing file exits nonzero (it is not an es error).
    assert_ne!(dones[2], (true, "0".into()), "/tmp/leak should not exist for a new tenant");
    assert_eq!(server.stats().oracle_violations, 0);
}

/// The serving path is just a transport: a session's output and
/// per-command outcomes through the server match a directly-driven
/// machine byte for byte.
#[test]
fn serve_matches_direct_execution() {
    let script = [
        "echo hello, world",
        "x = a b c; echo $x(2) $x(1)",
        "let (i = one two) { echo $i }",
        "fn f a { echo <$a> }; f 7",
        "echo hi | wc -l",
        "echo stored > /tmp/f; cat /tmp/f",
        "catch @ e { echo caught $e } { throw error boom }",
        "result 1 2 3",
    ];
    // Direct: one machine, the conformance harness's entry point.
    let mut m = es_core::Machine::new(es_os::SimOs::new()).expect("boot");
    let direct = es_core::harness::run_session(&mut m, &script);

    // Served: same commands through open/line/pump/close.
    let mut server = Server::new(cfg(1, 1));
    let sid = open(&mut server);
    for cmd in &script {
        line(&mut server, sid, cmd);
    }
    let frames = pump_all(&mut server);
    let served_outcomes: Vec<String> = dones_of(&frames, sid)
        .into_iter()
        .map(|(ok, v)| format!("{}: {v}", if ok { "ok" } else { "err" }))
        .collect();
    let direct_outcomes: Vec<String> = direct
        .outcomes
        .iter()
        .map(|o| o.trim_end().to_string())
        .collect();
    assert_eq!(
        served_outcomes
            .iter()
            .map(|o| o.trim_end().to_string())
            .collect::<Vec<_>>(),
        direct_outcomes
    );
    assert_eq!(stdout_of(&frames, sid), direct.stdout);
    assert_eq!(stderr_of(&frames, sid), direct.stderr);
}

/// Feeding a server-to-client frame is rejected, not crashed on.
#[test]
fn server_frames_are_rejected_as_input() {
    let mut server = Server::new(cfg(1, 1));
    let resp = server.feed(Frame::Opened { sid: 1 });
    assert!(matches!(
        resp.first(),
        Some(Frame::Fault {
            class: FaultClass::NoSession,
            ..
        })
    ));
}

/// Opening with a bogus limit kind fails cleanly and frees the slot.
#[test]
fn bad_limit_kind_is_rejected_cleanly() {
    let mut server = Server::new(cfg(1, 1));
    let resp = server.feed(Frame::Open {
        limits: vec![("bogons".into(), 5)],
        fault_seed: None,
    });
    assert!(matches!(
        resp.first(),
        Some(Frame::Fault {
            class: FaultClass::NoSession,
            ..
        })
    ));
    // The slot was not leaked: a well-formed open still succeeds.
    let sid = open(&mut server);
    assert_eq!(sid, 1);
}

/// Fault weather (a seeded FaultPlan) stays session-scoped: the
/// weathered session sees errors, the calm one on the same server
/// does not, and recycling clears the plan.
#[test]
fn fault_weather_is_per_session() {
    let mut server = Server::new(cfg(2, 2));
    let stormy = open_with(&mut server, vec![], Some(7));
    let calm = open(&mut server);
    for _ in 0..60 {
        line(&mut server, stormy, "echo x > /tmp/wf; cat /tmp/wf; echo y | cat");
        line(&mut server, calm, "echo x > /tmp/cf; cat /tmp/cf; echo y | cat");
    }
    let frames = pump_all(&mut server);
    // Calm session: every command succeeds with status 0.
    let calm_dones = dones_of(&frames, calm);
    assert!(
        calm_dones.iter().all(|(ok, v)| *ok && v == "0"),
        "calm session caught the weather: {calm_dones:?}"
    );
    // The stormy session saw at least one injected failure (12/1024
    // per syscall over ~hundreds of syscalls). A fault surfaces either
    // as an es error (redirection failure) or a nonzero exit status
    // (a program's own read/write failed).
    let stormy_dones = dones_of(&frames, stormy);
    assert!(
        stormy_dones.iter().any(|(ok, v)| !*ok || v != "0"),
        "weather never materialized: {stormy_dones:?}"
    );
    // Weathered slot still recycles clean.
    let closed = server.feed(Frame::Close { sid: stormy });
    assert_eq!(closed, vec![Frame::Closed { sid: stormy }]);
    assert_eq!(server.stats().oracle_violations, 0);
}
