//! The serving soak acceptance rig (ISSUE 9): seeded thousands-of-
//! sessions runs with fault weather, tight budgets, injected panics,
//! and admission churn. `make serve-soak` drives this same test at 10k
//! sessions via `SERVE_SESSIONS` / `SERVE_SEEDS`.

use es_serve::soak::{run_soak, SoakConfig};
use es_serve::ServeStats;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn assert_contained(stats: &ServeStats, sessions: u64) {
    assert_eq!(stats.opened, sessions, "every session must eventually admit");
    assert_eq!(
        stats.oracle_violations, 0,
        "cross-session state bleed detected by the reset oracle"
    );
    assert_eq!(stats.retired, 0, "no slot should fail a fresh-boot audit");
    assert_eq!(
        stats.panics, stats.scrubs,
        "every caught panic must scrub its slot (and nothing else scrubs)"
    );
    assert!(
        stats.panics > 0,
        "the probe should have injected panics to contain"
    );
    assert!(
        stats.shed > 0,
        "driving past high water must engage load shedding"
    );
    assert!(
        stats.failed > 0,
        "tight budgets should breach some runaway commands"
    );
    assert!(stats.max_live <= 6, "admission must hold the high-water mark");
}

/// The acceptance soak: every seed runs twice and must produce
/// byte-identical event logs (the replay oracle), with zero escaped
/// panics (the test process surviving IS the assertion — a panic that
/// crossed a slot boundary would kill the run), zero reset-oracle
/// violations, and shedding engaged but harmless.
#[test]
fn soak_is_contained_and_replays_byte_identically() {
    let sessions = env_u64("SERVE_SESSIONS", 400);
    let seeds = env_u64("SERVE_SEEDS", 2);
    for seed_no in 0..seeds {
        let cfg = SoakConfig {
            sessions,
            seed: 0xE5_5E44E + seed_no * 0x9E3779B9,
            ..SoakConfig::default()
        };
        let first = run_soak(&cfg);
        assert_contained(&first.stats, sessions);
        let replay = run_soak(&cfg);
        assert_eq!(
            first.log.len(),
            replay.log.len(),
            "seed {seed_no}: replay produced a different amount of traffic"
        );
        assert!(
            first.log == replay.log,
            "seed {seed_no}: replay diverged from the original event log"
        );
        assert_eq!(first.frames_fed, replay.frames_fed);
        assert_eq!(first.frames_emitted, replay.frames_emitted);
    }
}

/// Different seeds must actually explore different schedules — a
/// replay oracle that compares constant logs proves nothing.
#[test]
fn different_seeds_produce_different_logs() {
    let a = run_soak(&SoakConfig {
        sessions: 40,
        seed: 1,
        ..SoakConfig::default()
    });
    let b = run_soak(&SoakConfig {
        sessions: 40,
        seed: 2,
        ..SoakConfig::default()
    });
    assert!(a.log != b.log, "seeded soaks are not actually seed-sensitive");
}
