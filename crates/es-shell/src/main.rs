//! The `es` binary: an interactive shell / script runner on either
//! kernel backend.
//!
//! ```text
//! es [options] [script [args...]]
//!
//!   -c CMD            run CMD and exit
//!   --real            run on the real OS (std::fs / std::process)
//!   --sim             run on the simulated kernel (default)
//!   --engine ENGINE   evaluation engine: bytecode (default) or tree
//!   --naive-calls     disable proper tail calls (1993 behaviour)
//!   --stress-gc       collect on every allocation (debug mode)
//!   --dump-env        print the encoded environment and exit
//!   --limit KIND=N    arm a resource limit (repeatable); KIND is one
//!                     of depth, steps, heap, fds, output, time (ms)
//! ```
//!
//! With no script and no `-c`, starts the interactive loop — which is
//! `%interactive-loop` from Figure 3 of the paper, written in es and
//! replaceable from the command line.
//!
//! ```text
//! es serve [serve options]
//!
//!   --capacity N      pooled Machine slots (default 8)
//!   --high-water N    admission ceiling; above this, Open is shed
//!   --slice-steps N   charge ticks per scheduling slice
//!   --limit KIND=N    default per-command limits for every session
//! ```
//!
//! `serve` speaks the es-serve frame protocol on stdin/stdout: clients
//! send `open`/`line`/`close`/`drain` frames and receive
//! `opened`/`out`/`err`/`done`/`fault`/`shed`/... back. EOF on stdin
//! is treated as `drain`, so piping a frame script through `es serve`
//! terminates cleanly.

use es_core::{Engine, Machine, Options};
use es_os::{Os, RealOs, SimOs};
use es_serve::{Frame, ProtoError, ServeConfig, Server};
use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::mpsc;

struct Args {
    command: Option<String>,
    script: Option<String>,
    script_args: Vec<String>,
    real: bool,
    engine: Engine,
    naive_calls: bool,
    stress_gc: bool,
    dump_env: bool,
    limits: Vec<(String, u64)>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        command: None,
        script: None,
        script_args: Vec::new(),
        real: false,
        engine: Engine::default(),
        naive_calls: false,
        stress_gc: false,
        dump_env: false,
        limits: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "-c" => {
                out.command = Some(argv.next().ok_or("-c needs an argument")?);
            }
            "--real" => out.real = true,
            "--sim" => out.real = false,
            "--engine" => {
                let which = argv.next().ok_or("--engine needs an argument")?;
                out.engine = match which.as_str() {
                    "tree" => Engine::Tree,
                    "bytecode" => Engine::Bytecode,
                    other => {
                        return Err(format!(
                            "--engine {other}: expected 'tree' or 'bytecode'"
                        ))
                    }
                };
            }
            "--naive-calls" => out.naive_calls = true,
            "--stress-gc" => out.stress_gc = true,
            "--dump-env" => out.dump_env = true,
            "--limit" => {
                let spec = argv.next().ok_or("--limit needs a KIND=N argument")?;
                let (kind, value) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--limit {spec}: expected KIND=N"))?;
                let value: u64 = value
                    .parse()
                    .map_err(|_| format!("--limit {spec}: '{value}' is not a number"))?;
                out.limits.push((kind.to_string(), value));
            }
            "-h" | "--help" => {
                println!(
                    "usage: es [-c CMD] [--real|--sim] [--engine tree|bytecode] \
                     [--naive-calls] [--stress-gc] [--limit KIND=N] [script [args...]]"
                );
                std::process::exit(0);
            }
            other if out.script.is_none() => out.script = Some(other.to_string()),
            other => out.script_args.push(other.to_string()),
        }
    }
    Ok(out)
}

fn run_shell<O: Os + Clone>(os: O, args: Args) -> i32 {
    let opts = Options {
        tail_calls: !args.naive_calls,
        engine: args.engine,
        ..Options::default()
    };
    let mut m = match Machine::with_options(os, opts) {
        Ok(m) => m,
        Err(_) => {
            eprintln!("es: failed to boot (initial.es)");
            return 125;
        }
    };
    m.heap.set_stress(args.stress_gc);
    for (kind, value) in &args.limits {
        if let Err(msg) = m.arm_limit(kind, *value) {
            eprintln!("es: --limit: {msg}");
            return 2;
        }
    }
    if args.dump_env {
        for (k, v) in es_core_env(&m) {
            println!("{k}={v}");
        }
        return 0;
    }
    if let Some(cmd) = &args.command {
        return match m.run(cmd) {
            Ok(_) => 0,
            Err(msg) => {
                eprintln!("es: {msg}");
                1
            }
        };
    }
    if let Some(script) = &args.script {
        let quoted_args: Vec<String> = args
            .script_args
            .iter()
            .map(|a| es_syntax::print::quote(a))
            .collect();
        let cmd = format!(". {} {}", script, quoted_args.join(" "));
        return match m.run(&cmd) {
            Ok(_) => 0,
            Err(msg) => {
                eprintln!("es: {msg}");
                1
            }
        };
    }
    m.repl()
}

/// Re-export of the environment builder for `--dump-env` (the crate
/// keeps it internal; the binary reaches it through a tiny shim).
fn es_core_env<O: Os + Clone>(m: &Machine<O>) -> Vec<(String, String)> {
    m.export_environment()
}

fn parse_serve_args<I: Iterator<Item = String>>(mut argv: I) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    while let Some(arg) = argv.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            argv.next()
                .ok_or_else(|| format!("{name} needs an argument"))?
                .parse()
                .map_err(|_| format!("{name}: expected a number"))
        };
        match arg.as_str() {
            "--capacity" => cfg.capacity = num("--capacity")? as usize,
            "--high-water" => cfg.high_water = num("--high-water")? as usize,
            "--slice-steps" => cfg.slice_steps = num("--slice-steps")?,
            "--limit" => {
                let spec = argv.next().ok_or("--limit needs a KIND=N argument")?;
                let (kind, value) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--limit {spec}: expected KIND=N"))?;
                let value: u64 = value
                    .parse()
                    .map_err(|_| format!("--limit {spec}: '{value}' is not a number"))?;
                cfg.session_limits.push((kind.to_string(), value));
            }
            "-h" | "--help" => {
                println!(
                    "usage: es serve [--capacity N] [--high-water N] \
                     [--slice-steps N] [--limit KIND=N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("serve: unknown option {other}")),
        }
    }
    Ok(cfg)
}

/// The framed session server on stdio. A reader thread chunks stdin
/// into the channel; the main loop decodes frames, feeds the server,
/// pumps in-flight work between arrivals, and flushes every emitted
/// frame. EOF becomes `drain` so the process exits once live work is
/// finished or cancelled past the grace allowance.
fn run_serve(cfg: ServeConfig) -> i32 {
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    std::thread::Builder::new()
        .name("es-serve-stdin".into())
        .spawn(move || {
            let mut stdin = std::io::stdin().lock();
            let mut chunk = [0u8; 4096];
            loop {
                match stdin.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if tx.send(chunk[..n].to_vec()).is_err() {
                            break;
                        }
                    }
                }
            }
        })
        .expect("spawn stdin reader");

    // Writes frames to the client; `Some(saw_drained)` on success,
    // `None` when the client hung up.
    fn emit(stdout: &mut std::io::StdoutLock<'_>, frames: &[Frame]) -> Option<bool> {
        let mut wire = Vec::new();
        let mut saw_drained = false;
        for f in frames {
            saw_drained |= matches!(f, Frame::Drained { .. });
            f.encode_into(&mut wire);
        }
        stdout
            .write_all(&wire)
            .and_then(|_| stdout.flush())
            .ok()
            .map(|_| saw_drained)
    }

    let mut server = Server::new(cfg);
    let mut buf: Vec<u8> = Vec::new();
    let mut stdout = std::io::stdout().lock();
    let mut eof = false;
    let mut drain_sent = false;

    loop {
        // Ingest whatever the reader thread has queued (non-blocking;
        // the bottom of the loop blocks when there is nothing to do).
        loop {
            match rx.try_recv() {
                Ok(c) => buf.extend_from_slice(&c),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    eof = true;
                    break;
                }
            }
        }

        // Decode and feed complete frames.
        let mut fed = false;
        loop {
            match Frame::decode(&buf) {
                Ok((frame, used)) => {
                    buf.drain(..used);
                    fed = true;
                    let replies = server.feed(frame);
                    match emit(&mut stdout, &replies) {
                        Some(true) => return 0,
                        Some(false) => {}
                        None => return 0, // client hung up
                    }
                }
                Err(ProtoError::NeedMore) => break,
                Err(ProtoError::Bad(msg)) => {
                    eprintln!("es serve: bad frame: {msg}");
                    return 2;
                }
            }
        }

        let pumped = server.pump(512);
        match emit(&mut stdout, &pumped) {
            Some(true) | None => return 0,
            Some(false) => {}
        }
        if drain_sent && pumped.is_empty() {
            // Drained should have surfaced above; don't spin forever
            // if the server has nothing left to say.
            return 0;
        }

        // Nothing fed, nothing pumped: the server is quiescent. At
        // EOF that means the client is done talking and all queued
        // work has run — drain (cancelling anything past the grace
        // allowance) and exit; otherwise block until the client
        // speaks again.
        if pumped.is_empty() && !fed {
            if eof {
                if !drain_sent {
                    drain_sent = true;
                    match emit(&mut stdout, &server.feed(Frame::Drain { grace: 1024 })) {
                        Some(true) | None => return 0,
                        Some(false) => {}
                    }
                }
            } else {
                match rx.recv() {
                    Ok(c) => buf.extend_from_slice(&c),
                    Err(_) => eof = true,
                }
            }
        }
    }
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("serve") {
        let cfg = match parse_serve_args(std::env::args().skip(2)) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("es: {msg}");
                return ExitCode::from(2);
            }
        };
        return ExitCode::from(run_serve(cfg).clamp(0, 255) as u8);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("es: {msg}");
            return ExitCode::from(2);
        }
    };
    // The evaluator can nest deeply (especially with --naive-calls);
    // run on a thread with a generous stack, like the original's
    // reliance on a large C stack.
    let child = std::thread::Builder::new()
        .name("es-shell".into())
        .stack_size(256 << 20)
        .spawn(move || {
            if args.real {
                run_shell(RealOs::new(), args)
            } else {
                let mut os = SimOs::new();
                os.set_interactive(true);
                // Seed the simulated kernel with the real environment
                // so PATH-ish state imports sensibly.
                os.set_initial_env(
                    [
                        ("HOME".to_string(), "/home/user".to_string()),
                        ("PATH".to_string(), "/bin:/usr/bin".to_string()),
                    ]
                    .to_vec(),
                );
                run_shell(os, args)
            }
        })
        .expect("spawn shell thread");
    let status = child.join().unwrap_or(126);
    ExitCode::from(status.clamp(0, 255) as u8)
}
