//! The `es` binary: an interactive shell / script runner on either
//! kernel backend.
//!
//! ```text
//! es [options] [script [args...]]
//!
//!   -c CMD            run CMD and exit
//!   --real            run on the real OS (std::fs / std::process)
//!   --sim             run on the simulated kernel (default)
//!   --engine ENGINE   evaluation engine: bytecode (default) or tree
//!   --naive-calls     disable proper tail calls (1993 behaviour)
//!   --stress-gc       collect on every allocation (debug mode)
//!   --dump-env        print the encoded environment and exit
//!   --limit KIND=N    arm a resource limit (repeatable); KIND is one
//!                     of depth, steps, heap, fds, output, time (ms)
//! ```
//!
//! With no script and no `-c`, starts the interactive loop — which is
//! `%interactive-loop` from Figure 3 of the paper, written in es and
//! replaceable from the command line.

use es_core::{Engine, Machine, Options};
use es_os::{Os, RealOs, SimOs};
use std::process::ExitCode;

struct Args {
    command: Option<String>,
    script: Option<String>,
    script_args: Vec<String>,
    real: bool,
    engine: Engine,
    naive_calls: bool,
    stress_gc: bool,
    dump_env: bool,
    limits: Vec<(String, u64)>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        command: None,
        script: None,
        script_args: Vec::new(),
        real: false,
        engine: Engine::default(),
        naive_calls: false,
        stress_gc: false,
        dump_env: false,
        limits: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "-c" => {
                out.command = Some(argv.next().ok_or("-c needs an argument")?);
            }
            "--real" => out.real = true,
            "--sim" => out.real = false,
            "--engine" => {
                let which = argv.next().ok_or("--engine needs an argument")?;
                out.engine = match which.as_str() {
                    "tree" => Engine::Tree,
                    "bytecode" => Engine::Bytecode,
                    other => {
                        return Err(format!(
                            "--engine {other}: expected 'tree' or 'bytecode'"
                        ))
                    }
                };
            }
            "--naive-calls" => out.naive_calls = true,
            "--stress-gc" => out.stress_gc = true,
            "--dump-env" => out.dump_env = true,
            "--limit" => {
                let spec = argv.next().ok_or("--limit needs a KIND=N argument")?;
                let (kind, value) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--limit {spec}: expected KIND=N"))?;
                let value: u64 = value
                    .parse()
                    .map_err(|_| format!("--limit {spec}: '{value}' is not a number"))?;
                out.limits.push((kind.to_string(), value));
            }
            "-h" | "--help" => {
                println!(
                    "usage: es [-c CMD] [--real|--sim] [--engine tree|bytecode] \
                     [--naive-calls] [--stress-gc] [--limit KIND=N] [script [args...]]"
                );
                std::process::exit(0);
            }
            other if out.script.is_none() => out.script = Some(other.to_string()),
            other => out.script_args.push(other.to_string()),
        }
    }
    Ok(out)
}

fn run_shell<O: Os + Clone>(os: O, args: Args) -> i32 {
    let opts = Options {
        tail_calls: !args.naive_calls,
        engine: args.engine,
        ..Options::default()
    };
    let mut m = match Machine::with_options(os, opts) {
        Ok(m) => m,
        Err(_) => {
            eprintln!("es: failed to boot (initial.es)");
            return 125;
        }
    };
    m.heap.set_stress(args.stress_gc);
    for (kind, value) in &args.limits {
        if let Err(msg) = m.arm_limit(kind, *value) {
            eprintln!("es: --limit: {msg}");
            return 2;
        }
    }
    if args.dump_env {
        for (k, v) in es_core_env(&m) {
            println!("{k}={v}");
        }
        return 0;
    }
    if let Some(cmd) = &args.command {
        return match m.run(cmd) {
            Ok(_) => 0,
            Err(msg) => {
                eprintln!("es: {msg}");
                1
            }
        };
    }
    if let Some(script) = &args.script {
        let quoted_args: Vec<String> = args
            .script_args
            .iter()
            .map(|a| es_syntax::print::quote(a))
            .collect();
        let cmd = format!(". {} {}", script, quoted_args.join(" "));
        return match m.run(&cmd) {
            Ok(_) => 0,
            Err(msg) => {
                eprintln!("es: {msg}");
                1
            }
        };
    }
    m.repl()
}

/// Re-export of the environment builder for `--dump-env` (the crate
/// keeps it internal; the binary reaches it through a tiny shim).
fn es_core_env<O: Os + Clone>(m: &Machine<O>) -> Vec<(String, String)> {
    m.export_environment()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("es: {msg}");
            return ExitCode::from(2);
        }
    };
    // The evaluator can nest deeply (especially with --naive-calls);
    // run on a thread with a generous stack, like the original's
    // reliance on a large C stack.
    let child = std::thread::Builder::new()
        .name("es-shell".into())
        .stack_size(256 << 20)
        .spawn(move || {
            if args.real {
                run_shell(RealOs::new(), args)
            } else {
                let mut os = SimOs::new();
                os.set_interactive(true);
                // Seed the simulated kernel with the real environment
                // so PATH-ish state imports sensibly.
                os.set_initial_env(
                    [
                        ("HOME".to_string(), "/home/user".to_string()),
                        ("PATH".to_string(), "/bin:/usr/bin".to_string()),
                    ]
                    .to_vec(),
                );
                run_shell(os, args)
            }
        })
        .expect("spawn shell thread");
    let status = child.join().unwrap_or(126);
    ExitCode::from(status.clamp(0, 255) as u8)
}
