//! The abstract syntax tree.
//!
//! One tree covers both the *surface* language (pipes, redirections,
//! `&&`, `fn` — everything [`crate::lower`] removes) and the *core*
//! language the evaluator executes (calls, lambdas, assignments,
//! bindings, matches). The evaluator rejects surface nodes, which
//! keeps the sugar→core boundary honest.

use std::rc::Rc;

/// One quoting segment of a word: `quoted` text contributes no live
/// glob metacharacters and never triggers expansion.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Seg {
    /// The literal text.
    pub text: String,
    /// True if the segment came from inside `'...'`.
    pub quoted: bool,
}

/// A (possibly partially quoted) word.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Word {
    /// The quoting segments, in order.
    pub segs: Vec<Seg>,
}

impl Word {
    /// An unquoted word.
    pub fn bare(text: impl Into<String>) -> Word {
        Word {
            segs: vec![Seg {
                text: text.into(),
                quoted: false,
            }],
        }
    }

    /// A fully quoted word (no live metacharacters).
    pub fn quoted(text: impl Into<String>) -> Word {
        Word {
            segs: vec![Seg {
                text: text.into(),
                quoted: true,
            }],
        }
    }

    /// The flattened text, ignoring quoting.
    pub fn text(&self) -> String {
        self.segs.iter().map(|s| s.text.as_str()).collect()
    }

    /// True if any unquoted segment contains a glob metacharacter.
    pub fn has_live_glob(&self) -> bool {
        self.segs
            .iter()
            .any(|s| !s.quoted && s.text.contains(['*', '?', '[']))
    }

    /// Segment view for the pattern compiler.
    pub fn seg_refs(&self) -> Vec<(&str, bool)> {
        self.segs.iter().map(|s| (s.text.as_str(), s.quoted)).collect()
    }
}

/// A lambda: `@ params { body }`, a bare `{ body }` fragment, or the
/// right-hand side of a `fn` definition.
///
/// `params: None` is the paper's `@ *` form — no named parameters, the
/// arguments are available only as `$*`. Named parameters bind
/// one-to-one with leftovers going to the last parameter (and `$*`
/// always holds the full argument list).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lambda {
    /// Named parameters, or `None` for `@ *`.
    pub params: Option<Vec<String>>,
    /// The body.
    pub body: Node,
}

/// An expression: evaluates to a *list* of terms (strings/closures).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal word; unquoted metacharacters glob in argument
    /// position.
    Word(Word),
    /// `$x` — variable reference; the target may itself be an
    /// expression (`$$x`, `$(fn-$f)`).
    Var(Box<Expr>),
    /// `$#x` — count of elements.
    VarCount(Box<Expr>),
    /// `$^x` — flatten into one word, space separated.
    VarFlat(Box<Expr>),
    /// `$x(i j)` — subscripts (1-based).
    VarSub(Box<Expr>, Vec<Expr>),
    /// `a^b` and implicit adjacent concatenation (pairwise/cartesian
    /// list distribution, as in rc).
    Concat(Box<Expr>, Box<Expr>),
    /// `(a b c)` — grouping; splices its members.
    List(Vec<Expr>),
    /// `@ params { body }` or `{ body }`.
    Lambda(Rc<Lambda>),
    /// `$&name` — an unoverridable primitive.
    Prim(String),
    /// `<>{cmd}` — the command's rich return value.
    CmdSub(Box<Node>),
    /// `` `{cmd} `` — surface form; lowered to
    /// `<>{%backquote {cmd}}`.
    Backquote(Box<Node>),
    /// `%closure(a=b;...)@ params {body}` — the unparsed-closure
    /// literal used when functions travel through the environment.
    ClosureLit {
        /// Captured bindings: name → value expressions.
        bindings: Vec<(String, Vec<Expr>)>,
        /// The code.
        lambda: Rc<Lambda>,
    },
}

/// A redirection as parsed (surface only).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Redirect {
    /// `>[fd] file` — `%create fd file {cmd}`.
    Create(u32, Expr),
    /// `>>[fd] file` — `%append fd file {cmd}`.
    Append(u32, Expr),
    /// `<[fd] file` — `%open fd file {cmd}`.
    Open(u32, Expr),
    /// `>[a=b]` — `%dup a b {cmd}`.
    Dup(u32, u32),
    /// `>[a=]` — `%close a {cmd}`.
    Close(u32),
    /// `<<[fd] tag ... tag` — here document: `%here fd text {cmd}`.
    Here(u32, String),
}

/// A command node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// Core: evaluate the expressions to one list and apply it as a
    /// command (head closure/function/program, rest arguments).
    Call(Vec<Expr>),
    /// Core: `lhs = values`. The left side evaluates to one or more
    /// variable names (paired against the value list like parameters).
    Assign(Expr, Vec<Expr>),
    /// Core: `let (n = v; ...) body` — lexical bindings.
    Let(Vec<(Expr, Vec<Expr>)>, Box<Node>),
    /// Core: `local (n = v; ...) body` — dynamic bindings.
    Local(Vec<(Expr, Vec<Expr>)>, Box<Node>),
    /// Core: `for (n = list; ...) body` — parallel iteration.
    For(Vec<(Expr, Vec<Expr>)>, Box<Node>),
    /// Core: `~ subject patterns` — wildcard match (patterns do not
    /// glob against the filesystem).
    Match(Expr, Vec<Expr>),
    /// Core: a sequence of commands; value of the last one. Lowering
    /// rewrites *surface* sequences to `%seq` calls, but the body of
    /// every lambda keeps one top-level Seq so `%seq` spoofing cannot
    /// turn the whole interpreter inside out.
    Seq(Vec<Node>),

    // ----- surface-only nodes, removed by lower() -------------------------

    /// `a | b | c` with fd designators: segments joined by
    /// `(out, in)` pairs. Lowered to one variadic `%pipe` call.
    Pipe(Vec<Node>, Vec<(u32, u32)>),
    /// A command with redirections hanging off it.
    Redir(Vec<Redirect>, Box<Node>),
    /// `a && b [&& c ...]` — `%and {a} {b} ...`.
    AndAnd(Vec<Node>),
    /// `a || b [|| c ...]` — `%or {a} {b} ...`.
    OrOr(Vec<Node>),
    /// `! cmd` — `%not {cmd}`.
    Bang(Box<Node>),
    /// `cmd &` — `%background {cmd}`.
    Background(Box<Node>),
    /// `fn name params { body }` — `fn-name = @ params { body }`;
    /// `fn name` (no body) — `fn-name = ()`.
    FnDef(Expr, Option<Rc<Lambda>>),
    /// Surface `a ; b` sequencing — `%seq {a} {b}`.
    SurfaceSeq(Vec<Node>),
}

impl Node {
    /// The empty program (value: true).
    pub fn empty() -> Node {
        Node::Seq(Vec::new())
    }
}
