//! The lexer: rc-style quoting, shell operators, adjacency tracking.
//!
//! Notable rules inherited from rc/es:
//!
//! * `'...'` quotes everything; a doubled `''` inside is a literal
//!   quote. There are no double quotes and backslash is not an escape
//!   (except that `\` + newline is a continuation).
//! * `#` starts a comment to end of line.
//! * `=` is special (so `x=foo` lexes as three tokens, which is how
//!   the paper can write `es> x=foo bar`).
//! * Adjacency matters: `$x.c` is an implicit concatenation, so every
//!   token records whether whitespace preceded it.
//! * `~ ! @` are operators when they begin a token (`!cmd`, `!~`);
//!   mid-word they are ordinary characters (`a~b` is one word).

use std::fmt;

/// A redirection operator token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirOp {
    /// `>[fd]`
    Create(u32),
    /// `>>[fd]`
    Append(u32),
    /// `<[fd]`
    Open(u32),
    /// `>[a=b]`
    Dup(u32, u32),
    /// `>[a=]`
    CloseFd(u32),
    /// `<<[fd]` heredoc
    Here(u32),
}

/// One token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A word with quoting segments: `(text, quoted)` pairs.
    Word(Vec<(String, bool)>),
    /// `$`
    Dollar,
    /// `$#`
    DollarCount,
    /// `$^`
    DollarFlat,
    /// `$&name`
    Prim(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// newline
    Newline,
    /// `&`
    Amp,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `|[out=in]` (defaults 1=0)
    Pipe(u32, u32),
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `@`
    At,
    /// `=`
    Eq,
    /// `^`
    Caret,
    /// `` ` ``
    Backquote,
    /// `<>` (immediately before `{`)
    CmdSub,
    /// A redirection operator.
    Redir(RedirOp),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(segs) => {
                let text: String = segs.iter().map(|(t, _)| t.as_str()).collect();
                write!(f, "word `{text}`")
            }
            Tok::Dollar => write!(f, "`$`"),
            Tok::DollarCount => write!(f, "`$#`"),
            Tok::DollarFlat => write!(f, "`$^`"),
            Tok::Prim(n) => write!(f, "`$&{n}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Newline => write!(f, "newline"),
            Tok::Amp => write!(f, "`&`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Pipe(..) => write!(f, "`|`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Tilde => write!(f, "`~`"),
            Tok::At => write!(f, "`@`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Backquote => write!(f, "backquote"),
            Tok::CmdSub => write!(f, "`<>`"),
            Tok::Redir(_) => write!(f, "redirection"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus layout information.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Whitespace (or line start) immediately before it?
    pub space_before: bool,
    /// Byte offset in the source (for error messages).
    pub pos: usize,
}

/// Lexer error (always a quoting problem; everything else is a word).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub msg: String,
    /// True if more input could fix it (unterminated quote).
    pub incomplete: bool,
}

const SPECIAL: &str = " \t\n#;&|^$=`'{}()<>!@~\\";

/// True for characters that may appear in plain words.
pub fn is_word_char(c: char) -> bool {
    !SPECIAL.contains(c)
}

/// Splits `src` into tokens.
pub fn tokens(src: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut space = true;
    while i < chars.len() {
        let c = chars[i];
        // Whitespace and comments.
        if c == ' ' || c == '\t' || c == '\r' {
            i += 1;
            space = true;
            continue;
        }
        if c == '\\' && chars.get(i + 1) == Some(&'\n') {
            i += 2;
            space = true;
            continue;
        }
        if c == '#' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        let pos = i;
        let push = |out: &mut Vec<Token>, tok: Tok, space: bool| {
            out.push(Token { tok, space_before: space, pos });
        };
        match c {
            '\n' => {
                push(&mut out, Tok::Newline, space);
                i += 1;
                space = true;
                continue;
            }
            ';' => {
                push(&mut out, Tok::Semi, space);
                i += 1;
            }
            '(' => {
                push(&mut out, Tok::LParen, space);
                i += 1;
            }
            ')' => {
                push(&mut out, Tok::RParen, space);
                i += 1;
            }
            '{' => {
                push(&mut out, Tok::LBrace, space);
                i += 1;
            }
            '}' => {
                push(&mut out, Tok::RBrace, space);
                i += 1;
            }
            '=' => {
                // A single `=` is the assignment operator; runs like
                // `===` are ordinary words (banner lines in scripts).
                if chars.get(i + 1) == Some(&'=') {
                    let mut text = String::new();
                    while chars.get(i) == Some(&'=') {
                        text.push('=');
                        i += 1;
                    }
                    push(&mut out, Tok::Word(vec![(text, false)]), space);
                } else {
                    push(&mut out, Tok::Eq, space);
                    i += 1;
                }
            }
            '^' => {
                push(&mut out, Tok::Caret, space);
                i += 1;
            }
            '`' => {
                push(&mut out, Tok::Backquote, space);
                i += 1;
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    push(&mut out, Tok::AndAnd, space);
                    i += 2;
                } else {
                    push(&mut out, Tok::Amp, space);
                    i += 1;
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    push(&mut out, Tok::OrOr, space);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'[') {
                    let (nums, next) = bracket_numbers(&chars, i + 1)?;
                    let (a, b) = match nums {
                        Bracket::One(n) => (n, 0),
                        Bracket::Two(a, b) => (a, b),
                        Bracket::CloseMark(_) => {
                            return Err(LexError {
                                msg: "bad pipe fd designator".into(),
                                incomplete: false,
                            })
                        }
                    };
                    push(&mut out, Tok::Pipe(a, b), space);
                    i = next;
                } else {
                    push(&mut out, Tok::Pipe(1, 0), space);
                    i += 1;
                }
            }
            '$' => match chars.get(i + 1) {
                Some('#') => {
                    push(&mut out, Tok::DollarCount, space);
                    i += 2;
                }
                Some('^') => {
                    push(&mut out, Tok::DollarFlat, space);
                    i += 2;
                }
                Some('&') => {
                    let mut j = i + 2;
                    let mut name = String::new();
                    while j < chars.len() && is_word_char(chars[j]) {
                        name.push(chars[j]);
                        j += 1;
                    }
                    if name.is_empty() {
                        return Err(LexError {
                            msg: "missing primitive name after $&".into(),
                            incomplete: false,
                        });
                    }
                    push(&mut out, Tok::Prim(name), space);
                    i = j;
                }
                _ => {
                    push(&mut out, Tok::Dollar, space);
                    i += 1;
                }
            },
            '<' => {
                if chars.get(i + 1) == Some(&'>') {
                    push(&mut out, Tok::CmdSub, space);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'<') {
                    if chars.get(i + 2) == Some(&'[') {
                        let (nums, next) = bracket_numbers(&chars, i + 2)?;
                        let fd = bracket_single(nums)?;
                        push(&mut out, Tok::Redir(RedirOp::Here(fd)), space);
                        i = next;
                    } else {
                        push(&mut out, Tok::Redir(RedirOp::Here(0)), space);
                        i += 2;
                    }
                } else if chars.get(i + 1) == Some(&'[') {
                    let (nums, next) = bracket_numbers(&chars, i + 1)?;
                    let fd = bracket_single(nums)?;
                    push(&mut out, Tok::Redir(RedirOp::Open(fd)), space);
                    i = next;
                } else {
                    push(&mut out, Tok::Redir(RedirOp::Open(0)), space);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'>') {
                    if chars.get(i + 2) == Some(&'[') {
                        let (nums, next) = bracket_numbers(&chars, i + 2)?;
                        let fd = bracket_single(nums)?;
                        push(&mut out, Tok::Redir(RedirOp::Append(fd)), space);
                        i = next;
                    } else {
                        push(&mut out, Tok::Redir(RedirOp::Append(1)), space);
                        i += 2;
                    }
                } else if chars.get(i + 1) == Some(&'[') {
                    let (nums, next) = bracket_numbers(&chars, i + 1)?;
                    match nums {
                        Bracket::One(fd) => {
                            push(&mut out, Tok::Redir(RedirOp::Create(fd)), space)
                        }
                        Bracket::Two(a, b) => push(&mut out, Tok::Redir(RedirOp::Dup(a, b)), space),
                        Bracket::CloseMark(fd) => {
                            push(&mut out, Tok::Redir(RedirOp::CloseFd(fd)), space)
                        }
                    }
                    i = next;
                } else {
                    push(&mut out, Tok::Redir(RedirOp::Create(1)), space);
                    i += 1;
                }
            }
            '!' | '@' | '~' => {
                // Operators whenever they *begin* a token (`!cmd`,
                // `!~`, `~ subj pat`); mid-word they are plain
                // characters (`a~b`). Quote a leading `~` or `!` to
                // get a literal.
                let tok = match c {
                    '!' => Tok::Bang,
                    '@' => Tok::At,
                    _ => Tok::Tilde,
                };
                push(&mut out, tok, space);
                i += 1;
            }
            _ => {
                let (word, next_i) = lex_word(&chars, i)?;
                push(&mut out, Tok::Word(word), space);
                i = next_i;
            }
        }
        space = false;
    }
    out.push(Token {
        tok: Tok::Eof,
        space_before: true,
        pos: chars.len(),
    });
    Ok(out)
}

enum Bracket {
    One(u32),
    Two(u32, u32),
    CloseMark(u32),
}

/// Parses `[n]`, `[n=m]` or `[n=]` starting at `chars[start] == '['`.
fn bracket_numbers(chars: &[char], start: usize) -> Result<(Bracket, usize), LexError> {
    let mut i = start + 1;
    let mut a = String::new();
    while i < chars.len() && chars[i].is_ascii_digit() {
        a.push(chars[i]);
        i += 1;
    }
    let a: u32 = a.parse().map_err(|_| LexError {
        msg: "bad fd number".into(),
        incomplete: false,
    })?;
    match chars.get(i) {
        Some(']') => Ok((Bracket::One(a), i + 1)),
        Some('=') => {
            i += 1;
            let mut b = String::new();
            while i < chars.len() && chars[i].is_ascii_digit() {
                b.push(chars[i]);
                i += 1;
            }
            if chars.get(i) != Some(&']') {
                return Err(LexError {
                    msg: "unterminated fd designator".into(),
                    incomplete: false,
                });
            }
            if b.is_empty() {
                Ok((Bracket::CloseMark(a), i + 1))
            } else {
                let b: u32 = b.parse().map_err(|_| LexError {
                    msg: "bad fd number".into(),
                    incomplete: false,
                })?;
                Ok((Bracket::Two(a, b), i + 1))
            }
        }
        _ => Err(LexError {
            msg: "unterminated fd designator".into(),
            incomplete: false,
        }),
    }
}

fn bracket_single(b: Bracket) -> Result<u32, LexError> {
    match b {
        Bracket::One(n) => Ok(n),
        _ => Err(LexError {
            msg: "unexpected `=` in fd designator".into(),
            incomplete: false,
        }),
    }
}

/// Lexes one word starting at `chars[start]`, gathering quoted and
/// unquoted segments.
fn lex_word(chars: &[char], start: usize) -> Result<(Vec<(String, bool)>, usize), LexError> {
    let mut segs: Vec<(String, bool)> = Vec::new();
    let mut i = start;
    loop {
        match chars.get(i) {
            Some('\'') => {
                let mut text = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(LexError {
                                msg: "unterminated quote".into(),
                                incomplete: true,
                            })
                        }
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            text.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            text.push(c);
                            i += 1;
                        }
                    }
                }
                segs.push((text, true));
            }
            Some(&c) if is_word_char(c) || (c == '~' && i != start) || (c == '!' && i != start) || (c == '@' && i != start) => {
                let mut text = String::new();
                while let Some(&c) = chars.get(i) {
                    if is_word_char(c) || ((c == '~' || c == '!' || c == '@') && i != start) {
                        text.push(c);
                        i += 1;
                    } else {
                        break;
                    }
                }
                match segs.last_mut() {
                    Some((prev, false)) => prev.push_str(&text),
                    _ => segs.push((text, false)),
                }
            }
            _ => break,
        }
        // A quote directly adjacent to word chars continues the word.
        match chars.get(i) {
            Some('\'') => continue,
            Some(&c) if is_word_char(c) => continue,
            _ => break,
        }
    }
    Ok((segs, i))
}
