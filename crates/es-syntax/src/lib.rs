//! Lexer, parser, desugarer, and unparser for the es shell language.
//!
//! The paper describes es as a small *core language* — function calls,
//! lambdas, assignments, variable references — dressed in conventional
//! shell syntax, with the parser rewriting the sugar into calls on
//! `%`-prefixed hook functions:
//!
//! ```text
//! ls > /tmp/foo        ⇒   %create 1 /tmp/foo {ls}
//! a | b                ⇒   %pipe {a} 1 0 {b}
//! a && b               ⇒   %and {a} {b}
//! fn f x { cmd }       ⇒   fn-f = @ x { cmd }
//! `{cmd}               ⇒   <>{%backquote {cmd}}
//! a ; b                ⇒   %seq {a} {b}
//! ```
//!
//! The original implementation performed this rewriting inside one
//! yacc grammar and the authors call that regrettable ("offers little
//! room for a user to extend the syntax... a set of exposed
//! transformation rules would map the extended syntax down to the core
//! language"). This crate implements the separation they wished for:
//!
//! * [`lex`] — tokens, rc-style quoting, adjacency tracking (for the
//!   implicit `^` concatenation rule),
//! * [`ast`] — one AST covering both surface and core forms,
//! * [`parse`] — recursive descent producing *surface* nodes,
//! * [`lower`] — the explicit sugar→core transformation,
//! * [`print`] — the unparser, producing re-parseable text (used by
//!   `whatis` and by the environment codec's
//!   `%closure(a=b)@ * {echo $a}` encoding).
//!
//! # Examples
//!
//! ```
//! use es_syntax::{parse_program, lower};
//!
//! let prog = parse_program("ls > /tmp/foo").unwrap();
//! let core = lower(prog);
//! // The core form is a call on the spoofable %create hook.
//! assert_eq!(es_syntax::print::unparse_node(&core), "%create 1 /tmp/foo {ls}");
//! ```

pub mod ast;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod print;

#[cfg(test)]
mod tests;

pub use ast::{Expr, Lambda, Node, Redirect, Seg, Word};
pub use lower::lower;
pub use parse::{parse_program, ParseError};
