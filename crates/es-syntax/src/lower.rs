//! The sugar→core transformation.
//!
//! Every surface construct becomes a call on a `%`-prefixed hook
//! function, exactly the rewriting the paper describes ("es's shell
//! syntax is just a front for calls on built-in functions"):
//!
//! | surface                  | core                                  |
//! |--------------------------|---------------------------------------|
//! | `cmd > f`                | `%create 1 f {cmd}`                   |
//! | `cmd >> f`               | `%append 1 f {cmd}`                   |
//! | `cmd < f`                | `%open 0 f {cmd}`                     |
//! | `cmd >[a=b]`             | `%dup a b {cmd}`                      |
//! | `cmd >[a=]`              | `%close a {cmd}`                      |
//! | `cmd << text`            | `%here 0 text {cmd}`                  |
//! | `a \| b \| c`            | `%pipe {a} 1 0 {b} 1 0 {c}`           |
//! | `a && b`                 | `%and {a} {b}`                        |
//! | `a \|\| b`               | `%or {a} {b}`                         |
//! | `! a`                    | `%not {a}`                            |
//! | `a &`                    | `%background {a}`                     |
//! | `a ; b` (inside braces)  | `%seq {a} {b}`                        |
//! | `` `{a} ``               | `<>{%backquote {a}}`                  |
//! | `fn f p { b }`           | `fn-f = @ p { b }`                    |
//! | `fn f`                   | `fn-f = ()`                           |
//!
//! Each hook defaults (in `initial.es`) to an unoverridable `$&`
//! primitive and can be *spoofed* by assignment, which is the paper's
//! central extensibility mechanism.
//!
//! The *top-level* sequence of a program stays a core `Seq` node: the
//! original interpreter also evaluates top-level commands one at a
//! time (the REPL parses and runs line by line), and `initial.es`
//! could not otherwise bind `fn-%seq` in the first place.

use crate::ast::{Expr, Lambda, Node, Redirect, Word};
use std::rc::Rc;

/// Lowers a parsed program to the core language. Idempotent on core
/// nodes.
pub fn lower(node: Node) -> Node {
    lower_node(node, true)
}

fn hook(name: &str) -> Expr {
    Expr::Word(Word::bare(name))
}

fn fd_word(fd: u32) -> Expr {
    Expr::Word(Word::bare(fd.to_string()))
}

fn thunk(body: Node) -> Expr {
    Expr::Lambda(Rc::new(Lambda { params: None, body }))
}

fn lower_node(node: Node, top: bool) -> Node {
    match node {
        Node::Call(exprs) => Node::Call(exprs.into_iter().map(lower_expr).collect()),
        Node::Assign(lhs, values) => Node::Assign(
            lower_expr(lhs),
            values.into_iter().map(lower_expr).collect(),
        ),
        Node::Let(bindings, body) => {
            Node::Let(lower_bindings(bindings), Box::new(lower_node(*body, false)))
        }
        Node::Local(bindings, body) => {
            Node::Local(lower_bindings(bindings), Box::new(lower_node(*body, false)))
        }
        Node::For(bindings, body) => {
            Node::For(lower_bindings(bindings), Box::new(lower_node(*body, false)))
        }
        Node::Match(subject, patterns) => Node::Match(
            lower_expr(subject),
            patterns.into_iter().map(lower_expr).collect(),
        ),
        Node::Seq(nodes) => Node::Seq(
            nodes
                .into_iter()
                .map(|n| lower_node(n, top))
                .collect(),
        ),
        // ----- surface forms -------------------------------------------------
        Node::SurfaceSeq(nodes) => {
            if top {
                // Top level: evaluate commands one at a time natively.
                Node::Seq(nodes.into_iter().map(|n| lower_node(n, true)).collect())
            } else {
                let mut call = vec![hook("%seq")];
                call.extend(
                    nodes
                        .into_iter()
                        .map(|n| thunk(lower_node(n, false))),
                );
                Node::Call(call)
            }
        }
        Node::Pipe(segments, fds) => {
            // `{s1} out1 in1 {s2} out2 in2 {s3} ...` — the variadic
            // shape Figure 1's recursive `%pipe` spoof expects.
            let mut call = vec![hook("%pipe")];
            let mut segs = segments.into_iter();
            if let Some(first) = segs.next() {
                call.push(thunk(lower_node(first, false)));
            }
            for (seg, (out, inp)) in segs.zip(fds) {
                call.push(fd_word(out));
                call.push(fd_word(inp));
                call.push(thunk(lower_node(seg, false)));
            }
            Node::Call(call)
        }
        Node::Redir(redirs, inner) => {
            let mut result = lower_node(*inner, false);
            for r in redirs.into_iter().rev() {
                result = lower_redirect(r, result);
            }
            result
        }
        Node::AndAnd(parts) => {
            let mut call = vec![hook("%and")];
            call.extend(parts.into_iter().map(|n| thunk(lower_node(n, false))));
            Node::Call(call)
        }
        Node::OrOr(parts) => {
            let mut call = vec![hook("%or")];
            call.extend(parts.into_iter().map(|n| thunk(lower_node(n, false))));
            Node::Call(call)
        }
        Node::Bang(inner) => Node::Call(vec![hook("%not"), thunk(lower_node(*inner, false))]),
        Node::Background(inner) => Node::Call(vec![
            hook("%background"),
            thunk(lower_node(*inner, false)),
        ]),
        Node::FnDef(name, lambda) => {
            let lhs = Expr::Concat(
                Box::new(Expr::Word(Word::quoted("fn-"))),
                Box::new(lower_expr(name)),
            );
            let values = match lambda {
                Some(l) => vec![lower_expr(Expr::Lambda(l))],
                None => Vec::new(),
            };
            Node::Assign(lhs, values)
        }
    }
}

fn lower_redirect(r: Redirect, inner: Node) -> Node {
    match r {
        Redirect::Create(fd, file) => Node::Call(vec![
            hook("%create"),
            fd_word(fd),
            lower_expr(file),
            thunk(inner),
        ]),
        Redirect::Append(fd, file) => Node::Call(vec![
            hook("%append"),
            fd_word(fd),
            lower_expr(file),
            thunk(inner),
        ]),
        Redirect::Open(fd, file) => Node::Call(vec![
            hook("%open"),
            fd_word(fd),
            lower_expr(file),
            thunk(inner),
        ]),
        Redirect::Dup(a, b) => Node::Call(vec![
            hook("%dup"),
            fd_word(a),
            fd_word(b),
            thunk(inner),
        ]),
        Redirect::Close(fd) => Node::Call(vec![hook("%close"), fd_word(fd), thunk(inner)]),
        Redirect::Here(fd, text) => Node::Call(vec![
            hook("%here"),
            fd_word(fd),
            Expr::Word(Word::quoted(text)),
            thunk(inner),
        ]),
    }
}

fn lower_bindings(bindings: Vec<(Expr, Vec<Expr>)>) -> Vec<(Expr, Vec<Expr>)> {
    bindings
        .into_iter()
        .map(|(name, values)| {
            (
                lower_expr(name),
                values.into_iter().map(lower_expr).collect(),
            )
        })
        .collect()
}

fn lower_expr(expr: Expr) -> Expr {
    match expr {
        Expr::Word(_) | Expr::Prim(_) => expr,
        Expr::Var(t) => Expr::Var(Box::new(lower_expr(*t))),
        Expr::VarCount(t) => Expr::VarCount(Box::new(lower_expr(*t))),
        Expr::VarFlat(t) => Expr::VarFlat(Box::new(lower_expr(*t))),
        Expr::VarSub(t, subs) => Expr::VarSub(
            Box::new(lower_expr(*t)),
            subs.into_iter().map(lower_expr).collect(),
        ),
        Expr::Concat(a, b) => Expr::Concat(Box::new(lower_expr(*a)), Box::new(lower_expr(*b))),
        Expr::List(items) => Expr::List(items.into_iter().map(lower_expr).collect()),
        Expr::Lambda(l) => Expr::Lambda(lower_lambda(&l)),
        Expr::CmdSub(n) => Expr::CmdSub(Box::new(lower_node(*n, false))),
        Expr::Backquote(n) => {
            // `{cmd}  ⇒  <>{%backquote {cmd}}
            let call = Node::Call(vec![hook("%backquote"), thunk(lower_node(*n, false))]);
            Expr::CmdSub(Box::new(call))
        }
        Expr::ClosureLit { bindings, lambda } => Expr::ClosureLit {
            bindings: bindings
                .into_iter()
                .map(|(n, vs)| (n, vs.into_iter().map(lower_expr).collect()))
                .collect(),
            lambda: lower_lambda(&lambda),
        },
    }
}

/// Lowers a lambda body, sharing the Rc when nothing changes is not
/// attempted — lambdas are lowered once at parse time, so a fresh Rc
/// is fine.
fn lower_lambda(l: &Lambda) -> Rc<Lambda> {
    Rc::new(Lambda {
        params: l.params.clone(),
        body: lower_node(l.body.clone(), false),
    })
}
