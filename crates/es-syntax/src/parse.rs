//! Recursive-descent parser: tokens → surface AST.
//!
//! Precedence, loosest to tightest:
//!
//! ```text
//! seq:        cmd ; cmd \n cmd &
//! andor:      pipeline && pipeline || pipeline
//! pipeline:   unit | unit
//! unit:       ! unit  |  command-with-redirections
//! command:    assignment | fn | for | let | local | ~ match | simple
//! expr:       atom ^ atom (and implicit adjacency concatenation)
//! ```

use crate::ast::{Expr, Lambda, Node, Redirect, Seg, Word};
use crate::lex::{self, RedirOp, Tok, Token};
use std::fmt;
use std::rc::Rc;

/// A parse error; `incomplete` signals that more input could complete
/// the command (the REPL's `%parse` keeps reading in that case, which
/// is how multi-line commands work in Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// More input could fix this (unterminated brace/quote).
    pub incomplete: bool,
    /// Byte offset.
    pub pos: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole program (a sequence of commands). The result is a
/// *surface* tree; run [`crate::lower`] before evaluating.
pub fn parse_program(src: &str) -> Result<Node, ParseError> {
    let toks = lex::tokens(src).map_err(|e| ParseError {
        msg: e.msg,
        incomplete: e.incomplete,
        pos: src.len(),
    })?;
    let mut p = Parser { toks, i: 0 };
    let body = p.seq(&[Tok::Eof])?;
    p.expect(Tok::Eof)?;
    Ok(body)
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek_tok(&self) -> &Token {
        &self.toks[self.i]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.i].clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn pos(&self) -> usize {
        self.toks[self.i].pos
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let at_eof = matches!(self.peek(), Tok::Eof);
        Err(ParseError {
            msg: msg.into(),
            incomplete: at_eof,
            pos: self.pos(),
        })
    }

    fn expect(&mut self, want: Tok) -> Result<Token, ParseError> {
        if std::mem::discriminant(self.peek()) == std::mem::discriminant(&want) {
            Ok(self.bump())
        } else {
            self.err(format!("expected {}, found {}", want, self.peek()))
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn skip_seps(&mut self) {
        while matches!(self.peek(), Tok::Newline | Tok::Semi) {
            self.bump();
        }
    }

    // ----- sequences ----------------------------------------------------------

    /// Parses commands until one of `stop` (not consumed). `;` and
    /// newline separate; a trailing `&` backgrounds the preceding
    /// command.
    fn seq(&mut self, stop: &[Tok]) -> Result<Node, ParseError> {
        let mut cmds = Vec::new();
        loop {
            self.skip_seps();
            if stop
                .iter()
                .any(|s| std::mem::discriminant(self.peek()) == std::mem::discriminant(s))
            {
                break;
            }
            let mut cmd = self.andor()?;
            if matches!(self.peek(), Tok::Amp) {
                self.bump();
                cmd = Node::Background(Box::new(cmd));
            }
            cmds.push(cmd);
            match self.peek() {
                Tok::Semi | Tok::Newline => continue,
                _ => break,
            }
        }
        Ok(match cmds.len() {
            0 => Node::Seq(Vec::new()),
            1 => cmds.pop().expect("one element"),
            _ => Node::SurfaceSeq(cmds),
        })
    }

    fn andor(&mut self) -> Result<Node, ParseError> {
        let first = self.pipeline()?;
        match self.peek() {
            Tok::AndAnd => {
                let mut parts = vec![first];
                while matches!(self.peek(), Tok::AndAnd) {
                    self.bump();
                    self.skip_newlines();
                    parts.push(self.pipeline()?);
                }
                // Mixed chains (a && b || c) associate left by nesting.
                if matches!(self.peek(), Tok::OrOr) {
                    let lhs = Node::AndAnd(parts);
                    let mut or_parts = vec![lhs];
                    while matches!(self.peek(), Tok::OrOr) {
                        self.bump();
                        self.skip_newlines();
                        or_parts.push(self.pipeline()?);
                    }
                    return Ok(Node::OrOr(or_parts));
                }
                Ok(Node::AndAnd(parts))
            }
            Tok::OrOr => {
                let mut parts = vec![first];
                while matches!(self.peek(), Tok::OrOr) {
                    self.bump();
                    self.skip_newlines();
                    parts.push(self.pipeline()?);
                }
                if matches!(self.peek(), Tok::AndAnd) {
                    let lhs = Node::OrOr(parts);
                    let mut and_parts = vec![lhs];
                    while matches!(self.peek(), Tok::AndAnd) {
                        self.bump();
                        self.skip_newlines();
                        and_parts.push(self.pipeline()?);
                    }
                    return Ok(Node::AndAnd(and_parts));
                }
                Ok(Node::OrOr(parts))
            }
            _ => Ok(first),
        }
    }

    fn pipeline(&mut self) -> Result<Node, ParseError> {
        let first = self.unit()?;
        if !matches!(self.peek(), Tok::Pipe(..)) {
            return Ok(first);
        }
        let mut segments = vec![first];
        let mut fds = Vec::new();
        while let Tok::Pipe(out, inp) = *self.peek() {
            self.bump();
            self.skip_newlines();
            fds.push((out, inp));
            segments.push(self.unit()?);
        }
        Ok(Node::Pipe(segments, fds))
    }

    fn unit(&mut self) -> Result<Node, ParseError> {
        if matches!(self.peek(), Tok::Bang) {
            self.bump();
            let inner = self.unit()?;
            return Ok(Node::Bang(Box::new(inner)));
        }
        self.command()
    }

    // ----- commands -----------------------------------------------------------

    fn command(&mut self) -> Result<Node, ParseError> {
        // Keywords are unquoted single-segment words at command start.
        if let Tok::Word(segs) = self.peek() {
            if segs.len() == 1 && !segs[0].1 {
                match segs[0].0.as_str() {
                    "fn" => return self.fn_def(),
                    "for" => return self.binding_form(BindKind::For),
                    "let" => return self.binding_form(BindKind::Let),
                    "local" => return self.binding_form(BindKind::Local),
                    _ => {}
                }
            }
        }
        if matches!(self.peek(), Tok::Tilde) {
            self.bump();
            let subject = self.expr()?;
            let mut patterns = Vec::new();
            while self.starts_expr() {
                patterns.push(self.expr()?);
            }
            return Ok(Node::Match(subject, patterns));
        }
        self.simple()
    }

    fn fn_def(&mut self) -> Result<Node, ParseError> {
        self.bump(); // `fn`
        if !self.starts_expr() {
            return self.err("expected function name after fn");
        }
        let name = self.expr()?;
        let mut params = Vec::new();
        loop {
            match self.peek() {
                Tok::Word(segs) => {
                    let text: String = segs.iter().map(|(t, _)| t.as_str()).collect();
                    params.push(text);
                    self.bump();
                }
                Tok::LBrace => {
                    self.bump();
                    let body = self.seq(&[Tok::RBrace])?;
                    self.expect(Tok::RBrace)?;
                    // `fn f {body}` is `@ * {body}`: the arguments
                    // bind to `$*` (unlike a bare `{body}` thunk).
                    let lambda = Lambda {
                        params: if params.is_empty() {
                            Some(vec!["*".to_string()])
                        } else {
                            Some(params)
                        },
                        body,
                    };
                    return Ok(Node::FnDef(name, Some(Rc::new(lambda))));
                }
                _ => {
                    if params.is_empty() {
                        // `fn name` alone: undefine.
                        return Ok(Node::FnDef(name, None));
                    }
                    return self.err("expected { after fn parameters");
                }
            }
        }
    }

    fn binding_form(&mut self, kind: BindKind) -> Result<Node, ParseError> {
        self.bump(); // keyword
        self.expect(Tok::LParen)?;
        let mut bindings = Vec::new();
        loop {
            self.skip_seps();
            if matches!(self.peek(), Tok::RParen) {
                self.bump();
                break;
            }
            let name = self.expr()?;
            self.expect(Tok::Eq)?;
            let mut values = Vec::new();
            while self.starts_expr() {
                values.push(self.expr()?);
            }
            bindings.push((name, values));
            match self.peek() {
                Tok::Semi | Tok::Newline => continue,
                Tok::RParen => {
                    self.bump();
                    break;
                }
                _ => return self.err("expected ; or ) in binding list"),
            }
        }
        self.skip_newlines();
        let body = if self.starts_command() {
            self.andor()?
        } else {
            Node::Seq(Vec::new())
        };
        Ok(match kind {
            BindKind::Let => Node::Let(bindings, Box::new(body)),
            BindKind::Local => Node::Local(bindings, Box::new(body)),
            BindKind::For => Node::For(bindings, Box::new(body)),
        })
    }

    /// A simple command: interleaved words and redirections; an `=`
    /// after the first word turns it into an assignment.
    fn simple(&mut self) -> Result<Node, ParseError> {
        let mut redirs: Vec<Redirect> = Vec::new();
        let mut words: Vec<Expr> = Vec::new();
        // Leading redirections.
        while let Tok::Redir(_) = self.peek() {
            redirs.push(self.redirect()?);
        }
        if !self.starts_expr() {
            if redirs.is_empty() {
                return self.err(format!("unexpected {}", self.peek()));
            }
            return Ok(Node::Redir(redirs, Box::new(Node::Seq(Vec::new()))));
        }
        let first = self.expr()?;
        // Assignment?
        if matches!(self.peek(), Tok::Eq) {
            self.bump();
            let mut values = Vec::new();
            loop {
                if self.starts_expr() {
                    values.push(self.expr()?);
                } else if matches!(self.peek(), Tok::Eq) {
                    // Allow literal `=` inside values (e.g. watch's
                    // `echo old $var '=' ...` keeps it quoted, but a
                    // stray `=` in a value list is a user error).
                    return self.err("unexpected `=` in assignment values");
                } else {
                    break;
                }
            }
            let node = Node::Assign(first, values);
            return if redirs.is_empty() {
                Ok(node)
            } else {
                Ok(Node::Redir(redirs, Box::new(node)))
            };
        }
        words.push(first);
        loop {
            if self.starts_expr() {
                words.push(self.expr()?);
            } else if let Tok::Redir(_) = self.peek() {
                redirs.push(self.redirect()?);
            } else {
                break;
            }
        }
        let call = Node::Call(words);
        if redirs.is_empty() {
            Ok(call)
        } else {
            Ok(Node::Redir(redirs, Box::new(call)))
        }
    }

    fn redirect(&mut self) -> Result<Redirect, ParseError> {
        let op = match self.bump().tok {
            Tok::Redir(op) => op,
            other => return self.err(format!("expected redirection, found {other}")),
        };
        Ok(match op {
            RedirOp::Create(fd) => Redirect::Create(fd, self.redir_target()?),
            RedirOp::Append(fd) => Redirect::Append(fd, self.redir_target()?),
            RedirOp::Open(fd) => Redirect::Open(fd, self.redir_target()?),
            RedirOp::Dup(a, b) => Redirect::Dup(a, b),
            RedirOp::CloseFd(fd) => Redirect::Close(fd),
            RedirOp::Here(fd) => {
                // Simplified here document: the body is the (usually
                // quoted) word that follows.
                let word = self.expr()?;
                match word {
                    Expr::Word(w) => Redirect::Here(fd, w.text()),
                    _ => return self.err("here document body must be a word"),
                }
            }
        })
    }

    fn redir_target(&mut self) -> Result<Expr, ParseError> {
        if !self.starts_expr() {
            return self.err("expected file name after redirection");
        }
        self.expr()
    }

    fn starts_command(&self) -> bool {
        self.starts_expr() || matches!(self.peek(), Tok::Bang | Tok::Tilde | Tok::Redir(_))
    }

    // ----- expressions ----------------------------------------------------------

    fn starts_expr(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Word(_)
                | Tok::Dollar
                | Tok::DollarCount
                | Tok::DollarFlat
                | Tok::Prim(_)
                | Tok::LParen
                | Tok::LBrace
                | Tok::At
                | Tok::Backquote
                | Tok::CmdSub
        )
    }

    /// An expression: atoms joined by `^` or adjacency.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        loop {
            if matches!(self.peek(), Tok::Caret) {
                self.bump();
                let rhs = self.atom()?;
                e = Expr::Concat(Box::new(e), Box::new(rhs));
            } else if self.starts_expr() && !self.peek_tok().space_before {
                // Implicit concatenation (`$x.c`, `fn-$func`).
                let rhs = self.atom()?;
                e = Expr::Concat(Box::new(e), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Word(segs) => {
                // `%closure(...)@ params {body}` — the unparsed-closure
                // literal (environment decoding and `whatis` output).
                let text: String = segs.iter().map(|(t, _)| t.as_str()).collect();
                if text == "%closure"
                    && segs.iter().all(|(_, q)| !q)
                    && matches!(self.toks.get(self.i + 1).map(|t| &t.tok), Some(Tok::LParen))
                    && !self.toks[self.i + 1].space_before
                {
                    return self.closure_lit();
                }
                self.bump();
                Ok(Expr::Word(Word {
                    segs: segs
                        .into_iter()
                        .map(|(text, quoted)| Seg { text, quoted })
                        .collect(),
                }))
            }
            Tok::Dollar => {
                self.bump();
                let target = self.var_target()?;
                // Immediate parenthesis = subscript.
                if matches!(self.peek(), Tok::LParen) && !self.peek_tok().space_before {
                    // ...unless the target itself was parenthesised
                    // (then the parens were consumed by var_target).
                    self.bump();
                    let mut subs = Vec::new();
                    self.skip_newlines();
                    while self.starts_expr() {
                        subs.push(self.expr()?);
                        self.skip_newlines();
                    }
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::VarSub(Box::new(Expr::Var(Box::new(target))), subs));
                }
                Ok(Expr::Var(Box::new(target)))
            }
            Tok::DollarCount => {
                self.bump();
                let target = self.var_target()?;
                Ok(Expr::VarCount(Box::new(target)))
            }
            Tok::DollarFlat => {
                self.bump();
                let target = self.var_target()?;
                Ok(Expr::VarFlat(Box::new(target)))
            }
            Tok::Prim(name) => {
                self.bump();
                Ok(Expr::Prim(name))
            }
            Tok::LParen => {
                self.bump();
                let mut items = Vec::new();
                self.skip_newlines();
                while self.starts_expr() {
                    items.push(self.expr()?);
                    self.skip_newlines();
                }
                self.expect(Tok::RParen)?;
                Ok(Expr::List(items))
            }
            Tok::LBrace => {
                self.bump();
                let body = self.seq(&[Tok::RBrace])?;
                self.expect(Tok::RBrace)?;
                Ok(Expr::Lambda(Rc::new(Lambda { params: None, body })))
            }
            Tok::At => {
                self.bump();
                let mut params = Vec::new();
                loop {
                    match self.peek() {
                        Tok::Word(segs) => {
                            let text: String = segs.iter().map(|(t, _)| t.as_str()).collect();
                            params.push(text);
                            self.bump();
                        }
                        Tok::LBrace => break,
                        _ => return self.err("expected parameter or { after @"),
                    }
                }
                self.expect(Tok::LBrace)?;
                let body = self.seq(&[Tok::RBrace])?;
                self.expect(Tok::RBrace)?;
                // `@ {...}` and `@ * {...}` both bind everything to
                // `$*`; only a bare `{...}` block is a transparent
                // thunk (params: None).
                Ok(Expr::Lambda(Rc::new(Lambda {
                    params: if params.is_empty() {
                        Some(vec!["*".to_string()])
                    } else {
                        Some(params)
                    },
                    body,
                })))
            }
            Tok::Backquote => {
                self.bump();
                match self.peek().clone() {
                    Tok::LBrace => {
                        self.bump();
                        let body = self.seq(&[Tok::RBrace])?;
                        self.expect(Tok::RBrace)?;
                        Ok(Expr::Backquote(Box::new(body)))
                    }
                    Tok::Word(segs) => {
                        self.bump();
                        let word = Expr::Word(Word {
                            segs: segs
                                .into_iter()
                                .map(|(text, quoted)| Seg { text, quoted })
                                .collect(),
                        });
                        Ok(Expr::Backquote(Box::new(Node::Call(vec![word]))))
                    }
                    other => self.err(format!("expected {{ or word after `, found {other}")),
                }
            }
            Tok::CmdSub => {
                self.bump();
                self.expect(Tok::LBrace)?;
                let body = self.seq(&[Tok::RBrace])?;
                self.expect(Tok::RBrace)?;
                Ok(Expr::CmdSub(Box::new(body)))
            }
            other => self.err(format!("unexpected {other}")),
        }
    }

    /// Characters allowed in a `$name` reference; everything else ends
    /// the name (so `echo $h, $w` reads variables `h` and `w`, as in
    /// the paper). Composite names use parens: `$(fn-$func)`.
    fn is_var_name_char(c: char) -> bool {
        c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '%' | '*')
    }

    /// If the upcoming word token starts with var-name characters but
    /// continues with others, split it in two so only the name part is
    /// consumed as the variable (the remainder concatenates by
    /// adjacency).
    fn split_var_word(&mut self) {
        if let Tok::Word(segs) = &self.toks[self.i].tok {
            if let Some((first, quoted)) = segs.first() {
                if *quoted {
                    // `$'quoted name'` names the variable literally.
                    return;
                }
                let cut = first
                    .char_indices()
                    .find(|(_, c)| !Self::is_var_name_char(*c))
                    .map(|(i, _)| i);
                // The name ends at the first non-name character, or at
                // the end of the first segment when a quoted segment
                // follows (`$x'>'` is `$x ^ '>'`).
                let (name, rest_segs) = match cut {
                    Some(0) => return,
                    Some(cut) => {
                        let mut rest = segs.clone();
                        let name = first[..cut].to_string();
                        rest[0].0 = first[cut..].to_string();
                        (name, rest)
                    }
                    None if segs.len() > 1 => {
                        (first.clone(), segs[1..].to_vec())
                    }
                    None => return,
                };
                let pos = self.toks[self.i].pos;
                self.toks[self.i].tok = Tok::Word(vec![(name, false)]);
                self.toks.insert(
                    self.i + 1,
                    crate::lex::Token {
                        tok: Tok::Word(rest_segs),
                        space_before: false,
                        pos,
                    },
                );
            }
        }
    }

    /// The target of a `$`-reference: a word, a parenthesised
    /// expression list, or another `$`-reference (`$$x`).
    fn var_target(&mut self) -> Result<Expr, ParseError> {
        self.split_var_word();
        match self.peek().clone() {
            Tok::Word(segs) => {
                self.bump();
                // Composite names need parens (`$(fn-$func)`);
                // `$a$b` is handled by the adjacency rule in expr()
                // as `$a ^ $b`, like rc.
                Ok(Expr::Word(Word {
                    segs: segs
                        .into_iter()
                        .map(|(text, quoted)| Seg { text, quoted })
                        .collect(),
                }))
            }
            Tok::LParen => {
                self.bump();
                let mut items = Vec::new();
                self.skip_newlines();
                while self.starts_expr() {
                    items.push(self.expr()?);
                    self.skip_newlines();
                }
                self.expect(Tok::RParen)?;
                Ok(Expr::List(items))
            }
            Tok::Dollar => {
                self.bump();
                let inner = self.var_target()?;
                Ok(Expr::Var(Box::new(inner)))
            }
            other => self.err(format!("expected variable name after $, found {other}")),
        }
    }

    /// `%closure(name=value;...)@ params {body}`.
    fn closure_lit(&mut self) -> Result<Expr, ParseError> {
        self.bump(); // %closure
        self.expect(Tok::LParen)?;
        let mut bindings = Vec::new();
        loop {
            self.skip_seps();
            if matches!(self.peek(), Tok::RParen) {
                self.bump();
                break;
            }
            let name = match self.peek().clone() {
                Tok::Word(segs) => {
                    self.bump();
                    segs.iter().map(|(t, _)| t.as_str()).collect::<String>()
                }
                other => return self.err(format!("expected binding name, found {other}")),
            };
            self.expect(Tok::Eq)?;
            let mut values = Vec::new();
            while self.starts_expr() {
                values.push(self.expr()?);
            }
            bindings.push((name, values));
            match self.peek() {
                Tok::Semi | Tok::Newline => continue,
                Tok::RParen => {
                    self.bump();
                    break;
                }
                _ => return self.err("expected ; or ) in closure bindings"),
            }
        }
        // The code part: either `@ params {body}` or a bare `{body}`.
        let lambda = match self.atom()? {
            Expr::Lambda(l) => l,
            _ => return self.err("expected lambda after %closure(...)"),
        };
        Ok(Expr::ClosureLit { bindings, lambda })
    }
}

enum BindKind {
    Let,
    Local,
    For,
}
