//! The unparser: AST → re-parseable es source.
//!
//! The paper's environment mechanism depends on this ("a fair amount
//! of es must be devoted to 'unparsing' function definitions so that
//! they may be passed as environment strings"): closures are encoded
//! as `%closure(a=b)@ * {echo $a}`, which is also what `whatis`
//! prints. Every printer here guarantees round-tripping: parsing the
//! output and printing it again yields the same text.

use crate::ast::{Expr, Lambda, Node, Redirect, Word};

/// Quotes `s` if it could not lex back as a single bare word.
pub fn quote(s: &str) -> String {
    let needs = s.is_empty()
        || s.chars().any(|c| {
            " \t\n#;&|^$=`'{}()<>!@~\\*?[]".contains(c)
        });
    if needs {
        format!("'{}'", s.replace('\'', "''"))
    } else {
        s.to_string()
    }
}

/// Prints a word segment-by-segment, preserving quoting.
pub fn unparse_word(w: &Word) -> String {
    let mut out = String::new();
    for seg in &w.segs {
        if seg.quoted {
            out.push('\'');
            out.push_str(&seg.text.replace('\'', "''"));
            out.push('\'');
        } else {
            out.push_str(&seg.text);
        }
    }
    if out.is_empty() {
        out.push_str("''");
    }
    out
}

/// Prints an expression.
pub fn unparse_expr(e: &Expr) -> String {
    match e {
        Expr::Word(w) => unparse_word(w),
        Expr::Var(t) => format!("${}", var_target(t)),
        Expr::VarCount(t) => format!("$#{}", var_target(t)),
        Expr::VarFlat(t) => format!("$^{}", var_target(t)),
        Expr::VarSub(v, subs) => {
            let base = unparse_expr(v);
            let subs: Vec<String> = subs.iter().map(unparse_expr).collect();
            format!("{base}({})", subs.join(" "))
        }
        Expr::Concat(a, b) => format!("{}^{}", unparse_expr(a), unparse_expr(b)),
        Expr::List(items) => {
            let items: Vec<String> = items.iter().map(unparse_expr).collect();
            format!("({})", items.join(" "))
        }
        Expr::Lambda(l) => unparse_lambda(l, false),
        Expr::Prim(name) => format!("$&{name}"),
        Expr::CmdSub(n) => format!("<>{{{}}}", unparse_node(n)),
        Expr::Backquote(n) => format!("`{{{}}}", unparse_node(n)),
        Expr::ClosureLit { bindings, lambda } => {
            let binds: Vec<String> = bindings
                .iter()
                .map(|(n, vs)| {
                    let vals: Vec<String> = vs.iter().map(unparse_expr).collect();
                    format!("{n}={}", vals.join(" "))
                })
                .collect();
            format!("%closure({}){}", binds.join(";"), unparse_lambda(lambda, true))
        }
    }
}

/// Prints the target of a `$` reference.
fn var_target(t: &Expr) -> String {
    match t {
        Expr::Word(w) => unparse_word(w),
        Expr::Var(inner) => format!("${}", var_target(inner)),
        Expr::List(items) => {
            let items: Vec<String> = items.iter().map(unparse_expr).collect();
            format!("({})", items.join(" "))
        }
        other => format!("({})", unparse_expr(other)),
    }
}

/// Prints a lambda. With `explicit_star` the no-params form prints as
/// `@ * {body}` (the paper's `whatis` output); otherwise as `{body}`.
pub fn unparse_lambda(l: &Lambda, explicit_star: bool) -> String {
    let _ = explicit_star;
    match &l.params {
        None => format!("{{{}}}", unparse_node(&l.body)),
        Some(ps) => format!("@ {} {{{}}}", ps.join(" "), unparse_node(&l.body)),
    }
}

/// Prints a binding-form body. A body that is already a braced block
/// (a call of one bare lambda) prints as that block; anything else is
/// wrapped in braces so the output reparses — and stays stable on a
/// second round trip.
fn body_text(body: &Node) -> String {
    if let Node::Call(exprs) = body {
        if let [Expr::Lambda(l)] = exprs.as_slice() {
            if l.params.is_none() {
                return format!("{{{}}}", unparse_node(&l.body));
            }
        }
    }
    format!("{{{}}}", unparse_node(body))
}

fn unparse_bindings(bindings: &[(Expr, Vec<Expr>)]) -> String {
    let parts: Vec<String> = bindings
        .iter()
        .map(|(n, vs)| {
            let vals: Vec<String> = vs.iter().map(unparse_expr).collect();
            if vals.is_empty() {
                format!("{} =", unparse_expr(n))
            } else {
                format!("{} = {}", unparse_expr(n), vals.join(" "))
            }
        })
        .collect();
    parts.join("; ")
}

/// Prints a command node.
pub fn unparse_node(n: &Node) -> String {
    match n {
        Node::Call(exprs) => exprs
            .iter()
            .map(unparse_expr)
            .collect::<Vec<_>>()
            .join(" "),
        Node::Assign(lhs, values) => {
            let vals: Vec<String> = values.iter().map(unparse_expr).collect();
            if vals.is_empty() {
                format!("{} =", unparse_expr(lhs))
            } else {
                format!("{} = {}", unparse_expr(lhs), vals.join(" "))
            }
        }
        Node::Let(b, body) => format!("let ({}) {}", unparse_bindings(b), body_text(body)),
        Node::Local(b, body) => {
            format!("local ({}) {}", unparse_bindings(b), body_text(body))
        }
        Node::For(b, body) => format!("for ({}) {}", unparse_bindings(b), body_text(body)),
        Node::Match(subject, patterns) => {
            let pats: Vec<String> = patterns.iter().map(unparse_expr).collect();
            if pats.is_empty() {
                format!("~ {}", unparse_expr(subject))
            } else {
                format!("~ {} {}", unparse_expr(subject), pats.join(" "))
            }
        }
        Node::Seq(nodes) | Node::SurfaceSeq(nodes) => nodes
            .iter()
            .map(unparse_node)
            .collect::<Vec<_>>()
            .join("; "),
        Node::Pipe(segments, fds) => {
            let mut out = String::new();
            for (i, seg) in segments.iter().enumerate() {
                if i > 0 {
                    let (o, inp) = fds[i - 1];
                    if (o, inp) == (1, 0) {
                        out.push_str(" | ");
                    } else {
                        out.push_str(&format!(" |[{o}={inp}] "));
                    }
                }
                out.push_str(&unparse_node(seg));
            }
            out
        }
        Node::Redir(redirs, inner) => {
            let mut out = unparse_node(inner);
            for r in redirs {
                out.push(' ');
                out.push_str(&unparse_redirect(r));
            }
            out
        }
        Node::AndAnd(parts) => parts
            .iter()
            .map(unparse_node)
            .collect::<Vec<_>>()
            .join(" && "),
        Node::OrOr(parts) => parts
            .iter()
            .map(unparse_node)
            .collect::<Vec<_>>()
            .join(" || "),
        Node::Bang(inner) => format!("!{}", unparse_node(inner)),
        Node::Background(inner) => format!("{} &", unparse_node(inner)),
        Node::FnDef(name, Some(l)) => {
            format!("fn {} {}", unparse_expr(name), unparse_lambda(l, true))
        }
        Node::FnDef(name, None) => format!("fn {}", unparse_expr(name)),
    }
}

fn unparse_redirect(r: &Redirect) -> String {
    match r {
        Redirect::Create(1, f) => format!("> {}", unparse_expr(f)),
        Redirect::Create(fd, f) => format!(">[{fd}] {}", unparse_expr(f)),
        Redirect::Append(1, f) => format!(">> {}", unparse_expr(f)),
        Redirect::Append(fd, f) => format!(">>[{fd}] {}", unparse_expr(f)),
        Redirect::Open(0, f) => format!("< {}", unparse_expr(f)),
        Redirect::Open(fd, f) => format!("<[{fd}] {}", unparse_expr(f)),
        Redirect::Dup(a, b) => format!(">[{a}={b}]"),
        Redirect::Close(fd) => format!(">[{fd}=]"),
        Redirect::Here(fd, text) => {
            if *fd == 0 {
                format!("<< {}", quote(text))
            } else {
                format!("<<[{fd}] {}", quote(text))
            }
        }
    }
}
