//! Tests for lexing, parsing, lowering, and printing.

use crate::ast::{Expr, Node};
use crate::lex::{self, Tok};
use crate::print::{quote, unparse_expr, unparse_node};
use crate::{lower, parse_program};
use proptest::prelude::*;

/// Parse + lower + print, for compact golden tests.
fn core(src: &str) -> String {
    unparse_node(&lower(parse_program(src).expect("parses")))
}

/// Parse only (surface) + print.
fn surface(src: &str) -> String {
    unparse_node(&parse_program(src).expect("parses"))
}

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

#[test]
fn lex_simple_words() {
    let toks = lex::tokens("cd /tmp").unwrap();
    assert_eq!(toks.len(), 3); // cd, /tmp, EOF
    assert!(matches!(&toks[0].tok, Tok::Word(_)));
    assert!(toks[1].space_before);
}

#[test]
fn lex_quoting_rules() {
    let toks = lex::tokens("echo 'hi there' 'don''t'").unwrap();
    match &toks[1].tok {
        Tok::Word(segs) => assert_eq!(segs, &[("hi there".to_string(), true)]),
        other => panic!("expected word, got {other:?}"),
    }
    match &toks[2].tok {
        Tok::Word(segs) => assert_eq!(segs, &[("don't".to_string(), true)]),
        other => panic!("expected word, got {other:?}"),
    }
}

#[test]
fn lex_mixed_quoting_is_one_word() {
    let toks = lex::tokens("a'b c'd").unwrap();
    match &toks[0].tok {
        Tok::Word(segs) => assert_eq!(
            segs,
            &[
                ("a".to_string(), false),
                ("b c".to_string(), true),
                ("d".to_string(), false)
            ]
        ),
        other => panic!("expected word, got {other:?}"),
    }
    assert!(matches!(toks[1].tok, Tok::Eof));
}

#[test]
fn lex_unterminated_quote_is_incomplete() {
    let err = lex::tokens("echo 'oops").unwrap_err();
    assert!(err.incomplete);
}

#[test]
fn lex_operators() {
    let toks = lex::tokens("a && b || c | d & e").unwrap();
    let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
    assert!(matches!(kinds[1], Tok::AndAnd));
    assert!(matches!(kinds[3], Tok::OrOr));
    assert!(matches!(kinds[5], Tok::Pipe(1, 0)));
    assert!(matches!(kinds[7], Tok::Amp));
}

#[test]
fn lex_redirections() {
    use lex::RedirOp;
    let toks = lex::tokens("> f >> g < h >[2] i >[1=2] >[3=] <[4] j |[2=0]").unwrap();
    let redirs: Vec<&Tok> = toks
        .iter()
        .map(|t| &t.tok)
        .filter(|t| matches!(t, Tok::Redir(_) | Tok::Pipe(..)))
        .collect();
    assert!(matches!(redirs[0], Tok::Redir(RedirOp::Create(1))));
    assert!(matches!(redirs[1], Tok::Redir(RedirOp::Append(1))));
    assert!(matches!(redirs[2], Tok::Redir(RedirOp::Open(0))));
    assert!(matches!(redirs[3], Tok::Redir(RedirOp::Create(2))));
    assert!(matches!(redirs[4], Tok::Redir(RedirOp::Dup(1, 2))));
    assert!(matches!(redirs[5], Tok::Redir(RedirOp::CloseFd(3))));
    assert!(matches!(redirs[6], Tok::Redir(RedirOp::Open(4))));
    assert!(matches!(redirs[7], Tok::Pipe(2, 0)));
}

#[test]
fn lex_dollar_forms() {
    let toks = lex::tokens("$x $#y $^z $&create $$w").unwrap();
    let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
    assert!(matches!(kinds[0], Tok::Dollar));
    assert!(matches!(kinds[2], Tok::DollarCount));
    assert!(matches!(kinds[4], Tok::DollarFlat));
    assert!(matches!(kinds[6], Tok::Prim(n) if n == "create"));
    assert!(matches!(kinds[7], Tok::Dollar));
    assert!(matches!(kinds[8], Tok::Dollar));
}

#[test]
fn lex_comments_and_continuation() {
    let toks = lex::tokens("echo hi # comment\necho bye").unwrap();
    let words = toks
        .iter()
        .filter(|t| matches!(t.tok, Tok::Word(_)))
        .count();
    assert_eq!(words, 4);
    let toks = lex::tokens("echo a \\\n b").unwrap();
    assert!(!toks.iter().any(|t| matches!(t.tok, Tok::Newline)));
}

#[test]
fn lex_eq_splits_words() {
    // The paper types `x=foo bar` at the REPL.
    let toks = lex::tokens("x=foo bar").unwrap();
    assert!(matches!(toks[0].tok, Tok::Word(_)));
    assert!(matches!(toks[1].tok, Tok::Eq));
    assert!(matches!(toks[2].tok, Tok::Word(_)));
}

#[test]
fn lex_word_chars_include_shell_names() {
    for w in ["fn-%pipe", "set-PATH", "a-b_c.d", "%closure", "*", "[abc]", "path-cache"] {
        let toks = lex::tokens(w).unwrap();
        assert!(
            matches!(&toks[0].tok, Tok::Word(segs) if segs.len() == 1 && segs[0].0 == w),
            "{w} should lex as one word"
        );
        assert_eq!(toks.len(), 2);
    }
}

// ---------------------------------------------------------------------------
// Parser + lowering: the paper's rewrite table.
// ---------------------------------------------------------------------------

#[test]
fn redirection_rewrites_to_create() {
    // The paper's canonical example.
    assert_eq!(core("ls > /tmp/foo"), "%create 1 /tmp/foo {ls}");
    assert_eq!(core("ls >> log"), "%append 1 log {ls}");
    assert_eq!(core("wc < in"), "%open 0 in {wc}");
    assert_eq!(core("ls >[2] err"), "%create 2 err {ls}");
    assert_eq!(core("echo x >[1=2]"), "%dup 1 2 {echo x}");
    assert_eq!(core("echo x >[2=]"), "%close 2 {echo x}");
}

#[test]
fn multiple_redirections_nest_first_outermost() {
    assert_eq!(
        core("cmd > out < in"),
        "%create 1 out {%open 0 in {cmd}}"
    );
}

#[test]
fn pipe_rewrites_variadic() {
    assert_eq!(core("a | b"), "%pipe {a} 1 0 {b}");
    assert_eq!(core("a | b | c"), "%pipe {a} 1 0 {b} 1 0 {c}");
    assert_eq!(core("a |[2=0] b"), "%pipe {a} 2 0 {b}");
}

#[test]
fn figure1_pipeline_lowers() {
    let src = "cat paper9 | tr -cs a-zA-Z0-9 '\\012' | sort | uniq -c | sort -nr | sed 6q";
    let out = core(src);
    assert!(out.starts_with("%pipe {cat paper9} 1 0 {tr -cs a-zA-Z0-9 '\\012'} 1 0 {sort}"));
    assert!(out.ends_with("{sed 6q}"));
}

#[test]
fn andor_bang_background() {
    assert_eq!(core("a && b"), "%and {a} {b}");
    assert_eq!(core("a && b && c"), "%and {a} {b} {c}");
    assert_eq!(core("a || b"), "%or {a} {b}");
    assert_eq!(core("!a"), "%not {a}");
    assert_eq!(core("!~ $x 0"), "%not {~ $x 0}");
    assert_eq!(core("slow &"), "%background {slow}");
    assert_eq!(core("a && b || c"), "%or {%and {a} {b}} {c}");
}

#[test]
fn fn_rewrites_to_assignment() {
    // fn echon args {echo -n $args}  ≡  fn-echon = @ args {echo -n $args}
    assert_eq!(core("fn echon args {echo -n $args}"), "'fn-'^echon = @ args {echo -n $args}");
    assert_eq!(core("fn d {date}"), "'fn-'^d = @ * {date}");
    assert_eq!(core("fn gone"), "'fn-'^gone =");
    // Computed names (the trace example defines fn $func).
    assert_eq!(core("fn $func args {x}"), "'fn-'^$func = @ args {x}");
}

#[test]
fn seq_inside_braces_becomes_seq_call() {
    assert_eq!(core("{a; b}"), "{%seq {a} {b}}");
    // Top level stays native.
    assert_eq!(core("a; b"), "a; b");
}

#[test]
fn backquote_becomes_backquote_hook() {
    assert_eq!(core("echo `{pwd}"), "echo <>{%backquote {pwd}}");
    assert_eq!(core("title `{pwd}"), "title <>{%backquote {pwd}}");
    assert_eq!(core("echo `pwd"), "echo <>{%backquote {pwd}}");
}

#[test]
fn cmdsub_and_lambda_parse() {
    assert_eq!(core("echo <>{hello-world}"), "echo <>{hello-world}");
    assert_eq!(core("apply @ i {cd $i} /tmp"), "apply @ i {cd $i} /tmp");
    assert_eq!(core("x = {echo hi}"), "x = {echo hi}");
}

#[test]
fn assignment_forms() {
    assert_eq!(core("x = foo bar"), "x = foo bar");
    assert_eq!(core("x=foo bar"), "x = foo bar");
    assert_eq!(core("path-cache ="), "path-cache =");
    assert_eq!(core("silly-command = {echo hi}"), "silly-command = {echo hi}");
    assert_eq!(core("set-$var = @ {return $*}"), "set-^$var = @ * {return $*}");
    assert_eq!(core("(a b) = 1 2 3"), "(a b) = 1 2 3");
}

#[test]
fn match_parses() {
    assert_eq!(core("~ $e error"), "~ $e error");
    assert_eq!(core("~ $#dir 0"), "~ $#dir 0");
    assert_eq!(core("~ $file /*"), "~ $file /*");
    assert_eq!(core("~ $e eof error retry"), "~ $e eof error retry");
}

#[test]
fn binding_forms_parse() {
    assert_eq!(
        core("let (h=hello; w=world) {hi = {echo $h, $w}}"),
        "let (h = hello; w = world) {hi = {echo $h^, $w}}"
    );
    assert_eq!(
        core("local (x = baz) {echo $x}"),
        "local (x = baz) {echo $x}"
    );
    assert_eq!(
        core("for (i = $args) $cmd $i"),
        "for (i = $args) {$cmd $i}"
    );
    // let body can itself be a fn definition (the %create spoof).
    assert_eq!(
        core("let (create = $fn-%create) fn %create fd file cmd {x}"),
        "let (create = $fn-%create) {'fn-'^%create = @ fd file cmd {x}}"
    );
    // Empty binding value (the settor-recursion suppressor).
    assert_eq!(core("local (set-PATH = ) {PATH = x}"), "local (set-PATH =) {PATH = x}");
}

#[test]
fn var_forms_parse() {
    assert_eq!(core("echo $x"), "echo $x");
    assert_eq!(core("echo $#x"), "echo $#x");
    assert_eq!(core("echo $^x"), "echo $^x");
    assert_eq!(core("echo $$var"), "echo $$var");
    assert_eq!(core("echo $mixed(2) $mixed(4)"), "echo $mixed(2) $mixed(4)");
    assert_eq!(core("echo $(fn-$func)"), "echo $(fn-^$func)");
    assert_eq!(core("$&create 1 f {ls}"), "$&create 1 f {ls}");
}

#[test]
fn adjacency_concat() {
    // Var names are full words in es (so `$fn-%pipe` works); use an
    // explicit caret to concatenate: `$x^.c`.
    assert_eq!(core("echo $x^.c"), "echo $x^.c");
    assert_eq!(core("echo a^b"), "echo a^b");
    assert_eq!(core("echo fn-$i"), "echo fn-^$i");
    assert_eq!(core("echo $a$b"), "echo $a^$b");
    // With space: two arguments.
    assert_eq!(core("echo $x .c"), "echo $x .c");
}

#[test]
fn closure_lit_roundtrip() {
    let src = "whatis = %closure(a=b)@ * {echo $a}";
    assert_eq!(core(src), "whatis = %closure(a=b)@ * {echo $a}");
    let multi = "f = %closure(a=1 2;b='x y')@ p {echo $a $b $p}";
    assert_eq!(core(multi), "f = %closure(a=1 2;b='x y')@ p {echo $a $b $p}");
    let empty = "f = %closure()@ * {nop}";
    assert_eq!(core(empty), "f = %closure()@ * {nop}");
}

#[test]
fn incomplete_inputs_are_flagged() {
    for src in ["echo {", "fn f {", "let (x = 1) {", "echo 'open", "a | ", "if {true} {"] {
        let err = parse_program(src).unwrap_err();
        assert!(err.incomplete, "`{src}` should be incomplete: {err:?}");
    }
    // Errors that more input cannot fix.
    let err = parse_program("echo )").unwrap_err();
    assert!(!err.incomplete);
}

#[test]
fn empty_braces_and_programs() {
    assert_eq!(core(""), "");
    assert_eq!(core("\n\n ; ;\n"), "");
    assert_eq!(core("while {} {x}"), "while {} {x}");
}

#[test]
fn trace_function_parses() {
    // The full trace example from the paper.
    let src = r#"
fn trace functions {
    for (func = $functions)
        let (old = $(fn-$func))
            fn $func args {
                echo calling $func $args
                $old $args
            }
}
"#;
    let out = core(src);
    assert!(out.starts_with("'fn-'^trace = @ functions {for (func = $functions)"));
    assert!(out.contains("let (old = $(fn-^$func))"));
    assert!(out.contains("%seq {echo calling $func $args} {$old $args}"));
}

#[test]
fn figure3_interactive_loop_parses() {
    let src = r#"
fn %interactive-loop {
    let (result = 0) {
        catch @ e msg {
            if {~ $e eof} {
                return $result
            } {~ $e error} {
                echo >[1=2] $msg
            } {
                echo >[1=2] uncaught exception: $e $msg
            }
            throw retry
        } {
            while {} {
                %prompt
                let (cmd = <>{%parse $prompt}) {
                    result = <>{$cmd}
                }
            }
        }
    }
}
"#;
    let out = core(src);
    assert!(out.contains("catch @ e msg"));
    assert!(out.contains("%dup 1 2 {echo $msg}"));
    assert!(out.contains("<>{%parse $prompt}"));
}

#[test]
fn pathsearch_figure2_parses() {
    let src = r#"
let (search = $fn-%pathsearch) {
    fn %pathsearch prog {
        let (file = <>{$search $prog}) {
            if {~ $#file 1 && ~ $file /*} {
                path-cache = $path-cache $prog
                fn-$prog = $file
            }
            return $file
        }
    }
}
"#;
    let out = core(src);
    assert!(out.contains("let (search = $fn-%pathsearch)"));
    assert!(out.contains("%and {~ $#file 1} {~ $file /*}"));
    assert!(out.contains("fn-^$prog = $file"));
}

#[test]
fn here_doc_simplified() {
    assert_eq!(core("cat << 'line1\nline2\n'"), "%here 0 'line1\nline2\n' {cat}");
}

#[test]
fn surface_printing_stays_surface() {
    assert_eq!(surface("a | b"), "a | b");
    assert_eq!(surface("a && b"), "a && b");
    assert_eq!(surface("ls > f"), "ls > f");
    assert_eq!(surface("fn f x {y}"), "fn f @ x {y}");
}

// ---------------------------------------------------------------------------
// Round-trip properties.
// ---------------------------------------------------------------------------

#[test]
fn core_print_reparses_fixed_corpus() {
    let corpus = [
        "ls > /tmp/foo",
        "a | b | c",
        "a && b || c",
        "fn apply cmd args {for (i = $args) $cmd $i}",
        "echo <>{car <>{cdr <>{cons 1 nil}}}",
        "let (x = 1; y = 2 3) {echo $x $y}",
        "~ $e error",
        "x = %closure(a=b)@ * {echo $a}",
        "catch @ e msg {echo $e} {throw error bad}",
        "echo 'quoted star: *' unquoted*",
        "%pipe {a} 1 0 {b}",
        "echo $list(2) $#list $^list",
    ];
    for src in corpus {
        let once = core(src);
        let twice = core(&once);
        assert_eq!(once, twice, "print→parse→print not stable for `{src}`");
    }
}

proptest! {
    #[test]
    fn prop_quote_roundtrips_any_string(s in "[ -~]{0,20}") {
        // quote() must produce a single word that lexes back to `s`.
        let quoted = quote(&s);
        let toks = lex::tokens(&quoted).unwrap();
        match &toks[0].tok {
            Tok::Word(segs) => {
                let text: String = segs.iter().map(|(t, _)| t.as_str()).collect();
                prop_assert_eq!(text, s);
            }
            other => prop_assert!(false, "quoted `{}` lexed to {:?}", s, other),
        }
        prop_assert_eq!(toks.len(), 2, "exactly one word + EOF");
    }

    #[test]
    fn prop_simple_commands_roundtrip(
        words in proptest::collection::vec("[a-z0-9/.-]{1,8}", 1..6)
    ) {
        let src = words.join(" ");
        let once = core(&src);
        prop_assert_eq!(&once, &src);
        let twice = core(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn prop_unparse_expr_of_quoted_word_reparses(s in "[ -~]{0,16}") {
        let w = crate::ast::Word::quoted(&s);
        let printed = unparse_expr(&Expr::Word(w));
        let prog = parse_program(&format!("echo {printed}")).unwrap();
        match lower(prog) {
            Node::Call(exprs) => match &exprs[1] {
                Expr::Word(w) => prop_assert_eq!(w.text(), s),
                other => prop_assert!(false, "unexpected expr {:?}", other),
            },
            other => prop_assert!(false, "unexpected node {:?}", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Additional edge cases.
// ---------------------------------------------------------------------------

#[test]
fn equals_runs_are_words() {
    // Banner lines in scripts: `===` must not be three assignments.
    assert_eq!(core("echo === banner ==="), "echo === banner ===");
    assert_eq!(core("x == y"), "x == y");
    assert_eq!(core("x = y"), "x = y");
}

#[test]
fn var_names_stop_at_punctuation() {
    assert_eq!(core("echo $h, $w"), "echo $h^, $w");
    assert_eq!(core("echo $a:$b"), "echo $a^:^$b");
    assert_eq!(core("echo $x')'"), "echo $x^')'");
    // Quoted-adjacent segment splits too.
    assert_eq!(core("echo $x'y z'"), "echo $x^'y z'");
    // Name characters the shell itself relies on stay in.
    assert_eq!(core("echo $fn-%pipe $path-cache $a_b"), "echo $fn-%pipe $path-cache $a_b");
}

#[test]
fn pipes_allow_newline_after_bar() {
    assert_eq!(core("a |\nb"), "%pipe {a} 1 0 {b}");
    assert_eq!(core("a &&\nb"), "%and {a} {b}");
}

#[test]
fn nested_braces_and_parens() {
    assert_eq!(core("{ { a } }"), "{{a}}");
    assert_eq!(core("echo ((a b) c)"), "echo ((a b) c)");
    assert_eq!(core("x = ()"), "x = ()"); // () evaluates to the empty list
}

#[test]
fn bang_binds_to_the_following_command() {
    // `!` negates the immediately following command (tighter than |).
    assert_eq!(core("!a | b"), "%pipe {%not {a}} 1 0 {b}");
    assert_eq!(core("! a && b"), "%and {%not {a}} {b}");
    assert_eq!(core("!{a | b}"), "%not {{%pipe {a} 1 0 {b}}}");
}

#[test]
fn comments_do_not_eat_newlines() {
    assert_eq!(core("a # x\nb"), "a; b");
}

#[test]
fn fn_with_percent_names() {
    assert_eq!(
        core("fn %create fd file cmd {x}"),
        "'fn-'^%create = @ fd file cmd {x}"
    );
    assert_eq!(core("fn %interactive-loop {x}"), "'fn-'^%interactive-loop = @ * {x}");
}

#[test]
fn redirections_on_compound_commands() {
    assert_eq!(core("{a; b} > f"), "%create 1 f {{%seq {a} {b}}}");
    assert_eq!(core("for (i = 1) echo $i > f"), "for (i = 1) {%create 1 f {echo $i}}");
}

#[test]
fn empty_assignment_values_allowed_before_terminators() {
    assert_eq!(core("x =; y = 1"), "x =; y = 1");
    assert_eq!(core("x =\ny = 1"), "x =; y = 1");
    assert_eq!(core("{x =}"), "{x =}");
}

#[test]
fn prim_tokens_with_special_names() {
    assert_eq!(core("$&if {a} {b}"), "$&if {a} {b}");
    assert_eq!(core("fn-. = $&dot"), "fn-. = $&dot");
}

#[test]
fn deeply_nested_cmdsub() {
    let src = "echo <>{car <>{cdr <>{cons 1 <>{cons 2 nil}}}}";
    assert_eq!(core(src), src);
}

#[test]
fn match_with_parenthesised_subject() {
    assert_eq!(core("~ (a b c) b"), "~ (a b c) b");
    assert_eq!(core("~ () ()"), "~ () ()");
}

#[test]
fn background_inside_sequence() {
    assert_eq!(core("{slow &; fast}"), "{%seq {%background {slow}} {fast}}");
}
