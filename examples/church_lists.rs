//! Rich return values as data structures: the paper's `cons`/`car`/
//! `cdr` example, where pairs are closures and selection is function
//! application — a lambda calculus running in a shell.
//!
//! Run with: `cargo run --example church_lists`

use es_core::Machine;
use es_os::SimOs;

fn main() {
    let mut m = Machine::new(SimOs::new()).expect("machine boots");

    // The three functions, verbatim from the paper.
    m.run("fn cons a d { return @ f { $f $a $d } }").unwrap();
    m.run("fn car p { $p @ a d { return $a } }").unwrap();
    m.run("fn cdr p { $p @ a d { return $d } }").unwrap();

    println!("cons/car/cdr as shell functions (closures as pairs):\n");

    // The paper's nested example.
    let v = m
        .run("result <>{car <>{cdr <>{cons 1 <>{cons 2 <>{cons 3 nil}}}}}")
        .unwrap();
    println!("car (cdr (cons 1 (cons 2 (cons 3 nil))))  =>  {}", v.join(" "));

    // Build a longer list with a loop and sum-style traversal.
    m.run(
        "fn build n {
            if {~ $#n 0} {
                return nil
            } {
                return <>{cons $n(1) <>{build $n(2 3 4 5 6 7 8 9)}}
            }
        }",
    )
    .unwrap();
    m.run(
        "fn walk p acc {
            if {~ <>{result $p} nil} {
                return $acc
            } {
                walk <>{cdr $p} $acc <>{car $p}
            }
        }",
    )
    .unwrap();
    m.run("lst = <>{build a b c d e}").unwrap();
    let walked = m.run("result <>{walk $lst}").unwrap();
    println!("walk (build a b c d e)                    =>  {}", walked.join(" "));

    // What a pair looks like when unparsed (whatis-style).
    let pair = m.run("result <>{cons hd tl}").unwrap();
    println!("\na cons cell is a closure capturing its parts:");
    println!("  {}", pair.join(" "));

    // GC matters here: build garbage pairs, collect, survivors intact.
    m.heap.collect();
    let before = m.heap.stats().live_after_last;
    m.run("for (i = 1 2 3 4 5 6 7 8 9 0) { tmp = <>{build $i $i $i} }")
        .unwrap();
    m.run("tmp =").unwrap();
    m.heap.collect();
    let after = m.heap.stats().live_after_last;
    println!("\nheap live objects: {before} -> {after} after dropping temporary lists");
    println!("collections so far: {}", m.heap.stats().collections);
}
