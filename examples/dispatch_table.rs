//! "Variables can hold a list of commands, or even a list of lambdas.
//! This makes variables into versatile tools. For example, a variable
//! could be used as a function dispatch table." — the paper, made
//! concrete: a tiny task-runner application whose subcommands live in
//! a pair of parallel es lists, with `expr` doing the bookkeeping.
//!
//! Run with: `cargo run --example dispatch_table`

use es_core::Machine;
use es_os::SimOs;

const APP: &str = r#"
# A dispatch table: names in one list, lambdas in the other.
commands = status add done help
handlers = @ {
    echo $#todo task(s) pending:
    for (t = $todo) echo ' *' $t
} @ {
    todo = $todo $^*
    echo added: $^*
} @ {
    echo finished: $todo(1)
    todo = $todo(2 3 4 5 6 7 8 9)
} @ {
    echo usage: task ($commands)
}

fn task cmd args {
    # Find cmd in $commands; dispatch to the matching handler.
    n = 1
    for (c = $commands) {
        if {~ $c $cmd} {
            $handlers($n) $args
            return
        }
        n = `{expr $n + 1}
    }
    $handlers($#commands)    # unknown -> help (last entry)
}
"#;

fn show(m: &mut Machine<SimOs>, cmd: &str) {
    println!("es> {cmd}");
    m.run(cmd).unwrap_or_else(|e| panic!("`{cmd}` failed: {e}"));
    let out = m.os_mut().take_output();
    for line in out.lines() {
        println!("    {line}");
    }
}

fn main() {
    let mut m = Machine::new(SimOs::new()).expect("machine boots");
    m.run(APP).expect("app installs");

    println!("a task list driven by a lambda dispatch table:\n");
    show(&mut m, "task add write the parser");
    show(&mut m, "task add fix the collector");
    show(&mut m, "task status");
    show(&mut m, "task done");
    show(&mut m, "task status");
    show(&mut m, "task bogus");

    // The table is data: extending the app is list surgery.
    println!("\nextending the table at runtime:");
    m.run("commands = $commands clear").unwrap();
    m.run("handlers = $handlers @ { todo = ; echo cleared }").unwrap();
    show(&mut m, "task clear");
    show(&mut m, "task status");
}
