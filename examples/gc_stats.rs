//! The copying collector at work (paper section "Garbage Collection",
//! experiment E4).
//!
//! Runs a loop-heavy shell workload — the paper's observation (2):
//! "command execution can consume large amounts of memory for a short
//! time, especially when loops are involved" — and reports the
//! collector's statistics, including the pause fraction the paper
//! quotes as "roughly 4% of the running time of the shell".
//!
//! Run with: `cargo run --release --example gc_stats`

use es_core::Machine;
use es_os::SimOs;
use std::time::Instant;

fn workload(m: &mut Machine<SimOs>) {
    // Closure churn: build and drop lots of closures and lists.
    m.run("fn mk n { return @ { result $n $n $n } }").unwrap();
    m.run(
        "for (i = 1 2 3 4 5 6 7 8 9 10) {
            acc =
            for (j = a b c d e f g h i j k l m n o p q r s t) {
                acc = $acc <>{mk $i^$j} $i^$j
            }
            keep = $acc(1 5 9)
        }",
    )
    .unwrap();
    m.os_mut().take_output();
}

fn main() {
    let mut m = Machine::new(SimOs::new()).expect("machine boots");

    println!("semispace copying collector — live statistics\n");
    let t0 = Instant::now();
    for round in 1..=20 {
        workload(&mut m);
        if round % 5 == 0 {
            let s = m.heap.stats();
            println!(
                "round {round:2}: {} collections, {} objs allocated, live now ~{}, \
                 total pause {:?}",
                s.collections, s.allocated, s.live_after_last, s.pause_total
            );
        }
    }
    let elapsed = t0.elapsed();
    let s = m.heap.stats().clone();

    println!("\n--- totals ---");
    println!("wall time:            {elapsed:?}");
    println!("collections:          {}", s.collections);
    println!("objects allocated:    {}", s.allocated);
    println!("objects copied:       {} (avg {:.1}/collection)", s.copied, s.avg_copied());
    println!("survival rate:        {:.2}% of allocations", 100.0 * s.survival_rate());
    println!("max pause:            {:?}", s.pause_max);
    println!(
        "gc fraction:          {:.2}% of running time (paper: \"roughly 4%\")",
        100.0 * s.pause_fraction(elapsed)
    );

    // The debug mode the paper recommends: collect at *every*
    // allocation; any missed-rootset bug dies immediately.
    println!("\n--- stress mode (the paper's debugging collector) ---");
    let mut m = Machine::new(SimOs::new()).expect("machine boots");
    m.heap.set_stress(true);
    let t0 = Instant::now();
    m.run("for (i = 1 2 3 4 5) { x = $i <>{result a b c} }").unwrap();
    println!(
        "5 iterations under collect-per-allocation: {} collections in {:?} — all refs survived",
        m.heap.stats().collections,
        t0.elapsed()
    );
}
