//! Figure 3 of the paper: the default interactive loop is written in
//! es and can be replaced like any other function.
//!
//! This example drives the stock `%interactive-loop` with a scripted
//! session (including an error, which the loop reports and survives via
//! the `retry` exception), then replaces the whole loop with a
//! numbered-prompt variant — the paper's point being that the REPL
//! itself is just a hook.
//!
//! Run with: `cargo run --example interactive_loop`

use es_core::Machine;
use es_os::SimOs;

fn main() {
    // --- session 1: the stock Figure 3 loop -----------------------------
    let mut m = Machine::new(SimOs::new()).expect("machine boots");
    println!("--- stock %interactive-loop (Figure 3), scripted session ---");
    let session = "echo one\n\
                   bogus-command\n\
                   echo {\n\
                   multi line\n\
                   }\n\
                   echo done\n";
    print!("{}", prefix_lines(session, "stdin | "));
    m.os_mut().push_input(session);
    let status = m.repl();
    println!("stdout> {}", m.os_mut().take_output().replace('\n', "\nstdout> "));
    println!("stderr> {}", m.os_mut().take_error().replace('\n', "\nstderr> "));
    println!("exit status: {status}");
    println!("(note the `; ` prompts, the reported error, and the loop surviving it)\n");

    // --- session 2: replace the loop entirely ---------------------------
    let mut m = Machine::new(SimOs::new()).expect("machine boots");
    println!("--- a custom loop: numbered prompts, logs every command ---");
    m.run(
        "fn %interactive-loop {
            n = 1
            catch @ e rest {
                if {~ $e eof} { return 0 } { throw $e $rest }
            } {
                forever {
                    let (cmd = <>{%parse <>{%flatten '' cmd- $n '> '}}) {
                        history = $history <>{%flatten '' $n}
                        $cmd
                        n = <>{%flatten '' $n i}
                    }
                }
            }
        }",
    )
    .expect("custom loop installs");
    let session = "echo alpha\necho beta\n";
    print!("{}", prefix_lines(session, "stdin | "));
    m.os_mut().push_input(session);
    let status = m.repl();
    println!("stdout> {}", m.os_mut().take_output().replace('\n', "\nstdout> "));
    println!("stderr> {}", m.os_mut().take_error().replace('\n', "\nstderr> "));
    println!("exit status: {status}");
    println!("history variable: {:?}", m.get_var("history"));
}

fn prefix_lines(text: &str, prefix: &str) -> String {
    text.lines()
        .map(|l| format!("{prefix}{l}\n"))
        .collect()
}
