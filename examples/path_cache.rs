//! Figure 2 of the paper: a path-lookup cache by spoofing `%pathsearch`.
//!
//! Es deliberately has no built-in command hashing; the paper shows a
//! user adding it in ten lines by wrapping the `%pathsearch` hook:
//! successful absolute-path lookups are memoised as `fn-$prog = $file`,
//! and `recache` flushes. This example installs the spoof, shows the
//! cache filling, and measures the speedup on repeated lookups with a
//! long `$path`.
//!
//! Run with: `cargo run --example path_cache`

use es_core::Machine;
use es_os::{Os, SimOs};

const FIGURE_2: &str = "
let (search = $fn-%pathsearch) {
    fn %pathsearch prog {
        let (file = <>{$search $prog}) {
            if {~ $#file 1 && ~ $file /*} {
                path-cache = $path-cache $prog
                fn-$prog = $file
            }
            return $file
        }
    }
}
fn recache {
    for (i = $path-cache)
        fn-$i =
    path-cache =
}
";

fn main() {
    let mut os = SimOs::new();
    // A long search path of empty directories in front of /bin makes
    // uncached lookups expensive, like a big $PATH on a real system.
    let mut dirs = Vec::new();
    for i in 0..40 {
        let d = format!("/opt/pkg{i:02}/bin");
        os.vfs_mut().mkdir_all(&d).expect("mkdir");
        dirs.push(d);
    }
    dirs.push("/bin".to_string());
    let path = dirs.join(":");
    os.set_initial_env(vec![
        ("HOME".into(), "/home/user".into()),
        ("PATH".into(), path),
    ]);
    let mut m = Machine::new(os).expect("machine boots");

    m.run(FIGURE_2).expect("Figure 2 installs");

    println!("path has {} directories; /bin is last.\n", 41);

    // One lookup fills the cache.
    m.run("ls /tmp").expect("ls runs");
    m.os_mut().take_output();
    println!("after one `ls`:   path-cache = {:?}", m.get_var("path-cache"));
    println!("                  fn-ls      = {:?}", m.get_var("fn-ls"));

    // Measure: repeated command lookups, cached vs not (virtual time
    // measures the work the simulated kernel saw; the is_executable
    // probes of an uncached search do not charge time, so measure in
    // wall-clock terms instead).
    let reps = 400;
    m.run("recache").expect("recache");
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        m.run("recache; ls /tmp").expect("uncached run"); // flush each time
        m.os_mut().take_output();
    }
    let uncached = t0.elapsed();

    m.run("ls /tmp").expect("fill cache");
    m.os_mut().take_output();
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        m.run("ls /tmp").expect("cached run");
        m.os_mut().take_output();
    }
    let cached = t0.elapsed();

    println!("\n{reps} invocations of `ls` through 41 path entries:");
    println!("  uncached (recache each time): {uncached:>10.2?}");
    println!("  cached   (fn-ls memoised):    {cached:>10.2?}");
    println!(
        "  speedup: {:.1}x",
        uncached.as_secs_f64() / cached.as_secs_f64().max(1e-9)
    );

    // recache drops the memoisation.
    m.run("recache").expect("recache");
    println!("\nafter recache:    path-cache = {:?}", m.get_var("path-cache"));
    println!("                  fn-ls      = {:?}", m.get_var("fn-ls"));
    let _ = m.os().cwd();
}
