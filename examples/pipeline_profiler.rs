//! Figure 1 of the paper: timing pipeline elements by spoofing `%pipe`.
//!
//! The spoof redefines the pipeline hook so every stage is wrapped in
//! `time`, reproducing Jon Bentley's pipeline profiler in a few lines
//! of shell — something the paper highlights as impossible in
//! traditional shells. The output below has the same shape as the
//! paper's: the word-frequency list on stdout, one timing line per
//! stage on stderr.
//!
//! Run with: `cargo run --example pipeline_profiler`

use es_core::Machine;
use es_os::SimOs;

/// A deterministic stand-in for the paper's `paper9` troff source:
/// the generated text has a Zipf-flavored word distribution so the
/// frequency table looks like real prose statistics.
fn synthesize_paper() -> String {
    let common = ["the", "a", "to", "of", "is", "and"];
    let rare = [
        "shell", "function", "closure", "exception", "lambda", "pipe", "spoof", "garbage",
        "collector", "environment", "binding", "syntax", "rewrite", "primitive", "hook",
    ];
    let mut out = String::new();
    let mut n: u64 = 42;
    for line in 0..120 {
        for word in 0..10 {
            n = n.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (n >> 33) as usize;
            // Common words ~4x more often than rare ones.
            if !pick.is_multiple_of(5) {
                out.push_str(common[pick % common.len()]);
            } else {
                out.push_str(rare[(pick / 7) % rare.len()]);
            }
            out.push(if word == 9 { '\n' } else { ' ' });
        }
        let _ = line;
    }
    out
}

fn main() {
    let mut os = SimOs::new();
    os.vfs_mut()
        .put_file("/home/user/paper9", synthesize_paper().as_bytes())
        .expect("vfs accepts the document");
    let mut m = Machine::new(os).expect("machine boots");

    // The spoof, verbatim from the paper.
    m.run(
        "let (pipe = $fn-%pipe) {
            fn %pipe first out in rest {
                if {~ $#out 0} {
                    time $first
                } {
                    $pipe {time $first} $out $in {%pipe $rest}
                }
            }
        }",
    )
    .expect("spoof installs");

    println!("es> cat paper9 | tr -cs a-zA-Z0-9 '\\012' | sort | uniq -c | sort -nr | sed 6q");
    m.run("cat paper9 | tr -cs a-zA-Z0-9 '\\012' | sort | uniq -c | sort -nr | sed 6q")
        .expect("pipeline runs");

    // stdout: the six most frequent words.
    print!("{}", m.os_mut().take_output());
    // stderr: one `Nr N.Nu N.Ns cmd` line per stage (Figure 1's shape).
    print!("{}", m.os_mut().take_error());

    println!();
    println!("(virtual times from the simulated kernel; the shape — sort");
    println!(" costlier than cat, every stage individually timed — is the");
    println!(" paper's result, independent of 1993 hardware)");
}
