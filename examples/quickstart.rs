//! Quickstart: boot an es machine on the simulated kernel and walk
//! through the language features the paper introduces.
//!
//! Run with: `cargo run --example quickstart`

use es_core::Machine;
use es_os::SimOs;

fn show(m: &mut Machine<SimOs>, src: &str) {
    println!("es> {src}");
    match m.run(src) {
        Ok(_) => {
            let out = m.os_mut().take_output();
            if !out.is_empty() {
                print!("{out}");
            }
            let err = m.os_mut().take_error();
            if !err.is_empty() {
                print!("{err}");
            }
        }
        Err(e) => println!("exception: {e}"),
    }
}

fn main() {
    let mut m = Machine::new(SimOs::new()).expect("machine boots");

    println!("--- simple commands (es looks like any shell) ---");
    show(&mut m, "echo hello, world");
    show(&mut m, "pwd");
    show(&mut m, "echo one two | wc -l");

    println!("\n--- functions and lambdas ---");
    show(&mut m, "fn d { date +%y-%m-%d }");
    show(&mut m, "d");
    show(&mut m, "fn apply cmd args { for (i = $args) $cmd $i }");
    show(&mut m, "apply echo testing 1.. 2.. 3..");
    show(&mut m, "apply @ i {echo [$i]} a b");

    println!("\n--- code fragments are data ---");
    show(&mut m, "silly-command = {echo hi}");
    show(&mut m, "$silly-command");
    show(&mut m, "mixed = {ls /} hello, {wc} world");
    show(&mut m, "echo $mixed(2) $mixed(4)");

    println!("\n--- lexical vs dynamic binding ---");
    show(&mut m, "x = foo");
    show(&mut m, "let (x = bar) { echo $x; fn lexical { echo $x } }");
    show(&mut m, "lexical");
    show(&mut m, "local (x = baz) { fn dynamic { echo $x } }");
    show(&mut m, "dynamic");

    println!("\n--- rich return values ---");
    show(&mut m, "fn hello-world { return 'hello, world' }");
    show(&mut m, "echo <>{hello-world}");

    println!("\n--- exceptions ---");
    show(
        &mut m,
        "catch @ e msg { echo caught: $e $msg } { throw error oops }",
    );

    println!("\n--- spoofing: noclobber in five lines ---");
    show(
        &mut m,
        "let (create = $fn-%create) fn %create fd file cmd { if {test -f $file} { throw error $file exists } { $create $fd $file $cmd } }",
    );
    show(&mut m, "echo first > /tmp/f");
    show(&mut m, "echo second > /tmp/f");
    show(&mut m, "cat /tmp/f");

    println!("\n--- the whole shell state, as an environment ---");
    let env = m.export_environment();
    println!("{} variables exported, including function definitions:", env.len());
    for (k, v) in env.iter().filter(|(k, _)| k == "fn-d") {
        println!("  {k}={v}");
    }
}
