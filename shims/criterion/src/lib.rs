//! A self-contained subset of the `criterion` benchmarking API.
//!
//! The real crates-io `criterion` cannot be vendored in this offline
//! build environment, so this shim implements the surface the bench
//! suite uses — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with straightforward wall-clock
//! sampling and a text report (median / mean / min per benchmark).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, so benchmarked results are not
/// dead-code-eliminated.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id: `BenchmarkId::new("plain", 200)` prints as
/// `plain/200`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A bare id from a string.
    pub fn from_str_id(id: impl Into<String>) -> BenchmarkId {
        BenchmarkId { id: id.into() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId::from_str_id(s)
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId::from_str_id(s)
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// A one-off benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            _criterion: self,
            name: String::new(),
            sample_size: 20,
        };
        group.bench_function(id, f);
    }
}

/// A group sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark; the routine drives `b.iter(...)`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.id, &b.samples);
        self
    }

    /// Like [`BenchmarkGroup::bench_function`], threading an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; symmetry with criterion).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, warming up briefly first. Each sample times a
    /// batch sized so one batch takes roughly a millisecond, keeping
    /// timer overhead negligible for nanosecond-scale routines.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration.
        let t0 = Instant::now();
        let mut calib_iters = 0u64;
        while t0.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos().max(1) / calib_iters.max(1) as u128;
        let batch = (1_000_000 / per_iter).clamp(1, 10_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let total = start.elapsed();
            self.samples.push(total / batch as u32);
        }
    }
}

/// Prints `group/id  median .. (mean .., min ..)`.
fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        eprintln!("{group}/{id}: no samples (b.iter never called)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    eprintln!(
        "{full:<44} median {median:>12?}  mean {mean:>12?}  min {min:>12?}  ({} samples)",
        sorted.len()
    );
}

/// `criterion_group!(benches, f1, f2, ...)` — a function running each
/// benchmark function against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(benches);` — the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
