//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::Rng;
use std::ops::Range;

/// A strategy generating `Vec`s whose lengths fall in `len` and whose
/// elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// `vec(strategy, 0..8)` — vectors of 0 to 7 elements.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty vec length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
