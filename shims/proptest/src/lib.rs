//! A self-contained, deterministic subset of the `proptest` API.
//!
//! The real crates-io `proptest` cannot be vendored in this offline
//! build environment, so this shim reimplements exactly the surface
//! the workspace uses:
//!
//! * `proptest! { ... }` blocks (with optional `#![proptest_config]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * string strategies written as regex-like character classes
//!   (`"[a-z0-9]{1,8}"`, including escapes and `&&[^...]` intersection),
//! * integer range strategies (`0usize..8`),
//! * `any::<bool>()`, tuple strategies, `collection::vec`,
//!   and `Strategy::prop_filter`.
//!
//! Generation is deterministic: each test derives its RNG seed from
//! the test's module path and name, so failures reproduce exactly
//! across runs. There is no shrinking — the failing inputs are printed
//! verbatim instead, which is enough for the small value domains used
//! here.

pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! What `use proptest::prelude::*` is expected to provide.
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic 64-bit RNG (splitmix64): tiny, fast, and good enough
/// for test-data generation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds directly.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from a test name so every test gets a distinct, stable
    /// stream.
    pub fn from_name(name: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Rng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for the
        // tiny bounds used in tests.
        (((self.next_u64() >> 11) as u128 * bound as u128) >> 53) as u64
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)` —
/// returns a [`test_runner::TestCaseError`] from the enclosing
/// proptest body instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right[, "fmt", args...])`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The `proptest!` block: expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` that runs the body over `config.cases` generated
/// inputs, reporting the first failing input.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::Rng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let shown = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name), case + 1, cfg.cases, e, shown
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest {} panicked at case {}/{}\ninputs: {}",
                            stringify!($name), case + 1, cfg.cases, shown
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}
