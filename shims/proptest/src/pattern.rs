//! Parser/generator for the regex-like string patterns used as
//! strategies: a single character class with a repetition count,
//! `"[a-z0-9]{1,8}"`.
//!
//! Supported syntax — exactly what the workspace's tests use:
//!
//! * character classes `[...]` with literal characters, ranges
//!   (`a-z`, ` -~`), and backslash escapes (`\[`, `\]`, `\\`, ...);
//! * class intersection `[X&&[^Y]]` (subtracting the inner negated
//!   class, as in `"[ -~&&[^\u{1}]]"`);
//! * repetition `{n}` / `{m,n}` (inclusive), defaulting to one.

use crate::Rng;

/// A compiled pattern: the candidate characters and the length range.
#[derive(Debug, Clone)]
pub struct ClassPattern {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

impl ClassPattern {
    /// Compiles `pattern`, rejecting anything outside the subset.
    pub fn parse(pattern: &str) -> Result<ClassPattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let set = parse_class(&chars, &mut pos)?;
        let (min, max) = parse_quant(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("trailing pattern syntax at {pos}"));
        }
        if set.is_empty() {
            return Err("empty character class".into());
        }
        Ok(ClassPattern {
            chars: set,
            min,
            max,
        })
    }

    /// Draws one string.
    pub fn generate(&self, rng: &mut Rng) -> String {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len)
            .map(|_| self.chars[rng.below(self.chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[...]` starting at `*pos` (which must point at `[`).
fn parse_class(chars: &[char], pos: &mut usize) -> Result<Vec<char>, String> {
    if chars.get(*pos) != Some(&'[') {
        return Err("pattern must start with a character class".into());
    }
    *pos += 1;
    let negated = chars.get(*pos) == Some(&'^');
    if negated {
        *pos += 1;
    }
    let mut set: Vec<char> = Vec::new();
    loop {
        match chars.get(*pos) {
            None => return Err("unterminated character class".into()),
            Some(']') => {
                *pos += 1;
                break;
            }
            Some('&') if chars.get(*pos + 1) == Some(&'&') => {
                // Intersection: `X&&[Y]` (the inner class handles its
                // own `[^...]` negation by complementing).
                *pos += 2;
                let inner = parse_class(chars, pos)?;
                set.retain(|c| inner.contains(c));
                if chars.get(*pos) != Some(&']') {
                    return Err("intersection must end the class".into());
                }
                *pos += 1;
                break;
            }
            Some(_) => {
                let lo = class_char(chars, pos)?;
                // Range `a-z` (a `-` before `]` is a literal dash).
                if chars.get(*pos) == Some(&'-')
                    && chars.get(*pos + 1).is_some_and(|c| *c != ']')
                {
                    *pos += 1;
                    let hi = class_char(chars, pos)?;
                    if hi < lo {
                        return Err(format!("inverted range {lo:?}-{hi:?}"));
                    }
                    set.extend(lo..=hi);
                } else {
                    set.push(lo);
                }
            }
        }
    }
    if negated {
        // Negations only appear on the right side of `&&` in our
        // corpus; complement within the printable-ASCII domain.
        let domain: Vec<char> = (' '..='~').collect();
        set = domain.into_iter().filter(|c| !set.contains(c)).collect();
    }
    set.dedup();
    Ok(set)
}

/// One (possibly escaped) class member character.
fn class_char(chars: &[char], pos: &mut usize) -> Result<char, String> {
    match chars.get(*pos) {
        None => Err("unterminated class".into()),
        Some('\\') => {
            let c = *chars
                .get(*pos + 1)
                .ok_or_else(|| "dangling backslash".to_string())?;
            *pos += 2;
            Ok(match c {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            })
        }
        Some(&c) => {
            *pos += 1;
            Ok(c)
        }
    }
}

/// Parses `{n}` / `{m,n}`; absent means exactly one.
fn parse_quant(chars: &[char], pos: &mut usize) -> Result<(usize, usize), String> {
    if chars.get(*pos) != Some(&'{') {
        return Ok((1, 1));
    }
    *pos += 1;
    let text: String = chars[*pos..]
        .iter()
        .take_while(|c| **c != '}')
        .collect();
    *pos += text.chars().count();
    if chars.get(*pos) != Some(&'}') {
        return Err("unterminated repetition".into());
    }
    *pos += 1;
    let parts: Vec<&str> = text.split(',').collect();
    let parse = |s: &str| {
        s.trim()
            .parse::<usize>()
            .map_err(|_| format!("bad repetition count {s:?}"))
    };
    match parts.as_slice() {
        [n] => {
            let n = parse(n)?;
            Ok((n, n))
        }
        [m, n] => {
            let (m, n) = (parse(m)?, parse(n)?);
            if n < m {
                return Err("inverted repetition range".into());
            }
            Ok((m, n))
        }
        _ => Err("bad repetition".into()),
    }
}
