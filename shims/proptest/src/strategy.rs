//! The [`Strategy`] trait and the built-in strategy implementations.

use crate::pattern::ClassPattern;
use crate::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// A generator of test values. Unlike real proptest there is no
/// shrinking tree: `generate` yields one value per call.
pub trait Strategy {
    /// The type of the generated values.
    type Value: Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Keeps only values satisfying `pred`, retrying generation.
    /// `why` labels the filter in the panic raised if the predicate
    /// essentially never passes.
    fn prop_filter<F>(self, why: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            why,
            pred,
        }
    }
}

/// Regex-like character-class patterns: `"[a-z0-9]{1,8}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        ClassPattern::parse(self)
            .unwrap_or_else(|e| panic!("unsupported proptest pattern {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span) as i64
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut Rng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// The filtering adapter returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    why: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 values in a row", self.why);
    }
}

/// Types with a canonical "any value" strategy (`any::<bool>()`).
pub trait Arbitrary: Sized + Debug {
    /// The strategy `any` returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The full domain of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;

            fn arbitrary() -> AnyInt<$t> {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

/// Full-width integers from the raw RNG stream.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
