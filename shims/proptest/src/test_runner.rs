//! The config and error types the `proptest!` macro expansion uses.

use std::fmt;

/// Per-block configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message (what `prop_assert!` raises).
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
