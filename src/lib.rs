//! Umbrella crate for the es-shell reproduction: re-exports all workspace crates.
pub use es_core as core;
pub use es_gc as gc;
pub use es_match as glob;
pub use es_os as os;
pub use es_regex as regex;
pub use es_syntax as syntax;
