/root/repo/target/debug/deps/e10_fault_overhead-564a286ab6d22289.d: crates/bench/benches/e10_fault_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libe10_fault_overhead-564a286ab6d22289.rmeta: crates/bench/benches/e10_fault_overhead.rs Cargo.toml

crates/bench/benches/e10_fault_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
