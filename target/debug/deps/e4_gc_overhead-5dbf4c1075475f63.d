/root/repo/target/debug/deps/e4_gc_overhead-5dbf4c1075475f63.d: crates/bench/benches/e4_gc_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libe4_gc_overhead-5dbf4c1075475f63.rmeta: crates/bench/benches/e4_gc_overhead.rs Cargo.toml

crates/bench/benches/e4_gc_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
