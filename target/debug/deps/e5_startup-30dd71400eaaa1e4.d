/root/repo/target/debug/deps/e5_startup-30dd71400eaaa1e4.d: crates/bench/benches/e5_startup.rs Cargo.toml

/root/repo/target/debug/deps/libe5_startup-30dd71400eaaa1e4.rmeta: crates/bench/benches/e5_startup.rs Cargo.toml

crates/bench/benches/e5_startup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
