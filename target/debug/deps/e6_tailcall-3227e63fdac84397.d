/root/repo/target/debug/deps/e6_tailcall-3227e63fdac84397.d: crates/bench/benches/e6_tailcall.rs Cargo.toml

/root/repo/target/debug/deps/libe6_tailcall-3227e63fdac84397.rmeta: crates/bench/benches/e6_tailcall.rs Cargo.toml

crates/bench/benches/e6_tailcall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
