/root/repo/target/debug/deps/e7_hook_ablation-08448a5a0056130b.d: crates/bench/benches/e7_hook_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libe7_hook_ablation-08448a5a0056130b.rmeta: crates/bench/benches/e7_hook_ablation.rs Cargo.toml

crates/bench/benches/e7_hook_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
