/root/repo/target/debug/deps/e8_rich_returns-7a56caf909fc7bf6.d: crates/bench/benches/e8_rich_returns.rs Cargo.toml

/root/repo/target/debug/deps/libe8_rich_returns-7a56caf909fc7bf6.rmeta: crates/bench/benches/e8_rich_returns.rs Cargo.toml

crates/bench/benches/e8_rich_returns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
