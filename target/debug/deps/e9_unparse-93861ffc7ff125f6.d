/root/repo/target/debug/deps/e9_unparse-93861ffc7ff125f6.d: crates/bench/benches/e9_unparse.rs Cargo.toml

/root/repo/target/debug/deps/libe9_unparse-93861ffc7ff125f6.rmeta: crates/bench/benches/e9_unparse.rs Cargo.toml

crates/bench/benches/e9_unparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
