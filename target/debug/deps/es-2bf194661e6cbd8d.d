/root/repo/target/debug/deps/es-2bf194661e6cbd8d.d: crates/es-shell/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libes-2bf194661e6cbd8d.rmeta: crates/es-shell/src/main.rs Cargo.toml

crates/es-shell/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
