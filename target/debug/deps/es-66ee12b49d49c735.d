/root/repo/target/debug/deps/es-66ee12b49d49c735.d: crates/es-shell/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libes-66ee12b49d49c735.rmeta: crates/es-shell/src/main.rs Cargo.toml

crates/es-shell/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
