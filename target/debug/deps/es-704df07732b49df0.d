/root/repo/target/debug/deps/es-704df07732b49df0.d: crates/es-shell/src/main.rs

/root/repo/target/debug/deps/es-704df07732b49df0: crates/es-shell/src/main.rs

crates/es-shell/src/main.rs:
