/root/repo/target/debug/deps/es-e7431d49e099e1c2.d: crates/es-shell/src/main.rs

/root/repo/target/debug/deps/es-e7431d49e099e1c2: crates/es-shell/src/main.rs

crates/es-shell/src/main.rs:
