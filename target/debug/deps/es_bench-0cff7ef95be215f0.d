/root/repo/target/debug/deps/es_bench-0cff7ef95be215f0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libes_bench-0cff7ef95be215f0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libes_bench-0cff7ef95be215f0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
