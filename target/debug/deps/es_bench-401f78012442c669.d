/root/repo/target/debug/deps/es_bench-401f78012442c669.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libes_bench-401f78012442c669.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
