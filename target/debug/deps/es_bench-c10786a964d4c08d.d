/root/repo/target/debug/deps/es_bench-c10786a964d4c08d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/es_bench-c10786a964d4c08d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
