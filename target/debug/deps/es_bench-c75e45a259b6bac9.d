/root/repo/target/debug/deps/es_bench-c75e45a259b6bac9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libes_bench-c75e45a259b6bac9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
