/root/repo/target/debug/deps/es_binary-9cea6b201fd362b0.d: tests/es_binary.rs

/root/repo/target/debug/deps/es_binary-9cea6b201fd362b0: tests/es_binary.rs

tests/es_binary.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
# env-dep:CARGO_MANIFEST_DIR=/root/repo
