/root/repo/target/debug/deps/es_binary-ce5244776c403a61.d: tests/es_binary.rs Cargo.toml

/root/repo/target/debug/deps/libes_binary-ce5244776c403a61.rmeta: tests/es_binary.rs Cargo.toml

tests/es_binary.rs:
Cargo.toml:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
