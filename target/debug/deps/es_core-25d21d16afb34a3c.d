/root/repo/target/debug/deps/es_core-25d21d16afb34a3c.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/exception.rs crates/core/src/machine.rs crates/core/src/prims/mod.rs crates/core/src/prims/control.rs crates/core/src/prims/io.rs crates/core/src/prims/misc.rs crates/core/src/value.rs crates/core/src/initial.es Cargo.toml

/root/repo/target/debug/deps/libes_core-25d21d16afb34a3c.rmeta: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/exception.rs crates/core/src/machine.rs crates/core/src/prims/mod.rs crates/core/src/prims/control.rs crates/core/src/prims/io.rs crates/core/src/prims/misc.rs crates/core/src/value.rs crates/core/src/initial.es Cargo.toml

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/eval.rs:
crates/core/src/exception.rs:
crates/core/src/machine.rs:
crates/core/src/prims/mod.rs:
crates/core/src/prims/control.rs:
crates/core/src/prims/io.rs:
crates/core/src/prims/misc.rs:
crates/core/src/value.rs:
crates/core/src/initial.es:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
