/root/repo/target/debug/deps/es_core-59d238fd0bd2cafb.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/exception.rs crates/core/src/machine.rs crates/core/src/prims/mod.rs crates/core/src/prims/control.rs crates/core/src/prims/io.rs crates/core/src/prims/misc.rs crates/core/src/value.rs crates/core/src/tests.rs crates/core/src/tests_prop.rs crates/core/src/initial.es

/root/repo/target/debug/deps/es_core-59d238fd0bd2cafb: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/exception.rs crates/core/src/machine.rs crates/core/src/prims/mod.rs crates/core/src/prims/control.rs crates/core/src/prims/io.rs crates/core/src/prims/misc.rs crates/core/src/value.rs crates/core/src/tests.rs crates/core/src/tests_prop.rs crates/core/src/initial.es

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/eval.rs:
crates/core/src/exception.rs:
crates/core/src/machine.rs:
crates/core/src/prims/mod.rs:
crates/core/src/prims/control.rs:
crates/core/src/prims/io.rs:
crates/core/src/prims/misc.rs:
crates/core/src/value.rs:
crates/core/src/tests.rs:
crates/core/src/tests_prop.rs:
crates/core/src/initial.es:
