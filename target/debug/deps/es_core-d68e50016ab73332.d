/root/repo/target/debug/deps/es_core-d68e50016ab73332.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/exception.rs crates/core/src/machine.rs crates/core/src/prims/mod.rs crates/core/src/prims/control.rs crates/core/src/prims/io.rs crates/core/src/prims/misc.rs crates/core/src/value.rs crates/core/src/tests.rs crates/core/src/tests_prop.rs crates/core/src/initial.es Cargo.toml

/root/repo/target/debug/deps/libes_core-d68e50016ab73332.rmeta: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/exception.rs crates/core/src/machine.rs crates/core/src/prims/mod.rs crates/core/src/prims/control.rs crates/core/src/prims/io.rs crates/core/src/prims/misc.rs crates/core/src/value.rs crates/core/src/tests.rs crates/core/src/tests_prop.rs crates/core/src/initial.es Cargo.toml

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/eval.rs:
crates/core/src/exception.rs:
crates/core/src/machine.rs:
crates/core/src/prims/mod.rs:
crates/core/src/prims/control.rs:
crates/core/src/prims/io.rs:
crates/core/src/prims/misc.rs:
crates/core/src/value.rs:
crates/core/src/tests.rs:
crates/core/src/tests_prop.rs:
crates/core/src/initial.es:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
