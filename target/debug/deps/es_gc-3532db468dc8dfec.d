/root/repo/target/debug/deps/es_gc-3532db468dc8dfec.d: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libes_gc-3532db468dc8dfec.rmeta: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs Cargo.toml

crates/es-gc/src/lib.rs:
crates/es-gc/src/heap.rs:
crates/es-gc/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
