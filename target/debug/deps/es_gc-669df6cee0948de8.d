/root/repo/target/debug/deps/es_gc-669df6cee0948de8.d: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs crates/es-gc/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libes_gc-669df6cee0948de8.rmeta: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs crates/es-gc/src/tests.rs Cargo.toml

crates/es-gc/src/lib.rs:
crates/es-gc/src/heap.rs:
crates/es-gc/src/stats.rs:
crates/es-gc/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
