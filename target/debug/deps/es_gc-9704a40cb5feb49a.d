/root/repo/target/debug/deps/es_gc-9704a40cb5feb49a.d: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs

/root/repo/target/debug/deps/libes_gc-9704a40cb5feb49a.rlib: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs

/root/repo/target/debug/deps/libes_gc-9704a40cb5feb49a.rmeta: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs

crates/es-gc/src/lib.rs:
crates/es-gc/src/heap.rs:
crates/es-gc/src/stats.rs:
