/root/repo/target/debug/deps/es_gc-b6fda128c26d8bee.d: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs crates/es-gc/src/tests.rs

/root/repo/target/debug/deps/es_gc-b6fda128c26d8bee: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs crates/es-gc/src/tests.rs

crates/es-gc/src/lib.rs:
crates/es-gc/src/heap.rs:
crates/es-gc/src/stats.rs:
crates/es-gc/src/tests.rs:
