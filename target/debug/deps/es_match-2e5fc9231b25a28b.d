/root/repo/target/debug/deps/es_match-2e5fc9231b25a28b.d: crates/es-match/src/lib.rs crates/es-match/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libes_match-2e5fc9231b25a28b.rmeta: crates/es-match/src/lib.rs crates/es-match/src/tests.rs Cargo.toml

crates/es-match/src/lib.rs:
crates/es-match/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
