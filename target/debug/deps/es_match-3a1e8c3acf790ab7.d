/root/repo/target/debug/deps/es_match-3a1e8c3acf790ab7.d: crates/es-match/src/lib.rs

/root/repo/target/debug/deps/libes_match-3a1e8c3acf790ab7.rlib: crates/es-match/src/lib.rs

/root/repo/target/debug/deps/libes_match-3a1e8c3acf790ab7.rmeta: crates/es-match/src/lib.rs

crates/es-match/src/lib.rs:
