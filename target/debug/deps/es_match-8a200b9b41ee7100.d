/root/repo/target/debug/deps/es_match-8a200b9b41ee7100.d: crates/es-match/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libes_match-8a200b9b41ee7100.rmeta: crates/es-match/src/lib.rs Cargo.toml

crates/es-match/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
