/root/repo/target/debug/deps/es_match-cd6ef3c73a2c85e9.d: crates/es-match/src/lib.rs crates/es-match/src/tests.rs

/root/repo/target/debug/deps/es_match-cd6ef3c73a2c85e9: crates/es-match/src/lib.rs crates/es-match/src/tests.rs

crates/es-match/src/lib.rs:
crates/es-match/src/tests.rs:
