/root/repo/target/debug/deps/es_os-6b6eaa9aa330152b.d: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs crates/es-os/src/real_tests.rs crates/es-os/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libes_os-6b6eaa9aa330152b.rmeta: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs crates/es-os/src/real_tests.rs crates/es-os/src/tests.rs Cargo.toml

crates/es-os/src/lib.rs:
crates/es-os/src/clock.rs:
crates/es-os/src/error.rs:
crates/es-os/src/fault.rs:
crates/es-os/src/programs/mod.rs:
crates/es-os/src/programs/extra.rs:
crates/es-os/src/programs/files.rs:
crates/es-os/src/programs/grep.rs:
crates/es-os/src/programs/misc.rs:
crates/es-os/src/programs/sed.rs:
crates/es-os/src/programs/text.rs:
crates/es-os/src/real.rs:
crates/es-os/src/sim.rs:
crates/es-os/src/vfs.rs:
crates/es-os/src/real_tests.rs:
crates/es-os/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
