/root/repo/target/debug/deps/es_os-722a96f23e1e7c2e.d: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs crates/es-os/src/real_tests.rs crates/es-os/src/tests.rs

/root/repo/target/debug/deps/es_os-722a96f23e1e7c2e: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs crates/es-os/src/real_tests.rs crates/es-os/src/tests.rs

crates/es-os/src/lib.rs:
crates/es-os/src/clock.rs:
crates/es-os/src/error.rs:
crates/es-os/src/fault.rs:
crates/es-os/src/programs/mod.rs:
crates/es-os/src/programs/extra.rs:
crates/es-os/src/programs/files.rs:
crates/es-os/src/programs/grep.rs:
crates/es-os/src/programs/misc.rs:
crates/es-os/src/programs/sed.rs:
crates/es-os/src/programs/text.rs:
crates/es-os/src/real.rs:
crates/es-os/src/sim.rs:
crates/es-os/src/vfs.rs:
crates/es-os/src/real_tests.rs:
crates/es-os/src/tests.rs:
