/root/repo/target/debug/deps/es_os-d5355827d32e9778.d: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs

/root/repo/target/debug/deps/libes_os-d5355827d32e9778.rlib: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs

/root/repo/target/debug/deps/libes_os-d5355827d32e9778.rmeta: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs

crates/es-os/src/lib.rs:
crates/es-os/src/clock.rs:
crates/es-os/src/error.rs:
crates/es-os/src/fault.rs:
crates/es-os/src/programs/mod.rs:
crates/es-os/src/programs/extra.rs:
crates/es-os/src/programs/files.rs:
crates/es-os/src/programs/grep.rs:
crates/es-os/src/programs/misc.rs:
crates/es-os/src/programs/sed.rs:
crates/es-os/src/programs/text.rs:
crates/es-os/src/real.rs:
crates/es-os/src/sim.rs:
crates/es-os/src/vfs.rs:
