/root/repo/target/debug/deps/es_regex-26db0a626bf61abf.d: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs crates/es-regex/src/tests.rs

/root/repo/target/debug/deps/es_regex-26db0a626bf61abf: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs crates/es-regex/src/tests.rs

crates/es-regex/src/lib.rs:
crates/es-regex/src/compile.rs:
crates/es-regex/src/parse.rs:
crates/es-regex/src/vm.rs:
crates/es-regex/src/tests.rs:
