/root/repo/target/debug/deps/es_regex-9a10688e01e7f334.d: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs crates/es-regex/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libes_regex-9a10688e01e7f334.rmeta: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs crates/es-regex/src/tests.rs Cargo.toml

crates/es-regex/src/lib.rs:
crates/es-regex/src/compile.rs:
crates/es-regex/src/parse.rs:
crates/es-regex/src/vm.rs:
crates/es-regex/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
