/root/repo/target/debug/deps/es_regex-c92dacb1a1b1f136.d: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs

/root/repo/target/debug/deps/libes_regex-c92dacb1a1b1f136.rlib: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs

/root/repo/target/debug/deps/libes_regex-c92dacb1a1b1f136.rmeta: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs

crates/es-regex/src/lib.rs:
crates/es-regex/src/compile.rs:
crates/es-regex/src/parse.rs:
crates/es-regex/src/vm.rs:
