/root/repo/target/debug/deps/es_repro-636bffe842c20628.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libes_repro-636bffe842c20628.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
