/root/repo/target/debug/deps/es_repro-6b8728ab334efe07.d: src/lib.rs

/root/repo/target/debug/deps/libes_repro-6b8728ab334efe07.rlib: src/lib.rs

/root/repo/target/debug/deps/libes_repro-6b8728ab334efe07.rmeta: src/lib.rs

src/lib.rs:
