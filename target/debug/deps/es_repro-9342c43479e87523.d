/root/repo/target/debug/deps/es_repro-9342c43479e87523.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libes_repro-9342c43479e87523.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
