/root/repo/target/debug/deps/es_repro-bbe398e8efbde23f.d: src/lib.rs

/root/repo/target/debug/deps/es_repro-bbe398e8efbde23f: src/lib.rs

src/lib.rs:
