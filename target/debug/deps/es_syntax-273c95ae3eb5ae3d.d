/root/repo/target/debug/deps/es_syntax-273c95ae3eb5ae3d.d: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs crates/es-syntax/src/tests.rs

/root/repo/target/debug/deps/es_syntax-273c95ae3eb5ae3d: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs crates/es-syntax/src/tests.rs

crates/es-syntax/src/lib.rs:
crates/es-syntax/src/ast.rs:
crates/es-syntax/src/lex.rs:
crates/es-syntax/src/lower.rs:
crates/es-syntax/src/parse.rs:
crates/es-syntax/src/print.rs:
crates/es-syntax/src/tests.rs:
