/root/repo/target/debug/deps/es_syntax-a3bdf5fc13337570.d: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs

/root/repo/target/debug/deps/libes_syntax-a3bdf5fc13337570.rlib: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs

/root/repo/target/debug/deps/libes_syntax-a3bdf5fc13337570.rmeta: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs

crates/es-syntax/src/lib.rs:
crates/es-syntax/src/ast.rs:
crates/es-syntax/src/lex.rs:
crates/es-syntax/src/lower.rs:
crates/es-syntax/src/parse.rs:
crates/es-syntax/src/print.rs:
