/root/repo/target/debug/deps/es_syntax-aadffb4bb27e3501.d: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs crates/es-syntax/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libes_syntax-aadffb4bb27e3501.rmeta: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs crates/es-syntax/src/tests.rs Cargo.toml

crates/es-syntax/src/lib.rs:
crates/es-syntax/src/ast.rs:
crates/es-syntax/src/lex.rs:
crates/es-syntax/src/lower.rs:
crates/es-syntax/src/parse.rs:
crates/es-syntax/src/print.rs:
crates/es-syntax/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
