/root/repo/target/debug/deps/es_syntax-b4405e0223192a4f.d: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs Cargo.toml

/root/repo/target/debug/deps/libes_syntax-b4405e0223192a4f.rmeta: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs Cargo.toml

crates/es-syntax/src/lib.rs:
crates/es-syntax/src/ast.rs:
crates/es-syntax/src/lex.rs:
crates/es-syntax/src/lower.rs:
crates/es-syntax/src/parse.rs:
crates/es-syntax/src/print.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
