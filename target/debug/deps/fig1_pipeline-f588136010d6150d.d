/root/repo/target/debug/deps/fig1_pipeline-f588136010d6150d.d: crates/bench/benches/fig1_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_pipeline-f588136010d6150d.rmeta: crates/bench/benches/fig1_pipeline.rs Cargo.toml

crates/bench/benches/fig1_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
