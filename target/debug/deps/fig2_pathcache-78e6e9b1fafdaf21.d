/root/repo/target/debug/deps/fig2_pathcache-78e6e9b1fafdaf21.d: crates/bench/benches/fig2_pathcache.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_pathcache-78e6e9b1fafdaf21.rmeta: crates/bench/benches/fig2_pathcache.rs Cargo.toml

crates/bench/benches/fig2_pathcache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
