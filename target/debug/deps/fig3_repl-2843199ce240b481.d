/root/repo/target/debug/deps/fig3_repl-2843199ce240b481.d: crates/bench/benches/fig3_repl.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_repl-2843199ce240b481.rmeta: crates/bench/benches/fig3_repl.rs Cargo.toml

crates/bench/benches/fig3_repl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
