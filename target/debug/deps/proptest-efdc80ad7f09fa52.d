/root/repo/target/debug/deps/proptest-efdc80ad7f09fa52.d: shims/proptest/src/lib.rs shims/proptest/src/collection.rs shims/proptest/src/pattern.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-efdc80ad7f09fa52: shims/proptest/src/lib.rs shims/proptest/src/collection.rs shims/proptest/src/pattern.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/pattern.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
