/root/repo/target/debug/deps/shell_sessions-54b355b0fcb58256.d: tests/shell_sessions.rs Cargo.toml

/root/repo/target/debug/deps/libshell_sessions-54b355b0fcb58256.rmeta: tests/shell_sessions.rs Cargo.toml

tests/shell_sessions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
