/root/repo/target/debug/deps/shell_sessions-95d7657072496838.d: tests/shell_sessions.rs

/root/repo/target/debug/deps/shell_sessions-95d7657072496838: tests/shell_sessions.rs

tests/shell_sessions.rs:
