/root/repo/target/debug/examples/church_lists-dd6025fce594d252.d: examples/church_lists.rs

/root/repo/target/debug/examples/church_lists-dd6025fce594d252: examples/church_lists.rs

examples/church_lists.rs:
