/root/repo/target/debug/examples/church_lists-f5c277aec550bd89.d: examples/church_lists.rs Cargo.toml

/root/repo/target/debug/examples/libchurch_lists-f5c277aec550bd89.rmeta: examples/church_lists.rs Cargo.toml

examples/church_lists.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
