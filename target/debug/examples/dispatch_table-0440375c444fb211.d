/root/repo/target/debug/examples/dispatch_table-0440375c444fb211.d: examples/dispatch_table.rs Cargo.toml

/root/repo/target/debug/examples/libdispatch_table-0440375c444fb211.rmeta: examples/dispatch_table.rs Cargo.toml

examples/dispatch_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
