/root/repo/target/debug/examples/dispatch_table-75f9aadc13312fd9.d: examples/dispatch_table.rs

/root/repo/target/debug/examples/dispatch_table-75f9aadc13312fd9: examples/dispatch_table.rs

examples/dispatch_table.rs:
