/root/repo/target/debug/examples/gc_stats-72aa288abc5b5ecc.d: examples/gc_stats.rs

/root/repo/target/debug/examples/gc_stats-72aa288abc5b5ecc: examples/gc_stats.rs

examples/gc_stats.rs:
