/root/repo/target/debug/examples/gc_stats-db592d22d8b88d6f.d: examples/gc_stats.rs Cargo.toml

/root/repo/target/debug/examples/libgc_stats-db592d22d8b88d6f.rmeta: examples/gc_stats.rs Cargo.toml

examples/gc_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
