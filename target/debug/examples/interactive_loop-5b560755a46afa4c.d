/root/repo/target/debug/examples/interactive_loop-5b560755a46afa4c.d: examples/interactive_loop.rs Cargo.toml

/root/repo/target/debug/examples/libinteractive_loop-5b560755a46afa4c.rmeta: examples/interactive_loop.rs Cargo.toml

examples/interactive_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
