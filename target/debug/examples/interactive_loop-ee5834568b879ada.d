/root/repo/target/debug/examples/interactive_loop-ee5834568b879ada.d: examples/interactive_loop.rs

/root/repo/target/debug/examples/interactive_loop-ee5834568b879ada: examples/interactive_loop.rs

examples/interactive_loop.rs:
