/root/repo/target/debug/examples/path_cache-7ad87f4d0508e94f.d: examples/path_cache.rs Cargo.toml

/root/repo/target/debug/examples/libpath_cache-7ad87f4d0508e94f.rmeta: examples/path_cache.rs Cargo.toml

examples/path_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
