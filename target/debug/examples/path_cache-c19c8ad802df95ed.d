/root/repo/target/debug/examples/path_cache-c19c8ad802df95ed.d: examples/path_cache.rs

/root/repo/target/debug/examples/path_cache-c19c8ad802df95ed: examples/path_cache.rs

examples/path_cache.rs:
