/root/repo/target/debug/examples/pipeline_profiler-07ccf4764b39b4d7.d: examples/pipeline_profiler.rs

/root/repo/target/debug/examples/pipeline_profiler-07ccf4764b39b4d7: examples/pipeline_profiler.rs

examples/pipeline_profiler.rs:
