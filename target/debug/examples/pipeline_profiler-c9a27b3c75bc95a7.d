/root/repo/target/debug/examples/pipeline_profiler-c9a27b3c75bc95a7.d: examples/pipeline_profiler.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_profiler-c9a27b3c75bc95a7.rmeta: examples/pipeline_profiler.rs Cargo.toml

examples/pipeline_profiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
