/root/repo/target/debug/examples/quickstart-10e1f7e972f845cb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-10e1f7e972f845cb: examples/quickstart.rs

examples/quickstart.rs:
