/root/repo/target/debug/libes_gc.rlib: /root/repo/crates/es-gc/src/heap.rs /root/repo/crates/es-gc/src/lib.rs /root/repo/crates/es-gc/src/stats.rs
