/root/repo/target/debug/libes_match.rlib: /root/repo/crates/es-match/src/lib.rs
