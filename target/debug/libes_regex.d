/root/repo/target/debug/libes_regex.rlib: /root/repo/crates/es-regex/src/compile.rs /root/repo/crates/es-regex/src/lib.rs /root/repo/crates/es-regex/src/parse.rs /root/repo/crates/es-regex/src/vm.rs
