/root/repo/target/release/deps/e10_fault_overhead-07fad897c494f284.d: crates/bench/benches/e10_fault_overhead.rs

/root/repo/target/release/deps/e10_fault_overhead-07fad897c494f284: crates/bench/benches/e10_fault_overhead.rs

crates/bench/benches/e10_fault_overhead.rs:
