/root/repo/target/release/deps/es-3daecabb957ce7fd.d: crates/es-shell/src/main.rs

/root/repo/target/release/deps/es-3daecabb957ce7fd: crates/es-shell/src/main.rs

crates/es-shell/src/main.rs:
