/root/repo/target/release/deps/es_bench-fc0625389bbd6fa2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libes_bench-fc0625389bbd6fa2.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libes_bench-fc0625389bbd6fa2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
