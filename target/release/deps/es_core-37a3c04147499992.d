/root/repo/target/release/deps/es_core-37a3c04147499992.d: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/exception.rs crates/core/src/machine.rs crates/core/src/prims/mod.rs crates/core/src/prims/control.rs crates/core/src/prims/io.rs crates/core/src/prims/misc.rs crates/core/src/value.rs crates/core/src/initial.es

/root/repo/target/release/deps/libes_core-37a3c04147499992.rlib: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/exception.rs crates/core/src/machine.rs crates/core/src/prims/mod.rs crates/core/src/prims/control.rs crates/core/src/prims/io.rs crates/core/src/prims/misc.rs crates/core/src/value.rs crates/core/src/initial.es

/root/repo/target/release/deps/libes_core-37a3c04147499992.rmeta: crates/core/src/lib.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/exception.rs crates/core/src/machine.rs crates/core/src/prims/mod.rs crates/core/src/prims/control.rs crates/core/src/prims/io.rs crates/core/src/prims/misc.rs crates/core/src/value.rs crates/core/src/initial.es

crates/core/src/lib.rs:
crates/core/src/env.rs:
crates/core/src/eval.rs:
crates/core/src/exception.rs:
crates/core/src/machine.rs:
crates/core/src/prims/mod.rs:
crates/core/src/prims/control.rs:
crates/core/src/prims/io.rs:
crates/core/src/prims/misc.rs:
crates/core/src/value.rs:
crates/core/src/initial.es:
