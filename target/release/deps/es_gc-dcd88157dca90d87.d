/root/repo/target/release/deps/es_gc-dcd88157dca90d87.d: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs

/root/repo/target/release/deps/libes_gc-dcd88157dca90d87.rlib: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs

/root/repo/target/release/deps/libes_gc-dcd88157dca90d87.rmeta: crates/es-gc/src/lib.rs crates/es-gc/src/heap.rs crates/es-gc/src/stats.rs

crates/es-gc/src/lib.rs:
crates/es-gc/src/heap.rs:
crates/es-gc/src/stats.rs:
