/root/repo/target/release/deps/es_match-c9d21893f37962f0.d: crates/es-match/src/lib.rs

/root/repo/target/release/deps/libes_match-c9d21893f37962f0.rlib: crates/es-match/src/lib.rs

/root/repo/target/release/deps/libes_match-c9d21893f37962f0.rmeta: crates/es-match/src/lib.rs

crates/es-match/src/lib.rs:
