/root/repo/target/release/deps/es_os-8e3d33ce1796eb48.d: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs

/root/repo/target/release/deps/libes_os-8e3d33ce1796eb48.rlib: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs

/root/repo/target/release/deps/libes_os-8e3d33ce1796eb48.rmeta: crates/es-os/src/lib.rs crates/es-os/src/clock.rs crates/es-os/src/error.rs crates/es-os/src/fault.rs crates/es-os/src/programs/mod.rs crates/es-os/src/programs/extra.rs crates/es-os/src/programs/files.rs crates/es-os/src/programs/grep.rs crates/es-os/src/programs/misc.rs crates/es-os/src/programs/sed.rs crates/es-os/src/programs/text.rs crates/es-os/src/real.rs crates/es-os/src/sim.rs crates/es-os/src/vfs.rs

crates/es-os/src/lib.rs:
crates/es-os/src/clock.rs:
crates/es-os/src/error.rs:
crates/es-os/src/fault.rs:
crates/es-os/src/programs/mod.rs:
crates/es-os/src/programs/extra.rs:
crates/es-os/src/programs/files.rs:
crates/es-os/src/programs/grep.rs:
crates/es-os/src/programs/misc.rs:
crates/es-os/src/programs/sed.rs:
crates/es-os/src/programs/text.rs:
crates/es-os/src/real.rs:
crates/es-os/src/sim.rs:
crates/es-os/src/vfs.rs:
