/root/repo/target/release/deps/es_regex-e8cf9be29ca277f4.d: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs

/root/repo/target/release/deps/libes_regex-e8cf9be29ca277f4.rlib: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs

/root/repo/target/release/deps/libes_regex-e8cf9be29ca277f4.rmeta: crates/es-regex/src/lib.rs crates/es-regex/src/compile.rs crates/es-regex/src/parse.rs crates/es-regex/src/vm.rs

crates/es-regex/src/lib.rs:
crates/es-regex/src/compile.rs:
crates/es-regex/src/parse.rs:
crates/es-regex/src/vm.rs:
