/root/repo/target/release/deps/es_repro-0d7ee64dea0bb970.d: src/lib.rs

/root/repo/target/release/deps/libes_repro-0d7ee64dea0bb970.rlib: src/lib.rs

/root/repo/target/release/deps/libes_repro-0d7ee64dea0bb970.rmeta: src/lib.rs

src/lib.rs:
