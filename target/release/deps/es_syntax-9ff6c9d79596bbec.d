/root/repo/target/release/deps/es_syntax-9ff6c9d79596bbec.d: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs

/root/repo/target/release/deps/libes_syntax-9ff6c9d79596bbec.rlib: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs

/root/repo/target/release/deps/libes_syntax-9ff6c9d79596bbec.rmeta: crates/es-syntax/src/lib.rs crates/es-syntax/src/ast.rs crates/es-syntax/src/lex.rs crates/es-syntax/src/lower.rs crates/es-syntax/src/parse.rs crates/es-syntax/src/print.rs

crates/es-syntax/src/lib.rs:
crates/es-syntax/src/ast.rs:
crates/es-syntax/src/lex.rs:
crates/es-syntax/src/lower.rs:
crates/es-syntax/src/parse.rs:
crates/es-syntax/src/print.rs:
