//! Black-box tests of the `es` binary itself (simulated kernel mode):
//! the REPL over a pty-less stdin, `-c`, script files, and flags.

use std::io::Write;
use std::process::{Command, Stdio};

/// Path of the compiled `es` binary (cargo builds bin deps for
/// integration tests of the same workspace... it does not, so build it
/// on demand the first time).
fn es_binary() -> &'static str {
    use std::sync::Once;
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "es-shell"])
            .status()
            .expect("cargo runs");
        assert!(status.success(), "es-shell builds");
    });
    concat!(env!("CARGO_MANIFEST_DIR"), "/target/debug/es")
}

fn run_es(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(es_binary())
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("es starts");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin written");
    let out = child.wait_with_output().expect("es exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn repl_echo_session() {
    let (out, err, status) = run_es(&[], "echo hello, world\nexit 0\n");
    assert!(out.contains("hello, world"), "stdout: {out} stderr: {err}");
    assert_eq!(status, 0);
}

#[test]
fn dash_c_runs_one_command() {
    let (out, _, status) = run_es(&["-c", "echo from dash c"], "");
    assert_eq!(out, "from dash c\n");
    assert_eq!(status, 0);
}

#[test]
fn dash_c_reports_errors() {
    let (_, err, status) = run_es(&["-c", "no-such-program"], "");
    assert!(err.contains("command not found"), "{err}");
    assert_eq!(status, 1);
}

#[test]
fn exit_status_propagates() {
    let (_, _, status) = run_es(&[], "exit 42\n");
    assert_eq!(status, 42);
}

#[test]
fn pipeline_and_spoof_through_binary() {
    let session = "let (create = $fn-%create) fn %create fd file cmd { throw error writes disabled }\n\
                   echo try > /tmp/blocked\n\
                   echo one two three | wc -w\n\
                   exit 0\n";
    let (out, err, status) = run_es(&[], session);
    assert!(err.contains("writes disabled"), "spoof fired: {err}");
    assert!(out.contains('3'), "pipeline ran: {out}");
    assert_eq!(status, 0);
}

#[test]
fn naive_calls_flag_limits_recursion() {
    let (_, err, _) = run_es(
        &["--naive-calls", "-c", "fn loop n { loop $n }; loop x"],
        "",
    );
    assert!(
        err.contains("limit depth"),
        "depth guard fires in naive mode: {err}"
    );
}

#[test]
fn limit_flag_arms_budget_and_breach_is_reported() {
    let (_, err, status) = run_es(&["--limit", "steps=1000", "-c", "forever {true}"], "");
    assert!(err.contains("limit steps"), "step budget fired: {err}");
    assert_eq!(status, 1);
    // Bad specs are rejected up front with a usage-style error.
    let (_, err, status) = run_es(&["--limit", "bogus=1", "-c", "true"], "");
    assert!(err.contains("unknown limit kind"), "{err}");
    assert_eq!(status, 2);
    let (_, err, status) = run_es(&["--limit", "steps", "-c", "true"], "");
    assert!(err.contains("KIND=N"), "{err}");
    assert_eq!(status, 2);
}

#[test]
fn dump_env_lists_functions() {
    let (out, _, status) = run_es(&["--dump-env"], "");
    assert_eq!(status, 0);
    assert!(out.contains("fn-%pipe=$&pipe"), "{out}");
    assert!(out.contains("fn-%interactive-loop="), "{out}");
}

#[test]
fn repl_survives_errors_and_keeps_going() {
    let (out, err, status) = run_es(&[], "bogus\necho survived\nexit 0\n");
    assert!(err.contains("command not found"), "{err}");
    assert!(out.contains("survived"), "{out}");
    assert_eq!(status, 0);
}

#[test]
fn stress_gc_mode_runs_clean() {
    let (out, _, status) = run_es(
        &["--stress-gc", "-c", "for (i = 1 2 3) { x = $x <>{result $i} }; echo $x"],
        "",
    );
    assert_eq!(out, "1 2 3\n");
    assert_eq!(status, 0);
}
