//! End-to-end shell sessions spanning every crate: syntax → core →
//! simulated kernel, driven through the public API exactly as a user
//! embedding es would.

use es_core::Machine;
use es_os::{Os, SimOs};

fn machine() -> Machine<SimOs> {
    Machine::new(SimOs::new()).expect("machine boots")
}

fn session(cmds: &[&str]) -> (String, String) {
    let mut m = machine();
    for c in cmds {
        if let Err(e) = m.run(c) {
            let out = m.os_mut().take_output();
            let err = m.os_mut().take_error();
            panic!("`{c}` failed: {e}\nstdout so far: {out}\nstderr: {err}");
        }
    }
    (m.os_mut().take_output(), m.os_mut().take_error())
}

#[test]
fn a_working_day_in_es() {
    // A realistic mixed session: files, pipes, functions, globs.
    let (out, err) = session(&[
        "cd /tmp",
        "echo alpha > a.txt",
        "echo beta > b.txt",
        "echo gamma >> a.txt",
        "cat a.txt b.txt | sort",
        "fn count-files { ls | wc -l }",
        "count-files",
        "rm *.txt",
        "count-files",
    ]);
    // `wc -l` on stdin prints the bare count, as GNU wc does.
    assert_eq!(out, "alpha\nbeta\ngamma\n2\n0\n", "stderr: {err}");
}

#[test]
fn word_frequency_figure_1_end_to_end() {
    let mut m = machine();
    let text = "to be or not to be that is the question\n".repeat(30);
    m.os_mut().vfs_mut().put_file("/tmp/hamlet", text.as_bytes()).unwrap();
    m.run("cat /tmp/hamlet | tr -cs a-zA-Z0-9 '\\012' | sort | uniq -c | sort -nr | sed 3q")
        .unwrap();
    let out = m.os_mut().take_output();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3);
    // "to" and "be" both appear 60 times; ties sort by count desc.
    assert!(lines[0].trim().starts_with("60"), "{out}");
    assert!(lines[1].trim().starts_with("60"), "{out}");
    assert!(lines[2].trim().starts_with("30"), "{out}");
}

#[test]
fn remote_pipe_spoof_concept() {
    // The paper suggests "a %pipe to run pipeline elements on
    // (different) remote machines". Simulate the concept: a spoof
    // that logs where each stage "runs" while delegating locally.
    let (out, err) = session(&[
        "hosts = alpha beta gamma",
        "let (pipe = $fn-%pipe) {
            fn %pipe first out in rest {
                echo >[1=2] dispatching stage to $hosts(1)
                hosts = $hosts(2 3) $hosts(1)
                if {~ $#out 0} {
                    $first
                } {
                    $pipe $first $out $in {%pipe $rest}
                }
            }
        }",
        "echo data | cat | wc -l",
    ]);
    assert_eq!(out, "1\n");
    assert!(err.contains("dispatching stage to alpha"), "{err}");
    assert!(err.contains("dispatching stage to beta"), "{err}");
    assert!(err.contains("dispatching stage to gamma"), "{err}");
}

#[test]
fn spelling_correction_pathsearch_spoof() {
    // Another suggested spoof: "program execution which tries spelling
    // correction if files are not found".
    let (out, err) = session(&[
        "let (search = $fn-%pathsearch) {
            fn %pathsearch prog {
                catch @ e msg {
                    if {~ $e error && ~ $prog sl} {
                        echo >[1=2] 'did you mean ls?'
                        $search ls
                    } {
                        throw $e $msg
                    }
                } {
                    $search $prog
                }
            }
        }",
        "sl /bin",
    ]);
    assert!(err.contains("did you mean ls?"), "{err}");
    assert!(out.contains("cat"), "corrected to ls, listing /bin: {out}");
}

#[test]
fn autoload_functions_spoof() {
    // "automatic loading of shell functions" via %pathsearch: if a
    // file /lib/fn-NAME exists, source it and use the definition.
    let mut m = machine();
    m.os_mut()
        .vfs_mut()
        .put_file("/lib/fn-greet", b"fn greet { echo hello from autoload }\n")
        .unwrap();
    // NB: the spoof must not run external commands (like `test`)
    // itself — those would resolve through %pathsearch and recurse
    // forever. Try to source the autoload file; fall back on error.
    m.run(
        "let (search = $fn-%pathsearch) {
            fn %pathsearch prog {
                catch @ e msg {
                    $search $prog
                } {
                    . /lib/fn-$prog
                    result $(fn-$prog)
                }
            }
        }",
    )
    .unwrap();
    m.run("greet").unwrap();
    assert_eq!(m.os_mut().take_output(), "hello from autoload\n");
    // Second call goes straight through fn-greet, no re-sourcing.
    assert_eq!(m.get_var("fn-greet").len(), 1);
}

#[test]
fn environment_round_trip_preserves_everything() {
    let mut parent = machine();
    parent.run("fn triple x { result $x^$x^$x }").unwrap();
    parent.run("greeting = 'hello from parent'").unwrap();
    parent.run("let (sep = ::) fn joined { echo $sep^$* }").unwrap();
    let env = parent.export_environment();

    let mut os = SimOs::new();
    os.set_initial_env(env);
    let mut child = Machine::new(os).expect("child boots");
    assert_eq!(child.get_var("greeting"), vec!["hello from parent"]);
    child.run("echo <>{triple i}").unwrap();
    child.run("joined x").unwrap();
    assert_eq!(child.os_mut().take_output(), "iii\n::x\n");
}

#[test]
fn deep_env_nesting_three_generations() {
    let mut g1 = machine();
    g1.run("fn lineage { echo generation $* }").unwrap();
    g1.run("depth = one").unwrap();
    let env1 = g1.export_environment();

    let mut os2 = SimOs::new();
    os2.set_initial_env(env1);
    let mut g2 = Machine::new(os2).expect("g2 boots");
    g2.run("depth = $depth two").unwrap();
    let env2 = g2.export_environment();

    let mut os3 = SimOs::new();
    os3.set_initial_env(env2);
    let mut g3 = Machine::new(os3).expect("g3 boots");
    assert_eq!(g3.get_var("depth"), vec!["one", "two"]);
    g3.run("lineage $depth").unwrap();
    assert_eq!(g3.os_mut().take_output(), "generation one two\n");
}

#[test]
fn repl_session_with_figure_2_cache_installed_interactively() {
    let mut m = machine();
    m.os_mut().push_input(
        "let (search = $fn-%pathsearch) fn %pathsearch prog { let (file = <>{$search $prog}) { path-cache = $path-cache $prog; fn-$prog = $file; return $file } }\n\
         ls /etc\n\
         echo cache: $path-cache\n",
    );
    let status = m.repl();
    assert_eq!(status, 0);
    let out = m.os_mut().take_output();
    assert!(out.contains("motd"), "{out}");
    assert!(out.contains("cache: ls"), "{out}");
}

#[test]
fn signals_interrupt_loops_interactively() {
    let mut m = machine();
    // kill -2 targets the shell's own pid from inside a loop body.
    m.run("n =").unwrap();
    let err = m
        .run("while {true} { n = $n x; if {~ $#n 3} {kill -2 5000}; true }")
        .unwrap_err();
    assert_eq!(err, "signal sigint");
    assert_eq!(m.get_var("n").len(), 3, "loop ran until the signal");
}

#[test]
fn nested_redirections_and_dup() {
    let (out, err) = session(&[
        "fn complain { echo problem >[1=2] }",
        "complain",
        "{ echo captured; complain } > /tmp/log >[2=1]",
        "cat /tmp/log",
    ]);
    assert_eq!(out, "captured\nproblem\n");
    assert_eq!(err, "problem\n");
}

#[test]
fn background_jobs_and_apid() {
    let mut m = machine();
    m.run("echo first &").unwrap();
    let pid1 = m.get_var("apid");
    m.run("echo second &").unwrap();
    let pid2 = m.get_var("apid");
    assert_ne!(pid1, pid2);
    assert_eq!(m.os_mut().take_output(), "first\nsecond\n");
}

#[test]
fn fork_with_spoofs_active() {
    // A spoof installed in the parent is live in forked children.
    let mut m = machine();
    m.run(
        "let (create = $fn-%create) fn %create fd file cmd {
            log = $log $file
            $create $fd $file $cmd
        }",
    )
    .unwrap();
    m.run("fork {echo child > /tmp/c1}").unwrap();
    m.run("echo parent > /tmp/p1").unwrap();
    // Parent log only has the parent's write (fork isolation)...
    assert_eq!(m.get_var("log"), vec!["/tmp/p1"]);
    // ...but both files exist (shared filesystem).
    assert!(m.os().is_file("/tmp/c1"));
    assert!(m.os().is_file("/tmp/p1"));
}

#[test]
fn gc_stress_through_full_session() {
    let mut m = machine();
    m.heap.set_stress(true);
    let (_, _) = {
        for c in [
            "fn mk n { return @ { result $n } }",
            "for (i = a b c d e) { fns = $fns <>{mk $i} }",
            "echo <>{$fns(3)} | cat",
            "x = `{echo from backquote}",
        ] {
            m.run(c).unwrap_or_else(|e| panic!("`{c}` failed under stress gc: {e}"));
        }
        (m.os_mut().take_output(), m.os_mut().take_error())
    };
    assert_eq!(m.get_var("x"), vec!["from", "backquote"]);
    assert!(m.heap.stats().collections > 100);
}

#[test]
fn whatis_matches_paper_format() {
    let mut m = machine();
    m.run("let (a=b) fn foo {echo $a}").unwrap();
    m.run("whatis foo").unwrap();
    assert_eq!(m.os_mut().take_output(), "%closure(a=b)@ * {echo $a}\n");
}

#[test]
fn es_script_files_run_like_programs() {
    let mut m = machine();
    m.os_mut()
        .vfs_mut()
        .put_file(
            "/home/user/deploy.es",
            b"fn stage name { echo === $name === }\n\
              stage build\n\
              echo compiling $1\n\
              stage test\n\
              echo testing $1\n",
        )
        .unwrap();
    m.run(". deploy.es webapp").unwrap();
    assert_eq!(
        m.os_mut().take_output(),
        "=== build ===\ncompiling webapp\n=== test ===\ntesting webapp\n"
    );
}

#[test]
fn exception_inside_redirected_block_restores_fd_layout() {
    // An exception thrown inside `{ ... } > file` must unwind the
    // redirection: stdout goes back to the console, the temporary
    // descriptor is closed, and the shell keeps working.
    let mut m = machine();
    let baseline = m.os().open_desc_count();
    m.run("fn boom { throw error kaboom }").unwrap();
    let caught = m
        .run("catch @ e { result $e } { { echo doomed; boom } > /tmp/red.txt }")
        .unwrap();
    assert_eq!(caught, vec!["error", "kaboom"]);
    // The redirection wrote before the throw, then unwound cleanly.
    m.run("cat /tmp/red.txt").unwrap();
    m.run("echo back-on-console").unwrap();
    assert_eq!(m.os_mut().take_output(), "doomed\nback-on-console\n");
    assert_eq!(
        m.os().open_desc_count(),
        baseline,
        "redirection descriptor closed on the exception path"
    );
}

#[test]
fn catch_observes_injected_enospc_as_error_exception() {
    use es_os::{FaultKind, FaultPlan, Syscall};
    // A full disk surfaces from `%create` (the > redirection) as a
    // plain catchable `error` exception, not a crash.
    let mut m = machine();
    let baseline = m.os().open_desc_count();
    m.os_mut().set_fault_plan(Some(
        FaultPlan::new(11).scheduled(Syscall::Open, 1, FaultKind::NoSpc),
    ));
    let caught = m
        .run("catch @ e { result $e } { echo doomed > /tmp/full.txt }")
        .unwrap();
    assert_eq!(
        caught,
        vec!["error", "/tmp/full.txt: No space left on device"]
    );
    // The disk "recovers" (the schedule only hits the first open) and
    // the same redirection now succeeds with the fd table intact.
    m.run("echo survived > /tmp/full.txt").unwrap();
    m.run("cat /tmp/full.txt").unwrap();
    assert_eq!(m.os_mut().take_output(), "survived\n");
    assert_eq!(m.os().open_desc_count(), baseline, "no leaked descriptor");
    let log = m.os_mut().take_fault_log();
    assert_eq!(log.len(), 1, "exactly the scheduled fault fired: {log:?}");
}
